"""Table II: weak-scaling total iteration time (SuperLU & Tacho).

Paper shape targets: GPU best-MPS solve ~2x faster than the CPU run;
1 rank/GPU is not competitive at scale; the max-MPS row reproduces the
CPU iteration counts exactly (same decomposition).
"""

from repro.bench import experiments


def test_table2_weak_solve(benchmark, save_results):
    data = experiments.table2_weak_solve()
    save_results("table2_weak_solve", data)
    # measured quantity: repricing the cached numerics (the pure
    # cost-model evaluation exercised by every table)
    benchmark.pedantic(experiments.table2_weak_solve, rounds=2, iterations=1)

    for solver in ("superlu", "tacho"):
        d = data[solver]
        # the paper's headline: best-MPS GPU beats CPU on every column
        assert all(r > 1.0 for r in d["speedup"]), d["speedup"]
        # max-MPS GPU row shares the CPU decomposition -> same iteration
        # counts up to solve-order roundoff (the triangular solves are
        # numerically equivalent but not bitwise identical)
        for a, b in zip(d["iterations"]["gpu4"], d["iterations"]["cpu"]):
            assert abs(a - b) <= max(3, 0.1 * b), (a, b)
