"""Fig. 5: strong parallel scaling (Tacho, fixed global problem).

Paper shape targets: using all cores/full MPS (8 ranks/node here, 42 in
the paper) beats the reduced-rank configuration for both CPU and GPU;
times fall as nodes are added.
"""

from repro.bench import experiments


def test_fig5_strong_scaling(benchmark, save_results):
    data = experiments.fig5_strong_scaling()
    save_results("fig5_strong_scaling", data)
    benchmark.pedantic(experiments.fig5_strong_scaling, rounds=2, iterations=1)

    s = data["series"]
    full = s["cpu 8/node"]["solve"]
    reduced = s["cpu 2/node"]["solve"]
    gfull = s["gpu 4/gpu"]["solve"]
    gred = s["gpu 1/gpu"]["solve"]
    # at scale (largest node count, non-trivial decompositions on both
    # sides) the all-ranks configuration wins or ties, as in Fig. 5; at
    # tiny rank counts the reduced config solves an artificially easy
    # problem (2-4 huge subdomains), a regime below the paper's
    assert full[-1] <= 1.05 * reduced[-1]
    assert gfull[-1] <= 1.05 * gred[-1]
    # strong scaling: adding nodes reduces the full-rank solve time
    assert full[-1] < full[0]
    assert gfull[-1] < gfull[0]
