"""Table III: weak-scaling numerical setup time (SuperLU & Tacho).

Paper shape targets: MPS improves GPU setup strongly (SuperLU most --
its triangular-solver setup repeats every factorization); Tacho setup
is roughly at parity between CPU and GPU; SuperLU GPU setup is ~1.4x
slower than its CPU setup.
"""

from repro.bench import experiments


def test_table3_weak_setup(benchmark, save_results):
    data = experiments.table3_weak_setup()
    save_results("table3_weak_setup", data)
    benchmark.pedantic(experiments.table3_weak_setup, rounds=2, iterations=1)

    for solver in ("superlu", "tacho"):
        d = data[solver]
        # MPS=1 is the worst GPU setup row everywhere (Table III trend)
        worst = d["data"]["gpu1"]
        best = [min(d["data"][f"gpu{k}"][i] for k in (1, 2, 4)) for i in range(len(d["nodes"]))]
        assert all(w >= b for w, b in zip(worst, best))
        gain = [w / b for w, b in zip(worst, best)]
        floor = 2.0 if solver == "superlu" else 1.25
        assert max(gain) > floor, (solver, gain)  # MPS helps setup
    # SuperLU pays the per-factorization SpTRSV setup on the GPU path
    slu = data["superlu"]
    tac = data["tacho"]
    slu_ratio = [g / c for g, c in zip(slu["data"]["gpu4"], slu["data"]["cpu"])]
    tac_ratio = [g / c for g, c in zip(tac["data"]["gpu4"], tac["data"]["cpu"])]
    assert sum(slu_ratio) / len(slu_ratio) > sum(tac_ratio) / len(tac_ratio)
