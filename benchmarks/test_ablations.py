"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables, but the paper's design decisions made measurable:
coarse-space variant, solver-level choices, SpTRSV granularity, and
GMRES orthogonalization.
"""

import numpy as np
import pytest

from repro.bench import model_machine
from repro.bench.tables import format_table
from repro.dd import (
    Decomposition,
    GDSWPreconditioner,
    LocalSolverSpec,
    OneLevelSchwarz,
)
from repro.fem import elasticity_3d, rigid_body_modes
from repro.krylov import ReduceCounter, gmres
from repro.runtime import JobLayout, price_profile, reduce_seconds


@pytest.fixture(scope="module")
def problem():
    return elasticity_3d(8)


@pytest.fixture(scope="module")
def dec(problem):
    return Decomposition.from_box_partition(problem, 2, 2, 2)


@pytest.fixture(scope="module")
def nullspace(problem):
    return rigid_body_modes(problem.coordinates)


def test_ablation_coarse_space(benchmark, save_results, problem, dec, nullspace):
    """One-level vs GDSW vs rGDSW: iterations and coarse dimensions."""
    spec = LocalSolverSpec(kind="tacho", ordering="nd")
    one = OneLevelSchwarz(dec, spec, overlap=1)
    r_one = gmres(problem.a, problem.b, preconditioner=one.apply, rtol=1e-7, maxiter=900)
    rows = [["one-level", "-", str(r_one.iterations)]]
    data = {"one-level": {"iters": r_one.iterations, "n_coarse": 0}}
    for variant in ("gdsw", "rgdsw"):
        m = GDSWPreconditioner(dec, nullspace, local_spec=spec, variant=variant)
        r = gmres(problem.a, problem.b, preconditioner=m, rtol=1e-7)
        rows.append([variant, str(m.n_coarse), str(r.iterations)])
        data[variant] = {"iters": r.iterations, "n_coarse": m.n_coarse}
        benchmark.extra_info[variant] = r.iterations
    print()
    print(format_table("Ablation: coarse space", ["variant", "n_coarse", "iters"], rows))
    save_results("ablation_coarse_space", data)
    benchmark.pedantic(
        lambda: gmres(problem.a, problem.b, preconditioner=one.apply, rtol=1e-7,
                      maxiter=900),
        rounds=1, iterations=1,
    )
    assert data["gdsw"]["iters"] <= data["rgdsw"]["iters"] + 2
    assert data["rgdsw"]["iters"] < data["one-level"]["iters"]
    assert data["rgdsw"]["n_coarse"] < data["gdsw"]["n_coarse"]


def test_ablation_overlap_width(benchmark, save_results, problem, dec, nullspace):
    """Condition-number bound: kappa <= C (1 + H/delta)(...): wider
    overlap -> fewer iterations (at higher local cost)."""
    spec = LocalSolverSpec(kind="tacho", ordering="nd")
    iters = {}
    for overlap in (0, 1, 2):
        m = GDSWPreconditioner(dec, nullspace, local_spec=spec, overlap=overlap)
        r = gmres(problem.a, problem.b, preconditioner=m, rtol=1e-7, maxiter=900)
        iters[overlap] = r.iterations
    print("\nAblation overlap -> iterations:", iters)
    save_results("ablation_overlap", {str(k): v for k, v in iters.items()})
    benchmark.pedantic(lambda: iters, rounds=1, iterations=1)
    assert iters[1] <= iters[0]
    assert iters[2] <= iters[1] + 2


def test_ablation_sptrsv_granularity(benchmark, save_results, problem):
    """Element level-set vs supernodal vs partitioned-inverse SpTRSV:
    launches and priced GPU time for the same exact solve."""
    from repro.direct import MultifrontalCholesky
    from repro.sparse import CsrMatrix
    from repro.tri import (
        LevelScheduledTriangular,
        PartitionedInverseTriangular,
    )

    a = Decomposition.from_box_partition(problem, 2, 2, 2)
    from repro.sparse.blocks import extract_submatrix
    from repro.dd.overlap import overlapping_subdomains

    dofs = a.dofs_of_nodes(overlapping_subdomains(a, 1)[0])
    a_i = extract_submatrix(problem.a, dofs, dofs)
    mf = MultifrontalCholesky(ordering="nd").factorize(a_i)
    snt = mf.factor

    # element-wise factor: flatten the supernodal factor to CSR
    lc = np.zeros((a_i.n_rows, a_i.n_rows))
    for s in range(snt.n_supernodes):
        c0, c1 = snt.sn_ptr[s], snt.sn_ptr[s + 1]
        w = c1 - c0
        blk = snt.blocks[s]
        lc[c0:c1, c0:c1] = np.tril(blk[:w])
        if snt.rows_below[s].size:
            lc[snt.rows_below[s], c0:c1] = blk[w:]
    lcsr = CsrMatrix.from_dense(lc, tol=0.0)
    element = LevelScheduledTriangular(lcsr, lower=True)
    pinv = PartitionedInverseTriangular(lcsr, lower=True)

    machine = model_machine()
    gpu = JobLayout.gpu_run(1, 4, machine=machine)
    rows, data = [], {}
    for tag, prof in (
        ("element level-set", element.kernel_profile()),
        ("supernodal", snt.kernel_profile()),
        ("partitioned inverse", pinv.kernel_profile()),
    ):
        t = price_profile(prof, gpu)
        rows.append([tag, str(prof.total_launches), f"{1e6 * t:.1f}"])
        data[tag] = {"launches": prof.total_launches, "gpu_us": 1e6 * t}
    print()
    print(
        format_table(
            f"Ablation: SpTRSV granularity (local n={a_i.n_rows}, one L-solve)",
            ["algorithm", "launches", "GPU time [model us]"],
            rows,
        )
    )
    save_results("ablation_sptrsv", data)
    benchmark.pedantic(lambda: price_profile(snt.kernel_profile(), gpu), rounds=3, iterations=1)
    # supernodal blocking shortens the launch-bound critical path
    assert data["supernodal"]["launches"] < data["element level-set"]["launches"]
    assert data["supernodal"]["gpu_us"] < data["element level-set"]["gpu_us"]
    # partitioned inverse trades launches for full-vector SpMVs
    assert data["partitioned inverse"]["launches"] >= data["supernodal"]["launches"] or (
        data["partitioned inverse"]["gpu_us"] > 0
    )


def test_ablation_gmres_variant_comm(benchmark, save_results, problem, dec, nullspace):
    """Single-reduce GMRES saves modeled communication at scale."""
    spec = LocalSolverSpec(kind="tacho", ordering="nd")
    m = GDSWPreconditioner(dec, nullspace, local_spec=spec)
    machine = model_machine()
    lay = JobLayout.cpu_run(8, machine=machine)  # 64 logical ranks for pricing
    rows, data = [], {}
    for variant in ("mgs", "cgs", "single_reduce"):
        red = ReduceCounter()
        r = gmres(
            problem.a, problem.b, preconditioner=m, rtol=1e-7, variant=variant,
            reducer=red,
        )
        comm = reduce_seconds(lay, red.count, red.doubles)
        rows.append(
            [variant, str(r.iterations), str(red.count), f"{1e6 * comm:.1f}"]
        )
        data[variant] = {
            "iters": r.iterations, "reduces": red.count, "comm_us": 1e6 * comm
        }
    print()
    print(
        format_table(
            "Ablation: GMRES orthogonalization (64-rank reduce pricing)",
            ["variant", "iters", "reduces", "comm [model us]"],
            rows,
        )
    )
    save_results("ablation_gmres_variant", data)
    benchmark.pedantic(
        lambda: gmres(problem.a, problem.b, preconditioner=m, rtol=1e-7), rounds=1,
        iterations=1,
    )
    assert data["single_reduce"]["comm_us"] < data["cgs"]["comm_us"] < data["mgs"]["comm_us"]
    # iteration counts stay comparable across variants
    its = [d["iters"] for d in data.values()]
    assert max(its) - min(its) <= 3


def test_ablation_amortized_refactorization(benchmark, save_results, problem, dec, nullspace):
    """Section VIII-A: solving a sequence of systems amortizes the setup;
    Tacho's reusable symbolic phase pays off on refactorization."""
    from repro.bench import RunConfig, price_run, rank_grid, run_numerics

    machine = model_machine()
    rows, data = [], {}
    for kind in ("superlu", "tacho"):
        cfg = RunConfig(local=LocalSolverSpec(kind=kind, ordering="nd", gpu_solve=True))
        rec = run_numerics(problem, (2, 2, 2), cfg, cache_key=("amort",))
        t = price_run(rec, JobLayout.gpu_run(1, 4, machine=machine))
        first_total = t.first_setup_seconds + t.solve_seconds
        amortized = t.setup_seconds + t.solve_seconds
        rows.append(
            [kind, f"{1e3 * first_total:.2f}", f"{1e3 * amortized:.2f}",
             f"{first_total / amortized:.2f}x"]
        )
        data[kind] = {
            "first_ms": 1e3 * first_total, "amortized_ms": 1e3 * amortized
        }
    print()
    print(
        format_table(
            "Ablation: first solve vs repeated solve (setup amortization)",
            ["solver", "first [ms]", "repeat [ms]", "gain"],
            rows,
        )
    )
    save_results("ablation_amortization", data)
    benchmark.pedantic(lambda: data, rounds=1, iterations=1)
    # Tacho reuses its symbolic phase; SuperLU cannot
    slu_gain = data["superlu"]["first_ms"] / data["superlu"]["amortized_ms"]
    tacho_gain = data["tacho"]["first_ms"] / data["tacho"]["amortized_ms"]
    assert tacho_gain >= slu_gain * 0.9  # both gain; tacho at least comparable
