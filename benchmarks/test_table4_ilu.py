"""Table IV: ILU(k) local-solver study on one node.

Paper shape targets: the GPU setup speedup grows with the fill level;
FastILU/FastSpTRSV needs more iterations than exact ILU but wins the
solve time; the exact KK triangular solve on the GPU is not faster
than the CPU solve at these sizes.
"""

from repro.bench import experiments


def test_table4_ilu(benchmark, save_results):
    data = experiments.table4_ilu_study()
    save_results("table4_ilu", data)
    benchmark.pedantic(experiments.table4_ilu_study, rounds=2, iterations=1)

    lv = data["levels"]
    # Fast variants iterate more than the exact ILU at the same level...
    for i in range(len(lv)):
        assert data["iterations"]["GPU Fast(No)"][i] >= data["iterations"]["CPU (No)"][i]
    # ...but win the solve against the exact GPU triangular solve
    for i in range(len(lv)):
        assert data["solve"]["GPU Fast(No)"][i] < data["solve"]["GPU KK(No)"][i]
    # and stay at least competitive with the CPU at every level (the
    # extra Fast iterations erode the margin at high fill levels)
    for i in range(len(lv)):
        assert data["solve"]["GPU Fast(No)"][i] < 1.1 * data["solve"]["CPU (No)"][i]
    # relative GPU setup cost improves as the level (work) grows
    rel = [
        data["setup"]["GPU Fast(No)"][i] / data["setup"]["CPU (No)"][i]
        for i in range(len(lv))
    ]
    assert rel[-1] < rel[0]
