"""Table VII: iteration time, double vs single precision.

Paper shape targets: iteration counts are essentially unchanged by the
single-precision preconditioner (within a couple of iterations), and
the solve time shows no significant benefit.
"""

from repro.bench import experiments


def test_table7_precision_solve(benchmark, save_results):
    data = experiments.table7_precision_solve()
    save_results("table7_precision_solve", data)
    benchmark.pedantic(experiments.table7_precision_solve, rounds=2, iterations=1)

    for solver in ("superlu", "tacho"):
        it = data[solver]["iterations"]
        for tag in ("CPU", "GPU"):
            dbl = it[f"{tag} double"]
            sgl = it[f"{tag} single"]
            for a, b in zip(dbl, sgl):
                assert abs(a - b) <= max(3, 0.15 * a), (solver, tag, dbl, sgl)
        # solve-time changes stay small (no 2x swings either way)
        d = data[solver]["data"]
        for tag in ("CPU", "GPU"):
            ratios = [
                x / y for x, y in zip(d[f"{tag} double"], d[f"{tag} single"])
            ]
            assert all(0.5 < r < 2.0 for r in ratios)
