"""Table V: weak scaling with the ILU(1) local solver.

Paper shape targets: iteration counts stay nearly flat with the number
of subdomains even with the inexact solver; the Fast variants beat the
exact KK solve; setup is comparable between CPU and GPU.
"""

from repro.bench import experiments


def test_table5_ilu_weak(benchmark, save_results):
    data = experiments.table5_ilu_weak()
    save_results("table5_ilu_weak", data)
    benchmark.pedantic(experiments.table5_ilu_weak, rounds=2, iterations=1)

    iters = data["iterations"]["CPU"]
    # iteration growth stays modest across an 8x subdomain increase
    assert max(iters) <= 2.0 * min(iters), iters
    for i in range(len(data["nodes"])):
        assert data["solve"]["GPU Fast"][i] < data["solve"]["GPU KK"][i]
        assert data["solve"]["GPU Fast"][i] < data["solve"]["CPU"][i]
