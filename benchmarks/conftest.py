"""Benchmark-session fixtures: results directory and shared caches.

Run with ``pytest benchmarks/ --benchmark-only``.  Every target prints
its table(s) in the paper's layout (use ``-s`` to see them live) and
persists structured rows under ``benchmarks/results/`` for
EXPERIMENTS.md.  Numerics are memoized inside the session, so targets
sharing a sweep (Tables II/III/VI/VII) run the expensive part once.

Set ``REPRO_BENCH_NODES=1,2`` to trim the weak-scaling sweeps.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    return out


class _Encoder(json.JSONEncoder):
    def default(self, o):
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        return super().default(o)


@pytest.fixture(scope="session")
def audit_verdict(results_dir) -> dict:
    """Cost-model audit verdict for the benchmark session.

    Runs :func:`repro.verify.audit_cost_model` once per working
    precision on a small representative run (the modeled communication
    volumes vs what the simulated MPI layer actually shipped) and
    persists the verdict as ``BENCH_verify.json`` so a mispriced kernel
    family is machine-detectable next to the table data it would skew.
    """
    import dataclasses

    from repro.bench.harness import (
        RunConfig,
        audit_record,
        rank_grid,
        run_numerics,
        weak_scaled_problem,
    )

    verdict: dict = {"ok": True, "precisions": {}}
    for precision in ("double", "single"):
        rec = run_numerics(
            weak_scaled_problem(1),
            rank_grid(1, 8),
            RunConfig(precision=precision),
            cache_key=("verify-audit", precision),
        )
        audit = audit_record(rec)
        verdict["precisions"][precision] = {
            "ok": audit.ok,
            "flagged": audit.flagged,
            "entries": [dataclasses.asdict(e) for e in audit.entries],
        }
        verdict["ok"] = verdict["ok"] and audit.ok
    path = results_dir / "BENCH_verify.json"
    path.write_text(json.dumps(verdict, indent=1, cls=_Encoder))
    return verdict


@pytest.fixture(scope="session")
def save_results(results_dir, audit_verdict):
    def _save(name: str, data: dict) -> None:
        # tuple keys from experiment dicts are stringified
        def clean(obj):
            if isinstance(obj, dict):
                return {str(k): clean(v) for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [clean(v) for v in obj]
            return obj

        payload = clean(data)
        if isinstance(payload, dict):
            # the audit verdict rides along in every emitted file so a
            # cost-model regression is visible next to the numbers it skews
            payload["cost_model_audit"] = {
                "ok": audit_verdict["ok"],
                "flagged": sorted(
                    {
                        f
                        for p in audit_verdict["precisions"].values()
                        for f in p["flagged"]
                    }
                ),
            }
        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1, cls=_Encoder))

    return _save
