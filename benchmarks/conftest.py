"""Benchmark-session fixtures: results directory and shared caches.

Run with ``pytest benchmarks/ --benchmark-only``.  Every target prints
its table(s) in the paper's layout (use ``-s`` to see them live) and
persists structured rows under ``benchmarks/results/`` for
EXPERIMENTS.md.  Numerics are memoized inside the session, so targets
sharing a sweep (Tables II/III/VI/VII) run the expensive part once.

Set ``REPRO_BENCH_NODES=1,2`` to trim the weak-scaling sweeps.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    return out


class _Encoder(json.JSONEncoder):
    def default(self, o):
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        return super().default(o)


@pytest.fixture(scope="session")
def save_results(results_dir):
    def _save(name: str, data: dict) -> None:
        # tuple keys from experiment dicts are stringified
        def clean(obj):
            if isinstance(obj, dict):
                return {str(k): clean(v) for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [clean(v) for v in obj]
            return obj

        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(clean(data), indent=1, cls=_Encoder))

    return _save
