"""Table VI: numerical setup, double vs single precision.

Paper shape targets: the single-precision preconditioner reduces the
(memory-bound) setup time by ~1.3-1.5x on the CPU and somewhat less on
the GPU.
"""

from repro.bench import experiments


def test_table6_precision_setup(benchmark, save_results):
    data = experiments.table6_precision_setup()
    save_results("table6_precision_setup", data)
    benchmark.pedantic(experiments.table6_precision_setup, rounds=2, iterations=1)

    for solver in ("superlu", "tacho"):
        d = data[solver]["data"]
        for tag in ("CPU", "GPU"):
            speedups = [
                dd / ss for dd, ss in zip(d[f"{tag} double"], d[f"{tag} single"])
            ]
            assert all(s > 1.0 for s in speedups), (solver, tag, speedups)
            assert max(speedups) < 2.0  # bounded by the bytes ratio
