"""Fig. 4: numerical-setup time breakdown on one node.

Paper shape targets: on the SuperLU GPU path a significant share of the
setup is the Kokkos-Kernels SpTRSV setup; Tacho's factorization runs
faster on the GPU while the SpGEMM/communication ("black") parts run
slower, netting similar totals.
"""

from repro.bench import experiments


def test_fig4_setup_breakdown(benchmark, save_results):
    data = experiments.fig4_setup_breakdown()
    save_results("fig4_setup_breakdown", data)
    benchmark.pedantic(experiments.fig4_setup_breakdown, rounds=2, iterations=1)

    br = data["breakdowns"]
    slu_gpu = br["superlu/gpu"]
    # the SpTRSV setup family exists and is a visible share on SuperLU/GPU
    assert slu_gpu.get("setup", 0.0) > 0.0
    assert slu_gpu["setup"] > 0.1 * sum(slu_gpu.values())
    assert "setup" not in br["superlu/cpu"] or br["superlu/cpu"]["setup"] == 0.0
    # Tacho factors faster on the GPU...
    assert br["tacho/gpu"]["factor"] < br["tacho/cpu"]["factor"]
    # ...but its coarse/SpGEMM parts run slower there (the "black" bars)
    assert br["tacho/gpu"]["coarse"] > br["tacho/cpu"]["coarse"]
