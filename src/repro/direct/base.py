"""Three-phase direct-solver interface and factory.

Every Trilinos linear solver separates (a) symbolic factorization, (b)
numeric factorization, and (c) solve (Section V-A.1 of the paper); the
split matters because symbolic analysis is hard to parallelize (done on
CPU, reused across refactorizations when the pattern allows) while the
numeric and solve phases are the GPU targets.
"""

from __future__ import annotations


import numpy as np

from repro.machine.kernels import KernelProfile
from repro.obs import get_tracer
from repro.sparse.csr import CsrMatrix

__all__ = ["DirectSolver", "direct_solver"]


class DirectSolver:
    """Abstract three-phase sparse direct solver.

    Usage::

        solver = direct_solver("tacho", ordering="nd")
        solver.symbolic(a)   # pattern-only analysis (CPU)
        solver.numeric(a)    # numerical factorization
        x = solver.solve(b)  # triangular solves

    Subclasses set the phase profiles (``symbolic_profile``,
    ``numeric_profile``, ``solve_profile``) and
    ``symbolic_reusable`` -- True when a refactorization with the same
    pattern can skip both the symbolic phase *and* any solver setup
    derived from the factor structure (Tacho yes, SuperLU no).
    """

    #: can the symbolic phase be reused across numeric refactorizations?
    symbolic_reusable: bool = True

    def __init__(self) -> None:
        self.symbolic_profile: KernelProfile = KernelProfile()
        self.numeric_profile: KernelProfile = KernelProfile()
        self.solve_profile: KernelProfile = KernelProfile()
        self._symbolic_done = False
        self._numeric_done = False

    # -- phases --------------------------------------------------------
    def symbolic(self, a: CsrMatrix) -> "DirectSolver":
        """Pattern-only analysis; must precede :meth:`numeric`."""
        raise NotImplementedError

    def numeric(self, a: CsrMatrix) -> "DirectSolver":
        """Numerical factorization of ``a`` (same pattern as symbolic)."""
        raise NotImplementedError

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (1-D or 2-D ``b``)."""
        raise NotImplementedError

    # -- helpers -------------------------------------------------------
    def factorize(self, a: CsrMatrix) -> "DirectSolver":
        """Convenience: symbolic followed by numeric (traced per phase)."""
        tr = get_tracer()
        with tr.span("factor/symbolic") as sp:
            self.symbolic(a)
            sp.annotate(solver=type(self).__name__)
            sp.add_profile(self.symbolic_profile)
        with tr.span("factor/numeric") as sp:
            self.numeric(a)
            sp.add_profile(self.numeric_profile)
        return self

    def refactorize(self, a: CsrMatrix) -> "DirectSolver":
        """Numeric-only refactorization for a same-pattern matrix.

        When the symbolic phase has run and ``symbolic_reusable`` holds,
        only the numeric phase is re-executed (the paper's phase (b));
        the numeric guard raises
        :class:`~repro.reuse.fingerprint.PatternChangedError` when the
        pattern drifted.  Otherwise falls back to a full
        :meth:`factorize` -- SuperLU always takes this branch because
        partial pivoting couples its ordering to the values.
        """
        if not self._symbolic_done or not self.symbolic_reusable:
            return self.factorize(a)
        tr = get_tracer()
        with tr.span("factor/numeric") as sp:
            sp.annotate(solver=type(self).__name__, reused_symbolic=True)
            self.numeric(a)
            sp.add_profile(self.numeric_profile)
        return self

    def _require(self, phase: str) -> None:
        if phase == "numeric" and not self._symbolic_done:
            raise RuntimeError("call symbolic() before numeric()")
        if phase == "solve" and not self._numeric_done:
            raise RuntimeError("call numeric() before solve()")


def direct_solver(name: str, **options) -> DirectSolver:
    """Create a direct solver by paper name.

    ``"superlu"`` maps to the Gilbert--Peierls LU with partial pivoting;
    ``"tacho"`` to the multifrontal supernodal Cholesky.
    """
    from repro.direct.gp_lu import GilbertPeierlsLU
    from repro.direct.multifrontal import MultifrontalCholesky

    name = name.lower()
    if name in ("superlu", "gp", "gilbert-peierls", "lu"):
        return GilbertPeierlsLU(**options)
    if name in ("tacho", "multifrontal", "cholesky"):
        return MultifrontalCholesky(**options)
    raise ValueError(f"unknown direct solver {name!r}; use 'superlu' or 'tacho'")
