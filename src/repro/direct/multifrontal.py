"""Multifrontal supernodal Cholesky / LDL^T (the Tacho model).

Tacho [Kim, Edwards, Rajamanickam 2018] factors symmetric matrices with
a multifrontal method: the elimination tree is processed leaves-to-root,
each supernode assembling a dense *frontal matrix* from the original
matrix entries plus the children's update (Schur-complement) matrices,
factoring its pivot block with dense kernels, and passing the update
matrix to its parent (extend-add).  Pivoting happens only inside fronts,
so the factor structure is value-independent: the symbolic phase is
computed once and reused across refactorizations -- the key structural
advantage over SuperLU in Tables III and Fig. 4.

On the GPU, Tacho executes the assembly tree with level-set scheduling
and team-level dense kernels (cuBLAS/cuSolver for large fronts); here
the dense frontal work delegates to numpy/LAPACK and the level structure
feeds the machine model.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.direct.base import DirectSolver
from repro.machine.kernels import KernelProfile
from repro.ordering import amd, natural, nested_dissection, rcm
from repro.ordering.etree import symbolic_cholesky
from repro.reuse.fingerprint import check_same_pattern, pattern_fingerprint
from repro.sparse.blocks import inverse_permutation, permute
from repro.sparse.csr import CsrMatrix
from repro.tri.supernodal import SupernodalTriangular, detect_supernodes

__all__ = ["MultifrontalCholesky"]


class MultifrontalCholesky(DirectSolver):
    """Multifrontal supernodal Cholesky (or LDL^T) factorization.

    Parameters
    ----------
    ordering:
        Fill-reducing ordering: ``"nd"`` (default), ``"rcm"`` or
        ``"natural"``.
    mode:
        ``"cholesky"`` for SPD input; ``"ldlt"`` stores unit-diagonal
        ``L`` and a diagonal ``D`` (symmetric indefinite without
        pivoting across fronts, like Tacho's LDL^T).
    max_supernode:
        Width cap for supernode amalgamation (bounds frontal sizes).
    """

    symbolic_reusable = True

    def __init__(
        self,
        ordering: str = "nd",
        mode: str = "cholesky",
        max_supernode: int = 64,
    ) -> None:
        super().__init__()
        if mode not in ("cholesky", "ldlt"):
            raise ValueError("mode must be 'cholesky' or 'ldlt'")
        self.ordering = ordering
        self.mode = mode
        self.max_supernode = int(max_supernode)
        self.perm: Optional[np.ndarray] = None
        self._snt: Optional[SupernodalTriangular] = None
        self._d: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def symbolic(self, a: CsrMatrix) -> "MultifrontalCholesky":
        """Ordering, elimination tree, factor pattern, supernodes.

        All pattern-derived structure (supernode partition, per-front row
        sets, assembly-tree levels) is computed here and reused by every
        subsequent :meth:`numeric` call.
        """
        if a.n_rows != a.n_cols:
            raise ValueError("square matrix required")
        n = a.n_rows
        if self.ordering in ("natural", "no", "none"):
            self.perm = natural(n)
        elif self.ordering in ("nd", "nested_dissection", "metis"):
            self.perm = nested_dissection(a)
        elif self.ordering == "rcm":
            self.perm = rcm(a)
        elif self.ordering == "amd":
            self.perm = amd(a)
        else:
            raise ValueError(f"unknown ordering {self.ordering!r}")
        ap = permute(a, self.perm)

        # row-wise factor pattern -> column (CSC) pattern for supernodes
        l_row_ptr, l_row_ind, parent = symbolic_cholesky(ap)
        lpat = CsrMatrix(
            l_row_ptr, l_row_ind, np.ones(l_row_ind.size), (n, n)
        ).transpose()  # rows of transpose = columns of L, sorted ascending
        self._col_ptr, self._col_ind = lpat.indptr, lpat.indices
        self.sn_ptr = detect_supernodes(
            self._col_ptr, self._col_ind, max_width=self.max_supernode
        )
        n_sn = self.sn_ptr.size - 1

        # per-supernode below-rows and front index sets
        self._rows_below: List[np.ndarray] = []
        col2sn = np.empty(n, dtype=np.int64)
        for s in range(n_sn):
            c0, c1 = int(self.sn_ptr[s]), int(self.sn_ptr[s + 1])
            col2sn[c0:c1] = s
            first = self._col_ind[self._col_ptr[c0] : self._col_ptr[c0 + 1]]
            self._rows_below.append(first[c1 - c0 :].astype(np.int64))

        # assembly tree: parent supernode = owner of the first below-row
        self._sn_parent = np.full(n_sn, -1, dtype=np.int64)
        for s in range(n_sn):
            rb = self._rows_below[s]
            if rb.size:
                self._sn_parent[s] = col2sn[rb[0]]
        self._col2sn = col2sn

        # level-set schedule over the assembly tree (for the GPU profile)
        levels = np.zeros(n_sn, dtype=np.int64)
        for s in range(n_sn):  # children have smaller indices than parents
            p = self._sn_parent[s]
            if p >= 0:
                levels[p] = max(levels[p], levels[s] + 1)
        self._sn_levels = levels

        self._pattern_fp = pattern_fingerprint(a)
        nnz_l = int(self._col_ind.size)
        self.symbolic_profile = KernelProfile()
        self.symbolic_profile.add(
            "symbolic.tacho_analysis",
            flops=0.0,
            bytes=float(a.nnz * 12 + nnz_l * 12 + n * 32),
        )
        self._symbolic_done = True
        self._numeric_done = False
        return self

    # ------------------------------------------------------------------
    def numeric(self, a: CsrMatrix) -> "MultifrontalCholesky":
        """Numerical multifrontal factorization (same pattern as symbolic).

        A matrix whose pattern differs from the symbolic stamp raises
        :class:`~repro.reuse.fingerprint.PatternChangedError` -- the
        frontal scatter would otherwise index through a stale position
        map and silently build factors of the wrong structure.
        """
        self._require("numeric")
        check_same_pattern(self._pattern_fp, a, "tacho")
        n = a.n_rows
        ap = permute(a, self.perm)
        alow = ap.transpose()  # CSC of ap: column j = row j of transpose
        n_sn = self.sn_ptr.size - 1

        # front position maps
        blocks: List[np.ndarray] = []
        d_all = np.empty(n, dtype=np.float64)
        updates: List[Optional[np.ndarray]] = [None] * n_sn
        pos = np.full(n, -1, dtype=np.int64)

        flops_per_level = np.zeros(int(self._sn_levels.max()) + 1 if n_sn else 1)
        bytes_per_level = np.zeros_like(flops_per_level)
        rows_per_level = np.zeros_like(flops_per_level)

        for s in range(n_sn):
            c0, c1 = int(self.sn_ptr[s]), int(self.sn_ptr[s + 1])
            w = c1 - c0
            rb = self._rows_below[s]
            m = rb.size
            idx = np.concatenate([np.arange(c0, c1, dtype=np.int64), rb])
            front = np.zeros((w + m, w + m))
            pos[idx] = np.arange(w + m)

            # scatter original matrix columns (lower part) into the front
            for k in range(w):
                col = c0 + k
                lo, hi = alow.indptr[col], alow.indptr[col + 1]
                rows = alow.indices[lo:hi]
                vals = alow.data[lo:hi]
                keep = rows >= col
                front[pos[rows[keep]], k] = vals[keep]

            # extend-add children updates
            for t in self._children_of(s):
                upd = updates[t]
                rbt = self._rows_below[t]
                p = pos[rbt]
                if np.any(p < 0):  # pragma: no cover - symbolic invariant
                    raise AssertionError("child update rows escape parent front")
                front[np.ix_(p, p)] += upd
                updates[t] = None

            # dense factorization of the pivot block
            f11 = front[:w, :w]
            f21 = front[w:, :w]
            if self.mode == "cholesky":
                try:
                    l11 = np.linalg.cholesky(f11)
                except np.linalg.LinAlgError as err:
                    from repro.resilience.detect import PivotBreakdownError

                    # pivot-free factorization: a non-positive pivot is
                    # fatal here; the resilience ladder responds with a
                    # diagonal shift or a pivoting-LU fallback
                    raise PivotBreakdownError(
                        f"tacho: Cholesky breakdown in supernode {s} "
                        f"(columns {c0}:{c1}): {err}",
                        index=int(c0),
                        solver="tacho",
                    ) from err
                from scipy.linalg import solve_triangular

                l21 = (
                    solve_triangular(l11, f21.T, lower=True, check_finite=False).T
                    if m
                    else f21
                )
                upd = front[w:, w:] - l21 @ l21.T if m else None
                blocks.append(np.vstack([l11, l21]) if m else l11)
                d_all[c0:c1] = 1.0
            else:  # ldlt: A11 = L11 D L11^T with unit L
                l11, d = _dense_ldlt(f11)
                from scipy.linalg import solve_triangular

                if m:
                    # L21 = A21 L11^{-T} D^{-1}
                    tmp = solve_triangular(
                        l11, f21.T, lower=True, unit_diagonal=True, check_finite=False
                    ).T
                    l21 = tmp / d[None, :]
                    upd = front[w:, w:] - (l21 * d[None, :]) @ l21.T
                else:
                    l21 = f21
                    upd = None
                blocks.append(np.vstack([l11, l21]) if m else l11)
                d_all[c0:c1] = d
            if m:
                updates[s] = upd
            pos[idx] = -1  # keep the position map clean for the invariant check

            lv = int(self._sn_levels[s])
            flops_per_level[lv] += w**3 / 3.0 + w * w * m + w * m * m
            bytes_per_level[lv] += 8.0 * (w + m) ** 2
            rows_per_level[lv] += w + m

        self._snt = SupernodalTriangular(
            n,
            self.sn_ptr,
            self._rows_below,
            blocks,
            unit_diagonal=(self.mode == "ldlt"),
        )
        self._d = d_all
        self.iperm = inverse_permutation(self.perm)

        self.numeric_profile = KernelProfile()
        for lv in range(flops_per_level.size):
            self.numeric_profile.add(
                "factor.tacho_front_level",
                flops=float(flops_per_level[lv]),
                bytes=float(bytes_per_level[lv]),
                parallelism=float(max(rows_per_level[lv], 1.0)),
            )
        self.solve_profile = KernelProfile()
        self.solve_profile.extend(self._snt.kernel_profile())
        self.solve_profile.extend(self._snt.kernel_profile())  # fwd + bwd
        self._numeric_done = True
        return self

    # ------------------------------------------------------------------
    def _children_of(self, s: int) -> List[int]:
        if not hasattr(self, "_children") or self._children_stamp is not self.sn_ptr:
            n_sn = self.sn_ptr.size - 1
            self._children: List[List[int]] = [[] for _ in range(n_sn)]
            for t in range(n_sn):
                p = self._sn_parent[t]
                if p >= 0:
                    self._children[p].append(t)
            self._children_stamp = self.sn_ptr
        return self._children[s]

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` with the supernodal factor."""
        self._require("solve")
        b = np.asarray(b)
        bp = b[self.perm] if b.ndim == 1 else b[self.perm, :]
        y = self._snt.solve_forward(bp)
        if self.mode == "ldlt":
            y = y / self._d if y.ndim == 1 else y / self._d[:, None]
        z = self._snt.solve_backward(y)
        out = np.empty_like(np.asarray(z, dtype=np.float64))
        if b.ndim == 1:
            out[self.perm] = z
        else:
            out[self.perm, :] = z
        return out

    @property
    def factor(self) -> SupernodalTriangular:
        """The supernodal triangular factor (for the GPU solve path)."""
        self._require("solve")
        return self._snt


def _dense_ldlt(a: np.ndarray):
    """Dense LDL^T without pivoting; returns unit-lower ``L`` and ``d``.

    Raises :class:`~repro.resilience.detect.PivotBreakdownError` (a
    ``ZeroDivisionError`` subclass) on an exactly-zero pivot -- or, when
    a resilience engine with detection is active, on a *near*-zero
    pivot relative to the front's diagonal scale.
    """
    from repro.resilience.context import get_engine
    from repro.resilience.detect import check_pivot

    eng = get_engine()
    pivot_rtol = eng.pivot_rtol if eng is not None else 0.0
    n = a.shape[0]
    scale = float(np.max(np.abs(np.diag(a)))) if n else 1.0
    l = np.eye(n)
    d = np.empty(n)
    a = a.copy()
    for j in range(n):
        d[j] = a[j, j]
        check_pivot(float(d[j]), scale, j, "tacho-ldlt", rtol=pivot_rtol)
        l[j + 1 :, j] = a[j + 1 :, j] / d[j]
        a[j + 1 :, j + 1 :] -= np.outer(l[j + 1 :, j], l[j + 1 :, j]) * d[j]
    return l, d
