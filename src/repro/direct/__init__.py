"""Sparse direct solvers with the three-phase Trilinos structure.

The paper evaluates two direct solvers for the local overlapping
subdomain and coarse problems (Section V-B.1):

* **SuperLU** -- left-looking sparse LU with partial pivoting, CPU-only.
  Reproduced by :class:`repro.direct.gp_lu.GilbertPeierlsLU` (the
  Gilbert--Peierls algorithm SuperLU generalizes).  Because partial
  pivoting makes the factor structure value-dependent, the symbolic
  setup of the GPU triangular solver must be redone after *every*
  numeric factorization -- the effect dominating Table III(a) and the
  SuperLU bars of Fig. 4.
* **Tacho** -- multifrontal supernodal Cholesky/LDL^T with pivoting only
  inside fronts, GPU-enabled.  Reproduced by
  :class:`repro.direct.multifrontal.MultifrontalCholesky`: nested
  dissection + elimination-tree symbolic analysis (reusable), dense
  frontal kernels (the cuBLAS/cuSolver analogue is numpy/LAPACK), and a
  level-set schedule over the assembly tree.

All solvers implement the symbolic / numeric / solve phase split of
Section V-A.1, and expose :class:`~repro.machine.kernels.KernelProfile`
objects for each phase so the machine model can price them.
"""

from repro.direct.base import DirectSolver, direct_solver
from repro.direct.gp_lu import GilbertPeierlsLU
from repro.direct.multifrontal import MultifrontalCholesky

__all__ = [
    "DirectSolver",
    "GilbertPeierlsLU",
    "MultifrontalCholesky",
    "direct_solver",
]
