"""Gilbert--Peierls sparse LU with partial pivoting (the SuperLU model).

Left-looking, column-at-a-time factorization: for each column, a DFS on
the structure of the already-computed ``L`` columns finds the reach of
the column's pattern (the symbolic step), then a sparse lower-triangular
solve computes the column values, and partial pivoting picks the largest
remaining entry.  Time is proportional to the flops performed [Gilbert &
Peierls 1988]; SuperLU is the supernodal evolution of this algorithm.

Because the pivot order depends on *values*, nothing structural survives
a refactorization: the factor pattern, the supernode blocking, and the
level-set schedules must all be rebuilt, which is exactly why the
paper's SuperLU-on-GPU setup times are dominated by the Kokkos-Kernels
SpTRSV setup (Fig. 4, Table III(a)).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.direct.base import DirectSolver
from repro.machine.kernels import KernelProfile
from repro.ordering import amd, natural, nested_dissection, rcm
from repro.reuse.fingerprint import check_same_pattern, pattern_fingerprint
from repro.sparse.blocks import inverse_permutation, permute
from repro.sparse.csr import CsrMatrix

__all__ = ["GilbertPeierlsLU"]


def _ordering_perm(a: CsrMatrix, ordering: str) -> np.ndarray:
    if ordering in ("natural", "no", "none"):
        return natural(a.n_rows)
    if ordering in ("nd", "nested_dissection", "metis"):
        return nested_dissection(a)
    if ordering == "rcm":
        return rcm(a)
    if ordering == "amd":
        return amd(a)
    raise ValueError(f"unknown ordering {ordering!r}")


class GilbertPeierlsLU(DirectSolver):
    """Sparse LU with partial pivoting, in the Gilbert--Peierls style.

    Parameters
    ----------
    ordering:
        Fill-reducing column ordering applied symmetrically before
        factorization: ``"nd"`` (default, the paper uses METIS ND),
        ``"rcm"``, or ``"natural"``.
    pivot_tol:
        Threshold partial pivoting: the diagonal entry is kept as pivot
        when ``|a_jj| >= pivot_tol * max_i |a_ij|`` (1.0 = classic
        partial pivoting; SuperLU's default diagonal preference uses a
        smaller value which preserves more structure).

    Notes
    -----
    ``symbolic_reusable`` is False: partial pivoting makes the factor
    structure value-dependent.
    """

    symbolic_reusable = False

    def __init__(self, ordering: str = "nd", pivot_tol: float = 1.0) -> None:
        super().__init__()
        if not (0.0 < pivot_tol <= 1.0):
            raise ValueError("pivot_tol must be in (0, 1]")
        self.ordering = ordering
        self.pivot_tol = float(pivot_tol)
        self.perm: Optional[np.ndarray] = None
        self.row_perm: Optional[np.ndarray] = None  # pivoted row order
        # CSC factors: L unit-lower (pivot row stored first with value 1),
        # U upper with the pivot (diagonal) stored last in each column.
        self._l: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._u: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self.flops: float = 0.0

    # ------------------------------------------------------------------
    def symbolic(self, a: CsrMatrix) -> "GilbertPeierlsLU":
        """Choose the fill-reducing ordering (all real work is numeric).

        With partial pivoting only the ordering can be precomputed; the
        factor structure emerges during the numeric phase.
        """
        if a.n_rows != a.n_cols:
            raise ValueError("square matrix required")
        self.perm = _ordering_perm(a, self.ordering)
        self._pattern_fp = pattern_fingerprint(a)
        n = a.n_rows
        self.symbolic_profile = KernelProfile()
        # ordering cost: a small multiple of |graph| traversals
        self.symbolic_profile.add(
            "symbolic.ordering", flops=0.0, bytes=float(a.nnz * 12 + n * 16)
        )
        self._symbolic_done = True
        self._numeric_done = False
        return self

    # ------------------------------------------------------------------
    def numeric(self, a: CsrMatrix) -> "GilbertPeierlsLU":
        """Factor ``P (A permuted) = L U`` column by column.

        The reach of each column is traversed in increasing pivot
        position with a binary heap, which is a valid topological order
        because ``L``-column updates only flow from lower to higher
        positions.  Per reach column the numeric update is one
        vectorized scatter, keeping the Python overhead proportional to
        the factor's *structure*, not its flops.
        """
        import heapq

        self._require("numeric")
        # the ordering was computed for the symbolic-time pattern; a new
        # pattern silently degrades it (and invalidates any reuse-cache
        # assumption about this solver), so it is a hard error
        check_same_pattern(self._pattern_fp, a, "superlu")
        n = a.n_rows
        ap = permute(a, self.perm)
        acsc = ap.transpose()  # CSR of A^T = CSC of A
        aptr, aind, aval = acsc.indptr, acsc.indices, acsc.data

        # growing CSC factors
        l_ptr = [0]
        l_rows: List[np.ndarray] = []
        l_vals: List[np.ndarray] = []
        u_ptr = [0]
        u_rows: List[np.ndarray] = []
        u_vals: List[np.ndarray] = []

        pinv = np.full(n, -1, dtype=np.int64)  # original row -> pivot position
        x = np.zeros(n, dtype=np.float64)
        marked = np.full(n, -1, dtype=np.int64)
        flops = 0.0
        # near-singularity guard: with partial pivoting the pivot is the
        # column max, so a pivot vanishing relative to ||A||_max means
        # rank deficiency (e.g. an un-grounded Neumann matrix)
        amax = float(np.abs(a.data).max()) if a.nnz else 0.0
        tiny = 100.0 * n * np.finfo(np.float64).eps * amax

        # per-column L access by pivot position
        lcol_rows: List[np.ndarray] = []
        lcol_vals: List[np.ndarray] = []

        for k in range(n):
            # ---- seed the pattern with A(:, k) ----
            lo, hi = aptr[k], aptr[k + 1]
            seeds = aind[lo:hi]
            x[seeds] = aval[lo:hi]
            marked[seeds] = k
            seed_pos = pinv[seeds]
            heap = [
                (int(p), int(r)) for p, r in zip(seed_pos, seeds) if p >= 0
            ]
            heapq.heapify(heap)
            unpiv_list = seeds[seed_pos < 0].tolist()
            upos_list: List[int] = []
            unode_list: List[int] = []

            # ---- process the reach in increasing pivot position ----
            while heap:
                pos_j, node = heapq.heappop(heap)
                upos_list.append(pos_j)
                unode_list.append(node)
                rows_j = lcol_rows[pos_j]
                # structural extension: newly reached rows
                new = rows_j[marked[rows_j] != k]
                if new.size:
                    marked[new] = k
                    pn = pinv[new]
                    piv = pn >= 0
                    for p, r in zip(pn[piv].tolist(), new[piv].tolist()):
                        heapq.heappush(heap, (p, r))
                    unpiv_list.extend(new[~piv].tolist())
                xj = x[node]
                if xj != 0.0:
                    x[rows_j] -= lcol_vals[pos_j] * xj
                    flops += 2.0 * rows_j.size

            # ---- pivot selection among unpivoted pattern rows ----
            unpiv = np.asarray(unpiv_list, dtype=np.int64)
            if unpiv.size == 0:
                from repro.resilience.detect import PivotBreakdownError

                raise PivotBreakdownError(
                    f"superlu: structurally singular at column {k}",
                    index=int(k),
                    solver="superlu",
                )
            cand_vals = np.abs(x[unpiv])
            vmax = cand_vals.max()
            if vmax <= tiny:
                from repro.resilience.detect import PivotBreakdownError

                raise PivotBreakdownError(
                    f"superlu: numerically singular at column {k} "
                    f"(column max {vmax:.3e} <= {tiny:.3e})",
                    index=int(k),
                    value=float(vmax),
                    solver="superlu",
                )
            ipiv = int(unpiv[np.argmax(cand_vals)])
            # threshold rule: keep the diagonal (row k of the permuted
            # matrix) when it is large enough relative to the column max
            if marked[k] == k and pinv[k] < 0 and abs(x[k]) >= self.pivot_tol * vmax:
                ipiv = k
            pivot = x[ipiv]
            pinv[ipiv] = k

            # ---- store U column k: pivoted rows (positions < k), pivot last
            upos = np.asarray(upos_list, dtype=np.int64)  # already ascending
            unodes = np.asarray(unode_list, dtype=np.int64)
            u_rows.append(np.concatenate([upos, [k]]).astype(np.int64))
            u_vals.append(np.concatenate([x[unodes], [pivot]]))
            u_ptr.append(u_ptr[-1] + upos.size + 1)

            # ---- store L column k: unpivoted rows scaled by pivot, unit first
            lower = unpiv[unpiv != ipiv]
            lrows = np.concatenate([[ipiv], lower]).astype(np.int64)
            lvals = np.concatenate([[1.0], x[lower] / pivot])
            lcol_rows.append(lrows[1:])  # strict part, original row ids
            lcol_vals.append(lvals[1:])
            l_rows.append(lrows)
            l_vals.append(lvals)
            l_ptr.append(l_ptr[-1] + lrows.size)
            flops += float(lower.size)

            # clear the work array
            x[unpiv] = 0.0
            x[unodes] = 0.0

        # finalize: map L row ids to pivot positions
        self.row_perm = inverse_permutation(pinv)  # position -> original row
        l_indptr = np.asarray(l_ptr, dtype=np.int64)
        l_indices = pinv[np.concatenate(l_rows)] if l_rows else np.empty(0, np.int64)
        l_data = np.concatenate(l_vals) if l_vals else np.empty(0)
        # sort rows within each column (pivot position ordering)
        for j in range(n):
            lo, hi = l_indptr[j], l_indptr[j + 1]
            order = np.argsort(l_indices[lo:hi])
            l_indices[lo:hi] = l_indices[lo:hi][order]
            l_data[lo:hi] = l_data[lo:hi][order]
        self._l = (l_indptr, l_indices, l_data)
        u_indptr = np.asarray(u_ptr, dtype=np.int64)
        self._u = (
            u_indptr,
            np.concatenate(u_rows) if u_rows else np.empty(0, np.int64),
            np.concatenate(u_vals) if u_vals else np.empty(0),
        )
        self.pinv = pinv
        self.flops = flops

        self.numeric_profile = KernelProfile()
        # left-looking factorization is sequential on one CPU core
        nnz_lu = float(l_indices.size + self._u[1].size)
        self.numeric_profile.add(
            "factor.superlu_getrf",
            flops=flops,
            bytes=nnz_lu * 16.0 + a.nnz * 12.0,
            parallelism=1.0,
        )
        self._numeric_done = True
        self._build_solve()
        return self

    # ------------------------------------------------------------------
    def _build_solve(self) -> None:
        """Build CSR triangular forms for repeated solves.

        Mirrors the paper's CPU path (SuperLU's internal substitution
        solver); the GPU path wraps the factors in the supernodal
        Kokkos-Kernels solver via :meth:`supernodal_l`.
        """
        n = self.pinv.size
        l_indptr, l_indices, l_data = self._l
        u_indptr, u_rows_arr, u_vals_arr = self._u
        # CSC -> CSR via transpose of the CSC-as-CSR-of-transpose trick
        lT = CsrMatrix(l_indptr, l_indices, l_data, (n, n))  # rows = columns of L
        self.l_csr = lT.transpose()
        uT = CsrMatrix(u_indptr, u_rows_arr, u_vals_arr, (n, n))
        self.u_csr = uT.transpose()
        from repro.tri.levelset import LevelScheduledTriangular

        self._l_solver = LevelScheduledTriangular(self.l_csr, lower=True)
        self._u_solver = LevelScheduledTriangular(self.u_csr, lower=False)

        nnz_l, nnz_u = self.l_csr.nnz, self.u_csr.nnz
        self.solve_profile = KernelProfile()
        self.solve_profile.extend(self._l_solver.kernel_profile())
        self.solve_profile.extend(self._u_solver.kernel_profile())

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the stored factors."""
        self._require("solve")
        b = np.asarray(b)
        n = self.pinv.size
        # rows were pivoted: position p holds original row row_perm[p];
        # the factored matrix is A[perm][:, perm] row-permuted by pinv.
        bp = b[self.perm] if b.ndim == 1 else b[self.perm, :]
        bp = bp[self.row_perm] if b.ndim == 1 else bp[self.row_perm, :]
        y = self._l_solver.solve(bp)
        z = self._u_solver.solve(y)
        out = np.empty_like(np.asarray(z, dtype=np.float64))
        if b.ndim == 1:
            out[self.perm] = z
        else:
            out[self.perm, :] = z
        return out

    # ------------------------------------------------------------------
    def supernodal_l(self, max_width: int = 64):
        """Wrap the L factor in the supernodal GPU solver (KK SpTRSV).

        Returns ``(solver, setup_profile)``; the setup profile prices the
        supernode detection and dense block assembly that must rerun
        after every numeric factorization.
        """
        from repro.tri.supernodal import SupernodalTriangular

        self._require("solve")
        l_indptr, l_indices, l_data = self._l
        snt = SupernodalTriangular.from_csc(
            l_indptr, l_indices, l_data, self.pinv.size, unit_diagonal=False,
            max_width=max_width,
        )
        setup = KernelProfile()
        nnz_l = float(l_indices.size)
        dense = float(sum(b.size for b in snt.blocks))
        setup.add(
            "setup.sptrsv_symbolic", flops=0.0, bytes=nnz_l * 48.0, parallelism=1.0
        )
        setup.add(
            "setup.sptrsv_numeric",
            flops=0.0,
            bytes=(nnz_l + dense) * 24.0 + dense * 16.0,
            parallelism=float(snt.n_supernodes),
        )
        return snt, setup
