"""Terminal (ASCII) plots for the figure-type experiments.

The paper's Fig. 5 is a log-log strong-scaling plot; this module renders
the benchmark harness's series as monospace charts so `pytest -s` output
and EXPERIMENTS.md can show the *figure*, not just its numbers, without
any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = ["ascii_lineplot", "scaling_plot"]

_MARKERS = "ox+*#@%&"


def ascii_lineplot(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    logy: bool = True,
    title: str = "",
    ylabel: str = "",
) -> str:
    """Render one or more y-series over shared x-values.

    Values are placed on a character grid (log-scaled y by default, as in
    the paper's scaling figures); each series gets a marker and a legend
    line.  Returns the chart as a string.
    """
    if not series:
        raise ValueError("no series to plot")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
        if logy and any(y <= 0 for y in ys):
            raise ValueError(f"series {name!r} has non-positive values (logy)")

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    all_y = [ty(y) for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), _MARKERS):
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((ty(y) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{10 ** y_hi:.3g}" if logy else f"{y_hi:.3g}"
    bot_label = f"{10 ** y_lo:.3g}" if logy else f"{y_lo:.3g}"
    pad = max(len(top_label), len(bot_label), len(ylabel)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bot_label
        elif i == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    xticks = f"{x_lo:g}" + " " * (width - len(f"{x_lo:g}") - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * (pad + 2) + xticks)
    for (name, _), marker in zip(series.items(), _MARKERS):
        lines.append(" " * (pad + 2) + f"{marker} = {name}")
    return "\n".join(lines)


def scaling_plot(fig5_data: dict, what: str = "solve") -> str:
    """Render a Fig. 5-style strong-scaling chart from the harness's
    ``fig5_strong_scaling`` result dictionary."""
    xs = [float(n) for n in fig5_data["nodes"]]
    series = {
        name: [1e3 * v for v in d[what]]
        for name, d in fig5_data["series"].items()
    }
    return ascii_lineplot(
        xs,
        series,
        title=f"Fig. 5 ({what}): strong scaling, n={fig5_data.get('n', '?')} "
        f"[model ms, log scale]",
        ylabel="ms",
    )
