"""Experiment harness reproducing the paper's evaluation section.

The harness separates the two halves of every experiment:

1. **numerics** (:func:`repro.bench.harness.run_numerics`) -- assemble
   the scaled 3D elasticity problem, decompose it, build the GDSW
   preconditioner with the requested solver options, and run
   single-reduce GMRES.  Iteration counts are *real*.  Results are
   memoized: the paper prices the same numerics under several layouts
   (CPU vs GPU vs MPS factors).
2. **pricing** (:func:`repro.bench.harness.price_run`) -- evaluate the
   per-rank kernel profiles under a :class:`~repro.runtime.JobLayout`
   to obtain the model-second setup/solve times of Tables II-VII.

The scaled "model Summit node" has 8 cores + 2 GPUs (the real 42+6 node
behaves identically in shape; see DESIGN.md).  Each paper table has a
generator in :mod:`repro.bench.experiments` that prints rows in the
paper's format and returns structured data for EXPERIMENTS.md.
"""

from repro.bench.harness import (
    RunConfig,
    NumericsRecord,
    model_machine,
    run_numerics,
    price_run,
    weak_scaled_problem,
    strong_scaled_problem,
    rank_grid,
)
from repro.bench.tables import format_table, speedup_row

__all__ = [
    "NumericsRecord",
    "RunConfig",
    "format_table",
    "model_machine",
    "price_run",
    "rank_grid",
    "run_numerics",
    "speedup_row",
    "strong_scaled_problem",
    "weak_scaled_problem",
]
