"""Scenario matrix for the algebraic coarse space: hard operators, .mtx in.

Four operator families the plain GDSW construction was never designed
for (the comparison set of the two-level-ILU line, arXiv 2303.08881),
each assembled as a bare sparse matrix, written to a MatrixMarket file,
and ingested back through :meth:`SolverSession.from_matrix_market` --
so the bench exercises exactly the arbitrary-matrix path a tenant would
use:

* ``convection_diffusion`` -- nonsymmetric upwinded convection-diffusion
  (GMRES territory; the coarse eigenproblem works on the symmetric
  part);
* ``anisotropic_laplace`` -- ``-u_xx - eps u_yy`` with ``eps = 1e-3``:
  near-decoupled vertical lines that a one-vector-per-component GDSW
  space cannot represent;
* ``high_contrast`` -- ``-div(c grad u)`` with seeded stripes of
  ``c = 1e6`` against ``c = 1``: the channel modes GenEO-style
  eigenproblems were invented for;
* ``nearly_incompressible_elasticity`` -- ``nu = 0.499`` 3D elasticity
  ingested *without* coordinates, so the GDSW arm runs on the algebraic
  translations-only null space.

:func:`run_scenarios` solves every scenario with plain GDSW
(``variant="gdsw"``) and with the fully algebraic spectral space
(``coarse_space="spectral"``), gates the comparison (spectral must
strictly beat GDSW iterations on the high-contrast and anisotropic
rows; every arm must converge), and writes the ``BENCH_scenarios.json``
report CI commits.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sparse.csr import CsrMatrix

__all__ = [
    "Scenario",
    "anisotropic_laplace",
    "convection_diffusion",
    "generate_scenarios",
    "high_contrast",
    "nearly_incompressible_elasticity",
    "run_scenarios",
]


@dataclass
class Scenario:
    """One bench row: an assembled operator plus its solve setup."""

    name: str
    a: CsrMatrix
    b: np.ndarray
    dofs_per_node: int = 1
    dim: int = 2
    partition: Tuple[int, int, int] = (2, 2, 1)
    symmetric: bool = True
    #: scenario-specific spectral threshold (None -> the harness default)
    tau: Optional[float] = None
    notes: str = ""
    gated: bool = field(default=False)

    @property
    def n(self) -> int:
        return self.a.n_rows


def _five_point(
    n: int,
    diag: np.ndarray,
    west: np.ndarray,
    east: np.ndarray,
    south: np.ndarray,
    north: np.ndarray,
) -> CsrMatrix:
    """Assemble a 5-point stencil on the n x n interior grid.

    The coefficient arrays are per-node (row-major, ``idx = j*n + i``);
    off-diagonal entries are dropped at the Dirichlet boundary.
    """
    idx = np.arange(n * n, dtype=np.int64)
    i, j = idx % n, idx // n
    rows = [idx]
    cols = [idx]
    vals = [diag]
    for mask, shift, coeff in (
        (i > 0, -1, west),
        (i < n - 1, +1, east),
        (j > 0, -n, south),
        (j < n - 1, +n, north),
    ):
        rows.append(idx[mask])
        cols.append(idx[mask] + shift)
        vals.append(coeff[mask])
    return CsrMatrix.from_coo(
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
        (n * n, n * n),
    )


def convection_diffusion(
    n: int = 20, velocity: Tuple[float, float] = (40.0, 20.0)
) -> CsrMatrix:
    """Nonsymmetric upwinded convection-diffusion on the unit square.

    ``-Delta u + v . grad u`` with first-order upwinding (stable for
    any velocity): the convective flux is charged to the upstream
    neighbor, so the matrix stays an M-matrix but loses symmetry.
    """
    h = 1.0 / (n + 1)
    vx, vy = (float(v) for v in velocity)
    m = n * n
    diag = np.full(m, 4.0 + h * vx + h * vy)
    west = np.full(m, -1.0 - h * vx)
    south = np.full(m, -1.0 - h * vy)
    east = np.full(m, -1.0)
    north = np.full(m, -1.0)
    return _five_point(n, diag, west, east, south, north)


def anisotropic_laplace(n: int = 24, epsilon: float = 1e-3) -> CsrMatrix:
    """``-u_xx - eps u_yy``: strongly anisotropic diffusion.

    With ``eps = 1e-3`` the rows are nearly decoupled vertical lines;
    the low-energy interface modes are per-line, far more than the one
    constant per component plain GDSW offers.
    """
    m = n * n
    diag = np.full(m, 2.0 + 2.0 * epsilon)
    ew = np.full(m, -1.0)
    ns = np.full(m, -epsilon)
    return _five_point(n, diag, ew.copy(), ew, ns.copy(), ns)


def high_contrast(
    n: int = 24, contrast: float = 1e6, seed: int = 7, n_stripes: int = 3
) -> CsrMatrix:
    """``-div(c grad u)`` with seeded high-coefficient stripes.

    A per-node coefficient field of ``n_stripes`` horizontal stripes at
    ``c = contrast`` in a ``c = 1`` background (stripe rows drawn from
    ``seed``); edge conductances are the harmonic means of the adjacent
    node coefficients, so the jumps land *inside* subdomains and across
    interfaces -- the channel configuration where plain coarse spaces
    lose robustness.
    """
    rng = np.random.default_rng(seed)
    c = np.ones((n, n))  # [j, i]
    stripe_rows = rng.choice(np.arange(1, n - 1), size=n_stripes, replace=False)
    for j in stripe_rows:
        c[j, :] = contrast
    cn = c.ravel()

    idx = np.arange(n * n, dtype=np.int64)
    i, j = idx % n, idx // n

    def harm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return 2.0 * a * b / (a + b)

    # edge conductances toward each neighbor (0 outside the domain;
    # Dirichlet boundary edges keep the node's own coefficient)
    west = np.where(i > 0, harm(cn, np.roll(cn, 1)), cn)
    east = np.where(i < n - 1, harm(cn, np.roll(cn, -1)), cn)
    south = np.where(j > 0, harm(cn, np.roll(cn, n)), cn)
    north = np.where(j < n - 1, harm(cn, np.roll(cn, -n)), cn)
    diag = west + east + south + north
    return _five_point(n, diag, -west, -east, -south, -north)


def nearly_incompressible_elasticity(nex: int = 4, nu: float = 0.499):
    """3D elasticity at ``nu = 0.499`` (near the incompressible limit).

    Returns ``(matrix, rhs)``; the scenario deliberately drops the
    coordinates so the ingestion path is purely algebraic and the GDSW
    arm runs on translations only.
    """
    from repro.fem import elasticity_3d

    p = elasticity_3d(nex, poisson_ratio=nu)
    return p.a, p.b


def generate_scenarios(seed: int = 7) -> List[Scenario]:
    """The committed scenario matrix (sizes chosen for CI wall clock)."""
    ela_a, ela_b = nearly_incompressible_elasticity(4, 0.499)
    return [
        Scenario(
            name="convection_diffusion",
            a=convection_diffusion(20),
            b=np.ones(400),
            symmetric=False,
            notes="upwind, v=(40,20); nonsymmetric -> GMRES",
        ),
        Scenario(
            name="anisotropic_laplace",
            a=anisotropic_laplace(24, 1e-3),
            b=np.ones(576),
            gated=True,
            notes="-u_xx - 1e-3 u_yy",
        ),
        Scenario(
            name="high_contrast",
            a=high_contrast(24, 1e6, seed=seed),
            b=np.ones(576),
            gated=True,
            notes=f"1e6 stripes, seed {seed}",
        ),
        Scenario(
            name="nearly_incompressible_elasticity",
            a=ela_a,
            b=ela_b,
            dofs_per_node=3,
            dim=3,
            notes="nu=0.499, no coordinates (translations-only GDSW arm)",
        ),
    ]


def _solve_arm(mtx_path, scenario: Scenario, config, maxiter: int) -> Dict:
    from repro.api import KrylovConfig, SolverSession

    session = SolverSession.from_matrix_market(
        mtx_path,
        b=scenario.b,
        dofs_per_node=scenario.dofs_per_node,
        partition=scenario.partition,
        config=config,
        krylov=KrylovConfig(rtol=1e-7, restart=30, maxiter=maxiter),
    )
    res = session.solve()
    return {
        "iterations": int(res.iterations),
        "converged": bool(res.converged),
        "n_coarse": int(res.n_coarse),
        "final_relres": float(res.final_relres),
    }


def run_scenarios(
    seed: int = 7,
    tau: float = 0.12,
    max_vectors: int = 8,
    maxiter: int = 600,
) -> Dict:
    """Run every scenario with plain GDSW and the spectral coarse space.

    Both arms ingest the same on-disk ``.mtx`` file.  Gates:

    * every arm of every scenario converges;
    * on the gated rows (``high_contrast``, ``anisotropic_laplace``)
      the spectral arm's iteration count is *strictly* below plain
      GDSW's.

    Returns the report dict (``violations`` non-empty on gate failure).
    """
    from repro.api import SchwarzConfig
    from repro.dd.local_solvers import LocalSolverSpec
    from repro.io import write_matrix_market

    rows = []
    violations: List[str] = []
    with tempfile.TemporaryDirectory() as td:
        for sc in generate_scenarios(seed):
            mtx = f"{td}/{sc.name}.mtx"
            write_matrix_market(mtx, sc.a)
            sc_tau = sc.tau if sc.tau is not None else tau
            # the Cholesky-based solver defaults assume symmetry; the
            # nonsymmetric rows run LU at every level
            solvers = {}
            if not sc.symmetric:
                lu = LocalSolverSpec(kind="superlu")
                solvers = {"local": lu, "coarse": lu, "extension": lu}
            gdsw = _solve_arm(
                mtx, sc,
                SchwarzConfig(variant="gdsw", dim=sc.dim, **solvers),
                maxiter,
            )
            spectral = _solve_arm(
                mtx, sc,
                SchwarzConfig(
                    coarse_space="spectral",
                    dim=sc.dim,
                    tau=sc_tau,
                    max_vectors_per_subdomain=max_vectors,
                    **solvers,
                ),
                maxiter,
            )
            row = {
                "scenario": sc.name,
                "n": sc.n,
                "nnz": int(sc.a.nnz),
                "dofs_per_node": sc.dofs_per_node,
                "symmetric": sc.symmetric,
                "tau": sc_tau,
                "gated": sc.gated,
                "notes": sc.notes,
                "gdsw": gdsw,
                "spectral": spectral,
                "spectral_wins": spectral["iterations"] < gdsw["iterations"],
            }
            rows.append(row)
            for arm_name, arm in (("gdsw", gdsw), ("spectral", spectral)):
                if not arm["converged"]:
                    violations.append(
                        f"{sc.name}/{arm_name}: no convergence in "
                        f"{arm['iterations']} iterations "
                        f"(relres {arm['final_relres']:.3e})"
                    )
            if sc.gated and not row["spectral_wins"]:
                violations.append(
                    f"{sc.name}: spectral ({spectral['iterations']} its) "
                    f"does not strictly beat gdsw ({gdsw['iterations']} its)"
                )
    return {
        "bench": "scenarios",
        "seed": int(seed),
        "tau_default": float(tau),
        "max_vectors_per_subdomain": int(max_vectors),
        "rows": rows,
        "violations": violations,
    }
