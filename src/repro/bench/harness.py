"""Numerics/pricing harness shared by all benchmark targets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.dd.local_solvers import LocalSolverSpec
from repro.dd.precision import HalfPrecisionOperator, round_to_single
from repro.dd.two_level import GDSWPreconditioner
from repro.fem import elasticity_3d, rigid_body_modes
from repro.krylov import gmres
from repro.machine.spec import CpuSpec, GpuSpec, MachineSpec
from repro.obs import Tracer, use_tracer
from repro.reuse.cache import LruDict, get_artifact_cache
from repro.runtime.layout import JobLayout
from repro.runtime.timings import SolverTimings, time_solver
from repro.sparse.csr import CsrMatrix

__all__ = [
    "model_machine",
    "rank_grid",
    "weak_scaled_problem",
    "strong_scaled_problem",
    "RunConfig",
    "NumericsRecord",
    "run_numerics",
    "price_run",
    "audit_record",
    "clear_cache",
]


def model_machine() -> MachineSpec:
    """The scaled Summit-like node: 8 CPU cores + 2 GPUs.

    The paper's node (42 cores + 6 GPUs) is scaled down so every table
    point stays laptop-feasible; MPS factors 1/2/4 play the role of the
    paper's 1..7 (4 ranks/GPU x 2 GPUs = 8 ranks/node recovers the
    CPU decomposition exactly as the paper's 7 x 6 = 42 does).
    """
    return MachineSpec(cpu=CpuSpec(), gpu=GpuSpec(), cores_per_node=8, gpus_per_node=2)


# node-count -> node box (nodes double along x, then y, then z)
_NODE_GRIDS = {1: (1, 1, 1), 2: (2, 1, 1), 4: (2, 2, 1), 8: (2, 2, 2), 16: (4, 2, 2)}
# ranks-per-node -> per-node rank box
_RANK_GRIDS = {1: (1, 1, 1), 2: (2, 1, 1), 4: (2, 2, 1), 8: (2, 2, 2)}


def rank_grid(nodes: int, ranks_per_node: int) -> Tuple[int, int, int]:
    """The global subdomain box for a (nodes, ranks-per-node) layout."""
    ng = _NODE_GRIDS[nodes]
    rg = _RANK_GRIDS[ranks_per_node]
    return (ng[0] * rg[0], ng[1] * rg[1], ng[2] * rg[2])


# LRU-bounded: a long bench session cycles through many (nodes, e)
# combinations, and assembled problems are the largest objects around
_PROBLEM_CACHE: "LruDict" = LruDict(maxsize=8)


def weak_scaled_problem(nodes: int, elements_per_node_axis: int = 6):
    """Weak-scaling elasticity problem: fixed work per node.

    One node carries an ``e x e x e`` element block (e = 6 by default,
    n = 882 dofs/node); the global grid doubles along an axis per node
    doubling, exactly like the paper's 375K-per-node sequence.
    """
    ng = _NODE_GRIDS[nodes]
    e = elements_per_node_axis
    key = ("weak", nodes, e)
    if key not in _PROBLEM_CACHE:
        _PROBLEM_CACHE[key] = elasticity_3d(e * ng[0], e * ng[1], e * ng[2])
    return _PROBLEM_CACHE[key]


def strong_scaled_problem(elements_per_axis: int = 10):
    """Strong-scaling problem: one fixed global grid (Fig. 5's n = 1M analog)."""
    key = ("strong", elements_per_axis)
    if key not in _PROBLEM_CACHE:
        _PROBLEM_CACHE[key] = elasticity_3d(elements_per_axis)
    return _PROBLEM_CACHE[key]


@dataclass(frozen=True)
class RunConfig:
    """One numerics configuration (a cell group of a paper table).

    Attributes
    ----------
    local:
        Local solver spec (kind/ordering/levels/sweeps/gpu pairing).
    variant:
        Coarse space: ``"rgdsw"`` (paper) or ``"gdsw"``.
    overlap:
        Algebraic overlap layers.
    precision:
        ``"double"`` or ``"single"`` (HalfPrecisionOperator).
    gmres_variant:
        Orthogonalization scheme; the paper uses ``"single_reduce"``.
    rtol, restart, maxiter:
        Krylov controls (paper: 1e-7, 30).
    """

    local: LocalSolverSpec = field(default_factory=LocalSolverSpec)
    variant: str = "rgdsw"
    overlap: int = 1
    precision: str = "double"
    gmres_variant: str = "single_reduce"
    rtol: float = 1e-7
    restart: int = 30
    maxiter: int = 2000


@dataclass
class NumericsRecord:
    """Cached outcome of one numerics run.

    ``trace`` is the wall-time span tree of the run (setup + solve);
    ``reduces``/``reduce_doubles`` are read from its counters (the
    successor of the deprecated ``ReduceCounter`` plumbing).
    """

    precond: object
    iterations: int
    converged: bool
    reduces: int
    reduce_doubles: int
    n: int
    n_coarse: int
    n_ranks: int
    final_relres: float
    #: terminal :class:`~repro.krylov.status.SolveStatus` of the run
    #: (``"converged"`` / ``"maxiter"`` / ``"breakdown"``)
    status: str = "maxiter"
    trace: object = field(default=None, repr=False, compare=False)
    #: cost-model audit verdict (``repro.verify.CostModelAudit``);
    #: populated lazily by :func:`audit_record`
    audit: object = field(default=None, repr=False, compare=False)


_NUMERICS_CACHE: "LruDict" = LruDict(maxsize=128)


def clear_cache() -> None:
    """Drop all memoized problems, numerics runs, and reuse artifacts."""
    _PROBLEM_CACHE.clear()
    _NUMERICS_CACHE.clear()
    get_artifact_cache().clear()


def run_numerics(
    problem,
    parts: Tuple[int, int, int],
    config: RunConfig,
    cache_key: Optional[Tuple] = None,
) -> NumericsRecord:
    """Build the preconditioner and run GMRES; memoized.

    Parameters
    ----------
    problem:
        An assembled elasticity problem.
    parts:
        Subdomain box ``(px, py, pz)``.
    config:
        Solver options.
    cache_key:
        Extra key distinguishing problems that compare equal; pass the
        generating parameters.
    """
    key = (id(problem) if cache_key is None else cache_key, parts, config)
    if key in _NUMERICS_CACHE:
        return _NUMERICS_CACHE[key]

    a = problem.a
    if config.precision == "single":
        a = CsrMatrix(
            a.indptr.copy(), a.indices.copy(), round_to_single(a.data), a.shape
        )

    z = rigid_body_modes(problem.coordinates)
    if config.precision == "single":
        import copy

        problem_used = copy.copy(problem)
        problem_used.a = a
    else:
        problem_used = problem
    dec = Decomposition.from_box_partition(problem_used, *parts)

    # run setup + solve under a tracer: the trace carries the reduction
    # counters (formerly a hand-carried ReduceCounter) and the wall-time
    # span tree of every instrumented phase
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("setup"):
            precond = GDSWPreconditioner(
                dec,
                z,
                local_spec=config.local,
                overlap=config.overlap,
                variant=config.variant,
                dim=3,
            )
            operator: object = precond
            if config.precision == "single":
                operator = HalfPrecisionOperator(precond)

        with tracer.span("krylov"):
            res = gmres(
                problem.a,  # GMRES always runs in the working (double) precision
                problem.b,
                preconditioner=operator,
                rtol=config.rtol,
                restart=config.restart,
                maxiter=config.maxiter,
                variant=config.gmres_variant,
            )
    tracer.finish()
    relres = float(
        np.linalg.norm(problem.a.matvec(res.x) - problem.b)
        / max(np.linalg.norm(problem.b), 1e-300)
    )
    rec = NumericsRecord(
        precond=operator,
        iterations=res.iterations,
        converged=res.converged,
        reduces=tracer.reduces,
        reduce_doubles=tracer.reduce_doubles,
        n=problem.a.n_rows,
        n_coarse=precond.n_coarse,
        n_ranks=dec.n_subdomains,
        final_relres=relres,
        status=str(res.status),
        trace=tracer.root,
    )
    _NUMERICS_CACHE[key] = rec
    return rec


def price_run(record: NumericsRecord, layout: JobLayout) -> SolverTimings:
    """Price a numerics record under a layout (pure arithmetic)."""
    return time_solver(
        record.precond,
        layout,
        record.iterations,
        record.reduces,
        record.reduce_doubles,
    )


def audit_record(record: NumericsRecord):
    """Audit the record's cost model against an executed apply; memoized.

    Runs :func:`repro.verify.audit_cost_model` on the record's
    preconditioner (one distributed SpMV + one apply through the
    simulated MPI layer) and stashes the verdict on ``record.audit`` so
    every table/figure priced from the same numerics shares one audit.
    """
    if record.audit is None:
        from repro.verify import audit_cost_model

        record.audit = audit_cost_model(record.precond)
    return record.audit
