"""Table rendering in the paper's layout."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["format_table", "speedup_row", "format_cell"]


def format_cell(value, iters: Optional[int] = None, digits: int = 2) -> str:
    """Render ``time (iters)`` like the paper's tables."""
    if value is None:
        return "-"
    s = f"{value:.{digits}f}"
    if iters is not None:
        s += f" ({iters})"
    return s


def speedup_row(
    baseline: Sequence[float], best: Sequence[float], label: str = "speedup"
) -> List[str]:
    """The paper's trailing speedup/slowdown row (baseline / best)."""
    cells = [label]
    for b, g in zip(baseline, best):
        if b is None or g is None or g == 0:
            cells.append("-")
        else:
            cells.append(f"{b / g:.1f}x")
    return cells


def format_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Monospace table with a title (printed by the bench targets)."""
    widths = [len(str(h)) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = [title]
    lines.append(" | ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
