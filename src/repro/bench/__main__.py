"""CLI entry: ``python -m repro.bench --backend | --scenarios``."""

from __future__ import annotations

import argparse
import json
import sys


def _run_scenarios(args) -> int:
    from repro.bench.scenarios import run_scenarios

    report = run_scenarios(seed=args.seed, tau=args.tau)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    for row in report["rows"]:
        gate = " [gated]" if row["gated"] else ""
        print(
            f"[scenarios] {row['scenario']:34s}: gdsw "
            f"{row['gdsw']['iterations']:4d} its (nc "
            f"{row['gdsw']['n_coarse']}) vs spectral "
            f"{row['spectral']['iterations']:4d} its (nc "
            f"{row['spectral']['n_coarse']}){gate}",
            file=sys.stderr,
        )
    if report["violations"]:
        for v in report["violations"]:
            print(f"[scenarios] VIOLATION: {v}", file=sys.stderr)
        return 1
    print(
        "[scenarios] all convergence and spectral-vs-GDSW gates hold",
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "micro-benchmarks of the numeric core: --backend (the "
            "array-backend hot-path comparison writing BENCH_backend."
            "json) or --scenarios (the hard-operator matrix comparing "
            "plain GDSW against the algebraic spectral coarse space, "
            "writing BENCH_scenarios.json)"
        ),
    )
    ap.add_argument(
        "--backend",
        action="store_true",
        help="run the array-backend hot-path bench (BENCH_backend.json)",
    )
    ap.add_argument(
        "--scenarios",
        action="store_true",
        help=(
            "run the scenario matrix: convection-diffusion, anisotropic, "
            "high-contrast, nearly-incompressible elasticity via .mtx "
            "ingestion; gates spectral-vs-GDSW iteration counts "
            "(BENCH_scenarios.json)"
        ),
    )
    ap.add_argument("--out", default=None, help="write the JSON report here")
    ap.add_argument(
        "--nx", type=int, default=48,
        help="box edge length; n = nx^3 rows (default 48 -> 110592)",
    )
    ap.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats for the vectorized kernels (best-of)",
    )
    ap.add_argument(
        "--seed", type=int, default=7,
        help="scenario seed (high-contrast stripe placement)",
    )
    ap.add_argument(
        "--tau", type=float, default=0.12,
        help="spectral eigenvalue threshold for the scenario arms",
    )
    args = ap.parse_args(argv)
    if args.scenarios:
        return _run_scenarios(args)
    if not args.backend:
        ap.error("select a bench: --backend or --scenarios")

    from repro.bench.backend_bench import run_backend_bench

    report = run_backend_bench(nx=args.nx, repeats=args.repeats)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    for name, rec in sorted(report["paths"].items()):
        print(
            f"[backend] {name:18s}: {rec['reference_seconds']:.3e}s -> "
            f"{rec['vectorized_seconds']:.3e}s ({rec['speedup']:.1f}x, "
            f"bit_identical={rec['bit_identical']})",
            file=sys.stderr,
        )
    if report["violations"]:
        for v in report["violations"]:
            print(f"[backend] VIOLATION: {v}", file=sys.stderr)
        return 1
    print(
        "[backend] all hot-path speedup/bit-identity gates hold",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
