"""CLI entry: ``python -m repro.bench --backend`` runs the hot-path bench."""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=(
            "micro-benchmarks of the numeric core (currently: --backend, "
            "the array-backend hot-path before/after comparison writing "
            "BENCH_backend.json)"
        ),
    )
    ap.add_argument(
        "--backend",
        action="store_true",
        help="run the array-backend hot-path bench (BENCH_backend.json)",
    )
    ap.add_argument("--out", default=None, help="write the JSON report here")
    ap.add_argument(
        "--nx", type=int, default=48,
        help="box edge length; n = nx^3 rows (default 48 -> 110592)",
    )
    ap.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats for the vectorized kernels (best-of)",
    )
    args = ap.parse_args(argv)
    if not args.backend:
        ap.error("select a bench: --backend")

    from repro.bench.backend_bench import run_backend_bench

    report = run_backend_bench(nx=args.nx, repeats=args.repeats)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    for name, rec in sorted(report["paths"].items()):
        print(
            f"[backend] {name:18s}: {rec['reference_seconds']:.3e}s -> "
            f"{rec['vectorized_seconds']:.3e}s ({rec['speedup']:.1f}x, "
            f"bit_identical={rec['bit_identical']})",
            file=sys.stderr,
        )
    if report["violations"]:
        for v in report["violations"]:
            print(f"[backend] VIOLATION: {v}", file=sys.stderr)
        return 1
    print(
        "[backend] all hot-path speedup/bit-identity gates hold",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
