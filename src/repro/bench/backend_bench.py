"""Hot-path micro-benchmark of the array-backend refactor.

Times the three kernels whose pure-python row/column loops the backend
refactor replaced with vectorized equivalents -- the loops the
``repro.obs`` phase tables flagged as setup hot spots:

* :func:`repro.tri.levelset.level_schedule` (wavefront scheduling),
* :func:`repro.tri.supernodal.detect_supernodes` (supernode detection),
* the FastILU diagonal-position scan
  (:func:`repro.ilu.fastilu._diag_positions`).

Each is timed against its retained ``*_reference`` seed implementation
on the same inputs and checked for bit-identical outputs.  The
acceptance gate (enforced by ``python -m repro.bench --backend`` and
CI) is a >= 2x speedup on ``level_schedule`` at n >= 100k rows plus
exact equality everywhere.

The structure under test is the strict lower triangle of a 7-point
Laplacian on an ``nx x ny x nz`` box -- the pattern shape the paper's
level-set SpTRSV experiments run on (long wavefronts, ~3*nx levels).
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.backend import available_backends
from repro.ilu.fastilu import _diag_positions, _diag_positions_reference
from repro.sparse.csr import CsrMatrix
from repro.tri.levelset import _level_schedule_reference, level_schedule
from repro.tri.supernodal import _detect_supernodes_reference, detect_supernodes

__all__ = ["laplace_lower_structure", "run_backend_bench"]

#: the ISSUE acceptance floor: the de-looped scheduler must be at least
#: this much faster than the seed loop at n >= 100k
LEVEL_SCHEDULE_MIN_SPEEDUP = 2.0


def laplace_lower_structure(nx: int, ny: int, nz: int) -> CsrMatrix:
    """Lower-triangular (diagonal included) 7-point Laplacian pattern."""
    n = nx * ny * nz
    i = np.arange(n, dtype=np.int64)
    rows = [i]
    cols = [i]
    for off, valid in (
        (1, i % nx != 0),
        (nx, (i // nx) % ny != 0),
        (nx * ny, i // (nx * ny) != 0),
    ):
        rows.append(i[valid])
        cols.append(i[valid] - off)
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    return CsrMatrix.from_coo(r, c, np.ones(r.size), (n, n))


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_backend_bench(nx: int = 48, repeats: int = 3) -> Dict:
    """Run the three hot-path before/after comparisons.

    Returns the ``BENCH_backend.json`` payload; ``violations`` is
    non-empty when a vectorized kernel fails bit-identity or the
    ``level_schedule`` speedup gate.
    """
    t = laplace_lower_structure(nx, nx, nx)
    n = t.n_rows
    violations = []

    # --- level_schedule -------------------------------------------------
    ref_s = _time(lambda: _level_schedule_reference(t), 1)
    vec_s = _time(lambda: level_schedule(t), repeats)
    lvl_ref = _level_schedule_reference(t)
    lvl_vec = level_schedule(t)
    identical = bool(np.array_equal(lvl_ref, lvl_vec))
    if not identical:
        violations.append("level_schedule: vectorized result differs from seed loop")
    speedup = ref_s / max(vec_s, 1e-12)
    if n >= 100_000 and speedup < LEVEL_SCHEDULE_MIN_SPEEDUP:
        violations.append(
            f"level_schedule: speedup {speedup:.2f}x below the "
            f"{LEVEL_SCHEDULE_MIN_SPEEDUP:.0f}x gate at n={n}"
        )
    level_schedule_rec = {
        "n": n,
        "nnz": t.nnz,
        "n_levels": int(lvl_vec.max()) + 1 if n else 0,
        "reference_seconds": ref_s,
        "vectorized_seconds": vec_s,
        "speedup": speedup,
        "bit_identical": identical,
    }

    # --- detect_supernodes (CSC lower == CSR upper, via transpose) ------
    tt = t.transpose()
    ref_s = _time(
        lambda: _detect_supernodes_reference(tt.indptr, tt.indices), 1
    )
    vec_s = _time(lambda: detect_supernodes(tt.indptr, tt.indices), repeats)
    sn_ref = _detect_supernodes_reference(tt.indptr, tt.indices)
    sn_vec = detect_supernodes(tt.indptr, tt.indices)
    identical = bool(np.array_equal(sn_ref, sn_vec))
    if not identical:
        violations.append(
            "detect_supernodes: vectorized result differs from seed loop"
        )
    detect_rec = {
        "n": n,
        "n_supernodes": sn_vec.size - 1,
        "reference_seconds": ref_s,
        "vectorized_seconds": vec_s,
        "speedup": ref_s / max(vec_s, 1e-12),
        "bit_identical": identical,
    }

    # --- FastILU diag-position scan (upper CSR: diagonal heads rows) ----
    ref_s = _time(lambda: _diag_positions_reference(tt.indptr, tt.indices), 1)
    vec_s = _time(lambda: _diag_positions(tt.indptr, tt.indices), repeats)
    dp_ref = _diag_positions_reference(tt.indptr, tt.indices)
    dp_vec = _diag_positions(tt.indptr, tt.indices)
    identical = bool(np.array_equal(dp_ref, dp_vec))
    if not identical:
        violations.append(
            "diag_positions: vectorized result differs from seed loop"
        )
    diag_rec = {
        "n": n,
        "reference_seconds": ref_s,
        "vectorized_seconds": vec_s,
        "speedup": ref_s / max(vec_s, 1e-12),
        "bit_identical": identical,
    }

    return {
        "bench": "backend_hot_paths",
        "available_backends": available_backends(),
        "min_level_schedule_speedup": LEVEL_SCHEDULE_MIN_SPEEDUP,
        "paths": {
            "level_schedule": level_schedule_rec,
            "detect_supernodes": detect_rec,
            "diag_positions": diag_rec,
        },
        "violations": violations,
    }
