"""Generators for every table and figure of the paper's evaluation.

Each ``tableN_*``/``figN_*`` function runs (memoized) numerics, prices
them under the relevant layouts, prints the table in the paper's layout
and returns structured row data that the benchmark targets persist for
EXPERIMENTS.md.

Scaled geometry (see DESIGN.md): the model node is 8 cores + 2 GPUs;
MPS factors 1/2/4 play the paper's 1..7, with 4 ranks/GPU recovering
the CPU decomposition exactly as the paper's 7 does.  Node counts and
element scales are trimmed relative to Summit but keep each rank's
subdomain in a regime where the local solver cost is superlinear.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple


from repro.bench.harness import (
    NumericsRecord,
    RunConfig,
    model_machine,
    price_run,
    rank_grid,
    run_numerics,
    strong_scaled_problem,
    weak_scaled_problem,
)
from repro.bench.tables import format_cell, format_table
from repro.dd.local_solvers import LocalSolverSpec
from repro.runtime.layout import JobLayout

__all__ = [
    "WEAK_NODES",
    "table2_weak_solve",
    "table3_weak_setup",
    "fig4_setup_breakdown",
    "fig5_strong_scaling",
    "table4_ilu_study",
    "table5_ilu_weak",
    "table6_precision_setup",
    "table7_precision_solve",
]

#: node counts of the weak-scaling sweeps (paper: 1..16; scaled: 1..8)
WEAK_NODES: Tuple[int, ...] = tuple(
    int(x) for x in os.environ.get("REPRO_BENCH_NODES", "1,2,4,8").split(",")
)
#: MPS factors swept in the GPU rows (paper: 1,2,4,6,7; scaled: 1,2,4)
MPS_FACTORS: Tuple[int, ...] = (1, 2, 4)
_E_WEAK = 8  # elements per node axis for the direct-solver tables
_E_ILU = 10  # larger per-node problems for the ILU study (Section VIII-B)
_MACHINE = model_machine()


def _weak_records(
    solver: str, precision: str = "double", nodes: Sequence[int] = WEAK_NODES
) -> Dict[Tuple[int, str], NumericsRecord]:
    """Numerics for one weak-scaling sweep: CPU row + every MPS row."""
    out: Dict[Tuple[int, str], NumericsRecord] = {}
    for nd in nodes:
        prob = weak_scaled_problem(nd, _E_WEAK)
        key = ("weak", nd, _E_WEAK)
        cfg_cpu = RunConfig(
            local=LocalSolverSpec(kind=solver, ordering="nd", gpu_solve=False),
            precision=precision,
        )
        out[(nd, "cpu")] = run_numerics(prob, rank_grid(nd, 8), cfg_cpu, cache_key=key)
        cfg_gpu = RunConfig(
            local=LocalSolverSpec(kind=solver, ordering="nd", gpu_solve=True),
            precision=precision,
        )
        for k in MPS_FACTORS:
            out[(nd, f"gpu{k}")] = run_numerics(
                prob, rank_grid(nd, 2 * k), cfg_gpu, cache_key=key
            )
    return out


def _weak_table(
    solver: str,
    value: str,
    title: str,
    with_iters: bool,
    precision: str = "double",
    speedup_label: str = "speedup",
    invert_speedup: bool = False,
) -> dict:
    """Assemble one Table II/III style table (CPU row + MPS sweep)."""
    recs = _weak_records(solver, precision=precision)
    nodes = list(WEAK_NODES)
    header = ["# comp. nodes"] + [str(n) for n in nodes]
    rows: List[List[str]] = []
    sizes = ["matrix size"] + [str(recs[(n, "cpu")].n) for n in nodes]
    rows.append(sizes)

    data: Dict[str, List[float]] = {}
    iters: Dict[str, List[int]] = {}

    def collect(tag: str, layout_of) -> None:
        vals, its = [], []
        for n in nodes:
            rec = recs[(n, tag)]
            t = price_run(rec, layout_of(n))
            vals.append(getattr(t, value))
            its.append(t.iterations)
        data[tag] = vals
        iters[tag] = its

    collect("cpu", lambda n: JobLayout.cpu_run(n, machine=_MACHINE))
    for k in MPS_FACTORS:
        collect(f"gpu{k}", lambda n, k=k: JobLayout.gpu_run(n, k, machine=_MACHINE))

    rows.append(
        ["CPU"]
        + [
            format_cell(1e3 * v, iters["cpu"][i] if with_iters else None)
            for i, v in enumerate(data["cpu"])
        ]
    )
    for k in MPS_FACTORS:
        tag = f"gpu{k}"
        rows.append(
            [f"GPU n_p/gpu={k}"]
            + [
                format_cell(1e3 * v, iters[tag][i] if with_iters else None)
                for i, v in enumerate(data[tag])
            ]
        )
    best_gpu = [min(data[f"gpu{k}"][i] for k in MPS_FACTORS) for i in range(len(nodes))]
    ratios = [
        (g / c if invert_speedup else c / g)
        for c, g in zip(data["cpu"], best_gpu)
    ]
    rows.append([speedup_label] + [f"{r:.1f}x" for r in ratios])
    print()
    print(format_table(title, header, rows))
    return {
        "nodes": nodes,
        "sizes": [recs[(n, "cpu")].n for n in nodes],
        "data": data,
        "iterations": iters,
        "speedup": ratios,
    }


# ----------------------------------------------------------------------
# Table II: weak-scaling total iteration time
# ----------------------------------------------------------------------
def table2_weak_solve() -> dict:
    """Table II: total iteration time (iters), SuperLU and Tacho."""
    out = {}
    for solver in ("superlu", "tacho"):
        out[solver] = _weak_table(
            solver,
            "solve_seconds",
            f"Table II ({solver}): total iteration time [model ms] (iterations)",
            with_iters=True,
        )
    return out


# ----------------------------------------------------------------------
# Table III: weak-scaling numerical setup time
# ----------------------------------------------------------------------
def table3_weak_setup() -> dict:
    """Table III: numerical setup time, SuperLU and Tacho."""
    out = {}
    for solver in ("superlu", "tacho"):
        out[solver] = _weak_table(
            solver,
            "setup_seconds",
            f"Table III ({solver}): numerical setup time [model ms]",
            with_iters=False,
            speedup_label="slowdown",
            invert_speedup=True,
        )
    return out


# ----------------------------------------------------------------------
# Fig. 4: setup-time breakdown on one node
# ----------------------------------------------------------------------
def fig4_setup_breakdown() -> dict:
    """Fig. 4: per-family numerical-setup breakdown on one node."""
    prob = weak_scaled_problem(1, _E_WEAK)
    key = ("weak", 1, _E_WEAK)
    out = {}
    for solver in ("superlu", "tacho"):
        for tag, gpu in (("cpu", False), ("gpu", True)):
            cfg = RunConfig(
                local=LocalSolverSpec(kind=solver, ordering="nd", gpu_solve=gpu)
            )
            rec = run_numerics(prob, rank_grid(1, 8), cfg, cache_key=key)
            layout = (
                JobLayout.gpu_run(1, 4, machine=_MACHINE)
                if gpu
                else JobLayout.cpu_run(1, machine=_MACHINE)
            )
            t = price_run(rec, layout)
            out[(solver, tag)] = t.setup_breakdown
    families = sorted({f for d in out.values() for f in d})
    header = ["config"] + families + ["total"]
    rows = []
    for (solver, tag), d in out.items():
        row = [f"{solver}/{tag}"]
        row += [f"{1e3 * d.get(f, 0.0):.2f}" for f in families]
        row += [f"{1e3 * sum(d.values()):.2f}"]
        rows.append(row)
    print()
    print(
        format_table(
            "Fig. 4: numerical setup breakdown on one node [model ms]",
            header,
            rows,
        )
    )
    return {"breakdowns": {f"{s}/{t}": d for (s, t), d in out.items()}}


# ----------------------------------------------------------------------
# Fig. 5: strong scaling
# ----------------------------------------------------------------------
def fig5_strong_scaling(nodes: Sequence[int] = WEAK_NODES) -> dict:
    """Fig. 5: strong scaling of setup and solve (Tacho).

    Four series like the paper: CPU and GPU at full rank counts
    (8/node), and at reduced rank counts (2/node; CPU ranks then drive
    4 threads each -- the paper's 6-rank + 7-thread ESSL configuration).
    """
    prob = strong_scaled_problem(12)
    key = ("strong", 12)
    series: Dict[str, Dict[str, List[float]]] = {}
    for tag, rpn, gpu in (
        ("cpu 8/node", 8, False),
        ("cpu 2/node", 2, False),
        ("gpu 4/gpu", 8, True),
        ("gpu 1/gpu", 2, True),
    ):
        setup, solve, iters = [], [], []
        for nd in nodes:
            cfg = RunConfig(
                local=LocalSolverSpec(kind="tacho", ordering="nd", gpu_solve=gpu)
            )
            rec = run_numerics(prob, rank_grid(nd, rpn), cfg, cache_key=key)
            if gpu:
                layout = JobLayout.gpu_run(nd, rpn // 2, machine=_MACHINE)
            else:
                layout = JobLayout.cpu_run(nd, machine=_MACHINE, ranks_per_node=rpn)
            t = price_run(rec, layout)
            setup.append(t.setup_seconds)
            solve.append(t.solve_seconds)
            iters.append(t.iterations)
        series[tag] = {"setup": setup, "solve": solve, "iters": iters}
    header = ["series"] + [f"{n} nodes" for n in nodes]
    rows = []
    for tag, d in series.items():
        rows.append(
            [f"{tag} setup"] + [f"{v:.4f}" for v in d["setup"]]
        )
        rows.append(
            [f"{tag} solve"]
            + [
                format_cell(v, it, digits=4)
                for v, it in zip(d["solve"], d["iters"])
            ]
        )
    print()
    print(
        format_table(
            f"Fig. 5: strong scaling, 3D elasticity n={prob.a.n_rows} [model s]",
            header,
            rows,
        )
    )
    return {"nodes": list(nodes), "n": prob.a.n_rows, "series": series}


# ----------------------------------------------------------------------
# Table IV: ILU level study on one node
# ----------------------------------------------------------------------
def table4_ilu_study(levels: Sequence[int] = (0, 1, 2, 3)) -> dict:
    """Table IV: ILU(k) setup/solve across fill levels and orderings."""
    prob = weak_scaled_problem(1, _E_ILU)
    key = ("weak", 1, _E_ILU)
    lay_c = JobLayout.cpu_run(1, machine=_MACHINE)
    lay_g = JobLayout.gpu_run(1, 4, machine=_MACHINE)
    parts = rank_grid(1, 8)

    setup: Dict[str, List[float]] = {}
    solve: Dict[str, List[float]] = {}
    iters: Dict[str, List[int]] = {}
    rows_spec = [
        ("CPU (No)", "iluk", "natural", lay_c),
        ("CPU (ND)", "iluk", "nd", lay_c),
        ("GPU KK(No)", "iluk", "natural", lay_g),
        ("GPU KK(ND)", "iluk", "nd", lay_g),
        ("GPU Fast(No)", "fastilu", "natural", lay_g),
        ("GPU Fast(ND)", "fastilu", "nd", lay_g),
    ]
    for tag, kind, ordering, lay in rows_spec:
        s_row, t_row, i_row = [], [], []
        for lev in levels:
            cfg = RunConfig(
                local=LocalSolverSpec(
                    kind=kind, ordering=ordering, ilu_level=lev,
                    gpu_solve=lay is lay_g,
                )
            )
            rec = run_numerics(prob, parts, cfg, cache_key=key)
            t = price_run(rec, lay)
            s_row.append(t.setup_seconds)
            t_row.append(t.solve_seconds)
            i_row.append(t.iterations)
        setup[tag], solve[tag], iters[tag] = s_row, t_row, i_row

    header = ["ILU level"] + [str(lv) for lv in levels]
    setup_rows = [
        [tag] + [f"{1e3 * v:.2f}" for v in setup[tag]] for tag, *_ in rows_spec
    ]
    cpu_best = [min(setup["CPU (No)"][i], setup["CPU (ND)"][i]) for i in range(len(levels))]
    gpu_best = [
        min(setup[t][i] for t in ("GPU KK(No)", "GPU KK(ND)", "GPU Fast(No)", "GPU Fast(ND)"))
        for i in range(len(levels))
    ]
    setup_rows.append(
        ["speedup"] + [f"{c / g:.1f}x" for c, g in zip(cpu_best, gpu_best)]
    )
    print()
    print(
        format_table(
            f"Table IV(a): ILU setup time on one node, n={prob.a.n_rows} [model ms]",
            header,
            setup_rows,
        )
    )
    solve_rows = [
        [tag]
        + [
            format_cell(1e3 * v, it)
            for v, it in zip(solve[tag], iters[tag])
        ]
        for tag, *_ in rows_spec
    ]
    cpu_best = [min(solve["CPU (No)"][i], solve["CPU (ND)"][i]) for i in range(len(levels))]
    gpu_best = [
        min(solve[t][i] for t in ("GPU Fast(No)", "GPU Fast(ND)"))
        for i in range(len(levels))
    ]
    solve_rows.append(
        ["speedup"] + [f"{c / g:.1f}x" for c, g in zip(cpu_best, gpu_best)]
    )
    print()
    print(
        format_table(
            "Table IV(b): ILU solve time [model ms] (iterations)",
            header,
            solve_rows,
        )
    )
    return {
        "levels": list(levels),
        "n": prob.a.n_rows,
        "setup": setup,
        "solve": solve,
        "iterations": iters,
    }


# ----------------------------------------------------------------------
# Table V: weak scaling with ILU(1)
# ----------------------------------------------------------------------
def table5_ilu_weak(nodes: Sequence[int] = WEAK_NODES) -> dict:
    """Table V: weak scaling with the inexact ILU(1) local solver."""
    setup: Dict[str, List[float]] = {"CPU": [], "GPU KK": [], "GPU Fast": []}
    solve: Dict[str, List[float]] = {"CPU": [], "GPU KK": [], "GPU Fast": []}
    iters: Dict[str, List[int]] = {"CPU": [], "GPU KK": [], "GPU Fast": []}
    sizes: List[int] = []
    for nd in nodes:
        prob = weak_scaled_problem(nd, _E_ILU)
        key = ("weak", nd, _E_ILU)
        parts = rank_grid(nd, 8)
        lay_c = JobLayout.cpu_run(nd, machine=_MACHINE)
        lay_g = JobLayout.gpu_run(nd, 4, machine=_MACHINE)
        sizes.append(prob.a.n_rows)
        cfg_ilu = RunConfig(
            local=LocalSolverSpec(kind="iluk", ordering="natural", ilu_level=1)
        )
        rec = run_numerics(prob, parts, cfg_ilu, cache_key=key)
        for tag, lay in (("CPU", lay_c), ("GPU KK", lay_g)):
            t = price_run(rec, lay)
            setup[tag].append(t.setup_seconds)
            solve[tag].append(t.solve_seconds)
            iters[tag].append(t.iterations)
        cfg_fast = RunConfig(
            local=LocalSolverSpec(
                kind="fastilu", ordering="natural", ilu_level=1, gpu_solve=True
            )
        )
        rec = run_numerics(prob, parts, cfg_fast, cache_key=key)
        t = price_run(rec, lay_g)
        setup["GPU Fast"].append(t.setup_seconds)
        solve["GPU Fast"].append(t.solve_seconds)
        iters["GPU Fast"].append(t.iterations)

    header = ["# comp. nodes"] + [str(n) for n in nodes]
    srows = [["matrix size"] + [str(s) for s in sizes]]
    for tag in ("CPU", "GPU KK", "GPU Fast"):
        srows.append([tag] + [f"{1e3 * v:.2f}" for v in setup[tag]])
    srows.append(
        ["speedup"]
        + [
            f"{c / min(k, f):.1f}x"
            for c, k, f in zip(setup["CPU"], setup["GPU KK"], setup["GPU Fast"])
        ]
    )
    print()
    print(format_table("Table V(a): ILU(1) weak-scaling setup [model ms]", header, srows))
    vrows = [["matrix size"] + [str(s) for s in sizes]]
    for tag in ("CPU", "GPU KK", "GPU Fast"):
        vrows.append(
            [tag]
            + [
                format_cell(1e3 * v, it)
                for v, it in zip(solve[tag], iters[tag])
            ]
        )
    vrows.append(
        ["speedup"]
        + [f"{c / f:.1f}x" for c, f in zip(solve["CPU"], solve["GPU Fast"])]
    )
    print()
    print(
        format_table(
            "Table V(b): ILU(1) weak-scaling solve [model ms] (iterations)",
            header,
            vrows,
        )
    )
    return {
        "nodes": list(nodes),
        "sizes": sizes,
        "setup": setup,
        "solve": solve,
        "iterations": iters,
    }


# ----------------------------------------------------------------------
# Tables VI/VII: single vs double precision
# ----------------------------------------------------------------------
def _precision_table(value: str, title_fmt: str, with_iters: bool) -> dict:
    out = {}
    for solver in ("superlu", "tacho"):
        table: Dict[str, List[float]] = {}
        titers: Dict[str, List[int]] = {}
        sizes: List[int] = []
        for tag, gpu in (("CPU", False), ("GPU", True)):
            for precision in ("double", "single"):
                vals, its = [], []
                for nd in WEAK_NODES:
                    prob = weak_scaled_problem(nd, _E_WEAK)
                    key = ("weak", nd, _E_WEAK)
                    cfg = RunConfig(
                        local=LocalSolverSpec(
                            kind=solver, ordering="nd", gpu_solve=gpu
                        ),
                        precision=precision,
                    )
                    rec = run_numerics(prob, rank_grid(nd, 8), cfg, cache_key=key)
                    layout = (
                        JobLayout.gpu_run(nd, 4, machine=_MACHINE)
                        if gpu
                        else JobLayout.cpu_run(nd, machine=_MACHINE)
                    )
                    t = price_run(rec, layout)
                    vals.append(getattr(t, value))
                    its.append(t.iterations)
                    if tag == "CPU" and precision == "double":
                        sizes.append(rec.n)
                table[f"{tag} {precision}"] = vals
                titers[f"{tag} {precision}"] = its
        header = ["# comp. nodes"] + [str(n) for n in WEAK_NODES]
        rows = [["matrix size"] + [str(s) for s in sizes]]
        for tag in ("CPU", "GPU"):
            for precision in ("double", "single"):
                k = f"{tag} {precision}"
                rows.append(
                    [k]
                    + [
                        format_cell(
                            1e3 * v, titers[k][i] if with_iters else None
                        )
                        for i, v in enumerate(table[k])
                    ]
                )
            rows.append(
                [f"{tag} speedup"]
                + [
                    f"{d / s:.1f}x"
                    for d, s in zip(table[f"{tag} double"], table[f"{tag} single"])
                ]
            )
        print()
        print(format_table(title_fmt.format(solver=solver), header, rows))
        out[solver] = {"data": table, "iterations": titers, "sizes": sizes}
    return out


def table6_precision_setup() -> dict:
    """Table VI: numerical setup time, double vs single precision."""
    return _precision_table(
        "setup_seconds",
        "Table VI ({solver}): setup time double vs single precision [model ms]",
        with_iters=False,
    )


def table7_precision_solve() -> dict:
    """Table VII: total iteration time, double vs single precision."""
    return _precision_table(
        "solve_seconds",
        "Table VII ({solver}): iteration time double vs single [model ms] (iters)",
        with_iters=True,
    )
