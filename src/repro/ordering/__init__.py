"""Fill-reducing orderings and symbolic factorization analysis.

The paper orders local subdomain matrices with METIS nested dissection
before factorization ("to reduce the number of fills ... and also to
expose more parallelism", Section VIII-A) and studies natural vs ND
orderings for ILU (Table IV).  This package provides from-scratch
replacements:

* :mod:`repro.ordering.rcm` -- reverse Cuthill--McKee (bandwidth
  reduction);
* :mod:`repro.ordering.nested_dissection` -- recursive bisection nested
  dissection with BFS level-structure separators (a METIS stand-in);
* :mod:`repro.ordering.amd` -- approximate minimum degree (quotient
  graph, external degrees, the SuperLU-family default);
* :mod:`repro.ordering.etree` -- elimination tree, postordering and
  symbolic Cholesky (row counts and factor pattern), the analysis phase
  shared by the direct solvers.

All orderings return a permutation vector ``perm`` where ``perm[k]`` is
the old index placed at position ``k`` (compatible with
:func:`repro.sparse.permute`).
"""

from repro.ordering.amd import amd
from repro.ordering.rcm import rcm
from repro.ordering.nested_dissection import nested_dissection
from repro.ordering.etree import (
    elimination_tree,
    postorder,
    symbolic_cholesky,
    column_counts,
)

__all__ = [
    "amd",
    "column_counts",
    "elimination_tree",
    "natural",
    "nested_dissection",
    "postorder",
    "rcm",
    "symbolic_cholesky",
]


def natural(n: int):
    """The identity ordering ("No reordering" rows of Table IV)."""
    import numpy as np

    return np.arange(n, dtype=np.int64)
