"""Approximate-minimum-degree (AMD) ordering.

The third classic fill-reducing ordering family next to RCM and nested
dissection (SuperLU's default column ordering is COLAMD; Tacho accepts
any symmetric permutation).  This implementation is the quotient-graph
minimum-degree algorithm with *external-degree* scoring and supervariable
(indistinguishable-node) detection -- the essential ingredients of
Amestoy/Davis/Duff AMD -- kept deliberately simple: elements are
absorbed eagerly and degrees are recomputed exactly within the quotient
graph, which is accurate (if a little slower) at the local-problem sizes
this package factorizes.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import symmetrize_pattern

__all__ = ["amd"]


def amd(a: CsrMatrix) -> np.ndarray:
    """Approximate-minimum-degree permutation of a square matrix's graph.

    Returns ``perm`` with ``perm[k]`` = old index at new position ``k``.
    Ties are broken by vertex index for determinism.
    """
    if a.n_rows != a.n_cols:
        raise ValueError("amd requires a square matrix")
    n = a.n_rows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    g = symmetrize_pattern(a)

    # quotient graph state: every vertex holds adjacent *variables* and
    # adjacent *elements* (eliminated cliques)
    adj_var: List[Set[int]] = [
        set(g.indices[g.indptr[i] : g.indptr[i + 1]].tolist()) for i in range(n)
    ]
    adj_el: List[Set[int]] = [set() for _ in range(n)]
    elements: Dict[int, Set[int]] = {}  # element id -> boundary variables
    alive = np.ones(n, dtype=bool)

    def external_degree(v: int) -> int:
        reach = set(adj_var[v])
        for e in adj_el[v]:
            reach |= elements[e]
        reach.discard(v)
        return len(reach)

    heap = [(len(adj_var[i]), i) for i in range(n)]
    heapq.heapify(heap)
    stamp = np.zeros(n, dtype=np.int64)  # lazy heap invalidation

    order = np.empty(n, dtype=np.int64)
    pos = 0
    while heap:
        deg, v = heapq.heappop(heap)
        if not alive[v]:
            continue
        cur = external_degree(v)
        if cur > deg:
            # stale entry: reinsert with the fresh degree
            heapq.heappush(heap, (cur, v))
            continue

        # eliminate v: its reach becomes a new element (clique boundary)
        reach = set(adj_var[v])
        absorbed = set(adj_el[v])
        for e in absorbed:
            reach |= elements[e]
        reach.discard(v)
        alive[v] = False
        order[pos] = v
        pos += 1

        eid = v  # reuse the vertex id as the element id
        elements[eid] = reach
        for e in absorbed:
            if e in elements:
                del elements[e]

        for u in reach:
            adj_var[u].discard(v)
            adj_var[u] -= reach  # clique edges are carried by the element
            adj_el[u] -= absorbed
            adj_el[u].add(eid)
            heapq.heappush(heap, (external_degree(u), u))
        adj_var[v] = set()
        adj_el[v] = set()

    if pos != n:  # pragma: no cover - every vertex enters the heap once
        raise AssertionError("amd failed to order all vertices")
    return order
