"""Nested-dissection ordering by recursive graph bisection.

A from-scratch stand-in for METIS NodeND (the paper uses METIS to order
local subdomain matrices).  Each recursion level finds a vertex separator
from the middle level of a BFS level structure rooted at a
pseudo-peripheral vertex, orders the two halves recursively and places
the separator last -- giving the O(n^2) factorization / O(n^{4/3})
triangular-solve complexities for 3D problems quoted in Section VI, and
wide independent subtrees for the level-set scheduling of the GPU
solvers.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import (
    pseudo_peripheral_node,
    symmetrize_pattern,
)

__all__ = ["nested_dissection", "bisect"]


def bisect(indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray, n: int):
    """Split a vertex set into (left, separator, right) via a BFS bisection.

    The separator is the BFS level closest to the median vertex; every
    path from the lower levels to the higher levels must cross it, so it
    is a valid vertex separator of the induced subgraph.
    """
    root, levels = pseudo_peripheral_node(indptr, indices, vertices, n)
    lv = levels[vertices]
    # vertices in other connected components are unreached (-1); they can
    # go to either side of the cut -- fold them into the left part.
    unreached = lv < 0
    if unreached.any():
        reached = vertices[~unreached]
        if reached.size == 0:  # pragma: no cover - seed is always reached
            return vertices, np.empty(0, np.int64), np.empty(0, np.int64)
        l, s, r = bisect(indptr, indices, reached, n)
        return np.concatenate([vertices[unreached], l]), s, r
    max_level = int(lv.max())
    if max_level == 0:
        # complete graph or single vertex: no useful separator
        return vertices, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    # pick the level whose cumulative count is nearest to half the vertices
    counts = np.bincount(lv, minlength=max_level + 1)
    below = np.cumsum(counts)
    half = vertices.size / 2.0
    sep_level = int(np.clip(np.argmin(np.abs(below - half)), 1, max_level))
    left = vertices[lv < sep_level]
    sep = vertices[lv == sep_level]
    right = vertices[lv > sep_level]
    if left.size == 0 or right.size == 0:
        # degenerate split (e.g. path graphs at the ends): peel the root level
        left = vertices[lv == 0]
        sep = vertices[lv == 1]
        right = vertices[lv > 1]
    return left, sep, right


def nested_dissection(a: CsrMatrix, leaf_size: int = 16) -> np.ndarray:
    """Nested-dissection permutation of a square matrix's graph.

    Parameters
    ----------
    a:
        Square matrix whose symmetrized pattern defines the graph.
    leaf_size:
        Vertex sets at or below this size stop recursing and are ordered
        naturally (they become the leaf fronts of the multifrontal
        factorization).

    Returns
    -------
    ``perm`` with ``perm[k]`` = old index at new position ``k``; the
    separators appear *after* the parts they separate, so elimination
    proceeds leaves-to-root.
    """
    if a.n_rows != a.n_cols:
        raise ValueError("nested dissection requires a square matrix")
    n = a.n_rows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    g = symmetrize_pattern(a)
    indptr, indices = g.indptr, g.indices

    order: List[np.ndarray] = []

    # iterative recursion (explicit stack) to avoid Python depth limits;
    # entries are ('part', verts) to recurse or ('emit', verts) to place.
    stack: List = [("part", np.arange(n, dtype=np.int64))]
    out: List[np.ndarray] = []
    while stack:
        tag, verts = stack.pop()
        if tag == "emit":
            out.append(verts)
            continue
        if verts.size <= leaf_size:
            out.append(verts)
            continue
        # handle disconnected induced subgraphs: bisect each component
        left, sep, right = bisect(indptr, indices, verts, n)
        if sep.size == 0 and (left.size == 0 or right.size == 0):
            out.append(verts)
            continue
        # emission order must be: left, right, separator -- push reversed
        stack.append(("emit", sep))
        if right.size:
            stack.append(("part", right))
        if left.size:
            stack.append(("part", left))
    perm = np.concatenate(out) if out else np.empty(0, dtype=np.int64)
    if perm.size != n or np.unique(perm).size != n:
        raise AssertionError("nested dissection produced an invalid permutation")
    return perm
