"""Reverse Cuthill--McKee ordering.

Classic BFS-based bandwidth-reducing ordering, started from a
pseudo-peripheral vertex of each connected component; ties inside a BFS
level are broken by vertex degree (smallest first), as in the original
algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import pseudo_peripheral_node, symmetrize_pattern

__all__ = ["rcm"]


def rcm(a: CsrMatrix) -> np.ndarray:
    """Reverse Cuthill--McKee permutation of a square matrix's graph.

    Returns ``perm`` with ``perm[k]`` = old index at new position ``k``.
    Handles disconnected graphs (each component is ordered independently).
    """
    if a.n_rows != a.n_cols:
        raise ValueError("rcm requires a square matrix")
    n = a.n_rows
    g = symmetrize_pattern(a)
    indptr, indices = g.indptr, g.indices
    degree = np.diff(indptr)

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for comp_seed in range(n):
        if visited[comp_seed]:
            continue
        # restrict the pseudo-peripheral search to this component
        from repro.sparse.graph import bfs_levels

        comp_levels = bfs_levels(indptr, indices, [comp_seed], n)
        comp = np.flatnonzero((comp_levels >= 0) & ~visited)
        start, _ = pseudo_peripheral_node(indptr, indices, comp, n)

        # Cuthill-McKee BFS with degree tie-breaking
        visited[start] = True
        queue = [start]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order[pos] = v
            pos += 1
            nbrs = indices[indptr[v] : indptr[v + 1]]
            new = nbrs[~visited[nbrs]]
            if new.size:
                new = np.unique(new)
                new = new[np.argsort(degree[new], kind="stable")]
                visited[new] = True
                queue.extend(new.tolist())
    return order[::-1].copy()  # the *reverse* of Cuthill-McKee
