"""Elimination tree and symbolic Cholesky analysis.

This is the *symbolic factorization* phase shared by the direct solvers
(phase (a) of the three-phase Trilinos solver structure described in
Section V-A.1 of the paper): given only the sparsity pattern, compute the
elimination tree, a postordering, per-column factor counts, and the full
factor pattern.  The numeric phases of :mod:`repro.direct` reuse these
across refactorizations with unchanged patterns -- exactly the property
that makes Tacho's setup cheap relative to SuperLU's in Table III.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.spadd import spadd

__all__ = ["elimination_tree", "postorder", "column_counts", "symbolic_cholesky"]


def _lower_pattern(a: CsrMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise pattern of the strict lower triangle of ``A + A^T``."""
    s = spadd(a.pattern(), a.transpose().pattern())
    indptr, indices = s.indptr, s.indices
    n = s.n_rows
    out_ptr = np.zeros(n + 1, dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    keep = indices < rows
    np.add.at(out_ptr, rows[keep] + 1, 1)
    np.cumsum(out_ptr, out=out_ptr)
    return out_ptr, indices[keep]


def elimination_tree(a: CsrMatrix) -> np.ndarray:
    """Elimination tree of the Cholesky factor of ``A`` (pattern only).

    Returns ``parent`` with ``parent[j] = -1`` for roots.  Uses Liu's
    algorithm with path compression (virtual ancestors).
    """
    if a.n_rows != a.n_cols:
        raise ValueError("square matrix required")
    n = a.n_rows
    lptr, lind = _lower_pattern(a)
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for k in lind[lptr[i] : lptr[i + 1]]:
            # walk from k up to the root of its current virtual tree
            j = int(k)
            while ancestor[j] != -1 and ancestor[j] != i:
                nxt = int(ancestor[j])
                ancestor[j] = i  # path compression
                j = nxt
            if ancestor[j] == -1:
                ancestor[j] = i
                parent[j] = i
    return parent


def postorder(parent: np.ndarray) -> np.ndarray:
    """Depth-first postordering of a forest given by ``parent`` pointers.

    Children of each node are visited in increasing index order, making
    the postorder deterministic.
    """
    n = parent.size
    # build child lists
    children: List[List[int]] = [[] for _ in range(n)]
    roots: List[int] = []
    for j in range(n):
        p = int(parent[j])
        if p == -1:
            roots.append(j)
        else:
            children[p].append(j)
    post = np.empty(n, dtype=np.int64)
    k = 0
    for root in roots:
        # iterative DFS emitting nodes in postorder
        stack = [(root, 0)]
        while stack:
            node, ci = stack.pop()
            if ci < len(children[node]):
                stack.append((node, ci + 1))
                stack.append((children[node][ci], 0))
            else:
                post[k] = node
                k += 1
    if k != n:
        raise AssertionError("parent array is not a forest")
    return post


def symbolic_cholesky(a: CsrMatrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full symbolic Cholesky: pattern of ``L`` (including the diagonal).

    Row ``i`` of ``L`` is computed as the union of the paths from each
    nonzero ``A(i, k)``, ``k < i``, up the elimination tree towards ``i``
    (Gilbert's row-subtree characterization).

    Returns ``(l_indptr, l_indices, parent)`` with column indices sorted
    within each row; the diagonal entry is always present.
    """
    n = a.n_rows
    parent = elimination_tree(a)
    lptr, lind = _lower_pattern(a)
    mark = np.full(n, -1, dtype=np.int64)
    rows_out: List[np.ndarray] = []
    counts = np.zeros(n + 1, dtype=np.int64)
    for i in range(n):
        reach = [i]
        mark[i] = i
        for k in lind[lptr[i] : lptr[i + 1]]:
            j = int(k)
            while mark[j] != i:
                mark[j] = i
                reach.append(j)
                j = int(parent[j])
                if j == -1:  # pragma: no cover - etree guarantees path to i
                    break
        row = np.sort(np.asarray(reach, dtype=np.int64))
        rows_out.append(row)
        counts[i + 1] = row.size
    l_indptr = np.cumsum(counts)
    l_indices = np.concatenate(rows_out) if rows_out else np.empty(0, dtype=np.int64)
    return l_indptr, l_indices, parent


def column_counts(a: CsrMatrix) -> np.ndarray:
    """Number of nonzeros in each *column* of the Cholesky factor ``L``.

    Derived from the full symbolic factorization (exact, not the skeleton
    approximation); used for supernode detection and the machine model's
    flop counts.
    """
    l_indptr, l_indices, _ = symbolic_cholesky(a)
    counts = np.zeros(a.n_rows, dtype=np.int64)
    np.add.at(counts, l_indices, 1)
    return counts
