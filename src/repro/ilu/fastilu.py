"""FastILU: fine-grained iterative incomplete factorization.

[Chow & Patel 2015], Trilinos FastILU [Boman et al. 2016].  On the fixed
ILU(k) pattern ``S``, the factor entries are treated as unknowns of the
fixed-point equations

``l_ij = (a_ij - sum_{k<j} l_ik u_kj) / u_jj``   for ``i > j``,
``u_ij =  a_ij - sum_{k<i} l_ik u_kj``           for ``i <= j``,

updated with *Jacobi* sweeps: every entry is recomputed simultaneously
from the previous iterate.  One sweep costs about the same flops as the
standard IKJ factorization but is one massively parallel kernel instead
of a dependency-ordered traversal -- the paper's default is 3 sweeps for
the factorization (and 5 for the FastSpTRSV solves).

Implementation: the sweep's inner products are a *masked sparse product*
``(L_strict @ U)`` gathered at ``S``.  The expansion/segment structure
is precomputed once in the symbolic phase, so every sweep is a handful
of flat numpy gathers and one segmented reduction -- the numpy analogue
of the single fused GPU kernel.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.backend import get_backend
from repro.ilu.iluk import iluk_symbolic, _scatter_to_pattern
from repro.machine.kernels import KernelProfile
from repro.reuse.fingerprint import check_same_pattern, pattern_fingerprint
from repro.resilience.context import get_engine
from repro.resilience.detect import (
    DivergenceError,
    PivotBreakdownError,
    sweep_divergence,
)
from repro.sparse.csr import CsrMatrix

__all__ = ["FastIlu"]


def _diag_positions_reference(
    u_indptr: np.ndarray, u_indices: np.ndarray
) -> np.ndarray:
    """The seed row-at-a-time diagonal scan (executable spec + bench
    baseline); :func:`_diag_positions` must match it bit for bit."""
    n = u_indptr.size - 1
    diag_pos = np.empty(n, dtype=np.int64)
    for i in range(n):
        lo = u_indptr[i]
        if lo == u_indptr[i + 1] or u_indices[lo] != i:
            raise ValueError(f"pattern misses the diagonal in row {i}")
        diag_pos[i] = lo
    return diag_pos


def _diag_positions(u_indptr: np.ndarray, u_indices: np.ndarray) -> np.ndarray:
    """Position of each row's diagonal inside the U value array.

    For an upper-triangular CSR with sorted rows the diagonal, when
    present, is the first entry of its row -- so the scan reduces to one
    vectorized check of the row heads.  Raises for the first row whose
    pattern misses the diagonal, exactly like the reference loop.
    """
    n = u_indptr.size - 1
    lo = np.asarray(u_indptr[:-1], dtype=np.int64)
    empty = lo == u_indptr[1:]
    first_col = np.full(n, -1, dtype=np.int64)
    present = ~empty
    if u_indices.size:
        first_col[present] = u_indices[lo[present]]
    bad = empty | (first_col != np.arange(n, dtype=np.int64))
    if np.any(bad):
        i = int(np.flatnonzero(bad)[0])
        raise ValueError(f"pattern misses the diagonal in row {i}")
    return lo


class FastIlu:
    """Iterative ILU(k) on the Chow--Patel fixed-point iteration.

    Parameters
    ----------
    level:
        Fill level of the target pattern.
    sweeps:
        Number of Jacobi sweeps of the factorization (paper default 3).
    ordering:
        ``"natural"`` or ``"nd"`` symmetric pre-ordering.
    damping:
        Under-relaxation of the fixed-point update (one of the paper's
        Table I FastILU knobs); the undamped synchronous iteration can
        diverge on stiff elasticity blocks.

    After :meth:`numeric`: ``l`` (strict lower, unit diagonal implicit)
    and ``u`` (upper with diagonal) hold the approximate factors,
    ``update_norms`` the per-sweep damped update magnitudes
    ``||dL|| + ||dU||``, and ``diverged`` whether those norms grew
    instead of contracting (the divergence detector of
    :func:`repro.resilience.detect.sweep_divergence`; under an active
    resilience engine with detection a diverging factorization raises
    :class:`~repro.resilience.detect.DivergenceError` so the recovery
    ladder can boost damping or fall back).
    """

    def __init__(
        self,
        level: int = 0,
        sweeps: int = 3,
        ordering: str = "natural",
        damping: float = 0.7,
    ) -> None:
        if sweeps < 0:
            raise ValueError("sweeps must be non-negative")
        if not (0.0 < damping <= 1.0):
            raise ValueError("damping must be in (0, 1]")
        self.level = int(level)
        self.sweeps = int(sweeps)
        self.ordering = ordering
        self.damping = float(damping)
        self.perm: Optional[np.ndarray] = None
        self.l: Optional[CsrMatrix] = None
        self.u: Optional[CsrMatrix] = None
        self.symbolic_profile = KernelProfile()
        self.numeric_profile = KernelProfile()
        self._symbolic_done = False
        self.update_norms: List[float] = []
        self.diverged = False

    # ------------------------------------------------------------------
    def symbolic(self, a: CsrMatrix) -> "FastIlu":
        """Pattern + sweep-expansion precomputation (value independent)."""
        from repro.ordering import natural, nested_dissection
        from repro.sparse.blocks import permute

        n = a.n_rows
        if self.ordering in ("natural", "no", "none"):
            self.perm = natural(n)
        elif self.ordering in ("nd", "nested_dissection"):
            self.perm = nested_dissection(a)
        else:
            raise ValueError(f"unknown ordering {self.ordering!r}")
        ap = permute(a, self.perm)
        pptr, pind = iluk_symbolic(ap, self.level)
        self._pattern_fp = pattern_fingerprint(a)
        self._pptr, self._pind = pptr, pind
        self.n = n

        rows_all = np.repeat(np.arange(n, dtype=np.int64), np.diff(pptr))
        self._rows_all = rows_all
        lower_mask = pind < rows_all
        self._lower_mask = lower_mask

        # structural L_strict and U CSR skeletons (values filled per sweep)
        self._l_skel = CsrMatrix.from_coo(
            rows_all[lower_mask], pind[lower_mask], np.zeros(int(lower_mask.sum())), (n, n)
        )
        upper_mask = ~lower_mask
        self._u_skel = CsrMatrix.from_coo(
            rows_all[upper_mask], pind[upper_mask], np.zeros(int(upper_mask.sum())), (n, n)
        )
        # diagonal position within U data per row (vectorized scan)
        self._diag_pos = _diag_positions(
            self._u_skel.indptr, self._u_skel.indices
        )
        self._lower_idx = np.flatnonzero(lower_mask)
        self._upper_idx = np.flatnonzero(upper_mask)

        # ---- expansion structure of L_strict @ U ----
        from repro.sparse.spgemm import _concat_ranges

        ls, us = self._l_skel, self._u_skel
        l_rows = np.repeat(np.arange(n, dtype=np.int64), ls.row_nnz())
        mid = ls.indices  # k index of each L entry
        seg_start = us.indptr[mid]
        seg_len = us.indptr[mid + 1] - us.indptr[mid]
        gather_u = _concat_ranges(seg_start, seg_len)
        gather_l = np.repeat(np.arange(ls.nnz, dtype=np.int64), seg_len)
        prod_rows = np.repeat(l_rows, seg_len)
        prod_cols = us.indices[gather_u]
        # sort by (row, col) to form segments
        key = prod_rows * np.int64(n) + prod_cols
        order = np.argsort(key, kind="stable")
        self._gather_l = gather_l[order]
        self._gather_u = gather_u[order]
        key = key[order]
        first = np.ones(key.size, dtype=bool)
        if key.size:
            first[1:] = key[1:] != key[:-1]
        starts = np.flatnonzero(first)
        self._seg_starts = starts
        seg_keys = key[starts] if key.size else np.empty(0, np.int64)

        # map segments -> pattern entry ids (S position), -1 if outside S
        pat_key = rows_all * np.int64(n) + pind
        # pat_key is sorted (CSR with sorted rows)
        pos = np.searchsorted(pat_key, seg_keys)
        ok = (pos < pat_key.size) & (pat_key[np.minimum(pos, pat_key.size - 1)] == seg_keys)
        self._seg_entry = np.where(ok, pos, -1)
        # scatter plan for the sweeps: segments landing inside S
        self._seg_keep = np.flatnonzero(self._seg_entry >= 0)
        self._seg_targets = self._seg_entry[self._seg_keep]
        # true fused-kernel work: only products landing inside S count (a
        # real FastILU sweep walks the L-row/U-column intersections; the
        # full expansion above is a numpy vectorization convenience)
        seg_len = np.diff(np.append(starts, key.size)) if key.size else np.empty(0, np.int64)
        self._masked_pairs = int(seg_len[self._seg_entry >= 0].sum()) if key.size else 0

        self.symbolic_profile = KernelProfile()
        self.symbolic_profile.add(
            "symbolic.fastilu_pattern",
            flops=0.0,
            bytes=float(pind.size * 24 + self._gather_l.size * 16),
        )
        self._symbolic_done = True
        return self

    # ------------------------------------------------------------------
    def numeric(self, a: CsrMatrix) -> "FastIlu":
        """Run the configured number of Jacobi sweeps from the standard
        initial guess ``L0 = strict_lower(A) D^{-1}``, ``U0 = upper(A)``."""
        if not self._symbolic_done:
            raise RuntimeError("call symbolic() before numeric()")
        check_same_pattern(self._pattern_fp, a, "fastilu")
        from repro.sparse.blocks import permute

        ap = permute(a, self.perm)
        n = self.n
        pptr, pind = self._pptr, self._pind
        a_vals = _scatter_to_pattern(ap, pptr, pind)

        # symmetric diagonal scaling to unit diagonal (Chow & Patel):
        # the fixed-point iteration is only locally convergent, and
        # scaling keeps the initial guess inside its basin for stiff
        # (elasticity) blocks.  Factors L,U approximate S A S; callers
        # must wrap solves as A^{-1} ~ S (L U)^{-1} S with S = diag(s).
        diag = np.ones(n)
        rows_for_diag = np.repeat(np.arange(n, dtype=np.int64), np.diff(pptr))
        on_diag = rows_for_diag == pind
        diag[rows_for_diag[on_diag]] = a_vals[on_diag]
        if np.any(diag <= 0):
            # indefinite/unscalable diagonal: fall back to no scaling
            self.row_scale = np.ones(n)
        else:
            self.row_scale = 1.0 / np.sqrt(diag)
        a_vals = a_vals * self.row_scale[rows_for_diag] * self.row_scale[pind]
        lower_mask = self._lower_mask
        a_l = a_vals[lower_mask]
        a_u = a_vals[~lower_mask]

        l_cols = self._l_skel.indices  # column j of each L entry
        l_vals = a_l.copy()
        u_vals = a_u.copy()
        # initial guess: scale L columns by the diagonal of A
        diag_a = u_vals[self._diag_pos]
        if np.any(diag_a == 0):
            bad = int(np.flatnonzero(diag_a == 0)[0])
            raise PivotBreakdownError(
                "zero diagonal in FastILU initial guess at row "
                f"{bad}",
                index=bad,
                value=0.0,
                solver="fastilu",
            )
        l_vals = l_vals / diag_a[l_cols]

        eng = get_engine()
        self.update_norms = []
        self.diverged = False
        l_vals, u_vals = self._run_sweeps(a_l, a_u, l_vals, u_vals, eng)

        growth_tol = eng.growth_tol if eng is not None else 10.0
        self.diverged = sweep_divergence(self.update_norms, growth_tol)
        if self.diverged and eng is not None and eng.detect:
            raise DivergenceError(
                "FastILU Jacobi sweeps diverged: per-sweep update norms "
                + ", ".join(f"{x:.3e}" for x in self.update_norms),
                norms=self.update_norms,
                solver="fastilu",
            )

        self.l = CsrMatrix(
            self._l_skel.indptr, self._l_skel.indices, l_vals, (n, n)
        )
        self.u = CsrMatrix(
            self._u_skel.indptr, self._u_skel.indices, u_vals, (n, n)
        )

        self.numeric_profile = KernelProfile()
        work = float(2 * self._masked_pairs + 4 * pind.size)
        for _ in range(max(self.sweeps, 1)):
            # flop-dominated fused kernel: the intersection gathers hit
            # cache (each L/U value is reused across many dot products),
            # so memory traffic is a few passes over the pattern
            self.numeric_profile.add(
                "factor.fastilu_sweep",
                flops=work,
                bytes=float(self._masked_pairs * 4 + pind.size * 48),
                parallelism=float(pind.size),
            )
        return self

    # ------------------------------------------------------------------
    def _run_sweeps(self, a_l, a_u, l_vals, u_vals, eng):
        """The Jacobi sweep loop, routed through the ambient backend.

        One sweep is two flat gathers, one segmented reduction, one
        scatter and the damped elementwise update -- the fused-kernel
        shape.  The numpy path is bit-identical to the pre-refactor
        inline sweeps; other backends sync a scalar per sweep for the
        pivot-breakdown check (documented tolerance, not bit-identity).
        """
        bk = get_backend()
        a_l = bk.asarray(a_l)
        a_u = bk.asarray(a_u)
        l_vals = bk.asarray(l_vals)
        u_vals = bk.asarray(u_vals)
        l_cols = self._l_skel.indices
        n_seg = self._seg_starts.size
        w = self.damping
        for sweep in range(self.sweeps):
            prods = bk.take(l_vals, self._gather_l) * bk.take(u_vals, self._gather_u)
            sums = bk.segment_sum(prods, self._seg_starts) if n_seg else bk.zeros(0)
            # scatter segment sums to S entries
            c = bk.zeros(self._pind.size, dtype=np.float64)
            bk.put(c, self._seg_targets, bk.take(sums, self._seg_keep))
            c_l = bk.take(c, self._lower_idx)
            c_u = bk.take(c, self._upper_idx)
            u_diag = bk.take(u_vals, self._diag_pos)
            u_diag_host = u_diag if bk.is_numpy else bk.to_numpy(u_diag)
            if np.any(u_diag_host == 0):  # backend-ok: host breakdown check
                bad = int(np.flatnonzero(u_diag_host == 0)[0])  # backend-ok
                raise PivotBreakdownError(
                    f"zero pivot during FastILU sweep at row {bad}",
                    index=bad,
                    value=0.0,
                    solver="fastilu",
                )
            # damped Jacobi update from the *previous* iterate; the
            # undamped synchronous iteration can diverge on stiff
            # elasticity blocks (the asynchronous GPU implementation
            # behaves between Jacobi and Gauss-Seidel; damping is the
            # FastILU knob listed in the paper's Table I)
            # L: subtract the k=j term (included in the masked product)
            ud_l = bk.take(u_diag, l_cols)
            new_l = (a_l - (c_l - l_vals * ud_l)) / ud_l
            new_u = a_u - c_u
            prev_l, prev_u = l_vals, u_vals
            l_vals = (1.0 - w) * l_vals + w * new_l
            u_vals = (1.0 - w) * u_vals + w * new_u
            # divergence monitor: the damped update magnitude contracts
            # for a converging iteration and grows geometrically on the
            # stiff blocks where the synchronous sweeps diverge
            self.update_norms.append(
                bk.norm(l_vals - prev_l) + bk.norm(u_vals - prev_u)
            )
            if eng is not None:
                # fault injection (fastilu_divergence): amplify iterates
                pl, pu = eng.fastilu_perturb(
                    sweep, bk.to_numpy(l_vals), bk.to_numpy(u_vals)
                )
                l_vals, u_vals = bk.asarray(pl), bk.asarray(pu)
        return bk.to_numpy(l_vals), bk.to_numpy(u_vals)

    # ------------------------------------------------------------------
    def residual_norm(self, a: CsrMatrix) -> float:
        """Frobenius norm of ``(A - L U)`` restricted to the pattern.

        The convergence functional of the Chow--Patel iteration; used by
        the tests to verify sweeps improve the factorization.
        """
        from repro.sparse.blocks import permute

        ap = permute(a, self.perm)
        a_vals = _scatter_to_pattern(ap, self._pptr, self._pind)
        rows_all = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self._pptr)
        )
        a_vals = a_vals * self.row_scale[rows_all] * self.row_scale[self._pind]
        prods = self.l.data[self._gather_l] * self.u.data[self._gather_u]
        sums = (
            np.add.reduceat(prods, self._seg_starts)
            if self._seg_starts.size
            else np.empty(0)
        )
        c = np.zeros(self._pind.size, dtype=np.float64)
        keep = self._seg_entry >= 0
        c[self._seg_entry[keep]] = sums[keep]
        # (LU)_ij on the pattern: lower entries need the unit-diagonal
        # contribution l_ij * 1 ... wait: L here is strict; LU = (I+L)U
        lu = c.copy()
        lower_mask = self._lower_mask
        # add the I*U term: for entry (i,j) with i<=j it's u_ij itself;
        # for i>j the U row i contributes u_ij only when j>=i (never).
        upper_mask = ~lower_mask
        # map each upper pattern entry to its U value
        lu[upper_mask] += self.u.data
        return float(np.linalg.norm(a_vals - lu))
