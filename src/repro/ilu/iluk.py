"""Level-of-fill incomplete LU: ILU(k).

Symbolic phase: the classic level rule.  Entries of ``A`` start at level
0; a fill entry ``(i, j)`` created through pivot ``k`` gets level
``lev(i,k) + lev(k,j) + 1`` and is kept when its level is at most ``k``.
Numeric phase: IKJ Gaussian elimination restricted to the fixed pattern.

Both phases run row by row; the GPU execution model (level-set
scheduling over the row-dependency DAG, as in Kokkos-Kernels SpILU) is
exposed through kernel profiles.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.machine.kernels import KernelProfile
from repro.reuse.fingerprint import check_same_pattern, pattern_fingerprint
from repro.sparse.csr import CsrMatrix

__all__ = ["iluk_symbolic", "IlukFactorization"]


def iluk_symbolic(a: CsrMatrix, level: int) -> Tuple[np.ndarray, np.ndarray]:
    """Compute the ILU(k) fill pattern of a square matrix.

    Returns ``(indptr, indices)`` of the combined L+U pattern with sorted
    rows.  The diagonal is always included (at level 0) so the numeric
    phase has pivots.

    Notes
    -----
    Implemented with per-row dictionaries mapping column -> fill level;
    cost is proportional to the *update work* of the eventual numeric
    factorization, as for the exact symbolic algorithms.
    """
    if a.n_rows != a.n_cols:
        raise ValueError("square matrix required")
    if level < 0:
        raise ValueError("level must be non-negative")
    n = a.n_rows
    # per-row level maps of the *U part* (cols >= row), needed by later rows
    u_levels: List[dict] = []
    indptr = np.zeros(n + 1, dtype=np.int64)
    all_rows: List[np.ndarray] = []

    for i in range(n):
        cols, _ = a.row(i)
        lev = {int(c): 0 for c in cols}
        lev.setdefault(i, 0)  # ensure a structural pivot
        # process existing + fill entries with col < i in ascending order;
        # a heap-free approach: iterate over sorted snapshot, extending as
        # fill arrives (fill through pivot k only creates cols > k).
        work = sorted(c for c in lev if c < i)
        wi = 0
        while wi < len(work):
            k = work[wi]
            wi += 1
            lev_ik = lev[k]
            if lev_ik > level:
                continue
            for j, lev_kj in u_levels[k].items():
                if j <= k:
                    continue
                cand = lev_ik + lev_kj + 1
                if cand > level:
                    continue
                cur = lev.get(j)
                if cur is None:
                    lev[j] = cand
                    if j < i:
                        # insert keeping 'work' sorted (fill col > k, so
                        # it lands at/after the current cursor)
                        import bisect

                        bisect.insort(work, j, lo=wi)
                elif cand < cur:
                    lev[j] = cand
        keep = np.array(sorted(c for c, l in lev.items() if l <= level), dtype=np.int64)
        all_rows.append(keep)
        indptr[i + 1] = indptr[i] + keep.size
        u_levels.append({int(c): lev[int(c)] for c in keep if c >= i})
    return indptr, np.concatenate(all_rows) if all_rows else np.empty(0, np.int64)


class IlukFactorization:
    """ILU(k) with the three-phase structure.

    Parameters
    ----------
    level:
        Fill level ``k`` (Table IV studies k = 0..3).
    ordering:
        Optional symmetric pre-ordering: ``"natural"`` (paper's "No") or
        ``"nd"`` (nested dissection); Table IV studies both.

    After :meth:`numeric`, the factors are available as ``l`` (unit
    lower, strict part only) and ``u`` (upper including the diagonal),
    both CSR.
    """

    def __init__(self, level: int = 0, ordering: str = "natural") -> None:
        self.level = int(level)
        self.ordering = ordering
        self.perm: Optional[np.ndarray] = None
        self.pattern: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self.l: Optional[CsrMatrix] = None
        self.u: Optional[CsrMatrix] = None
        self.symbolic_profile = KernelProfile()
        self.numeric_profile = KernelProfile()
        self._symbolic_done = False

    # ------------------------------------------------------------------
    def symbolic(self, a: CsrMatrix) -> "IlukFactorization":
        """Ordering + fill-pattern computation (reusable across values)."""
        from repro.ordering import natural, nested_dissection, rcm

        n = a.n_rows
        if self.ordering in ("natural", "no", "none"):
            self.perm = natural(n)
        elif self.ordering in ("nd", "nested_dissection"):
            self.perm = nested_dissection(a)
        elif self.ordering == "rcm":
            self.perm = rcm(a)
        else:
            raise ValueError(f"unknown ordering {self.ordering!r}")
        from repro.sparse.blocks import permute

        ap = permute(a, self.perm)
        self.pattern = iluk_symbolic(ap, self.level)
        self._pattern_fp = pattern_fingerprint(a)
        nnz = int(self.pattern[1].size)
        self.symbolic_profile = KernelProfile()
        self.symbolic_profile.add(
            "symbolic.iluk_pattern", flops=0.0, bytes=float(nnz * 24 + a.nnz * 12)
        )
        self._symbolic_done = True
        return self

    # ------------------------------------------------------------------
    def numeric(self, a: CsrMatrix) -> "IlukFactorization":
        """IKJ factorization on the fixed pattern.

        A matrix whose pattern differs from the symbolic stamp raises
        :class:`~repro.reuse.fingerprint.PatternChangedError`: the
        pattern scatter silently *drops* entries outside the stale fill
        pattern, which would corrupt the factors without any signal.
        """
        if not self._symbolic_done:
            raise RuntimeError("call symbolic() before numeric()")
        check_same_pattern(self._pattern_fp, a, "iluk")
        from repro.sparse.blocks import permute

        ap = permute(a, self.perm)
        n = ap.n_rows
        pptr, pind = self.pattern

        # values of A scattered onto the pattern
        vals = _scatter_to_pattern(ap, pptr, pind)

        # pivot health: exact-zero check by default; an active
        # resilience engine upgrades it to a relative near-zero test
        from repro.resilience.context import get_engine
        from repro.resilience.detect import check_pivot

        eng = get_engine()
        pivot_rtol = eng.pivot_rtol if eng is not None else 0.0
        diag_scale = float(np.max(np.abs(a.diagonal()))) if a.n_rows else 1.0

        # U rows stored per-row for the update loop
        u_cols: List[np.ndarray] = [None] * n  # type: ignore[list-item]
        u_vals: List[np.ndarray] = [None] * n  # type: ignore[list-item]
        w = np.zeros(n, dtype=np.float64)
        flops = 0.0
        out_vals = np.empty_like(vals)

        for i in range(n):
            lo, hi = pptr[i], pptr[i + 1]
            cols = pind[lo:hi]
            w[cols] = vals[lo:hi]
            lower = cols[cols < i]
            for k in lower.tolist():
                ucols_k = u_cols[k]
                uvals_k = u_vals[k]
                # pivot of row k is its first U entry (the diagonal)
                lik = w[k] / uvals_k[0]
                w[k] = lik
                if ucols_k.size > 1:
                    w[ucols_k[1:]] -= lik * uvals_k[1:]
                    flops += 2.0 * (ucols_k.size - 1)
            row_vals = w[cols]
            out_vals[lo:hi] = row_vals
            upper_sel = cols >= i
            u_cols[i] = cols[upper_sel]
            u_vals[i] = row_vals[upper_sel]
            if u_cols[i].size == 0 or u_cols[i][0] != i:
                from repro.resilience.detect import PivotBreakdownError

                raise PivotBreakdownError(
                    f"zero pivot in ILU at row {i} (diagonal missing "
                    f"from the pattern)",
                    index=i,
                    value=0.0,
                    solver="iluk",
                )
            check_pivot(
                float(u_vals[i][0]), diag_scale, i, "iluk", rtol=pivot_rtol
            )
            # clear the work array: pattern cols plus everything we touched
            w[cols] = 0.0
            for k in lower.tolist():
                w[u_cols[k]] = 0.0

        # split into L (strict, unit diagonal implicit) and U (with diag)
        rows_all = np.repeat(np.arange(n, dtype=np.int64), np.diff(pptr))
        lower_mask = pind < rows_all
        upper_mask = ~lower_mask
        self.l = CsrMatrix.from_coo(
            rows_all[lower_mask], pind[lower_mask], out_vals[lower_mask], (n, n)
        )
        self.u = CsrMatrix.from_coo(
            rows_all[upper_mask], pind[upper_mask], out_vals[upper_mask], (n, n)
        )
        self._build_numeric_profile(flops)
        return self

    # ------------------------------------------------------------------
    def _build_numeric_profile(self, flops: float) -> None:
        """Level-set scheduled SpILU numeric cost (KK execution model).

        The row-dependency DAG of the factorization equals the L
        pattern's; flops are distributed over levels proportionally to
        each level's L entries (a good proxy without per-row counters).
        """
        from repro.tri.levelset import level_schedule

        self.numeric_profile = KernelProfile()
        lev = level_schedule(self.l, lower=True)
        n_levels = int(lev.max()) + 1 if lev.size else 0
        rows_all = np.repeat(
            np.arange(self.l.n_rows, dtype=np.int64), self.l.row_nnz()
        )
        nnz_total = max(self.l.nnz, 1)
        for lv in range(n_levels):
            rows_in = np.flatnonzero(lev == lv)
            nnz_lv = int(np.sum(lev[rows_all] == lv))
            share = nnz_lv / nnz_total
            lv_flops = flops * share
            # IKJ updates stream the pivot-row segments: traffic scales
            # with the update count (cache-discounted), not just nnz
            self.numeric_profile.add(
                "factor.spilu_level",
                flops=lv_flops,
                bytes=max(16.0 * (nnz_lv + rows_in.size * 3), 4.0 * lv_flops),
                parallelism=float(max(rows_in.size, 1)),
            )

    # ------------------------------------------------------------------
    def solve_profile_exact(self) -> KernelProfile:
        """Profile of one exact (level-set) L+U triangular solve pair."""
        from repro.tri.levelset import LevelScheduledTriangular

        prof = KernelProfile()
        prof.extend(
            LevelScheduledTriangular(self.l, lower=True, unit_diagonal=True).kernel_profile()
        )
        prof.extend(LevelScheduledTriangular(self.u, lower=False).kernel_profile())
        return prof


def _scatter_to_pattern(
    a: CsrMatrix, pptr: np.ndarray, pind: np.ndarray
) -> np.ndarray:
    """Values of ``a`` at the pattern positions (zero where absent)."""
    n = a.n_rows
    vals = np.zeros(pind.size, dtype=np.float64)
    col_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        lo, hi = pptr[i], pptr[i + 1]
        col_pos[pind[lo:hi]] = np.arange(lo, hi)
        acols, avals = a.row(i)
        dest = col_pos[acols]
        ok = dest >= 0
        vals[dest[ok]] = avals[ok]
        col_pos[pind[lo:hi]] = -1
    return vals
