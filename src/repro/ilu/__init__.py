"""Incomplete LU factorizations (the inexact local solvers of Section V-B.3).

* :mod:`repro.ilu.iluk` -- level-of-fill ILU(k): a symbolic phase
  computes the fill pattern from the level rule
  ``lev(i,j) = min(lev(i,k) + lev(k,j) + 1)``, then a numeric IKJ
  factorization fills the fixed pattern.  The parallel execution model
  is level-set scheduling (Kokkos-Kernels SpILU/SpTRSV).
* :mod:`repro.ilu.fastilu` -- the fine-grained *iterative* variant of
  [Chow & Patel 2015] (Trilinos FastILU): each factor entry is a fixed-
  point unknown updated by Jacobi sweeps, so a sweep is one massively
  parallel kernel instead of a dependency-ordered traversal.  Paired
  with :class:`repro.tri.jacobi.JacobiTriangular` (FastSpTRSV) this is
  the configuration that wins the paper's solve-time study (Table IV-V).
"""

from repro.ilu.iluk import IlukFactorization, iluk_symbolic
from repro.ilu.fastilu import FastIlu

__all__ = ["FastIlu", "IlukFactorization", "iluk_symbolic"]
