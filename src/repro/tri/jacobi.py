"""FastSpTRSV: Jacobi-iteration approximate triangular solve.

[Chow & Patel 2015] / Trilinos FastILU: instead of substitution, solve
``T x = b`` approximately with the stationary iteration

``x_{k+1} = x_k + D^{-1} (b - T x_k)``,

starting from ``x_0 = D^{-1} b``.  Each sweep is one SpMV with
full-vector parallelism and converges in a handful of sweeps for
diagonally-dominant-ish factors; the iteration matrix ``I - D^{-1} T``
is nilpotent (strictly triangular after scaling), so after ``n`` sweeps
the result is exact -- in practice the paper's default is 5 sweeps.

The approximation raises the Krylov iteration count (Table IV(b)) but
each application is launch-light and massively parallel on the GPU,
which is why the Fast variants win the solve-time columns.
"""

from __future__ import annotations

import numpy as np

from repro.machine.kernels import KernelProfile
from repro.sparse.csr import CsrMatrix

__all__ = ["JacobiTriangular"]


class JacobiTriangular:
    """Approximate triangular solver with a fixed number of Jacobi sweeps.

    Parameters
    ----------
    t:
        Square triangular CSR matrix with explicit diagonal (unless
        ``unit_diagonal``).
    sweeps:
        Number of Jacobi iterations (the paper defaults to 5 for the
        triangular solves and 3 for the factorization sweeps).
    unit_diagonal:
        Implicit unit diagonal.
    """

    def __init__(
        self,
        t: CsrMatrix,
        sweeps: int = 5,
        unit_diagonal: bool = False,
        damping: float = 0.8,
    ) -> None:
        if t.n_rows != t.n_cols:
            raise ValueError("square matrix required")
        if sweeps < 0:
            raise ValueError("sweeps must be non-negative")
        if not (0.0 < damping <= 1.0):
            raise ValueError("damping must be in (0, 1]")
        self.t = t
        self.sweeps = int(sweeps)
        self.unit_diagonal = unit_diagonal
        # the undamped iteration matrix I - D^{-1}T is nilpotent but
        # highly non-normal for deep factors: the transient can grow
        # before the guaranteed n-sweep convergence.  Damping trades the
        # finite-termination property for a tame transient (this is the
        # FastSpTRSV damping-factor parameter of the paper's Table I).
        self.damping = float(damping)
        n = t.n_rows
        if unit_diagonal:
            self._dinv = np.ones(n, dtype=np.float64)
        else:
            diag = t.diagonal()
            if np.any(diag == 0):
                raise ZeroDivisionError("zero on the diagonal")
            self._dinv = 1.0 / diag

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Approximately solve ``T x = b`` with the configured sweeps."""
        b = np.asarray(b, dtype=np.float64)
        dinv = self._dinv if b.ndim == 1 else self._dinv[:, None]
        w = self.damping
        x = w * dinv * b
        for _ in range(self.sweeps):
            tx = self.t.matmat(x) if x.ndim == 2 else self.t.matvec(x)
            if self.unit_diagonal:
                # with unit_diagonal, ``t`` stores only the strict part
                tx = tx + x
            x = x + w * dinv * (b - tx)
        return x

    def kernel_profile(self) -> KernelProfile:
        """One SpMV-shaped kernel per sweep (plus the initial scaling)."""
        prof = KernelProfile()
        n = self.t.n_rows
        prof.add("sptrsv.jacobi_scale", flops=float(n), bytes=24.0 * n, parallelism=float(n))
        for _ in range(self.sweeps):
            prof.add(
                "sptrsv.jacobi_sweep",
                flops=2.0 * self.t.nnz + 2.0 * n,
                bytes=self.t.nnz * 16.0 + n * 32.0,
                parallelism=float(n),
            )
        return prof
