"""Sequential substitution triangular solves.

Reference row-by-row forward/backward substitution.  This is the
numerically exact baseline (SuperLU's internal CPU solver in the paper);
the level-set solvers in :mod:`repro.tri.levelset` compute bit-identical
results with a parallel schedule, so these loops are used mainly by the
test-suite and for very small systems.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CsrMatrix

__all__ = ["solve_lower", "solve_upper"]


def solve_lower(
    l: CsrMatrix, b: np.ndarray, unit_diagonal: bool = False
) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` (CSR, sorted rows)."""
    n = l.n_rows
    x = np.array(b, dtype=np.result_type(l.dtype, b.dtype), copy=True)
    indptr, indices, data = l.indptr, l.indices, l.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        if unit_diagonal:
            x[i] -= vals @ x[cols]
        else:
            # sorted row: diagonal is the last stored entry at/below i
            if hi == lo or cols[-1] != i:
                raise ZeroDivisionError(f"missing diagonal in row {i}")
            x[i] = (x[i] - vals[:-1] @ x[cols[:-1]]) / vals[-1]
    return x


def solve_upper(
    u: CsrMatrix, b: np.ndarray, unit_diagonal: bool = False
) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` (CSR, sorted rows)."""
    n = u.n_rows
    x = np.array(b, dtype=np.result_type(u.dtype, b.dtype), copy=True)
    indptr, indices, data = u.indptr, u.indices, u.data
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        if unit_diagonal:
            x[i] -= vals @ x[cols]
        else:
            if hi == lo or cols[0] != i:
                raise ZeroDivisionError(f"missing diagonal in row {i}")
            x[i] = (x[i] - vals[1:] @ x[cols[1:]]) / vals[0]
    return x
