"""Sparse triangular solvers.

The solve phase of every preconditioner application in the paper is
dominated by sparse triangular solves (SpTRSV) with direct or incomplete
factors.  This package implements the four algorithmic variants studied
in Sections V-B.2/V-B.3:

* :mod:`repro.tri.substitution` -- sequential row-by-row substitution
  (the CPU baseline, e.g. SuperLU's internal solver);
* :mod:`repro.tri.levelset` -- level-set (wavefront) scheduled solve, the
  standard fine-grained parallel algorithm [Anderson & Saad];
* :mod:`repro.tri.supernodal` -- supernode-blocked level-set solve
  modelling the Kokkos-Kernels solver of [Yamazaki et al. 2020]: fewer,
  larger kernel launches, hierarchical (team) parallelism;
* :mod:`repro.tri.partitioned_inverse` -- the partitioned-inverse
  transformation [Alvarado et al.] turning the solve into a sequence of
  SpMVs;
* :mod:`repro.tri.jacobi` -- FastSpTRSV, the iterative (Jacobi sweep)
  approximate solve of [Chow & Patel] exposed in Trilinos as FastILU.

Every solver reports a :class:`repro.machine.kernels.KernelTrace` so the
machine model can price it on CPU or GPU execution spaces.
"""

from repro.tri.substitution import solve_lower, solve_upper
from repro.tri.levelset import (
    level_schedule,
    LevelScheduledTriangular,
)
from repro.tri.supernodal import SupernodalTriangular, detect_supernodes
from repro.tri.partitioned_inverse import PartitionedInverseTriangular
from repro.tri.jacobi import JacobiTriangular

__all__ = [
    "JacobiTriangular",
    "LevelScheduledTriangular",
    "PartitionedInverseTriangular",
    "SupernodalTriangular",
    "detect_supernodes",
    "level_schedule",
    "solve_lower",
    "solve_upper",
]
