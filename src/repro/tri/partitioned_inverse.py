"""Partitioned-inverse triangular solve.

[Alvarado, Pothen, Schreiber 1993]: a triangular factor can be written
as a product of level factors ``L = L_0 L_1 ... L_{k-1}`` where each
``L_l`` is the identity except for the rows of level ``l``.  Each level
factor inverts in closed form (its strict part connects only to earlier
levels, so it is nilpotent of index 2):

``x = L^{-1} b = M_{k-1} ... M_1 M_0 b``

with ``M_l`` the explicit sparse inverse of ``L_l``.  The solve becomes
a sequence of SpMVs, each carrying *full-vector* parallelism -- more
parallel than substitution at the cost of ``n_levels`` full-vector
passes.  This is the Kokkos-Kernels ``partitioned inverse`` option
mentioned in Section V-B.2 (the paper's runs do not enable it; we
include it for the ablation benches).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.machine.kernels import KernelProfile
from repro.sparse.csr import CsrMatrix
from repro.tri.levelset import level_schedule

__all__ = ["PartitionedInverseTriangular"]


class PartitionedInverseTriangular:
    """Triangular solver that applies explicit per-level inverses.

    Parameters
    ----------
    t:
        Square triangular CSR matrix with explicit diagonal (unless
        ``unit_diagonal``).
    lower:
        Orientation.
    unit_diagonal:
        Implicit unit diagonal.
    """

    def __init__(
        self, t: CsrMatrix, lower: bool = True, unit_diagonal: bool = False
    ) -> None:
        if t.n_rows != t.n_cols:
            raise ValueError("square matrix required")
        n = t.n_rows
        self.shape = t.shape
        self.lower = lower
        level = level_schedule(t, lower=lower)
        self.n_levels = int(level.max()) + 1 if n else 0

        diag = np.ones(n, dtype=t.dtype)
        if not unit_diagonal:
            diag = t.diagonal()
            if np.any(diag == 0):
                raise ZeroDivisionError("zero on the diagonal")

        all_rows = np.repeat(np.arange(n, dtype=np.int64), t.row_nnz())
        strict = t.indices < all_rows if lower else t.indices > all_rows
        s_rows, s_cols, s_vals = (
            all_rows[strict],
            t.indices[strict],
            t.data[strict],
        )
        ent_level = level[s_rows]

        self.factors: List[CsrMatrix] = []
        eye_rows = np.arange(n, dtype=np.int64)
        for lv in range(self.n_levels):
            in_level = level == lv
            sel = ent_level == lv
            # M_l: identity on rows outside the level; on level rows,
            # diagonal 1/d_r and off-diagonals -t_rc / d_r.
            diag_vals = np.where(in_level, 1.0 / diag, 1.0)
            rows = np.concatenate([eye_rows, s_rows[sel]])
            cols = np.concatenate([eye_rows, s_cols[sel]])
            vals = np.concatenate(
                [diag_vals, -s_vals[sel] / diag[s_rows[sel]]]
            )
            self.factors.append(CsrMatrix.from_coo(rows, cols, vals, (n, n)))

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``T x = b`` via the SpMV sequence (exact)."""
        x = np.asarray(b, dtype=np.float64)
        for m in self.factors:
            x = m.matmat(x) if x.ndim == 2 else m.matvec(x)
        return x

    def kernel_profile(self) -> KernelProfile:
        """One SpMV kernel per level, each with full-vector parallelism."""
        prof = KernelProfile()
        for m in self.factors:
            prof.add(
                "sptrsv.partitioned_inverse_spmv",
                flops=2.0 * m.nnz,
                bytes=m.nnz * 16.0 + m.n_rows * 24.0,
                parallelism=float(m.n_rows),
            )
        return prof
