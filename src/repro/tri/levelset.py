"""Level-set (wavefront) scheduled sparse triangular solve.

Rows are grouped into *levels*: row ``i``'s level is one more than the
maximum level of the rows it depends on.  All rows in one level are
independent and execute as one parallel kernel; the number of levels is
the critical path, i.e. the number of GPU kernel launches (Section
V-B.2 of the paper; [Anderson & Saad 1989]).

The solver computes exactly the substitution result -- the schedule only
changes the order of independent updates -- and its
:meth:`~LevelScheduledTriangular.kernel_profile` exposes one kernel per
level so the machine model can price launch-bound behaviour.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.backend import get_backend
from repro.machine.kernels import KernelProfile
from repro.sparse.csr import CsrMatrix

__all__ = ["level_schedule", "LevelScheduledTriangular"]


def _level_schedule_reference(t: CsrMatrix, lower: bool = True) -> np.ndarray:
    """The seed row-at-a-time schedule (executable spec + bench baseline).

    O(n) python-loop formulation; :func:`level_schedule` must match it
    bit for bit (the backend test suite and ``python -m repro.bench
    --backend`` both compare against this).
    """
    n = t.n_rows
    level = np.zeros(n, dtype=np.int64)
    indptr, indices = t.indptr, t.indices
    order = range(n) if lower else range(n - 1, -1, -1)
    for i in order:
        cols = indices[indptr[i] : indptr[i + 1]]
        deps = cols[cols < i] if lower else cols[cols > i]
        if deps.size:
            level[i] = level[deps].max() + 1
    return level


def level_schedule(t: CsrMatrix, lower: bool = True) -> np.ndarray:
    """Compute the level of every row of a triangular matrix.

    ``level[i] = 1 + max(level[j])`` over the off-diagonal entries
    ``T(i, j)`` of row ``i`` (its dependencies); independent rows get
    level 0.

    Vectorized wavefront propagation: rows whose dependencies are all
    resolved form the next level, and resolving a level decrements the
    remaining-dependency counts of its dependents in one
    gather/bincount pass.  Python iterates only over *levels* (the
    critical path) instead of rows, so the schedule itself runs at the
    level-parallel granularity it describes.  Integer result, exactly
    equal to :func:`_level_schedule_reference`.
    """
    from repro.sparse.spgemm import _concat_ranges

    n = t.n_rows
    level = np.zeros(n, dtype=np.int64)
    if n == 0:
        return level
    rows = t.expanded_rows()
    indices = t.indices
    strict = indices < rows if lower else indices > rows
    src = indices[strict]  # dependency row of each strict entry
    dst = rows[strict]  # dependent row
    indegree = np.bincount(dst, minlength=n)
    # adjacency grouped by dependency: out-edges of row j
    order = np.argsort(src, kind="stable")
    dst_by_src = dst[order]
    out_counts = np.bincount(src, minlength=n)
    out_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_ptr[1:])
    frontier = np.flatnonzero(indegree == 0)
    lv = 0
    while frontier.size:
        level[frontier] = lv
        lv += 1
        edges = _concat_ranges(out_ptr[frontier], out_counts[frontier])
        if not edges.size:
            break
        targets = dst_by_src[edges]
        indegree -= np.bincount(targets, minlength=n)
        candidates = np.unique(targets)
        frontier = candidates[indegree[candidates] == 0]
    return level


class LevelScheduledTriangular:
    """A triangular matrix preprocessed for level-set execution.

    Parameters
    ----------
    t:
        Square lower- or upper-triangular CSR matrix with sorted rows and
        an explicit diagonal (unless ``unit_diagonal``).
    lower:
        Orientation.
    unit_diagonal:
        When True the diagonal is implicitly one and need not be stored.

    Notes
    -----
    Construction separates strict and diagonal entries and builds, for
    each level, flat gather arrays so a level executes as two vectorized
    passes (gather-multiply, segmented reduce) -- the numpy analogue of a
    row-per-thread SpTRSV level kernel.
    """

    def __init__(
        self, t: CsrMatrix, lower: bool = True, unit_diagonal: bool = False
    ) -> None:
        if t.n_rows != t.n_cols:
            raise ValueError("triangular solve requires a square matrix")
        self.shape = t.shape
        self.lower = lower
        self.unit_diagonal = unit_diagonal
        self.dtype = t.dtype
        n = t.n_rows

        level = level_schedule(t, lower=lower)
        self.levels = level
        self.n_levels = int(level.max()) + 1 if n else 0

        diag = np.ones(n, dtype=t.dtype)
        if not unit_diagonal:
            diag = t.diagonal()
            if np.any(diag == 0):
                raise ZeroDivisionError("zero on the diagonal")
        self._diag = diag

        # per-level flattened strict-entry structure
        indptr, indices, data = t.indptr, t.indices, t.data
        all_rows = np.repeat(np.arange(n, dtype=np.int64), t.row_nnz())
        strict = indices < all_rows if lower else indices > all_rows
        s_rows = all_rows[strict]
        s_cols = indices[strict]
        s_vals = data[strict]

        self._level_rows: List[np.ndarray] = []
        self._level_cols: List[np.ndarray] = []
        self._level_vals: List[np.ndarray] = []
        self._level_segptr: List[np.ndarray] = []
        self._level_rowset: List[np.ndarray] = []
        entry_level = level[s_rows]
        for lv in range(self.n_levels):
            rows_in = np.flatnonzero(level == lv).astype(np.int64)
            sel = entry_level == lv
            er, ec, ev = s_rows[sel], s_cols[sel], s_vals[sel]
            order = np.argsort(er, kind="stable")
            er, ec, ev = er[order], ec[order], ev[order]
            # segment pointer per row of the level (rows_in is sorted)
            counts = np.zeros(rows_in.size + 1, dtype=np.int64)
            pos = np.searchsorted(rows_in, er)
            np.add.at(counts, pos + 1, 1)
            np.cumsum(counts, out=counts)
            self._level_rowset.append(rows_in)
            self._level_rows.append(er)
            self._level_cols.append(ec)
            self._level_vals.append(ev)
            self._level_segptr.append(counts)

        self._nnz_strict = int(s_rows.size)

    # ------------------------------------------------------------------
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``T x = b``; exact (identical to substitution).

        ``b`` may be a vector or a 2-D array of right-hand-side columns
        (the coarse-basis extension solves use many columns at once).
        Routed through the array backend of ``b``: numpy arrays take
        the bit-identical numpy path; backend tensors are solved on
        their device and returned as the same type.
        """
        bk = get_backend(b)
        b = bk.asarray(b)
        x = bk.astype(bk.copy(b), bk.result_type(self.dtype, b))
        diag = bk.asarray(self._diag)
        diag = diag if x.ndim == 1 else diag[:, None]
        for lv in range(self.n_levels):
            rows = self._level_rowset[lv]
            cols = self._level_cols[lv]
            vals = bk.asarray(self._level_vals[lv])
            segptr = self._level_segptr[lv]
            if cols.size:
                xc = bk.take(x, cols)
                prods = vals * xc if x.ndim == 1 else xc * vals[:, None]
                seg = bk.zeros((rows.size,) + tuple(x.shape[1:]), dtype=bk.dtype_of(x))
                nonempty = np.flatnonzero(np.diff(segptr) > 0)  # backend-ok: host plan
                if nonempty.size:
                    bk.put(seg, nonempty, bk.segment_sum(prods, segptr[nonempty], axis=0))
                x[rows] -= seg
            x[rows] /= bk.take(diag, rows)
        return x

    # ------------------------------------------------------------------
    def kernel_profile(self) -> KernelProfile:
        """One kernel per level: the launch-bound GPU cost shape.

        Per level: 2 flops per strict entry plus a divide per row; bytes
        cover the entry values/indices and the row vectors.
        """
        prof = KernelProfile()
        itemsize = self.dtype.itemsize
        for lv in range(self.n_levels):
            rows = self._level_rowset[lv]
            nnz = self._level_cols[lv].size
            flops = 2.0 * nnz + rows.size
            bytes_ = nnz * (itemsize + 8) + rows.size * 3 * itemsize
            prof.add("sptrsv.level", flops, bytes_, parallelism=float(rows.size))
        return prof
