"""Supernode-blocked level-set sparse triangular solve.

Direct factors of FEM matrices contain *supernodes*: groups of adjacent
columns with identical below-diagonal structure that can be stored as
dense blocks.  Executing the level-set schedule over supernodes instead
of individual rows (i) shortens the level tree, i.e. the number of GPU
kernel launches, and (ii) turns the per-node work into dense
triangular-solve + GEMV calls that map onto hierarchical (team) GPU
parallelism.  This reproduces the Kokkos-Kernels solver of
[Yamazaki, Rajamanickam, Ellingwood 2020] used throughout the paper's
SuperLU GPU runs.

Dense per-block kernels delegate to BLAS/LAPACK via numpy -- exactly as
the modelled solvers delegate to cuBLAS.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.backend import get_backend
from repro.machine.kernels import KernelProfile

__all__ = ["detect_supernodes", "SupernodalTriangular"]


def _detect_supernodes_reference(
    l_indptr: np.ndarray,
    l_indices: np.ndarray,
    max_width: int = 64,
) -> np.ndarray:
    """The seed column-at-a-time detector (executable spec + bench baseline).

    O(n) python-loop formulation; :func:`detect_supernodes` must match
    it bit for bit.
    """
    n = l_indptr.size - 1
    boundaries = [0]
    width = 1
    for j in range(1, n):
        prev = l_indices[l_indptr[j - 1] : l_indptr[j]]
        cur = l_indices[l_indptr[j] : l_indptr[j + 1]]
        chain = (
            prev.size == cur.size + 1
            and prev[0] == j - 1
            and np.array_equal(prev[1:], cur)
            and width < max_width
        )
        if chain:
            width += 1
        else:
            boundaries.append(j)
            width = 1
    boundaries.append(n)
    return np.asarray(boundaries, dtype=np.int64)


def detect_supernodes(
    l_indptr: np.ndarray,
    l_indices: np.ndarray,
    max_width: int = 64,
) -> np.ndarray:
    """Find fundamental supernodes of a lower-triangular CSC pattern.

    Column ``j+1`` joins ``j``'s supernode when
    ``struct(L(:, j+1)) == struct(L(:, j)) \\ {j}`` (identical structure
    after dropping the pivot row).  Returns ``sn_ptr`` with supernode
    ``s`` spanning columns ``[sn_ptr[s], sn_ptr[s+1])``.

    Vectorized: the per-column chain predicate becomes three mask
    comparisons plus one flat segment-equality pass (gather both column
    patterns with the spgemm cumsum trick, count mismatches per
    candidate with a bincount); the ``max_width`` split falls out of
    each column's position inside its structural run.  Exactly equal to
    :func:`_detect_supernodes_reference`.

    Parameters
    ----------
    l_indptr, l_indices:
        CSC pattern of ``L`` with sorted row indices including the
        diagonal.
    max_width:
        Split supernodes wider than this (bounds frontal memory, and on
        the GPU bounds the team size).
    """
    from repro.sparse.spgemm import _concat_ranges

    n = l_indptr.size - 1
    if n <= 0:
        return np.asarray([0, n] if n == 0 else [0], dtype=np.int64)
    indptr = np.asarray(l_indptr, dtype=np.int64)
    counts = np.diff(indptr)
    # chain[j] (j >= 1): column j structurally continues column j-1
    chain = np.zeros(n, dtype=bool)
    js = np.arange(1, n)
    cand = (counts[js - 1] == counts[js] + 1) & (
        l_indices[indptr[js - 1]] == js - 1
    )
    cj = js[cand]
    if cj.size:
        seg_len = counts[cj]
        a_idx = _concat_ranges(indptr[cj - 1] + 1, seg_len)
        b_idx = _concat_ranges(indptr[cj], seg_len)
        seg_id = np.repeat(np.arange(cj.size, dtype=np.int64), seg_len)
        mism = np.bincount(
            seg_id,
            weights=(l_indices[a_idx] != l_indices[b_idx]),
            minlength=cj.size,
        )
        chain[cj] = mism == 0
    # structural runs; a run of length R splits every max_width columns
    is_start = ~chain
    is_start[0] = True
    starts = np.flatnonzero(is_start)
    run_id = np.cumsum(is_start) - 1
    pos_in_run = np.arange(n, dtype=np.int64) - starts[run_id]
    boundary = is_start | (pos_in_run % max_width == 0)
    return np.append(np.flatnonzero(boundary), n).astype(np.int64)


class SupernodalTriangular:
    """A lower-triangular factor stored as dense supernode blocks.

    Parameters
    ----------
    n:
        Matrix dimension.
    sn_ptr:
        ``(n_supernodes + 1,)`` column partition.
    rows_below:
        Per supernode, the sorted global row indices strictly below the
        diagonal block.
    blocks:
        Per supernode ``s`` of width ``w`` with ``m`` below-rows, a dense
        ``(w + m, w)`` array whose top ``w x w`` part is the
        lower-triangular diagonal block and whose bottom part is the
        sub-diagonal panel.
    unit_diagonal:
        True when the diagonal block has implicit unit diagonal (LU's L
        factor).

    The same object solves both ``L x = b`` (:meth:`solve_forward`) and
    ``L^T x = b`` (:meth:`solve_backward`), which is all a Cholesky or
    LDL^T factorization needs.
    """

    def __init__(
        self,
        n: int,
        sn_ptr: np.ndarray,
        rows_below: Sequence[np.ndarray],
        blocks: Sequence[np.ndarray],
        unit_diagonal: bool = False,
    ) -> None:
        self.n = int(n)
        self.sn_ptr = np.asarray(sn_ptr, dtype=np.int64)
        self.rows_below = [np.asarray(r, dtype=np.int64) for r in rows_below]
        self.blocks = [np.asarray(b) for b in blocks]
        self.unit_diagonal = unit_diagonal
        self.n_supernodes = self.sn_ptr.size - 1
        if len(self.blocks) != self.n_supernodes:
            raise ValueError("one dense block per supernode required")
        for s in range(self.n_supernodes):
            w = self.sn_ptr[s + 1] - self.sn_ptr[s]
            m = self.rows_below[s].size
            if self.blocks[s].shape != (w + m, w):
                raise ValueError(f"block {s} has wrong shape")
        self._levels = self._schedule()
        self.n_levels = int(self._levels.max()) + 1 if self.n_supernodes else 0
        self._level_sns = [
            np.flatnonzero(self._levels == lv) for lv in range(self.n_levels)
        ]

    # ------------------------------------------------------------------
    def _schedule(self) -> np.ndarray:
        """Level of each supernode in the forward-solve DAG."""
        col2sn = np.empty(self.n, dtype=np.int64)
        for s in range(self.n_supernodes):
            col2sn[self.sn_ptr[s] : self.sn_ptr[s + 1]] = s
        level = np.zeros(self.n_supernodes, dtype=np.int64)
        for t in range(self.n_supernodes):
            rb = self.rows_below[t]
            if rb.size == 0:
                continue
            targets = np.unique(col2sn[rb])
            level[targets] = np.maximum(level[targets], level[t] + 1)
        return level

    @property
    def dtype(self) -> np.dtype:
        """Value dtype of the dense blocks."""
        return self.blocks[0].dtype if self.blocks else np.dtype(np.float64)

    # ------------------------------------------------------------------
    def solve_forward(self, b: np.ndarray) -> np.ndarray:
        """Solve ``L x = b`` (1-D or 2-D ``b``).

        Routed through the array backend of ``b`` (dense triangular
        solve + panel GEMV per supernode); the numpy path issues the
        identical LAPACK/BLAS calls as before the backend refactor.
        """
        bk = get_backend(b)
        b = bk.asarray(b)
        x = bk.astype(bk.copy(b), bk.result_type(self.dtype, b))
        for lv in range(self.n_levels):
            for s in self._level_sns[lv]:
                c0, c1 = self.sn_ptr[s], self.sn_ptr[s + 1]
                w = c1 - c0
                blk = bk.asarray(self.blocks[s])
                xs = bk.solve_triangular(
                    blk[:w], x[c0:c1], lower=True, unit_diagonal=self.unit_diagonal
                )
                x[c0:c1] = xs
                rb = self.rows_below[s]
                if rb.size:
                    x[rb] -= bk.gemv(blk[w:], xs)
        return x

    def solve_backward(self, b: np.ndarray) -> np.ndarray:
        """Solve ``L^T x = b`` (1-D or 2-D ``b``); backend-routed."""
        bk = get_backend(b)
        b = bk.asarray(b)
        x = bk.astype(bk.copy(b), bk.result_type(self.dtype, b))
        for lv in range(self.n_levels - 1, -1, -1):
            for s in self._level_sns[lv]:
                c0, c1 = self.sn_ptr[s], self.sn_ptr[s + 1]
                w = c1 - c0
                blk = bk.asarray(self.blocks[s])
                rhs = x[c0:c1]
                rb = self.rows_below[s]
                if rb.size:
                    rhs = rhs - bk.gemv(blk[w:].T, bk.take(x, rb))
                x[c0:c1] = bk.solve_triangular(
                    blk[:w].T, rhs, lower=False, unit_diagonal=self.unit_diagonal
                )
        return x

    # ------------------------------------------------------------------
    def kernel_profile(self) -> KernelProfile:
        """One team kernel per level for a single triangular solve.

        Work per supernode of width ``w`` with ``m`` below-rows:
        ``w^2`` flops for the dense triangular solve plus ``2 w m`` for
        the panel GEMV; bytes cover the dense block and the touched
        vector entries.  Parallelism is the total rows active in the
        level (team-level parallelism inside blocks plus independent
        blocks).
        """
        prof = KernelProfile()
        itemsize = np.dtype(self.dtype).itemsize
        for lv in range(self.n_levels):
            flops = 0.0
            bytes_ = 0.0
            rows_active = 0.0
            for s in self._level_sns[lv]:
                w = int(self.sn_ptr[s + 1] - self.sn_ptr[s])
                m = self.rows_below[s].size
                flops += w * w + 2.0 * w * m
                bytes_ += (w + m) * w * itemsize + (w + m) * 2 * itemsize
                rows_active += w + m
            prof.add(
                "sptrsv.supernode_level",
                flops,
                bytes_,
                parallelism=max(rows_active, 1.0),
            )
        return prof

    @classmethod
    def from_csc(
        cls,
        l_indptr: np.ndarray,
        l_indices: np.ndarray,
        l_data: np.ndarray,
        n: int,
        unit_diagonal: bool = False,
        max_width: int = 64,
    ) -> "SupernodalTriangular":
        """Build from a CSC lower factor (e.g. a Gilbert--Peierls L).

        This is the "Kokkos-Kernels SpTRSV on SuperLU factors" path of
        the paper: supernodes are detected in the factor after numeric
        factorization, which is part of why the SuperLU GPU setup is
        expensive (Table III(a) / Fig. 4).
        """
        sn_ptr = detect_supernodes(l_indptr, l_indices, max_width=max_width)
        rows_below: List[np.ndarray] = []
        blocks: List[np.ndarray] = []
        for s in range(sn_ptr.size - 1):
            c0, c1 = int(sn_ptr[s]), int(sn_ptr[s + 1])
            w = c1 - c0
            first = l_indices[l_indptr[c0] : l_indptr[c0 + 1]]
            below = first[w:]  # struct(col c0) = [c0..c1) ++ below, sorted
            blk = np.zeros((w + below.size, w), dtype=l_data.dtype)
            for k in range(w):
                vals = l_data[l_indptr[c0 + k] : l_indptr[c0 + k + 1]]
                blk[k:, k] = vals
            rows_below.append(below.astype(np.int64))
            blocks.append(blk)
        return cls(n, sn_ptr, rows_below, blocks, unit_diagonal=unit_diagonal)
