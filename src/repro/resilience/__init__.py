"""Breakdown-tolerant solver runtime: detect / recover / escalate.

The paper's experimental matrix is a menu of *approximate* components
with known numerical failure modes (pivot-free factorizations, FastILU
sweep divergence, half-precision overflow).  This package makes the
stack survive them:

* :mod:`repro.resilience.detect` -- the breakdown exception taxonomy
  and the cheap in-flight detectors (NaN/Inf, stagnation, near-zero
  pivots, sweep divergence, float32 overflow);
* :mod:`repro.resilience.policy` -- the per-subdomain escalation ladder
  (boost damping -> shift diagonal -> FastILU -> ILU(k) -> exact);
* :mod:`repro.resilience.inject` -- seeded fault plans that break runs
  on purpose so the ladder is testable;
* :mod:`repro.resilience.engine` -- the ambient engine threading it all
  through the solver, plus the per-run :class:`HealthReport`;
* ``python -m repro.resilience`` -- the chaos driver CI runs: every
  fault kind on Laplace and elasticity, failing on any unrecovered
  solve.

Typical use::

    from repro import SolverSession, ResilienceConfig, FaultPlan

    result = SolverSession(
        problem,
        resilience=ResilienceConfig(
            fault_plan=FaultPlan.single("pivot_breakdown", rank=3)
        ),
    ).solve()
    print(result.status)            # "recovered"
    print(result.health.describe()) # faults, detections, actions, ladder
"""

from repro.resilience.context import get_engine, set_engine, use_engine
from repro.resilience.detect import (
    BREAKDOWN_EXCEPTIONS,
    DivergenceError,
    FloatOverflowError,
    KrylovGuard,
    NumericalBreakdown,
    PivotBreakdownError,
    check_pivot,
    nonfinite_count,
    sweep_divergence,
)
from repro.resilience.engine import (
    GuardedOperator,
    HealthReport,
    ResilienceConfig,
    ResilienceEngine,
)
from repro.resilience.inject import (
    COMM_FAULT_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.policy import (
    ACTION_KINDS,
    SERVICE_ACTION_KINDS,
    LadderState,
    RecoveryAction,
    RecoveryPolicy,
)

__all__ = [
    "get_engine",
    "set_engine",
    "use_engine",
    "NumericalBreakdown",
    "PivotBreakdownError",
    "DivergenceError",
    "FloatOverflowError",
    "BREAKDOWN_EXCEPTIONS",
    "nonfinite_count",
    "check_pivot",
    "sweep_divergence",
    "KrylovGuard",
    "FAULT_KINDS",
    "COMM_FAULT_KINDS",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "ACTION_KINDS",
    "SERVICE_ACTION_KINDS",
    "RecoveryAction",
    "LadderState",
    "RecoveryPolicy",
    "ResilienceConfig",
    "ResilienceEngine",
    "GuardedOperator",
    "HealthReport",
]
