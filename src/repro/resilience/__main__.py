"""Chaos driver: the fault matrix as an executable check.

``PYTHONPATH=src python -m repro.resilience`` runs every fault kind of
:data:`~repro.resilience.inject.FAULT_KINDS` against a Laplace and an
elasticity problem, each under two arms:

* **resilient** -- detection and recovery on: the solve must reach the
  session tolerance (``status`` ``converged`` or ``recovered``);
* **control** -- the same faults with detection and recovery off: the
  solve must demonstrably fail (non-converged residual or a raised
  breakdown), proving the injected fault is real and the recovery is
  doing the work.

The seeds are fixed, so the matrix is deterministic; the CI ``chaos``
job runs this module and fails on any unrecovered (or unexpectedly
healthy) cell.  Exit status: 0 when every cell behaves, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import warnings

import numpy as np

__all__ = ["main", "run_matrix"]

#: per-kind rank the fault lands on (subdomain 1 exists in every 2x2x2 box)
_FAULT_RANK = 1
_RTOL = 1e-7


def _problems(which: str):
    from repro.fem import elasticity_3d, laplace_3d

    out = []
    if which in ("laplace", "all"):
        out.append(("laplace", laplace_3d(8)))
    if which in ("elasticity", "all"):
        out.append(("elasticity", elasticity_3d(6)))
    return out


def _config_for(kind: str):
    from repro.api import SchwarzConfig
    from repro.dd.local_solvers import LocalSolverSpec

    if kind == "fastilu_divergence":
        return SchwarzConfig(local=LocalSolverSpec(kind="fastilu"))
    if kind == "precision_overflow":
        return SchwarzConfig(precision="single")
    return SchwarzConfig()


def _run_cell(problem, kind: str, resilient: bool, seed: int, maxiter: int):
    """One chaos cell; returns (ok, detail)."""
    from repro.api import KrylovConfig, SolverSession
    from repro.resilience.detect import BREAKDOWN_EXCEPTIONS
    from repro.resilience.engine import ResilienceConfig
    from repro.resilience.inject import FaultPlan

    plan = FaultPlan.single(kind, rank=_FAULT_RANK, seed=seed)
    cfg = ResilienceConfig(
        fault_plan=plan, detect=resilient, recover=resilient
    )
    session = SolverSession(
        problem,
        partition=(2, 2, 2),
        config=_config_for(kind),
        krylov=KrylovConfig(rtol=_RTOL, maxiter=maxiter),
        policy=cfg,
    )
    try:
        with warnings.catch_warnings():
            # the control arm intentionally floods the solve with
            # inf/NaN; numpy's invalid-value warnings are the point
            warnings.simplefilter("ignore")
            res = session.solve()
    except BREAKDOWN_EXCEPTIONS as err:
        if resilient:
            return False, f"raised {type(err).__name__}: {err}"
        return True, f"raised {type(err).__name__} (fault is real)"
    healthy = bool(
        res.converged
        and np.all(np.isfinite(res.x))
        and res.final_relres <= _RTOL * 1.01
    )
    detail = f"status={res.status} iters={res.iterations} " \
             f"relres={res.final_relres:.2e}"
    if resilient:
        if not healthy:
            return False, "did not recover: " + detail
        actions = len(res.health.actions) if res.health else 0
        return True, detail + f" actions={actions}"
    if healthy:
        return False, "control arm unexpectedly healthy: " + detail
    return True, "fails as expected: " + detail


def run_matrix(which: str = "all", seed: int = 7, maxiter: int = 1000,
               control_maxiter: int = 150, out=sys.stdout,
               records=None) -> int:
    """Run the full fault matrix; returns the number of bad cells.

    When ``records`` is a list, one dict per cell is appended to it
    (the ``--json`` machine-readable output).
    """
    from repro.resilience.inject import FAULT_KINDS

    bad = 0
    for pname, problem in _problems(which):
        for kind in FAULT_KINDS:
            for resilient in (True, False):
                arm = "resilient" if resilient else "control"
                ok, detail = _run_cell(
                    problem, kind, resilient, seed,
                    maxiter if resilient else control_maxiter,
                )
                mark = "ok " if ok else "BAD"
                print(
                    f"[{mark}] {pname:<10} {kind:<20} {arm:<9} {detail}",
                    file=out,
                )
                if records is not None:
                    records.append({
                        "problem": pname,
                        "fault": kind,
                        "arm": arm,
                        "ok": bool(ok),
                        "detail": detail,
                        "seed": int(seed),
                    })
                bad += 0 if ok else 1
    return bad


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="run the deterministic fault-injection matrix",
    )
    parser.add_argument(
        "--problem", choices=("laplace", "elasticity", "all"),
        default="all", help="which problem family to fault (default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="fault-plan seed (default: 7)"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the matrix as JSON on stdout (human lines go to stderr)",
    )
    args = parser.parse_args(argv)
    records = [] if args.json else None
    out = sys.stderr if args.json else sys.stdout
    bad = run_matrix(which=args.problem, seed=args.seed, out=out,
                     records=records)
    if args.json:
        import json

        json.dump(
            {"seed": args.seed, "bad": bad, "cells": records},
            sys.stdout, indent=2,
        )
        print()
    if bad:
        print(f"{bad} chaos cell(s) misbehaved", file=sys.stderr)
        return 1
    print("chaos matrix clean", file=out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
