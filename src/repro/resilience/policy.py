"""Per-subdomain recovery ladder.

When a local factorization breaks down (or its fixed-point iteration
diverges), the policy escalates that subdomain one rung at a time,
cheapest remedy first:

1. **boost damping** -- a diverging FastILU factorization retries with
   the Jacobi damping factor halved (the Table I knob; Section VI notes
   the undamped sweeps diverge on stiff elasticity blocks);
2. **diagonal shift** -- a zero/near-zero/negative pivot retries with a
   growing relative shift ``A_i + sigma * max|diag| * I`` (the classic
   shifted-IC/LU remedy);
3. **solver fallback** -- FastILU falls back to ILU(k), ILU(k) to the
   exact pivot-free multifrontal, and that to SuperLU's
   partial-pivoting LU, which factors even the indefinite matrices the
   injected sign-flip faults produce.

Changing a subdomain's solver mid-run is sound because the outer
iteration is *right*-preconditioned GMRES storing the preconditioned
directions ``z_j`` -- effectively FGMRES, which tolerates a different
preconditioner at every application.

The ladder only ever *weakens* the preconditioner (more damping, a
shifted or more approximate factorization) or makes it exact; either
way the Schwarz operator stays well-defined and the Krylov iteration
keeps its convergence guarantees, just with a different count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.dd.local_solvers import LocalSolverSpec
from repro.resilience.detect import DivergenceError, PivotBreakdownError

__all__ = [
    "ACTION_KINDS",
    "SERVICE_ACTION_KINDS",
    "RecoveryAction",
    "LadderState",
    "RecoveryPolicy",
]

#: every action kind the resilience subsystem can record;
#: ``rank_shrink`` / ``rank_respawn`` / ``interpolated_restart`` are the
#: rank-loss rung (process death is beyond any local remedy -- the
#: ladder's last resort, handled by :mod:`repro.ft`), and
#: ``rank_scale_in`` / ``rank_scale_out`` are the *planned* analogues:
#: the same merge/split repartitions invoked deliberately by the elastic
#: scaling policy of :mod:`repro.elastic` rather than forced by a death
ACTION_KINDS = (
    "boost_damping",
    "diagonal_shift",
    "fallback_iluk",
    "fallback_exact",
    "fallback_superlu",
    "sanitize_halo",
    "drop_local_solve",
    "promote_precision",
    "krylov_restart",
    "rank_shrink",
    "rank_respawn",
    "interpolated_restart",
    "rank_scale_in",
    "rank_scale_out",
)

#: the *service*-level rung above the solver ladder: what
#: :mod:`repro.serve` does when whole batches fail or the queue outruns
#: the deadlines.  Kept here so the solver and serving layers share one
#: action taxonomy (docs/robustness.md tabulates both ladders together).
SERVICE_ACTION_KINDS = (
    "shed",
    "retry_backoff",
    "circuit_open",
    "degrade_rtol",
    "degrade_precision",
    "degrade_one_level",
    "scale_out",
    "scale_in",
    "scale_around",
)

#: the fallback chain (rung above each solver kind)
_FALLBACK_NEXT = {"fastilu": "iluk", "iluk": "tacho", "tacho": "superlu", "superlu": None}
_FALLBACK_ACTION = {"iluk": "fallback_iluk", "tacho": "fallback_exact", "superlu": "fallback_superlu"}


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery step taken by the runtime.

    Attributes
    ----------
    kind:
        One of :data:`ACTION_KINDS`.
    rank:
        Affected subdomain, or -1 for run-global actions
        (``promote_precision`` / ``krylov_restart``).
    detail:
        Human-readable description (also annotated onto the trace).
    """

    kind: str
    rank: int
    detail: str


@dataclass
class LadderState:
    """Where one subdomain currently sits on the escalation ladder.

    Attributes
    ----------
    rank:
        The subdomain this state tracks.
    spec:
        The solver spec currently in effect (mutated by escalation).
    shift:
        Relative diagonal shift currently applied at factorization
        (``A_i + shift * max|diag(A_i)| * I``); 0.0 means none.
    boosts:
        Damping boosts applied so far on the current rung.
    attempts:
        Factorization attempts so far (first build counts as 1; every
        attempt past the first is re-billed as a refactorization).
    escalated:
        True once any recovery action touched this subdomain.
    exhausted:
        True when the ladder ran out of rungs (the breakdown is then
        re-raised to the caller).
    """

    rank: int
    spec: LocalSolverSpec
    shift: float = 0.0
    boosts: int = 0
    attempts: int = 0
    escalated: bool = False
    exhausted: bool = False
    actions: List[RecoveryAction] = field(default_factory=list)

    def describe(self) -> str:
        """Final ladder position, e.g. ``"iluk(1) (nd, cpu solve), shift=1e-06"``."""
        out = self.spec.describe()
        if self.shift:
            out += f", shift={self.shift:g}"
        return out


class RecoveryPolicy:
    """Decides the next recovery action for a broken subdomain.

    Parameters
    ----------
    max_damping_boosts:
        Damping halvings tried before falling back off FastILU.
    min_damping:
        Floor under which damping is not pushed further.
    shift0, shift_growth, max_shift:
        First relative diagonal shift, its per-retry growth factor, and
        the cap beyond which the policy falls back to the next solver
        instead of shifting harder.
    """

    def __init__(
        self,
        max_damping_boosts: int = 2,
        min_damping: float = 0.15,
        shift0: float = 1e-8,
        shift_growth: float = 100.0,
        max_shift: float = 4.0,
    ) -> None:
        self.max_damping_boosts = max_damping_boosts
        self.min_damping = min_damping
        self.shift0 = shift0
        self.shift_growth = shift_growth
        self.max_shift = max_shift

    def initial_state(self, rank: int, spec: LocalSolverSpec) -> LadderState:
        """Fresh ladder state for one subdomain."""
        return LadderState(rank=rank, spec=spec)

    def rank_loss_rung(
        self, dead_ranks, strategy: str = "shrink"
    ) -> RecoveryAction:
        """The ladder's terminal rung: the process itself is gone.

        Every lower rung assumes the rank is still alive to retry on;
        a rank loss skips straight past them.  ``strategy`` selects the
        :mod:`repro.ft` repair (``"shrink"`` merges the dead subdomain
        into a neighbor, ``"respawn"`` rebuilds it from checkpoint) and
        the returned action records the decision for the health report.
        """
        if strategy not in ("shrink", "respawn"):
            raise ValueError(
                f"unknown rank-loss strategy {strategy!r}; valid: "
                "'shrink', 'respawn'"
            )
        dead = [int(r) for r in dead_ranks]
        kind = "rank_shrink" if strategy == "shrink" else "rank_respawn"
        return RecoveryAction(
            kind,
            dead[0] if dead else -1,
            f"rank(s) {dead} lost (beyond local remedies); repairing the "
            f"communicator and preconditioner by {strategy}",
        )

    def escalate(
        self, state: LadderState, error: BaseException
    ) -> Optional[RecoveryAction]:
        """Advance ``state`` one rung for ``error``; None when exhausted.

        Mutates ``state`` (spec/shift/boosts) and returns the action to
        record; the caller rebuilds the subdomain with the new state.
        """
        action = self._next_action(state, error)
        if action is None:
            state.exhausted = True
            return None
        state.escalated = True
        state.actions.append(action)
        return action

    # ------------------------------------------------------------------
    def _next_action(
        self, state: LadderState, error: BaseException
    ) -> Optional[RecoveryAction]:
        spec = state.spec
        if isinstance(error, DivergenceError) and spec.kind == "fastilu":
            damping = spec.factor_damping * 0.5
            if state.boosts < self.max_damping_boosts and damping >= self.min_damping:
                state.boosts += 1
                state.spec = replace(
                    spec,
                    factor_damping=damping,
                    solve_damping=min(spec.solve_damping, max(damping, 0.5)),
                )
                return RecoveryAction(
                    "boost_damping",
                    state.rank,
                    f"subdomain {state.rank}: FastILU sweeps diverged; "
                    f"damping {spec.factor_damping:g} -> {damping:g}",
                )
        elif isinstance(error, (PivotBreakdownError, ZeroDivisionError)) or (
            error.__class__.__name__ == "LinAlgError"
        ):
            shift = self.shift0 if state.shift == 0.0 else state.shift * self.shift_growth
            if shift <= self.max_shift:
                state.shift = shift
                return RecoveryAction(
                    "diagonal_shift",
                    state.rank,
                    f"subdomain {state.rank}: pivot breakdown in "
                    f"{spec.kind}; retrying with relative diagonal "
                    f"shift {shift:g}",
                )
        # out of same-rung remedies: fall back to the next solver
        nxt = _FALLBACK_NEXT.get(spec.kind)
        if nxt is None:
            return None
        state.spec = replace(spec, kind=nxt)
        state.boosts = 0
        return RecoveryAction(
            _FALLBACK_ACTION[nxt],
            state.rank,
            f"subdomain {state.rank}: {spec.kind} unrecoverable "
            f"({type(error).__name__}); falling back to {nxt}",
        )
