"""Seeded fault injection: make the recovery ladder testable.

A :class:`FaultPlan` is a deterministic, seeded description of what to
break during a run.  The resilience engine (and :class:`SimComm`)
consult it at the instrumented points of the stack:

* ``pivot_breakdown`` -- flip the sign of one diagonal entry of one
  subdomain matrix before factorization, forcing the pivot-free
  multifrontal (or ILU) factorization to break down;
* ``fastilu_divergence`` -- amplify the factor iterates after every
  Chow--Patel sweep on one subdomain, forcing the fixed-point iteration
  to diverge exactly the way it does on stiff elasticity blocks;
* ``halo_corrupt`` -- overwrite part of one subdomain's imported halo
  values with NaN at apply time (the sequential analogue of a corrupted
  halo message);
* ``precond_nan`` -- inject a NaN into the output of one preconditioner
  application (a one-shot soft fault);
* ``precision_overflow`` -- scale the input of one half-precision
  preconditioner application beyond float32 range.

Two additional kinds target the simulated MPI layer directly
(``msg_drop`` / ``msg_corrupt``: drop or corrupt a matched
``(src, dst, tag)`` halo message in :class:`~repro.runtime.simmpi.SimComm`).

Every fault that actually fires is recorded as a :class:`FaultEvent`
(and counted on the ambient tracer as ``resilience_faults``), so a
health report can state exactly what was injected where.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_tracer

__all__ = ["FAULT_KINDS", "COMM_FAULT_KINDS", "FaultSpec", "FaultEvent", "FaultPlan"]

#: session-injectable fault kinds (the CI chaos matrix iterates these)
FAULT_KINDS = (
    "halo_corrupt",
    "pivot_breakdown",
    "precond_nan",
    "fastilu_divergence",
    "precision_overflow",
)
#: faults injected directly into the simulated MPI communicator
COMM_FAULT_KINDS = ("msg_drop", "msg_corrupt")

_DEFAULT_MAGNITUDE = {
    "halo_corrupt": 0.5,  # fraction of halo entries overwritten with NaN
    "pivot_breakdown": 1.0,  # scale of the sign-flipped diagonal entry
    "precond_nan": 1.0,  # number of output entries set to NaN
    "fastilu_divergence": 1e16,  # per-sweep amplification of the iterates
    # input scale: far beyond float32 max (~3.4e38) so the overflow
    # survives any well-conditioned preconditioner application, while
    # products with O(1) factors stay well inside float64 range
    "precision_overflow": 1e200,
    "msg_drop": 1.0,
    "msg_corrupt": 1.0,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS` or :data:`COMM_FAULT_KINDS`.
    rank:
        Target subdomain (setup/apply faults) or destination rank
        (comm faults).
    at_apply:
        Preconditioner-apply index at which an apply-time fault first
        fires (a few healthy applies first, so recovery has a finite
        iterate to restart from).
    repeat:
        Keep firing after the first occurrence.  Defaults: persistent
        for ``halo_corrupt``/``pivot_breakdown``/``fastilu_divergence``
        (a broken link or subdomain stays broken), one-shot for
        ``precond_nan``/``precision_overflow``/comm faults.
    magnitude:
        Kind-specific severity (see :data:`_DEFAULT_MAGNITUDE`); None
        selects the default.
    src, tag, occurrence:
        Comm-fault channel selector: the ``occurrence``-th message on
        ``(src, rank, tag)`` is dropped/corrupted.
    """

    kind: str
    rank: int = 0
    at_apply: int = 2
    repeat: Optional[bool] = None
    magnitude: Optional[float] = None
    src: int = 0
    tag: int = 0
    occurrence: int = 0

    def __post_init__(self) -> None:
        valid = FAULT_KINDS + COMM_FAULT_KINDS
        if self.kind not in valid:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid kinds: "
                + ", ".join(repr(k) for k in valid)
            )

    @property
    def severity(self) -> float:
        """The effective magnitude (kind default when unset)."""
        return (
            _DEFAULT_MAGNITUDE[self.kind]
            if self.magnitude is None
            else float(self.magnitude)
        )

    @property
    def persistent(self) -> bool:
        """Whether the fault keeps firing after its first occurrence."""
        if self.repeat is not None:
            return bool(self.repeat)
        return self.kind in ("halo_corrupt", "pivot_breakdown", "fastilu_divergence")


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    kind: str
    rank: int
    detail: str


class FaultPlan:
    """A seeded set of faults plus the record of which ones fired.

    Parameters
    ----------
    faults:
        The :class:`FaultSpec` list (or a single spec).
    seed:
        Seed of the plan's private RNG (selects corrupted entries).
    """

    def __init__(self, faults, seed: int = 0) -> None:
        if isinstance(faults, FaultSpec):
            faults = [faults]
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.fired: List[FaultEvent] = []
        self._spent: set = set()
        self._comm_seen: Dict[Tuple[int, int, int], int] = {}

    @classmethod
    def single(cls, kind: str, rank: int = 0, seed: int = 0, **kw) -> "FaultPlan":
        """One-fault plan (the chaos matrix's unit of work)."""
        return cls([FaultSpec(kind=kind, rank=rank, **kw)], seed=seed)

    def describe(self) -> str:
        """One-line summary for traces and reports."""
        return ", ".join(
            f"{f.kind}@rank{f.rank}" for f in self.faults
        ) or "(empty)"

    # ------------------------------------------------------------------
    def _record(self, spec: FaultSpec, detail: str) -> None:
        self.fired.append(FaultEvent(spec.kind, spec.rank, detail))
        get_tracer().count("resilience_faults", 1.0)

    def _armed(self, spec: FaultSpec, key) -> bool:
        """Is the fault live (one-shot faults fire once per key)?"""
        if spec.persistent:
            return True
        ident = (id(spec), key)
        if ident in self._spent:
            return False
        self._spent.add(ident)
        return True

    # -- setup-time faults ---------------------------------------------
    def corrupt_matrix(self, rank: int, a):
        """Apply ``pivot_breakdown`` faults to one subdomain matrix.

        Flips the sign of the smallest-magnitude diagonal entry (an SPD
        matrix becomes indefinite, breaking pivot-free Cholesky/LDL^T
        while keeping the required diagonal shift small).  Returns the
        (possibly new) matrix.
        """
        for spec in self.faults:
            if spec.kind != "pivot_breakdown" or spec.rank != rank:
                continue
            if not self._armed(spec, ("matrix", rank)):
                continue
            diag = a.diagonal()
            j = int(np.argmin(np.abs(diag) + np.where(diag == 0.0, np.inf, 0.0)))
            data = a.data.copy()
            lo, hi = int(a.indptr[j]), int(a.indptr[j + 1])
            sel = lo + int(np.searchsorted(a.indices[lo:hi], j))
            data[sel] = -spec.severity * data[sel]
            a = type(a)(a.indptr, a.indices, data, a.shape)
            self._record(
                spec, f"flipped diagonal entry {j} of subdomain {rank} matrix"
            )
        return a

    def fastilu_perturb(
        self, rank: int, sweep: int, l_vals: np.ndarray, u_vals: np.ndarray
    ):
        """Apply ``fastilu_divergence`` faults after one Jacobi sweep."""
        for spec in self.faults:
            if spec.kind != "fastilu_divergence" or spec.rank != rank:
                continue
            if not self._armed(spec, ("fastilu", rank, sweep)):
                continue
            l_vals = l_vals * spec.severity
            u_vals = u_vals * spec.severity
            if sweep == 0:
                self._record(
                    spec,
                    f"amplifying FastILU sweeps by {spec.severity:g} "
                    f"on subdomain {rank}",
                )
        return l_vals, u_vals

    # -- apply-time faults ---------------------------------------------
    def restrict_fault(
        self, rank: int, apply_index: int, v: np.ndarray, halo_mask: np.ndarray
    ) -> np.ndarray:
        """Apply ``halo_corrupt`` faults to one restricted input vector."""
        for spec in self.faults:
            if spec.kind != "halo_corrupt" or spec.rank != rank:
                continue
            if apply_index < spec.at_apply:
                continue
            if not self._armed(spec, ("halo", rank)):
                continue
            halo = np.flatnonzero(halo_mask)
            if halo.size == 0:
                continue
            k = max(1, int(round(spec.severity * halo.size)))
            pick = self.rng.choice(halo, size=min(k, halo.size), replace=False)
            v = v.copy()
            v[pick] = np.nan
            if apply_index == spec.at_apply:
                self._record(
                    spec,
                    f"corrupting {pick.size}/{halo.size} halo values of "
                    f"subdomain {rank} from apply {apply_index}",
                )
        return v

    def output_fault(self, apply_index: int, y: np.ndarray) -> np.ndarray:
        """Apply ``precond_nan`` faults to one preconditioner output."""
        for spec in self.faults:
            if spec.kind != "precond_nan" or apply_index != spec.at_apply:
                continue
            if not self._armed(spec, ("nan", spec.at_apply)):
                continue
            y = y.copy()
            pick = self.rng.integers(0, y.size, size=max(1, int(spec.severity)))
            y[pick] = np.nan
            self._record(
                spec, f"NaN into preconditioner output at apply {apply_index}"
            )
        return y

    def input_scale(self, apply_index: int) -> float:
        """``precision_overflow`` input scale for one apply (1.0 = none)."""
        for spec in self.faults:
            if spec.kind != "precision_overflow" or apply_index != spec.at_apply:
                continue
            if not self._armed(spec, ("overflow", spec.at_apply)):
                continue
            self._record(
                spec,
                f"scaling preconditioner input by {spec.severity:g} at "
                f"apply {apply_index} (float32 overflow)",
            )
            return spec.severity
        return 1.0

    # -- comm faults (SimComm) -----------------------------------------
    def _comm_match(self, kind: str, src: int, dst: int, tag: int):
        # seen-counts are keyed by kind as well as channel: a single send
        # consults both msg_drop and msg_corrupt, and each consultation
        # must observe the same occurrence index.
        key = (src, dst, tag)
        seen = self._comm_seen.get((kind, key), 0)
        self._comm_seen[(kind, key)] = seen + 1
        for spec in self.faults:
            if spec.kind != kind:
                continue
            if (spec.src, spec.rank, spec.tag) != key or spec.occurrence != seen:
                continue
            if not self._armed(spec, ("comm", key, seen)):
                continue
            return spec
        return None

    def should_drop(self, src: int, dst: int, tag: int) -> bool:
        """Consume one send; True when a ``msg_drop`` fault eats it."""
        spec = self._comm_match("msg_drop", src, dst, tag)
        if spec is None:
            return False
        self._record(
            spec, f"dropped message {spec.occurrence} on channel "
            f"(src={src}, dst={dst}, tag={tag})"
        )
        return True

    def corrupt_payload(self, src: int, dst: int, tag: int, payload):
        """Corrupt a matched ``msg_corrupt`` payload (NaN overwrite)."""
        spec = self._comm_match("msg_corrupt", src, dst, tag)
        if spec is None or not isinstance(payload, np.ndarray):
            return payload
        payload = payload.copy()
        flat = payload.reshape(-1)
        k = max(1, flat.size // 2)
        pick = self.rng.choice(flat.size, size=k, replace=False)
        flat[pick] = np.nan
        self._record(
            spec, f"corrupted {k}/{flat.size} values of message "
            f"{spec.occurrence} on channel (src={src}, dst={dst}, tag={tag})"
        )
        return payload

    # ------------------------------------------------------------------
    def reset(self) -> "FaultPlan":
        """Fresh copy with the same faults and seed (for paired runs)."""
        return FaultPlan([replace(f) for f in self.faults], seed=self.seed)
