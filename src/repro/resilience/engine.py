"""The resilience engine: injection, detection, and recovery in flight.

A :class:`ResilienceConfig` on :class:`~repro.api.SolverSession` turns
one :class:`ResilienceEngine` on for the solve.  The engine is installed
as the ambient engine (:mod:`repro.resilience.context`) so the numeric
layers can reach it without signature changes:

* :class:`~repro.dd.schwarz.OneLevelSchwarz` routes every local
  factorization through :meth:`ResilienceEngine.build_local` (fault
  injection, breakdown capture, ladder escalation, refactorization
  billing) and every local apply through
  :meth:`~ResilienceEngine.filter_restrict` /
  :meth:`~ResilienceEngine.check_local_solution`;
* :class:`~repro.ilu.fastilu.FastIlu` reports per-sweep updates for
  divergence detection and injection;
* the factorization kernels read :attr:`~ResilienceEngine.pivot_rtol`
  to upgrade their exact-zero pivot checks to relative near-zero tests;
* the Krylov solvers take a :class:`~repro.resilience.detect.KrylovGuard`
  from :meth:`~ResilienceEngine.guard`.

:class:`GuardedOperator` wraps the session preconditioner: it applies
the apply-time faults of the :class:`~repro.resilience.inject.FaultPlan`,
converts float32 overflow into a recoverable breakdown, bills the
health checks as a ``resilience.health_check`` kernel, and re-bills
every recovery refactorization into the cost model's setup profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.machine.kernels import KernelProfile
from repro.obs import get_tracer
from repro.resilience.detect import (
    BREAKDOWN_EXCEPTIONS,
    DivergenceError,
    FloatOverflowError,
)
from repro.resilience.detect import KrylovGuard
from repro.resilience.inject import FaultEvent, FaultPlan
from repro.resilience.policy import LadderState, RecoveryAction, RecoveryPolicy

__all__ = [
    "ResilienceConfig",
    "ResilienceEngine",
    "GuardedOperator",
    "HealthReport",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the breakdown-tolerant runtime.

    Attributes
    ----------
    detect:
        Run the in-flight health checks (NaN/Inf, stagnation, relative
        pivot tests, FastILU divergence, float32 overflow).
    recover:
        Act on detections (escalation ladder, halo sanitization,
        precision promotion, Krylov restarts).  ``detect=False,
        recover=False`` with a fault plan reproduces the seed-era
        behavior under faults -- the control arm of the chaos matrix.
    fault_plan:
        Faults to inject (:class:`~repro.resilience.inject.FaultPlan`);
        None solves faithfully.
    max_restarts:
        Krylov restarts-from-last-finite-iterate before giving up.
    stall_window, stall_factor:
        Stagnation detector: the best residual estimate must improve by
        ``stall_factor`` within any ``stall_window`` iterations.
    pivot_rtol:
        Relative near-zero pivot threshold of the factorization guards.
    growth_tol:
        FastILU divergence threshold (last/first sweep-update ratio).
    max_damping_boosts, min_damping, shift0, shift_growth, max_shift:
        Escalation-ladder knobs (see
        :class:`~repro.resilience.policy.RecoveryPolicy`).
    """

    detect: bool = True
    recover: bool = True
    fault_plan: Optional[FaultPlan] = None
    max_restarts: int = 3
    stall_window: int = 120
    stall_factor: float = 0.999
    pivot_rtol: float = 1e-14
    growth_tol: float = 10.0
    max_damping_boosts: int = 2
    min_damping: float = 0.15
    shift0: float = 1e-8
    shift_growth: float = 100.0
    max_shift: float = 4.0

    def make_engine(self) -> "ResilienceEngine":
        """One engine per solve (engines hold per-run mutable state)."""
        return ResilienceEngine(self)


@dataclass
class HealthReport:
    """What broke, what was detected, and what the runtime did about it.

    Attached to :class:`~repro.api.SessionResult` as ``result.health``.
    """

    status: str
    faults: List[FaultEvent] = field(default_factory=list)
    detections: List[str] = field(default_factory=list)
    actions: List[RecoveryAction] = field(default_factory=list)
    ladder: Dict[int, str] = field(default_factory=dict)
    restarts: int = 0
    refactorizations: int = 0
    sanitized_values: int = 0
    precision_promoted: bool = False

    @property
    def recovered(self) -> bool:
        """Did any recovery action run?"""
        return bool(self.actions) or self.restarts > 0

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"health: {self.status}"]
        if self.faults:
            lines.append(f"  faults injected ({len(self.faults)}):")
            lines += [f"    - [{f.kind}] {f.detail}" for f in self.faults]
        if self.detections:
            lines.append(f"  detections ({len(self.detections)}):")
            lines += [f"    - {d}" for d in self.detections]
        if self.actions:
            lines.append(f"  recovery actions ({len(self.actions)}):")
            lines += [f"    - [{a.kind}] {a.detail}" for a in self.actions]
        if self.ladder:
            lines.append("  final ladder state:")
            lines += [
                f"    - rank {r}: {desc}" for r, desc in sorted(self.ladder.items())
            ]
        lines.append(
            f"  restarts={self.restarts} refactorizations="
            f"{self.refactorizations} sanitized_values={self.sanitized_values}"
            + (" precision_promoted" if self.precision_promoted else "")
        )
        return "\n".join(lines)


def _shifted(a, shift: float):
    """``A + shift * max|diag(A)| * I`` (the ladder's pivot remedy)."""
    diag = a.diagonal()
    sigma = shift * float(np.max(np.abs(diag))) if diag.size else shift
    data = a.data.copy()
    for j in range(a.shape[0]):
        lo, hi = int(a.indptr[j]), int(a.indptr[j + 1])
        sel = np.searchsorted(a.indices[lo:hi], j)
        if sel < hi - lo and a.indices[lo + sel] == j:
            data[lo + sel] += sigma
    return type(a)(a.indptr, a.indices, data, a.shape)


class ResilienceEngine:
    """Per-solve mutable state of the breakdown-tolerant runtime."""

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.plan = config.fault_plan
        self.policy = RecoveryPolicy(
            max_damping_boosts=config.max_damping_boosts,
            min_damping=config.min_damping,
            shift0=config.shift0,
            shift_growth=config.shift_growth,
            max_shift=config.max_shift,
        )
        self.states: Dict[int, LadderState] = {}
        self.actions: List[RecoveryAction] = []
        self.detections: List[str] = []
        self.refactor_profiles: Dict[int, KernelProfile] = {}
        self.refactorizations = 0
        self.apply_index = 0
        self.restarts = 0
        self.overflow: Optional[FloatOverflowError] = None
        self.precision_promoted = False
        self.sanitized_values = 0
        self._one_level = None
        self._halo_masks: Dict[int, np.ndarray] = {}
        self._noted_ranks: set = set()
        self._active_rank: Optional[int] = None

    # -- configuration views -------------------------------------------
    @property
    def detect(self) -> bool:
        """Are the health checks on?"""
        return self.config.detect

    @property
    def recover(self) -> bool:
        """Is the recovery ladder on?"""
        return self.config.recover

    @property
    def pivot_rtol(self) -> float:
        """Relative pivot threshold for the factorization kernels.

        0.0 (exact-zero check only, the seed behavior) when detection
        is off.
        """
        return self.config.pivot_rtol if self.config.detect else 0.0

    @property
    def growth_tol(self) -> float:
        """FastILU sweep-divergence threshold."""
        return self.config.growth_tol

    def guard(self) -> Optional[KrylovGuard]:
        """A fresh Krylov health monitor (None when detection is off)."""
        if not self.detect:
            return None
        return KrylovGuard(
            stall_window=self.config.stall_window,
            stall_factor=self.config.stall_factor,
        )

    # -- bookkeeping ----------------------------------------------------
    def record_detection(self, what: str, once_key=None) -> None:
        """Log one detection (``once_key`` dedups repeating ones)."""
        if once_key is not None:
            if once_key in self._noted_ranks:
                return
            self._noted_ranks.add(once_key)
        self.detections.append(what)
        get_tracer().count("resilience_detected", 1.0)

    def record_action(self, action: RecoveryAction) -> None:
        """Log one recovery action (trace counter ``resilience_actions``)."""
        self.actions.append(action)
        tr = get_tracer()
        tr.count("resilience_actions", 1.0)
        tr.count(f"resilience_action.{action.kind}", 1.0)

    def report(self, status: str) -> HealthReport:
        """Assemble the run's :class:`HealthReport`."""
        return HealthReport(
            status=status,
            faults=list(self.plan.fired) if self.plan is not None else [],
            detections=list(self.detections),
            actions=list(self.actions),
            ladder={
                rank: state.describe()
                for rank, state in self.states.items()
                if state.escalated
            },
            restarts=self.restarts,
            refactorizations=self.refactorizations,
            sanitized_values=self.sanitized_values,
            precision_promoted=self.precision_promoted,
        )

    # -- build-time hooks (OneLevelSchwarz setup) -----------------------
    def register_one_level(self, one_level) -> None:
        """Remember the one-level operator for in-place rebuilds."""
        self._one_level = one_level

    def build_local(self, rank: int, spec, a):
        """Factor one subdomain under injection + the recovery ladder.

        Returns ``(a, factored)`` -- the (possibly fault-corrupted)
        subdomain matrix the caller must keep, and its factorization.
        """
        if self.plan is not None:
            a = self.plan.corrupt_matrix(rank, a)
        state = self.states.get(rank)
        if state is None:
            state = self.policy.initial_state(rank, spec)
            self.states[rank] = state
        return a, self._build_with_ladder(state, a)

    def rebuild_rank(self, rank: int) -> None:
        """Rebuild one subdomain in place after mid-solve escalation."""
        ol = self._one_level
        if ol is None:
            return
        state = self.states[rank]
        ol.locals[rank] = self._build_with_ladder(state, ol.matrices[rank])

    def _build_with_ladder(self, state: LadderState, a):
        self._active_rank = state.rank
        try:
            while True:
                try:
                    return self._build_once(state, a)
                except BREAKDOWN_EXCEPTIONS as err:
                    self.record_detection(
                        f"rank {state.rank}: {type(err).__name__}: {err}"
                    )
                    if not self.recover:
                        raise
                    action = self.policy.escalate(state, err)
                    if action is None:
                        raise
                    self.record_action(action)
        finally:
            self._active_rank = None

    def _build_once(self, state: LadderState, a):
        first = state.attempts == 0
        state.attempts += 1
        a_eff = _shifted(a, state.shift) if state.shift > 0.0 else a
        if first:
            return state.spec.build(a_eff)
        # retry: a real refactorization -- bill its kernels
        with get_tracer().span("resilience/refactor", rank=state.rank) as sp:
            sp.annotate(solver=state.spec.describe(), shift=state.shift)
            factored = state.spec.build(a_eff)
            prof = KernelProfile()
            prof.extend(factored.symbolic_profile)
            prof.extend(factored.setup_profile)
            prof.extend(factored.numeric_profile)
            sp.add_profile(prof)
            self.refactor_profiles.setdefault(
                state.rank, KernelProfile()
            ).extend(prof)
            self.refactorizations += 1
        return factored

    def fastilu_perturb(self, sweep: int, l_vals, u_vals):
        """Injection hook called by FastIlu after each Jacobi sweep."""
        if self.plan is None or self._active_rank is None:
            return l_vals, u_vals
        return self.plan.fastilu_perturb(self._active_rank, sweep, l_vals, u_vals)

    # -- apply-time hooks (OneLevelSchwarz / GDSW apply) ----------------
    def _halo_mask(self, rank: int) -> np.ndarray:
        mask = self._halo_masks.get(rank)
        if mask is None:
            ol = self._one_level
            ns = ol.node_sets[rank]
            owned = ol.dec.node_owner[ns] == rank
            mask = np.repeat(~owned, ol.dec.dofs_per_node)
            self._halo_masks[rank] = mask
        return mask

    def filter_restrict(self, rank: int, v: np.ndarray) -> np.ndarray:
        """Inject/sanitize one subdomain's restricted input vector."""
        if self.plan is not None and self._one_level is not None:
            v = self.plan.restrict_fault(
                rank, self.apply_index, v, self._halo_mask(rank)
            )
        if not self.detect:
            return v
        bad = ~np.isfinite(v)
        nbad = int(np.count_nonzero(bad))
        if nbad:
            self.record_detection(
                f"rank {rank}: {nbad} non-finite imported halo values at "
                f"apply {self.apply_index}",
                once_key=("halo", rank),
            )
            if self.recover:
                v = np.where(bad, 0.0, v)
                self.sanitized_values += nbad
                get_tracer().count("resilience_sanitized_values", float(nbad))
                if ("sanitize", rank) not in self._noted_ranks:
                    self._noted_ranks.add(("sanitize", rank))
                    self.record_action(
                        RecoveryAction(
                            "sanitize_halo",
                            rank,
                            f"subdomain {rank}: zeroing non-finite imported "
                            f"halo values before the local solve",
                        )
                    )
        return v

    def check_local_solution(self, rank: int, x: np.ndarray) -> np.ndarray:
        """Drop a subdomain's contribution when its solve went non-finite."""
        if not self.detect:
            return x
        if not np.all(np.isfinite(x)):
            self.record_detection(
                f"rank {rank}: non-finite local solution at apply "
                f"{self.apply_index}",
                once_key=("local", rank),
            )
            if self.recover:
                if ("drop", rank) not in self._noted_ranks:
                    self._noted_ranks.add(("drop", rank))
                    self.record_action(
                        RecoveryAction(
                            "drop_local_solve",
                            rank,
                            f"subdomain {rank}: dropping non-finite local "
                            f"correction (preconditioner degraded, FGMRES-"
                            f"safe)",
                        )
                    )
                return np.zeros_like(x)
        return x

    def check_coarse(self, xc: np.ndarray) -> np.ndarray:
        """Drop the coarse correction when the coarse solve went bad."""
        if not self.detect:
            return xc
        if not np.all(np.isfinite(xc)):
            self.record_detection(
                f"coarse solve: non-finite correction at apply "
                f"{self.apply_index}",
                once_key=("coarse",),
            )
            if self.recover:
                return np.zeros_like(xc)
        return xc

    # -- mid-solve escalation (session retry loop) ----------------------
    def plan_recovery(self, reason: Optional[str]) -> Optional[str]:
        """Decide the session-level response to a Krylov breakdown.

        Returns ``"promote_precision"`` (rebuild the preconditioner in
        double), ``"restart"`` (resume GMRES from the last finite
        iterate), or None (give up: recovery off or budget exhausted).
        """
        if not self.recover or self.restarts >= self.config.max_restarts:
            return None
        self.restarts += 1
        if self.overflow is not None and not self.precision_promoted:
            self.precision_promoted = True
            self.record_action(
                RecoveryAction(
                    "promote_precision",
                    -1,
                    "float32 overflow in the half-precision preconditioner; "
                    "rebuilding in double precision",
                )
            )
            return "promote_precision"
        if reason == "stagnation":
            # a finite-but-garbage preconditioner plateaus GMRES without
            # tripping any NaN guard: escalate the approximate locals
            for rank, state in sorted(self.states.items()):
                if state.spec.kind == "fastilu" and not state.exhausted:
                    action = self.policy.escalate(state, DivergenceError(
                        f"stagnation attributed to fastilu on rank {rank}"
                    ))
                    if action is not None:
                        self.record_action(action)
                        self.rebuild_rank(rank)
        self.record_action(
            RecoveryAction(
                "krylov_restart",
                -1,
                f"restarting the Krylov iteration from the last finite "
                f"iterate after breakdown ({reason})",
            )
        )
        return "restart"

    def bill_full_setup(self, operator) -> None:
        """Re-bill a discarded operator's setup (precision promotion).

        The promoted run's own profiles describe only the final
        (double) preconditioner; the wasted single-precision setup is
        added to the per-rank refactorization profiles so the cost
        model charges both.
        """
        n_ranks = operator.dec.n_subdomains
        for rank in range(n_ranks):
            self.refactor_profiles.setdefault(rank, KernelProfile()).extend(
                operator.rank_setup_profile(rank)
            )
        self.refactorizations += n_ranks


class GuardedOperator:
    """The session preconditioner under the resilience engine.

    Wraps a :class:`~repro.dd.two_level.GDSWPreconditioner` (or its
    :class:`~repro.dd.precision.HalfPrecisionOperator` wrapper),
    delegating the cost-model interface while:

    * applying the fault plan's apply-time faults (input overflow
      scaling, output NaN);
    * converting :class:`FloatOverflowError` into a non-finite output
      the Krylov guard recognizes as a recoverable breakdown;
    * billing the detection sweeps as a ``resilience.health_check``
      kernel in the apply profile;
    * adding every recovery refactorization to the setup profile.
    """

    def __init__(self, inner, engine: ResilienceEngine) -> None:
        self.inner = inner
        self.engine = engine

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1} v`` under injection + overflow capture."""
        eng = self.engine
        idx = eng.apply_index
        if eng.plan is not None:
            scale = eng.plan.input_scale(idx)
            if scale != 1.0:
                v = np.asarray(v, dtype=np.float64) * scale
        try:
            y = self.inner.apply(v)
        except FloatOverflowError as err:
            eng.overflow = err
            eng.record_detection(f"FloatOverflowError: {err}")
            y = np.full(np.asarray(v).shape, np.nan)
        if eng.plan is not None:
            y = eng.plan.output_fault(idx, y)
        eng.apply_index = idx + 1
        return y

    # -- cost-model interface -------------------------------------------
    def _one_level(self):
        inner = self.inner
        if hasattr(inner, "one_level"):
            return inner.one_level
        return inner.inner.one_level

    def rank_setup_profile(self, rank: int, refactorization: bool = False) -> KernelProfile:
        """Inner setup plus every recovery refactorization on ``rank``."""
        prof = KernelProfile()
        prof.extend(self.inner.rank_setup_profile(rank, refactorization))
        extra = self.engine.refactor_profiles.get(rank)
        if extra is not None:
            prof.extend(extra)
        return prof

    def rank_apply_profile(self, rank: int) -> KernelProfile:
        """Inner apply plus the (cheap) health-check sweeps."""
        prof = self.inner.rank_apply_profile(rank)
        if self.engine.detect:
            n_i = float(self._one_level().dof_sets[rank].size)
            # one isfinite sweep over the restricted input and one over
            # the local solution: streaming reads, no flops to speak of
            prof.add(
                "resilience.health_check",
                flops=n_i,
                bytes=16.0 * n_i,
                parallelism=n_i,
            )
        return prof

    def halo_doubles(self, rank: int) -> int:
        """Halo payload of the wrapped operator."""
        return self.inner.halo_doubles(rank)

    @property
    def n_coarse(self) -> int:
        """Coarse dimension of the wrapped operator."""
        return self.inner.n_coarse

    @property
    def dec(self):
        """Decomposition of the wrapped operator."""
        return self.inner.dec
