"""Ambient resilience engine, mirroring the :mod:`repro.obs` tracer.

The numeric layers (:mod:`repro.dd.schwarz`, :mod:`repro.ilu.fastilu`,
...) call :func:`get_engine` at their detection/injection points; the
returned engine is ``None`` unless a solve is running inside
:func:`use_engine`, so the fault-free hot path pays one module-global
read per hook and nothing else.

This module is intentionally dependency-free (no numpy, no repro
imports): the low-level kernels import it without pulling the policy or
injection machinery into their import graph.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = ["get_engine", "set_engine", "use_engine"]

_CURRENT: Optional[Any] = None


def get_engine() -> Optional[Any]:
    """The ambient :class:`~repro.resilience.engine.ResilienceEngine`.

    ``None`` (the overwhelmingly common case) means no resilience hooks
    are active and callers must skip their detection/injection work.
    """
    return _CURRENT


def set_engine(engine: Optional[Any]) -> None:
    """Install ``engine`` as the ambient engine (``None`` clears it)."""
    global _CURRENT
    _CURRENT = engine


@contextmanager
def use_engine(engine: Optional[Any]) -> Iterator[Optional[Any]]:
    """Scope ``engine`` as the ambient engine, restoring the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = engine
    try:
        yield engine
    finally:
        _CURRENT = previous
