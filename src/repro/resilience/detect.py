"""Breakdown taxonomy and cheap in-flight detectors.

Every approximate component of the paper's experimental matrix has a
known numerical failure mode: the pivot-free multifrontal factorization
and ILU(k) hit zero/near-zero pivots, the synchronous Chow--Patel
sweeps of FastILU diverge on stiff elasticity blocks, and the
half-precision preconditioner silently overflows float32.  This module
defines the structured exception types those failures raise and the
(deliberately cheap) detectors that recognize them in flight.

The exception classes multiply-inherit from the builtin types the seed
code raised (``ZeroDivisionError``, ``OverflowError``) so existing
``except``/``pytest.raises`` sites keep working while the recovery
ladder in :mod:`repro.resilience.policy` can match on the structured
hierarchy.

Only numpy is imported here: the factorization kernels depend on this
module, so it must sit below every other layer of the stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "NumericalBreakdown",
    "PivotBreakdownError",
    "DivergenceError",
    "FloatOverflowError",
    "BREAKDOWN_EXCEPTIONS",
    "nonfinite_count",
    "check_pivot",
    "sweep_divergence",
    "KrylovGuard",
]


class NumericalBreakdown(ArithmeticError):
    """Base class of all structured numerical-breakdown signals."""


class PivotBreakdownError(NumericalBreakdown, ZeroDivisionError):
    """A factorization met a zero/near-zero (or non-positive) pivot.

    Subclasses ``ZeroDivisionError`` so seed-era callers that caught the
    untyped zero-pivot signal keep working.

    Attributes
    ----------
    index:
        Row/column (in the factorization's own ordering) of the pivot.
    value:
        The offending pivot value (None when the underlying dense
        kernel, e.g. LAPACK Cholesky, does not report it).
    solver:
        Short name of the factorization that broke down.
    """

    def __init__(
        self,
        message: str,
        index: Optional[int] = None,
        value: Optional[float] = None,
        solver: str = "",
    ) -> None:
        super().__init__(message)
        self.index = index
        self.value = value
        self.solver = solver


class DivergenceError(NumericalBreakdown):
    """A fixed-point iteration (FastILU sweeps) diverged.

    Attributes
    ----------
    norms:
        The per-sweep update norms that triggered the detector.
    solver:
        Short name of the diverging iteration.
    """

    def __init__(
        self,
        message: str,
        norms: Sequence[float] = (),
        solver: str = "fastilu",
    ) -> None:
        super().__init__(message)
        self.norms = list(norms)
        self.solver = solver


class FloatOverflowError(NumericalBreakdown, OverflowError):
    """A float64 -> float32 cast turned finite values into inf.

    Attributes
    ----------
    count:
        Number of overflowed values.
    max_abs:
        Largest input magnitude (the value that overflowed).
    where:
        Short description of the casting site.
    """

    def __init__(
        self, message: str, count: int = 0, max_abs: float = 0.0, where: str = ""
    ) -> None:
        super().__init__(message)
        self.count = count
        self.max_abs = max_abs
        self.where = where


#: what the recovery engine catches around a local factorization: the
#: structured hierarchy plus the untyped signals of dense kernels
BREAKDOWN_EXCEPTIONS = (
    NumericalBreakdown,
    ZeroDivisionError,
    np.linalg.LinAlgError,
)


# ----------------------------------------------------------------------
def nonfinite_count(values: np.ndarray) -> int:
    """Number of NaN/Inf entries (the basic health check)."""
    return int(values.size - np.count_nonzero(np.isfinite(values)))


def check_pivot(
    value: float, scale: float, index: int, solver: str, rtol: float = 1e-14
) -> None:
    """Raise :class:`PivotBreakdownError` on a zero/near-zero pivot.

    ``scale`` is a magnitude reference (typically the largest diagonal
    entry seen so far); the pivot is rejected when ``|value| <= rtol *
    scale`` -- the relative test that also catches the *near*-zero
    pivots whose reciprocal would amplify rounding noise into garbage
    triangular factors.
    """
    if not np.isfinite(value) or abs(value) <= rtol * max(scale, 1e-300):
        raise PivotBreakdownError(
            f"{solver}: zero/near-zero pivot {value:.3e} at index {index} "
            f"(|pivot| <= {rtol:g} * scale {scale:.3e})",
            index=index,
            value=float(value),
            solver=solver,
        )


def sweep_divergence(
    update_norms: Sequence[float], growth_tol: float = 10.0
) -> bool:
    """Did a fixed-point iteration's update norms diverge?

    The Chow--Patel iteration is only locally convergent: on stiff
    elasticity blocks the undamped synchronous sweeps amplify the
    update by a roughly constant factor per sweep (measured ~50x on a
    nu=0.49 subdomain) where a converging run contracts.  The detector
    fires when the last update norm is non-finite or exceeds
    ``growth_tol`` times the first sweep's norm.
    """
    norms = [float(n) for n in update_norms]
    if not norms:
        return False
    if not all(np.isfinite(n) for n in norms):
        return True
    first = norms[0]
    if first <= 0.0:
        return False
    return norms[-1] > growth_tol * first


# ----------------------------------------------------------------------
@dataclass
class KrylovGuard:
    """In-flight Krylov health monitor (NaN/Inf + stagnation).

    Handed to :func:`repro.krylov.gmres.gmres` / ``cg`` by the
    resilience engine; ``on_residual`` is called once per inner
    iteration with the recurrence residual estimate and returns a
    breakdown reason (``"nonfinite"`` / ``"stagnation"``) or None.

    Stagnation: the best residual estimate must improve by at least a
    factor ``stall_factor`` within any ``stall_window`` consecutive
    iterations; a garbage-but-finite preconditioner (e.g. escaped
    FastILU divergence) plateaus and trips this where NaN guards see
    nothing.
    """

    stall_window: int = 120
    stall_factor: float = 0.999
    history: List[float] = field(default_factory=list)
    _best: float = np.inf
    _best_at: int = -1

    def on_residual(self, iteration: int, estimate: float) -> Optional[str]:
        """Feed one residual estimate; returns a breakdown reason or None."""
        self.history.append(float(estimate))
        if not np.isfinite(estimate):
            return "nonfinite"
        if estimate < self._best * self.stall_factor:
            self._best = float(estimate)
            self._best_at = iteration
            return None
        if self.stall_window > 0 and iteration - self._best_at >= self.stall_window:
            return "stagnation"
        return None
