"""Elastic, straggler-tolerant runtime.

The paper's solver assumes a fixed, healthy rank pool; the serving
north-star does not get one.  This package closes the gap in three
pieces:

* :mod:`repro.elastic.async_schwarz` -- bounded-staleness asynchronous
  restricted additive Schwarz: a preconditioner wrapper that lets a
  straggler's halo data lag up to ``max_staleness`` iterations (keeping
  the slow rank off the modeled critical path), with a
  :class:`~repro.resilience.detect.KrylovGuard`-style watchdog that
  forces a synchronous flush and a re-anchored bulk-synchronous
  fallback when staleness or stagnation exceeds budget.
* :mod:`repro.elastic.policy` -- the load/health-driven
  :class:`ScalingPolicy`: watches per-rank modeled utilization and the
  serve-layer backlog, and invokes planned shrink
  (:meth:`~repro.dd.decomposition.Decomposition.merge_into_neighbor`)
  or respawn (:meth:`~repro.dd.decomposition.Decomposition.split_subdomain`)
  repartitions, billing the repartition cost against projected backlog
  relief.
* :mod:`repro.elastic.bench` -- the ``elastic-chaos`` gate: a straggler
  + load-surge trace where the elastic arm must beat the static arm's
  makespan at zero SLO violations, while no-trigger runs stay
  bit-identical to plain solves.

The straggler *fault model* itself lives with its rank-loss sibling in
:class:`repro.ft.plan.StragglerPlan`; pricing in
:mod:`repro.runtime.timings` (``rank_factors=`` / ``exclude_ranks=``).
"""

from repro.elastic.async_schwarz import (
    AsyncSolveResult,
    BoundedStalenessSchwarz,
    StalenessGuard,
    async_solve_seconds,
    solve_async,
)
from repro.elastic.policy import ElasticConfig, ScalingDecision, ScalingPolicy

__all__ = [
    "AsyncSolveResult",
    "BoundedStalenessSchwarz",
    "ElasticConfig",
    "ScalingDecision",
    "ScalingPolicy",
    "StalenessGuard",
    "async_solve_seconds",
    "solve_async",
]
