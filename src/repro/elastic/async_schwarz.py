"""Bounded-staleness asynchronous restricted additive Schwarz.

A straggling rank delays every bulk-synchronous halo exchange: the
healthy ranks idle at the exchange until the slow rank's data arrives,
so the modeled iteration cost is the *straggler's* cost.  Asynchronous
RAS relaxes exactly this point: neighbors of the slow rank may proceed
with the data the slow rank published in an earlier iteration, up to a
staleness bound, after which a synchronous flush re-synchronizes
everyone.

:class:`BoundedStalenessSchwarz` realizes the numerical side as a
preconditioner wrapper: the dofs *owned by stale ranks* are substituted
from a snapshot of the input the last synchronous application saw --
the slow rank keeps contributing, but from data up to
``max_staleness`` applications old.  The preconditioner therefore
varies between applications, which plain (left-preconditioned) GMRES
does not tolerate; the :func:`repro.krylov.gmres.gmres` here is
right-preconditioned and stores the preconditioned directions
themselves (flexible-GMRES structure), so a per-application varying
operator is admissible.

:class:`StalenessGuard` is the watchdog: it rides the solver's
``guard`` hook and trips when the staleness budget is exhausted or the
residual stagnates while stale data is in play.  :func:`solve_async`
wires both together and falls back to the bulk-synchronous path with a
re-anchored residual target when the guard fires -- the elastic
analogue of the resilience engine's interpolated restart.

Pricing: stale iterations exclude the stale ranks from the slowest-rank
max (``exclude_ranks=`` in
:func:`~repro.runtime.timings.block_iteration_seconds`); synchronous
iterations (and the flush) pay the straggler-inflated full max.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from repro.krylov.gmres import gmres
from repro.krylov.status import SolveStatus
from repro.obs import get_tracer
from repro.runtime.pricing import reduce_seconds
from repro.runtime.timings import block_iteration_seconds

__all__ = [
    "AsyncSolveResult",
    "BoundedStalenessSchwarz",
    "StalenessGuard",
    "async_solve_seconds",
    "solve_async",
]


class BoundedStalenessSchwarz:
    """Schwarz apply variant tolerating stale data from slow ranks.

    Parameters
    ----------
    inner:
        The wrapped preconditioner (one- or two-level); profile
        accessors pass through, so the pricing layer sees the same
        kernels.
    stale_ranks:
        Subdomains whose halo data may lag (the straggler set).  Empty
        means every application is a plain synchronous pass-through --
        the wrapper is then bit-identical to ``inner``.
    max_staleness:
        How many applications a stale rank's data may lag before a
        synchronous flush is forced.  ``0`` disables staleness entirely.

    Attributes
    ----------
    stale_applies, sync_applies, flushes:
        Application counters; ``flushes`` counts only *forced* re-
        synchronizations (the first application is synchronous by
        necessity, not by force).
    """

    def __init__(
        self,
        inner,
        stale_ranks: Iterable[int],
        max_staleness: int = 2,
    ) -> None:
        if max_staleness < 0:
            raise ValueError(f"max_staleness must be >= 0, got {max_staleness}")
        self.inner = inner
        self.stale_ranks = sorted({int(r) for r in stale_ranks})
        for r in self.stale_ranks:
            if not (0 <= r < inner.dec.n_subdomains):
                raise ValueError(
                    f"stale rank {r} out of range "
                    f"[0, {inner.dec.n_subdomains})"
                )
        self.max_staleness = int(max_staleness)
        self.stale_applies = 0
        self.sync_applies = 0
        self.flushes = 0
        self._snapshot: Optional[np.ndarray] = None
        self._age = 0
        dec = inner.dec
        if self.stale_ranks:
            node_mask = np.isin(dec.node_owner, self.stale_ranks)
            self._mask = np.repeat(node_mask, dec.dofs_per_node)
        else:
            self._mask = None

    # -- profile pass-throughs (the pricing layer sees the inner kernels)
    @property
    def dec(self):
        return self.inner.dec

    @property
    def n_coarse(self) -> int:
        return self.inner.n_coarse

    def rank_apply_profile(self, rank: int):
        return self.inner.rank_apply_profile(rank)

    def rank_setup_profile(self, rank: int, refactorization: bool = False):
        return self.inner.rank_setup_profile(rank, refactorization)

    def halo_doubles(self, rank: int) -> int:
        return self.inner.halo_doubles(rank)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drop the stale snapshot; the next application is synchronous."""
        self._snapshot = None
        self._age = 0

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1} v`` with stale-rank dofs possibly lagging.

        Without stale ranks (or with ``max_staleness == 0``) this is a
        pure pass-through -- same floats, same op counts -- which is the
        bit-identity contract the no-trigger gate checks.
        """
        if self._mask is None or self.max_staleness < 1:
            return self.inner.apply(v)
        v = np.asarray(v, dtype=np.float64)
        if self._snapshot is None or self._age >= self.max_staleness:
            # synchronous pass: everyone sees current data, the stale
            # ranks publish their snapshot for the next applications
            if self._snapshot is not None:
                self.flushes += 1
            self._snapshot = v.copy()
            self._age = 0
            self.sync_applies += 1
            return self.inner.apply(v)
        self._age += 1
        self.stale_applies += 1
        v_eff = v.copy()
        v_eff[self._mask] = self._snapshot[self._mask]
        return self.inner.apply(v_eff)


@dataclass
class StalenessGuard:
    """Watchdog for a bounded-staleness solve (budget + stagnation).

    The :class:`~repro.resilience.detect.KrylovGuard` shape, extended
    with the staleness budget: ``on_residual`` is called once per inner
    iteration and returns a breakdown reason or None.  Reasons:

    * ``"nonfinite"`` -- the residual estimate left the reals;
    * ``"staleness_budget"`` -- the operator has served more stale
      applications than ``max_stale_applies`` allows;
    * ``"stale_stagnation"`` -- the best residual estimate failed to
      improve by ``stall_factor`` within ``stall_window`` iterations
      while stale data was in play (a tighter window than the generic
      guard: stagnation under staleness is *expected* to be the
      staleness's fault, so the reaction is a flush, not a solver
      fallback).
    """

    operator: BoundedStalenessSchwarz
    max_stale_applies: int = 200
    stall_window: int = 30
    stall_factor: float = 0.999
    history: List[float] = field(default_factory=list)
    _best: float = np.inf
    _best_at: int = -1

    def on_residual(self, iteration: int, estimate: float) -> Optional[str]:
        """Feed one residual estimate; returns a breakdown reason or None."""
        self.history.append(float(estimate))
        if not np.isfinite(estimate):
            return "nonfinite"
        if estimate < self._best * self.stall_factor:
            self._best = float(estimate)
            self._best_at = iteration
            return None
        if not self.operator.stale_ranks:
            return None
        if self.operator.stale_applies > self.max_stale_applies:
            return "staleness_budget"
        if (
            self.stall_window > 0
            and iteration - self._best_at >= self.stall_window
        ):
            return "stale_stagnation"
        return None


#: guard reasons that mean "the staleness did it" -- the fallback
#: re-runs bulk-synchronously instead of escalating to the resilience
#: ladder
STALENESS_REASONS = ("staleness_budget", "stale_stagnation")


@dataclass
class AsyncSolveResult:
    """Outcome of a bounded-staleness solve (plus fallback, if any).

    ``iterations`` totals the async attempt and the synchronous
    fallback; ``stale_iterations`` / ``sync_iterations`` split it the
    way the pricing model needs (stale iterations exclude the stale
    ranks from the critical path).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    stale_iterations: int
    sync_iterations: int
    flushes: int
    fell_back: bool
    residual_norms: List[float]
    reduces: int
    stale_ranks: List[int]
    status: SolveStatus


def solve_async(
    a,
    b: np.ndarray,
    precond,
    stale_ranks: Iterable[int],
    max_staleness: int = 2,
    rtol: float = 1e-8,
    restart: int = 30,
    maxiter: int = 1000,
    max_stale_applies: int = 200,
    stall_window: int = 30,
) -> AsyncSolveResult:
    """Bounded-staleness GMRES solve with guarded synchronous fallback.

    Runs GMRES with ``precond`` wrapped in
    :class:`BoundedStalenessSchwarz`; if the :class:`StalenessGuard`
    trips, the solve resumes bulk-synchronously from the last finite
    iterate with the residual target *re-anchored*: the fallback's
    relative tolerance is rescaled so the combined solve still meets the
    original ``rtol`` against the original right-hand side (GMRES
    measures convergence relative to its own starting residual).
    """
    op = BoundedStalenessSchwarz(
        precond, stale_ranks, max_staleness=max_staleness
    )
    guard = StalenessGuard(
        op, max_stale_applies=max_stale_applies, stall_window=stall_window
    )
    tr = get_tracer()
    with tr.span("elastic/async_solve") as sp:
        sp.annotate(
            stale_ranks=list(op.stale_ranks), max_staleness=max_staleness
        )
        res = gmres(
            a,
            b,
            preconditioner=op,
            rtol=rtol,
            restart=restart,
            maxiter=maxiter,
            guard=guard,
        )
        fell_back = (
            res.status == SolveStatus.BREAKDOWN
            and res.breakdown_reason in STALENESS_REASONS
        )
        residual_norms = list(res.residual_norms)
        reduces = res.reduces
        iterations = res.iterations
        x = res.x
        converged = res.converged
        status = res.status
        if fell_back:
            sp.annotate(fallback_reason=res.breakdown_reason)
            op.flush()
            beta0 = residual_norms[0] if residual_norms else float(
                np.linalg.norm(b)
            )
            target_abs = rtol * max(beta0, 1e-300)
            rnow = float(np.linalg.norm(b - a.matvec(res.x)))
            rtol_eff = min(1.0, target_abs / max(rnow, 1e-300))
            res2 = gmres(
                a,
                b,
                preconditioner=precond,
                x0=res.x,
                rtol=rtol_eff,
                restart=restart,
                maxiter=max(maxiter - res.iterations, restart),
            )
            residual_norms += list(res2.residual_norms)
            reduces += res2.reduces
            iterations += res2.iterations
            x = res2.x
            converged = res2.converged
            status = res2.status
        stale_iterations = op.stale_applies
        sync_iterations = iterations - stale_iterations
        sp.count("stale_iterations", float(stale_iterations))
        sp.count("flushes", float(op.flushes))
    return AsyncSolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        stale_iterations=stale_iterations,
        sync_iterations=sync_iterations,
        flushes=op.flushes,
        fell_back=fell_back,
        residual_norms=residual_norms,
        reduces=reduces,
        stale_ranks=list(op.stale_ranks),
        status=status,
    )


def async_solve_seconds(
    precond,
    layout,
    result: AsyncSolveResult,
    rank_factors=None,
    reduce_doubles: Optional[int] = None,
) -> float:
    """Modeled seconds of a bounded-staleness solve.

    Stale iterations do not wait for the stale ranks, so their
    slowest-rank max excludes them; synchronous iterations (including
    the flushes and any fallback) pay the straggler-inflated full max.
    ``reduce_doubles`` defaults to one double per reduction (norm-sized
    payloads) -- callers with exact counts from a tracer pass them in.
    """
    stale_cost = block_iteration_seconds(
        precond,
        layout,
        1,
        rank_factors=rank_factors,
        exclude_ranks=result.stale_ranks,
    )
    sync_cost = block_iteration_seconds(
        precond, layout, 1, rank_factors=rank_factors
    )
    secs = (
        result.stale_iterations * stale_cost
        + result.sync_iterations * sync_cost
    )
    doubles = result.reduces if reduce_doubles is None else reduce_doubles
    return secs + reduce_seconds(layout, result.reduces, doubles)
