"""The elastic-chaos benchmark behind ``BENCH_elastic.json``.

``python -m repro.elastic`` replays a seeded straggler + load-surge
trace through :class:`~repro.serve.service.SolverService` twice:

* **static** -- the service eats the straggler: every batch inside the
  slow window is priced at the straggler's inflated critical path, the
  queue backs up behind it, and deadlines blow.
* **elastic** -- the same service with an
  :class:`~repro.elastic.policy.ElasticConfig`: the scaling policy
  sees the straggler on the modeled critical path, bills a
  scale-around (merge the slow rank's subdomain into a neighbor,
  reusing every untouched factorization), and serves the window on the
  healthy rank pool.

Three invariant families become ``violations`` entries when they fail
(the CI ``elastic-chaos`` job gates on them):

1. **no-trigger identity** -- with no straggler and no overload, the
   elastic-enabled service is bit-identical to the plain one (same
   solutions, iterations, latencies, op counters), executes zero
   scaling actions, and its makespan overhead is under 5%;
2. **straggler + surge** -- the elastic arm's makespan is strictly
   below the static arm's, with zero SLO violations and at least one
   scaling action;
3. **bounded staleness** -- the asynchronous bounded-staleness solve
   converges and its modeled time (stale iterations priced without the
   straggler on the critical path) is strictly below the
   bulk-synchronous solve priced through the same straggler.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["run_elastic_bench"]


def _counters(service) -> Dict[str, float]:
    """The op-count fingerprint of one service run (identity checks)."""
    return {
        "served": int(service.served),
        "sheds": int(service.sheds),
        "retries": int(service.retries),
        "degraded_batches": int(service.degraded_batches),
        "batch_failures": int(service.batch_failures),
        "scale_outs": int(service.scale_outs),
        "scale_ins": int(service.scale_ins),
        "scale_arounds": int(service.scale_arounds),
        "repartition_seconds": float(service.repartition_seconds),
    }


def _run_arm(
    problem,
    layout,
    trace,
    *,
    deadline: float,
    seed: int,
    elastic=None,
    stragglers=None,
) -> tuple:
    """Serve one bound trace on a fresh service; returns (service, responses)."""
    from repro.reuse import ArtifactCache, use_artifact_cache
    from repro.serve.request import SolveRequest
    from repro.serve.service import SolverService

    with use_artifact_cache(ArtifactCache()):
        service = SolverService(
            layout=layout,
            max_batch=4,
            elastic=elastic,
            stragglers=stragglers,
        )
        fp = service.register(problem.a)

        def factory(arrival):
            rng = np.random.default_rng(100003 * seed + arrival.index)
            return SolveRequest(
                rhs=problem.b + 0.1 * rng.standard_normal(problem.b.size),
                matrix_fingerprint=fp,
                tenant=arrival.tenant,
                partition=(2, 2, 1),
                deadline=deadline,
            )

        responses = service.run_trace(trace.bind(factory))
        service.close()
    return service, responses


def run_elastic_bench(
    seed: int = 7,
    n_requests: int = 48,
    elements: int = 5,
    straggler_factor: float = 8.0,
) -> dict:
    """Straggler + load-surge comparison of the static and elastic arms.

    Capacity is calibrated exactly like the overload bench (warm
    full-width batched throughput, derated); the serving layout is a
    CPU rank pool so merges and splits stay within one execution
    space.  The straggler window opens after the warmup batches and
    spans the middle of the trace; arrivals follow a bursty timeline at
    ~70% of calibrated capacity, so the static arm's only problem is
    the straggler -- which is the point.
    """
    from repro.bench.harness import model_machine
    from repro.dd.decomposition import Decomposition
    from repro.dd.two_level import GDSWPreconditioner
    from repro.elastic.async_schwarz import async_solve_seconds, solve_async
    from repro.elastic.policy import ElasticConfig
    from repro.fem import laplace_3d
    from repro.ft.plan import StragglerPlan
    from repro.krylov.gmres import gmres
    from repro.reuse import ArtifactCache, use_artifact_cache
    from repro.runtime.layout import JobLayout
    from repro.runtime.timings import block_iteration_seconds
    from repro.serve.admission import ArrivalTrace
    from repro.serve.overload import _arm_metrics, _identical
    from repro.serve.request import SolveRequest
    from repro.serve.service import SolverService

    problem = laplace_3d(elements, elements, elements)
    layout = JobLayout.cpu_run(1, ranks_per_node=4, machine=model_machine())
    violations: List[str] = []

    # ---- capacity calibration (overload-bench pattern) ----------------
    calib_width = 4
    with use_artifact_cache(ArtifactCache()):
        calib = SolverService(layout=layout, max_batch=calib_width)
        fp = calib.register(problem.a)
        rng = np.random.default_rng(100003 * seed)

        def _calib_req():
            return SolveRequest(
                rhs=problem.b + 0.1 * rng.standard_normal(problem.b.size),
                matrix_fingerprint=fp, partition=(2, 2, 1),
            )

        calib.solve(_calib_req())  # pays the one-time setup
        warm_clock = calib.clock
        for _ in range(calib_width):
            calib.submit(_calib_req())
        calib.drain()
        calib.close()
    per_request_seconds = (calib.clock - warm_clock) / calib_width
    capacity_rps = 0.7 / per_request_seconds
    batch_seconds = calib_width * per_request_seconds
    # comfortable against healthy batches, hopeless against a x8
    # straggler holding the whole window's critical path
    deadline = 5.0 * straggler_factor * per_request_seconds

    elastic = ElasticConfig(
        min_ranks=2,
        max_ranks=8,
        straggler_factor=1.5,
        backlog_batches=4,
        cooldown_seconds=2.0 * batch_seconds,
    )

    # ---- section 1: no-trigger identity -------------------------------
    quiet_trace = ArrivalTrace.poisson(
        rate=0.5 * capacity_rps, n=n_requests, seed=seed
    )
    svc_plain, resp_plain = _run_arm(
        problem, layout, quiet_trace, deadline=deadline, seed=seed
    )
    svc_idle, resp_idle = _run_arm(
        problem, layout, quiet_trace, deadline=deadline, seed=seed,
        elastic=elastic,
    )
    identical = _identical(resp_plain, resp_idle)
    scale_events = (
        svc_idle.scale_outs + svc_idle.scale_ins + svc_idle.scale_arounds
    )
    overhead = (
        svc_idle.clock / max(svc_plain.clock, 1e-300) - 1.0
    )
    if not identical:
        violations.append(
            "no-trigger: elastic-enabled responses differ from plain"
        )
    if _counters(svc_idle) != _counters(svc_plain) or scale_events:
        violations.append(
            f"no-trigger: op counters differ or scaling fired "
            f"({scale_events} events)"
        )
    if not overhead < 0.05:
        violations.append(
            f"no-trigger: modeled overhead {overhead:.2%} not under 5%"
        )

    # ---- section 2: straggler + load surge ----------------------------
    surge_trace = ArrivalTrace.burst(
        rate=0.7 * capacity_rps, n=n_requests, seed=seed,
        burst_every=8, burst_size=4,
    )
    window_start = 4.0 * batch_seconds
    window = 60.0 * batch_seconds
    plan = StragglerPlan.single(
        rank=1, factor=straggler_factor,
        start=window_start, duration=window, seed=seed,
    )
    svc_static, resp_static = _run_arm(
        problem, layout, surge_trace, deadline=deadline, seed=seed,
        stragglers=plan,
    )
    svc_elastic, resp_elastic = _run_arm(
        problem, layout, surge_trace, deadline=deadline, seed=seed,
        stragglers=plan, elastic=elastic,
    )
    static = _arm_metrics(svc_static, resp_static, n_requests)
    elastic_arm = _arm_metrics(svc_elastic, resp_elastic, n_requests)
    elastic_arm["scale_events"] = _counters(svc_elastic)
    if not elastic_arm["makespan_seconds"] < static["makespan_seconds"]:
        violations.append(
            f"straggler: elastic makespan "
            f"{elastic_arm['makespan_seconds']:.4f}s not strictly below "
            f"static {static['makespan_seconds']:.4f}s"
        )
    if elastic_arm["slo_violation_rate"] > 0.0:
        violations.append(
            f"straggler: elastic arm violated SLOs "
            f"(rate {elastic_arm['slo_violation_rate']:.3f})"
        )
    n_scales = (
        svc_elastic.scale_outs + svc_elastic.scale_ins
        + svc_elastic.scale_arounds
    )
    if n_scales < 1:
        violations.append("straggler: elastic arm never scaled")

    # ---- section 3: bounded-staleness async RAS -----------------------
    with use_artifact_cache(ArtifactCache()):
        dec = Decomposition.from_box_partition(problem, 2, 2, 1)
        nullspace = np.ones((problem.a.n_rows, 1))
        precond = GDSWPreconditioner(dec, nullspace, dim=3)
        factors = np.ones(dec.n_subdomains)
        factors[1] = straggler_factor
        sync = gmres(problem.a, problem.b, preconditioner=precond, rtol=1e-8)
        sync_secs = sync.iterations * block_iteration_seconds(
            precond, layout, 1, rank_factors=factors
        )
        res = solve_async(
            problem.a, problem.b, precond,
            stale_ranks=[1], max_staleness=2, rtol=1e-8,
        )
        async_secs = async_solve_seconds(
            precond, layout, res, rank_factors=factors
        )
    if not res.converged:
        violations.append("staleness: async solve did not converge")
    if not async_secs < sync_secs:
        violations.append(
            f"staleness: async {async_secs:.4f}s not strictly below "
            f"sync {sync_secs:.4f}s under the straggler"
        )

    return {
        "bench": "elastic",
        "seed": int(seed),
        "n_requests": int(n_requests),
        "n_dofs": int(problem.a.n_rows),
        "partition": [2, 2, 1],
        "layout": "cpu_run(nodes=1, ranks_per_node=4)",
        "per_request_seconds": per_request_seconds,
        "capacity_rps": capacity_rps,
        "deadline_seconds": deadline,
        "straggler": plan.describe(),
        "no_trigger": {
            "identical": identical,
            "scale_events": int(scale_events),
            "overhead": float(overhead),
            "plain_makespan_seconds": float(svc_plain.clock),
            "elastic_makespan_seconds": float(svc_idle.clock),
        },
        "static": static,
        "elastic": elastic_arm,
        "staleness": {
            "converged": bool(res.converged),
            "iterations": int(res.iterations),
            "stale_iterations": int(res.stale_iterations),
            "flushes": int(res.flushes),
            "fell_back": bool(res.fell_back),
            "sync_iterations_baseline": int(sync.iterations),
            "sync_seconds": float(sync_secs),
            "async_seconds": float(async_secs),
        },
        "violations": violations,
    }
