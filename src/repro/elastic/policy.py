"""Load/health-driven rank scaling decisions.

:class:`ScalingPolicy` is the planner behind the serve layer's elastic
reactions.  It watches two signals:

* per-rank modeled utilization -- the iteration-cost vector from
  :func:`~repro.runtime.timings.per_rank_iteration_seconds`, inflated
  by the active :class:`~repro.ft.plan.StragglerPlan` factors; and
* the backlog -- queued batches and the
  :class:`~repro.serve.load.ShardLoadEstimator`'s per-batch seconds.

From these it emits at most one :class:`ScalingDecision` per call:

* ``scale_around`` -- a straggler holds the critical path; merge its
  subdomain into a neighbor
  (:meth:`~repro.dd.decomposition.Decomposition.merge_into_neighbor`)
  so the slow host drops out of the collective;
* ``scale_out`` -- the queue is backing up; split the heaviest
  subdomain
  (:meth:`~repro.dd.decomposition.Decomposition.split_subdomain`) onto
  a fresh rank;
* ``scale_in`` -- a rank sits nearly idle with an empty queue; merge it
  away and return the capacity.

Every grow/shrink is *billed*: the repartition's modeled setup cost
(only the ranks whose overlapping dof sets actually moved refactor --
:func:`repair_seconds`) must be covered by the projected backlog
relief, otherwise the policy holds still.  That asymmetry is the whole
point: a policy that repartitions on every wobble churns factorizations
faster than it saves iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.runtime.pricing import price_profile

__all__ = [
    "ElasticConfig",
    "ScalingDecision",
    "ScalingPolicy",
    "repair_seconds",
]


@dataclass(frozen=True)
class ElasticConfig:
    """Tuning knobs of the elastic runtime.

    Attributes
    ----------
    min_ranks, max_ranks:
        Subdomain-count bounds the policy may not cross.
    straggler_factor:
        Slowdown factor at or above which a rank counts as a straggler
        worth scaling around.
    backlog_batches:
        Queued batches (same shard) at or above which scale-out is
        considered.
    idle_utilization:
        A rank whose share of the critical-path cost is below this (with
        an empty queue) is a scale-in candidate.
    cooldown_seconds:
        Minimum model-clock gap between consecutive scaling actions
        (repartition hysteresis).
    bill_relief:
        When True (default), a grow/shrink only fires if the projected
        relief exceeds the repartition cost.  False is the
        chaos-testing override.
    max_staleness:
        Staleness bound handed to the asynchronous Schwarz path while a
        straggler is being scaled around.
    """

    min_ranks: int = 2
    max_ranks: int = 32
    straggler_factor: float = 1.5
    backlog_batches: int = 4
    idle_utilization: float = 0.25
    cooldown_seconds: float = 0.0
    bill_relief: bool = True
    max_staleness: int = 2

    def __post_init__(self) -> None:
        if self.min_ranks < 1:
            raise ValueError(f"min_ranks must be >= 1, got {self.min_ranks}")
        if self.max_ranks < self.min_ranks:
            raise ValueError(
                f"max_ranks ({self.max_ranks}) must be >= min_ranks "
                f"({self.min_ranks})"
            )
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if not (0.0 <= self.idle_utilization < 1.0):
            raise ValueError(
                f"idle_utilization must be in [0, 1), got "
                f"{self.idle_utilization}"
            )


@dataclass(frozen=True)
class ScalingDecision:
    """One planned repartition (not yet executed).

    Attributes
    ----------
    kind:
        ``"scale_around"`` / ``"scale_out"`` / ``"scale_in"`` -- members
        of :data:`repro.resilience.policy.SERVICE_ACTION_KINDS`.
    rank:
        The subdomain acted on: merged away (scale-around / scale-in)
        or split (scale-out).
    reason:
        Human-readable trigger description (annotated onto the trace).
    projected_relief_seconds:
        Modeled backlog seconds the repartition is expected to save
        over the decision horizon.
    repartition_cost_seconds:
        Modeled setup seconds the repartition costs (moved-rank
        refactorizations).
    """

    kind: str
    rank: int
    reason: str
    projected_relief_seconds: float
    repartition_cost_seconds: float


def repair_seconds(new_precond, old_precond, layout) -> float:
    """Modeled setup cost of repartitioning ``old`` into ``new``.

    Only subdomains whose overlapping dof sets changed pay a numeric
    refactorization (the donor-reuse contract of
    :class:`~repro.dd.schwarz.OneLevelSchwarz`); untouched ranks reuse
    their factorizations as-is.  Refactorizations run concurrently, so
    the cost is the slowest *moved* rank (coarse-level shares included
    via the rank setup profiles).
    """
    donors = {d.tobytes() for d in old_precond.one_level.dof_sets}
    worst = 0.0
    for r, dofs in enumerate(new_precond.one_level.dof_sets):
        if dofs.tobytes() in donors:
            continue
        prof = new_precond.rank_setup_profile(r, refactorization=False)
        worst = max(worst, price_profile(prof, layout))
    return worst


class ScalingPolicy:
    """Stateful scale-around / scale-out / scale-in planner.

    One instance per shard; the only state is the cooldown stamp.
    :meth:`decide` is a pure function of its inputs otherwise, so tests
    drive it with synthetic utilization vectors.
    """

    def __init__(self, config: Optional[ElasticConfig] = None) -> None:
        self.config = config or ElasticConfig()
        self._last_action_clock = -math.inf

    def record_action(self, clock: float) -> None:
        """Start the cooldown window at ``clock`` (call after executing)."""
        self._last_action_clock = float(clock)

    def decide(
        self,
        clock: float,
        rank_costs: np.ndarray,
        rank_factors: Optional[np.ndarray],
        queued_batches: int,
        batch_seconds: float,
        repartition_cost: float,
    ) -> Optional[ScalingDecision]:
        """At most one scaling decision for the current shard state.

        Parameters
        ----------
        clock:
            Current model time (cooldown bookkeeping).
        rank_costs:
            Per-rank modeled iteration seconds *including* straggler
            inflation (:func:`~repro.runtime.timings.per_rank_iteration_seconds`
            with ``rank_factors``).
        rank_factors:
            The active straggler factors (None when all healthy).
        queued_batches:
            Batches pending behind the one about to execute.
        batch_seconds:
            The load estimator's per-batch service seconds.
        repartition_cost:
            Modeled cost of the candidate repartition
            (:func:`repair_seconds`; the caller prices the actual
            candidate, the policy only bills it).

        Priority order: straggler (scale-around) beats backlog
        (scale-out) beats idleness (scale-in) -- a straggler *causes*
        backlog, so treating the cause first avoids splitting a
        subdomain whose slowness is the host's fault.
        """
        cfg = self.config
        if clock - self._last_action_clock < cfg.cooldown_seconds:
            return None
        rank_costs = np.asarray(rank_costs, dtype=np.float64)
        n = rank_costs.size
        if n == 0:
            return None
        now = float(rank_costs.max())
        if now <= 0.0:
            return None
        healthy = (
            rank_costs
            if rank_factors is None
            else rank_costs / np.asarray(rank_factors, dtype=np.float64)
        )

        # -- scale-around: a straggler owns the critical path ------------
        if rank_factors is not None and n > cfg.min_ranks:
            factors = np.asarray(rank_factors, dtype=np.float64)
            r = int(np.argmax(factors))
            if factors[r] >= cfg.straggler_factor and rank_costs[r] >= now:
                # after merging r away, a neighbor carries both loads
                others = np.delete(healthy, r)
                after = float(others.max()) + float(healthy[r])
                relief_per_batch = batch_seconds * max(0.0, 1.0 - after / now)
                relief = (queued_batches + 1) * relief_per_batch
                if relief > repartition_cost or not cfg.bill_relief:
                    return ScalingDecision(
                        kind="scale_around",
                        rank=r,
                        reason=(
                            f"rank {r} straggling x{factors[r]:g} "
                            f"(threshold x{cfg.straggler_factor:g})"
                        ),
                        projected_relief_seconds=relief,
                        repartition_cost_seconds=repartition_cost,
                    )

        # -- scale-out: the queue outruns capacity -----------------------
        if queued_batches >= cfg.backlog_batches and n < cfg.max_ranks:
            r = int(np.argmax(rank_costs))
            others = np.delete(rank_costs, r)
            second = float(others.max()) if others.size else 0.0
            after = max(second, float(rank_costs[r]) / 2.0)
            relief_per_batch = batch_seconds * max(0.0, 1.0 - after / now)
            relief = queued_batches * relief_per_batch
            if relief > repartition_cost or not cfg.bill_relief:
                return ScalingDecision(
                    kind="scale_out",
                    rank=r,
                    reason=(
                        f"{queued_batches} batches queued "
                        f"(threshold {cfg.backlog_batches}); splitting "
                        f"heaviest rank {r}"
                    ),
                    projected_relief_seconds=relief,
                    repartition_cost_seconds=repartition_cost,
                )

        # -- scale-in: idle capacity with an empty queue -----------------
        if (
            queued_batches == 0
            and n > cfg.min_ranks
            and (rank_factors is None or float(np.max(rank_factors)) == 1.0)
        ):
            r = int(np.argmin(healthy))
            if float(healthy[r]) / now < cfg.idle_utilization:
                return ScalingDecision(
                    kind="scale_in",
                    rank=r,
                    reason=(
                        f"rank {r} at "
                        f"{float(healthy[r]) / now:.0%} utilization "
                        f"(threshold {cfg.idle_utilization:.0%}) with an "
                        "empty queue"
                    ),
                    projected_relief_seconds=0.0,
                    repartition_cost_seconds=repartition_cost,
                )
        return None
