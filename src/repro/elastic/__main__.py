"""Elastic-chaos driver: the straggler bench as an executable check.

``PYTHONPATH=src python -m repro.elastic`` runs
:func:`~repro.elastic.bench.run_elastic_bench` -- the no-trigger
identity gate, the straggler + load-surge static-vs-elastic comparison,
and the bounded-staleness pricing check -- and writes
``BENCH_elastic.json``.  The CI ``elastic-chaos`` job fails (exit 1)
when the ``violations`` list is non-empty.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.elastic",
        description="straggler + load-surge elastic serving bench",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--requests", type=int, default=48, help="trace length per arm"
    )
    parser.add_argument(
        "--elements", type=int, default=5, help="Laplace bricks per axis"
    )
    parser.add_argument(
        "--out", default="BENCH_elastic.json", help="result JSON path"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the full document"
    )
    args = parser.parse_args(argv)

    from repro.elastic.bench import run_elastic_bench

    doc = run_elastic_bench(
        seed=args.seed, n_requests=args.requests, elements=args.elements
    )
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        st, el = doc["static"], doc["elastic"]
        print(
            f"static   makespan {st['makespan_seconds']:.4f}s  "
            f"slo-violations {st['slo_violation_rate']:.3f}"
        )
        print(
            f"elastic  makespan {el['makespan_seconds']:.4f}s  "
            f"slo-violations {el['slo_violation_rate']:.3f}  "
            f"scales {el['scale_events']}"
        )
        print(
            f"async    {doc['staleness']['async_seconds']:.4f}s vs "
            f"sync {doc['staleness']['sync_seconds']:.4f}s"
        )
    for v in doc["violations"]:
        print(f"VIOLATION: {v}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 1 if doc["violations"] else 0


if __name__ == "__main__":
    sys.exit(main())
