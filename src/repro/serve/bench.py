"""The multi-tenant serving benchmark behind ``BENCH_serve.json``.

For each tenant count ``t`` in ``tenant_counts``, a seeded request
stream of ``t`` same-pattern solves (one Laplace operator, ``t``
perturbed right-hand sides -- one per tenant) is served three ways:

* **unbatched** -- one request at a time on the full layout (the
  classic sequential service);
* **concurrent** -- the same width-1 batches as simultaneous MPS
  tenants: each solve is priced on a ``1/t`` GPU share and the stream
  costs the slowest tenant (Section VI's sharing economics applied to
  tenants);
* **batched** -- same-pattern coalescing on: the stream collapses into
  one width-``t`` block solve.

Reported per mode: modeled stream seconds, requests/second, and p99
modeled latency.  Two invariants become ``violations`` entries when
they fail:

1. batched throughput strictly exceeds unbatched throughput for every
   ``t >= 4`` (the same-pattern batching win);
2. every block-solve column's iteration count matches the
   corresponding single-RHS GMRES count within
   :data:`~repro.krylov.block.BLOCK_ITERATION_TOLERANCE`.

Run as ``python -m repro.serve --bench [--out BENCH_serve.json]``;
exits nonzero on any violation so CI can gate on it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

__all__ = ["run_serve_bench"]


def _percentile_99(latencies: Sequence[float]) -> float:
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), 99))


def _stream(service, fp, rhs_list, tenants):
    from repro.serve.request import SolveRequest

    for i, b in enumerate(rhs_list):
        service.submit(
            SolveRequest(
                rhs=b,
                matrix_fingerprint=fp,
                tenant=f"tenant-{i % tenants}",
                partition=(2, 2, 1),
            )
        )


def run_serve_bench(
    tenant_counts: Sequence[int] = (1, 2, 4, 8),
    elements: int = 6,
    rtol: float = 1e-7,
    seed: int = 7,
) -> dict:
    """Run the three-mode serving comparison over a seeded stream.

    ``seed`` drives the perturbed right-hand sides; the default (7)
    reproduces the committed ``BENCH_serve.json`` exactly.
    """
    from repro.bench.harness import model_machine
    from repro.fem import laplace_3d
    from repro.krylov import gmres
    from repro.krylov.block import BLOCK_ITERATION_TOLERANCE
    from repro.obs import use_tracer, Tracer
    from repro.reuse import ArtifactCache, use_artifact_cache
    from repro.runtime.layout import JobLayout
    from repro.serve.service import SolverService

    problem = laplace_3d(elements, elements, elements)
    layout = JobLayout.gpu_run(1, 2, machine=model_machine())
    rng = np.random.default_rng(seed)

    violations: List[str] = []
    by_tenants: Dict[str, dict] = {}
    for t in tenant_counts:
        rhs_list = [problem.b] + [
            problem.b + 0.1 * rng.standard_normal(problem.b.size)
            for _ in range(t - 1)
        ]

        modes = {}
        results_by_mode = {}
        for mode, batching, concurrent in (
            ("unbatched", False, False),
            ("concurrent", False, True),
            ("batched", True, False),
        ):
            with use_artifact_cache(ArtifactCache()):
                service = SolverService(
                    layout=layout, batching=batching, max_batch=max(t, 1)
                )
                fp = service.register(problem.a)
                tracer = Tracer()
                with use_tracer(tracer):
                    _stream(service, fp, rhs_list, t)
                    responses = service.drain(concurrent=concurrent)
                service.close()
            stream_secs = service.clock
            latencies = [r.latency_seconds for r in responses]
            modes[mode] = {
                "stream_seconds": stream_secs,
                "requests_per_second": t / stream_secs,
                "p99_latency_seconds": _percentile_99(latencies),
                "mean_queue_wait_seconds": float(
                    np.mean([r.queue_wait_seconds for r in responses])
                ),
                "batch_widths": sorted(r.batch_width for r in responses),
                "reduces": int(tracer.reduces),
            }
            results_by_mode[mode] = sorted(
                responses, key=lambda r: r.request_id
            )

        # invariant 1: batching beats one-at-a-time serving at scale
        if t >= 4:
            rps_b = modes["batched"]["requests_per_second"]
            rps_u = modes["unbatched"]["requests_per_second"]
            if not rps_b > rps_u:
                violations.append(
                    f"t={t}: batched throughput {rps_b:.3e} req/s not "
                    f"above unbatched {rps_u:.3e} req/s"
                )

        # invariant 2: per-column iterations match single-RHS GMRES
        single_iters = []
        with use_artifact_cache(ArtifactCache()):
            probe = SolverService(layout=layout, batching=False)
            fp = probe.register(problem.a)
            # one width-1 solve builds the same preconditioner the
            # batched path used; reuse it for the single-RHS probes
            from repro.serve.request import SolveRequest

            probe.submit(SolveRequest(
                rhs=rhs_list[0], matrix_fingerprint=fp, partition=(2, 2, 1),
            ))
            probe.drain()
            precond = next(iter(probe.pool._sessions.values())).precond
            for b in rhs_list:
                single_iters.append(
                    gmres(problem.a, b, preconditioner=precond,
                          rtol=rtol).iterations
                )
            probe.close()
        block_iters = [
            r.iterations for r in results_by_mode["batched"]
        ]
        for c, (bi, si) in enumerate(zip(block_iters, single_iters)):
            if abs(bi - si) > BLOCK_ITERATION_TOLERANCE:
                violations.append(
                    f"t={t} column {c}: block iterations {bi} differ "
                    f"from single-RHS {si} beyond tolerance "
                    f"{BLOCK_ITERATION_TOLERANCE}"
                )
        by_tenants[str(t)] = {
            "modes": modes,
            "block_iterations": block_iters,
            "single_rhs_iterations": single_iters,
        }

    return {
        "bench": "serve",
        "n_dofs": int(problem.a.n_rows),
        "partition": [2, 2, 1],
        "rtol": rtol,
        "layout": "gpu_run(nodes=1, ranks_per_gpu=2)",
        "tenant_counts": list(tenant_counts),
        "iteration_tolerance": BLOCK_ITERATION_TOLERANCE,
        "tenants": by_tenants,
        "violations": violations,
    }
