"""Service-level robustness: circuit breakers, retries, degradation.

The solver stack already has a *subdomain*-level recovery ladder
(:mod:`repro.resilience.policy`) and a *rank*-level one
(:mod:`repro.ft`).  This module adds the rung above both: what the
**service** does when batches keep failing or the queue outruns the
deadlines.

* :class:`CircuitBreaker` -- per-shard, driven by the existing
  :class:`~repro.krylov.status.SolveStatus` taxonomy: ``closed`` while
  batches converge, ``open`` after ``threshold`` consecutive
  non-converged/raising batches (requests then shed fast with reason
  ``"circuit_open"`` instead of burning modeled GPU seconds on a shard
  that is demonstrably broken), ``half_open`` after ``cooldown`` model
  seconds -- one probe batch is let through; success closes the
  breaker, failure re-opens it with the cooldown doubled.
* :class:`RetryPolicy` -- exponential backoff with *deterministic*
  seeded jitter: the jitter for attempt ``k`` of request ``r`` is a
  blake2b hash of ``(seed, r, k)`` mapped to ``[0, jitter)``, so a
  replayed trace retries at bit-identical instants.  Retries are billed
  as real model seconds (the failed attempt's service time is already
  on the clock) and are refused when the backoff would land past the
  request's deadline.
* :class:`DegradationLadder` -- pressure-driven graceful degradation,
  every rung priced through the cost model and reported in
  :attr:`~repro.serve.request.SolveResponse.degradation`:

  1. ``degrade_rtol`` -- loosen the convergence tolerance, but only
     within each request's declared ``tolerance_budget`` (requests
     that declared none keep their full tolerance, capping the rung
     for the whole batch);
  2. ``degrade_precision`` -- wrap the already-built preconditioner in
     :class:`~repro.dd.precision.HalfPrecisionOperator`: half the
     modeled bytes per apply, half the halo payload, zero extra setup.
     GMRES stays in double, so the answer still meets the (possibly
     loosened) tolerance -- the accuracy-preserving "cheaper
     preconditioner" move of the robust-coarse-space literature
     (Al Daas--Jolivet--Nataf--Tournier, arXiv 2401.03915);
  3. ``degrade_one_level`` -- drop the coarse level:
     :class:`OneLevelOperator` applies only the one-level Schwarz half
     of the existing two-level preconditioner (no coarse restrict /
     solve / prolong in the apply profile, again zero extra setup).
     Iteration counts rise -- the paper's own ablation -- but each
     iteration is cheaper and the answer still meets tolerance.

The ladder kinds are registered in
:data:`repro.resilience.policy.SERVICE_ACTION_KINDS`, keeping one
shared action taxonomy across the solver and service layers.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.machine.kernels import KernelProfile
from repro.resilience.policy import SERVICE_ACTION_KINDS

__all__ = [
    "GuardConfig",
    "CircuitBreaker",
    "RetryPolicy",
    "DegradationLadder",
    "DegradationDecision",
    "GuardState",
    "OneLevelOperator",
    "seeded_jitter",
]


def seeded_jitter(seed: int, request_id: str, attempt: int) -> float:
    """Deterministic jitter in ``[0, 1)`` for one retry of one request.

    blake2b over ``(seed, request_id, attempt)``; the same triple maps
    to the same jitter on every replay, machine, and Python run
    (``PYTHONHASHSEED``-independent).
    """
    h = hashlib.blake2b(
        f"{seed}:{request_id}:{attempt}".encode(), digest_size=8
    ).digest()
    (val,) = struct.unpack(">Q", h)
    return val / float(1 << 64)


@dataclass(frozen=True)
class GuardConfig:
    """Knobs of the serving guard (breakers + retries + degradation).

    Attributes
    ----------
    breaker_threshold:
        Consecutive failed batches that open a shard's breaker; 0
        disables breakers.
    breaker_cooldown:
        Model seconds an open breaker waits before the half-open probe.
    max_retries:
        Retry attempts per request beyond the first (0 disables).
    backoff_base, backoff_factor, jitter:
        Backoff for attempt ``k`` (1-based) is
        ``backoff_base * backoff_factor**(k-1) * (1 + jitter * u)``
        with ``u = seeded_jitter(seed, request_id, k)``.
    seed:
        Seed of the deterministic jitter stream.
    degradation:
        Enables the pressure-driven ladder.
    pressure_rtol, pressure_precision, pressure_one_level:
        Pressure thresholds (estimated batch seconds over deadline
        headroom) at which each rung engages; rungs are cumulative.
    rtol_relax:
        Factor the tolerance is loosened by on the ``degrade_rtol``
        rung (capped by each request's ``tolerance_budget``).
    """

    breaker_threshold: int = 3
    breaker_cooldown: float = 0.05
    max_retries: int = 2
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    degradation: bool = True
    pressure_rtol: float = 1.0
    pressure_precision: float = 2.0
    pressure_one_level: float = 4.0
    rtol_relax: float = 100.0

    def __post_init__(self) -> None:
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError(
                "backoff_base must be >= 0 and backoff_factor >= 1, got "
                f"{self.backoff_base} / {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if not (
            0.0 < self.pressure_rtol
            <= self.pressure_precision
            <= self.pressure_one_level
        ):
            raise ValueError(
                "pressure thresholds must satisfy 0 < rtol <= precision "
                f"<= one_level, got {self.pressure_rtol} / "
                f"{self.pressure_precision} / {self.pressure_one_level}"
            )
        if self.rtol_relax < 1.0:
            raise ValueError(
                f"rtol_relax must be >= 1, got {self.rtol_relax}"
            )


class CircuitBreaker:
    """One shard's breaker state machine (see module docstring)."""

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._consecutive_failures = 0
        self._open_until: Optional[float] = None
        self._probing = False
        self._cooldown_now = float(cooldown)
        #: lifetime counters for reporting
        self.opened = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        if self._open_until is None:
            return "closed"
        return "half_open" if self._probing else "open"

    def allow(self, now: float) -> bool:
        """May a batch execute on this shard at model time ``now``?

        An open breaker whose cooldown has elapsed transitions to
        half-open and admits exactly one probe batch.
        """
        if self.threshold <= 0 or self._open_until is None:
            return True
        if self._probing:
            return False  # a probe is already in flight this round
        if now >= self._open_until:
            self._probing = True
            return True
        return False

    def record_success(self, now: float) -> None:
        """A batch converged: close the breaker, reset the cooldown."""
        self._consecutive_failures = 0
        self._open_until = None
        self._probing = False
        self._cooldown_now = self.cooldown

    def record_failure(self, now: float) -> None:
        """A batch failed (raised, or no column converged).

        A failed half-open probe re-opens with the cooldown doubled
        (capped at 16x); a closed breaker opens once ``threshold``
        consecutive failures accumulate.
        """
        if self.threshold <= 0:
            return
        if self._probing:
            self._cooldown_now = min(
                self._cooldown_now * 2.0, self.cooldown * 16.0
            )
            self._open_until = now + self._cooldown_now
            self._probing = False
            self.opened += 1
            return
        self._consecutive_failures += 1
        if (
            self._open_until is None
            and self._consecutive_failures >= self.threshold
        ):
            self._open_until = now + self._cooldown_now
            self.opened += 1


class RetryPolicy:
    """Deadline-capped exponential backoff with seeded jitter."""

    def __init__(self, config: GuardConfig) -> None:
        self.config = config

    def backoff_seconds(self, request_id: str, attempt: int) -> float:
        """Model seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        c = self.config
        u = seeded_jitter(c.seed, request_id, attempt)
        return (
            c.backoff_base * c.backoff_factor ** (attempt - 1)
            * (1.0 + c.jitter * u)
        )

    def should_retry(
        self,
        request_id: str,
        attempt: int,
        now: float,
        absolute_deadline: Optional[float],
    ) -> Optional[float]:
        """The retry's earliest start time, or None when refused.

        Refused when the retry budget is spent or when the backoff
        alone would land past the request's absolute deadline (the
        retry could then only produce a late answer -- exactly what
        the shedding layer exists to prevent).
        """
        if attempt > self.config.max_retries:
            return None
        not_before = now + self.backoff_seconds(request_id, attempt)
        if absolute_deadline is not None and not_before >= absolute_deadline:
            return None
        return not_before


class OneLevelOperator:
    """The one-level half of an existing two-level preconditioner.

    Shares the inner :class:`~repro.dd.two_level.GDSWPreconditioner`'s
    already-built local factorizations -- constructing this wrapper
    costs zero modeled setup -- and simply skips the coarse restrict /
    solve / prolong in both :meth:`apply` and the priced apply profile.
    The degraded operator is still an SPD additive-Schwarz
    preconditioner, so Krylov convergence (to the same tolerance, in
    more iterations) is retained.
    """

    def __init__(self, inner) -> None:
        # unwrap a HalfPrecisionOperator: composition order is fixed as
        # half(one_level(two_level)) by the ladder
        self.inner = inner
        self.one_level = inner.one_level

    def apply(self, v):
        """Apply only the first-level term ``sum_i R_i^T A_i^-1 R_i v``."""
        return self.one_level.apply(v)

    def rank_apply_profile(self, rank: int) -> KernelProfile:
        """One apply on ``rank``: the local solve term only."""
        return self.one_level.rank_solve_profile(rank)

    def rank_setup_profile(self, rank: int, refactorization: bool = False) -> KernelProfile:
        """Setup passthrough (the inner operator paid it already)."""
        return self.inner.rank_setup_profile(rank, refactorization)

    def halo_doubles(self, rank: int) -> int:
        """Halo payload of the one-level apply."""
        return self.one_level.halo_doubles[rank]

    @property
    def dec(self):
        """Decomposition of the wrapped operator."""
        return self.inner.dec

    @property
    def n_coarse(self) -> int:
        """The coarse space is dropped: 0."""
        return 0


@dataclass
class DegradationDecision:
    """What one batch was degraded to, for pricing and reporting.

    ``rungs`` lists the engaged :data:`SERVICE_ACTION_KINDS` in ladder
    order; an empty list means the batch ran at full quality.
    """

    rungs: List[str] = field(default_factory=list)
    effective_rtol: Optional[float] = None
    precision: str = "double"
    levels: int = 2
    pressure: float = 0.0

    @property
    def degraded(self) -> bool:
        return bool(self.rungs)

    def to_dict(self) -> dict:
        return {
            "rungs": list(self.rungs),
            "effective_rtol": self.effective_rtol,
            "precision": self.precision,
            "levels": self.levels,
            "pressure": float(self.pressure),
        }


class DegradationLadder:
    """Maps deadline pressure to ladder rungs and wraps the operator."""

    #: ladder order; all members of the shared service taxonomy
    RUNGS = ("degrade_rtol", "degrade_precision", "degrade_one_level")

    def __init__(self, config: GuardConfig) -> None:
        for rung in self.RUNGS:
            if rung not in SERVICE_ACTION_KINDS:
                raise ValueError(
                    f"rung {rung!r} missing from SERVICE_ACTION_KINDS"
                )
        self.config = config

    def pressure(
        self,
        estimated_seconds: float,
        headroom_seconds: Optional[float],
    ) -> float:
        """Deadline pressure of one batch about to execute.

        ``estimated_seconds`` over the tightest deadline headroom in
        the batch; 0 when nothing in the batch carries a deadline (no
        SLO to save -- the ladder never degrades unconstrained work).
        """
        if headroom_seconds is None or estimated_seconds <= 0.0:
            return 0.0
        if headroom_seconds <= 0.0:
            return float("inf")
        return estimated_seconds / headroom_seconds

    def decide(
        self,
        pressure: float,
        base_rtol: float,
        tolerance_budgets: List[Optional[float]],
    ) -> DegradationDecision:
        """The rungs engaged at ``pressure`` for one batch.

        ``tolerance_budgets`` carries each batched request's declared
        loosest-acceptable rtol (None = no budget).  The batch shares
        one block solve, so the loosened tolerance is capped by the
        *tightest* budget present; any request without a budget pins
        the batch at full tolerance.
        """
        decision = DegradationDecision(pressure=pressure)
        c = self.config
        if not c.degradation or pressure < c.pressure_rtol:
            return decision
        # rung 1: loosen rtol within every request's declared budget
        if tolerance_budgets and all(b is not None for b in tolerance_budgets):
            cap = min(tolerance_budgets)
            loosened = min(base_rtol * c.rtol_relax, cap)
            if loosened > base_rtol:
                decision.rungs.append("degrade_rtol")
                decision.effective_rtol = loosened
        if pressure >= c.pressure_precision:
            decision.rungs.append("degrade_precision")
            decision.precision = "single"
        if pressure >= c.pressure_one_level:
            decision.rungs.append("degrade_one_level")
            decision.levels = 1
        return decision

    @staticmethod
    def wrap_operator(precond, decision: DegradationDecision):
        """Build the degraded operator for ``decision``.

        Composition order is fixed (half precision outermost, matching
        how the session wraps its own single-precision builds) and both
        wrappers reuse the built preconditioner, so the degraded
        operator costs zero extra modeled setup.
        """
        out = precond
        if decision.levels == 1:
            out = OneLevelOperator(out)
        if decision.precision == "single":
            from repro.dd.precision import HalfPrecisionOperator

            out = HalfPrecisionOperator(out)
        return out


class GuardState:
    """Per-service container of the guard's mutable state."""

    def __init__(self, config: GuardConfig) -> None:
        self.config = config
        self.retry = RetryPolicy(config)
        self.ladder = DegradationLadder(config)
        self._breakers: Dict[Tuple, CircuitBreaker] = {}

    def breaker(self, shard: Tuple) -> CircuitBreaker:
        br = self._breakers.get(shard)
        if br is None:
            br = CircuitBreaker(
                self.config.breaker_threshold, self.config.breaker_cooldown
            )
            self._breakers[shard] = br
        return br
