"""Multi-tenant solver serving: requests, batching, session pooling.

The paper's MPS experiments (Section VI) share one GPU between MPI
ranks of a *single* solve.  This package applies the same sharing
economics to a *service*: many tenants submit independent solve
requests against a small set of operators, and the service drives the
existing stack for them --

* :mod:`repro.serve.request` -- the wire schema
  (:class:`~repro.serve.request.SolveRequest` /
  :class:`~repro.serve.request.SolveResponse`);
* :mod:`repro.serve.batcher` -- same-pattern coalescing into block
  (multi-RHS) solves;
* :mod:`repro.serve.pool` -- the shard-keyed
  :class:`~repro.api.SolverSession` pool with pin-while-in-use artifact
  protection;
* :mod:`repro.serve.service` -- :class:`~repro.serve.service.SolverService`,
  the modeled-clock request loop;
* :mod:`repro.serve.admission` -- streaming arrival timelines
  (:class:`~repro.serve.admission.ArrivalTrace`), token-bucket
  admission, deadline-aware load shedding;
* :mod:`repro.serve.guard` -- per-shard circuit breakers, seeded-
  backoff retries, the pressure-driven degradation ladder;
* :mod:`repro.serve.bench` -- the tenant-count sweep behind
  ``BENCH_serve.json`` (``python -m repro.serve --bench``);
* :mod:`repro.serve.overload` -- the overload chaos bench behind
  ``BENCH_slo.json`` (``python -m repro.serve --overload``).

Quick start::

    from repro import laplace_3d
    from repro.serve import SolveRequest, SolverService

    service = SolverService()
    problem = laplace_3d(6, 6, 6)
    fp = service.register(problem.a)
    for tenant in ("a", "b", "c", "d"):
        service.submit(SolveRequest(rhs=problem.b, matrix_fingerprint=fp,
                                    tenant=tenant, partition=(2, 2, 1)))
    for resp in service.drain():        # one width-4 block solve
        print(resp.tenant, resp.status, resp.iterations,
              resp.batch_width, resp.latency_seconds)
"""

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    Arrival,
    ArrivalTrace,
    ShardLoadEstimator,
    TokenBucket,
)
from repro.serve.batcher import (
    RequestBatch,
    RequestBatcher,
    autoscale_max_batch,
    shard_key,
)
from repro.serve.guard import (
    CircuitBreaker,
    DegradationDecision,
    DegradationLadder,
    GuardConfig,
    OneLevelOperator,
    RetryPolicy,
)
from repro.serve.pool import PooledSession, SessionPool
from repro.serve.request import SolveRequest, SolveResponse
from repro.serve.service import RegisteredOperator, SolverService

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Arrival",
    "ArrivalTrace",
    "CircuitBreaker",
    "DegradationDecision",
    "DegradationLadder",
    "GuardConfig",
    "OneLevelOperator",
    "PooledSession",
    "RegisteredOperator",
    "RequestBatch",
    "RequestBatcher",
    "RetryPolicy",
    "SessionPool",
    "ShardLoadEstimator",
    "SolveRequest",
    "SolveResponse",
    "SolverService",
    "TokenBucket",
    "autoscale_max_batch",
    "shard_key",
]
