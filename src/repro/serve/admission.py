"""Streaming admission: arrival timelines, token buckets, load shedding.

PR 6's service was fed by ``submit()`` calls with no notion of *when*
requests arrive: everything queued at the frozen clock, then one
``drain()`` served it all.  This module supplies the missing arrival
side of the serving model:

* :class:`ArrivalTrace` -- a seeded, fully deterministic arrival
  timeline.  Three generators cover the workloads an overloaded solver
  service actually sees: :meth:`ArrivalTrace.poisson` (memoryless
  steady traffic), :meth:`ArrivalTrace.burst` (steady traffic with
  periodic arrival bursts -- the pattern that fills queues fastest),
  and :meth:`ArrivalTrace.tenant_skewed` (Zipf-weighted tenants, one
  hot tenant dominating).  Times are model seconds on the service
  clock; the same ``(kind, rate, n, seed)`` always yields the same
  timeline.
* :class:`TokenBucket` -- classic rate limiter on the modeled clock:
  capacity ``capacity`` tokens, refilled at ``rate`` tokens per model
  second; one admission spends one token.
* :class:`AdmissionConfig` / :class:`AdmissionController` -- the
  service's admission decision: bounded per-shard queues, the token
  bucket, and deadline-aware *reject-on-admission* -- when the shard's
  modeled backlog (queued requests times the shard's smoothed
  per-request service seconds) already exceeds the arriving request's
  deadline, the request is shed immediately with
  ``SolveStatus.SHED`` instead of being queued to fail slowly.

The controller only ever *refuses* work; it never reorders or alters
admitted requests, so a service with an admission controller that
never fires is bit-identical to one without.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Arrival",
    "ArrivalTrace",
    "TokenBucket",
    "AdmissionConfig",
    "AdmissionController",
    "ShardLoadEstimator",
]


@dataclass(frozen=True)
class Arrival:
    """One point of an arrival timeline: a model-clock stamp + tenant."""

    time: float
    tenant: str
    index: int


class ArrivalTrace:
    """A seeded arrival timeline (see the generator classmethods).

    Attributes
    ----------
    arrivals:
        Time-ordered :class:`Arrival` records.
    kind:
        Generator name (``"poisson"`` / ``"burst"`` / ``"tenant_skewed"``).
    seed, rate:
        The generator inputs, kept for reporting.
    """

    def __init__(
        self, arrivals: List[Arrival], kind: str, rate: float, seed: int
    ) -> None:
        self.arrivals = sorted(arrivals, key=lambda a: (a.time, a.index))
        self.kind = kind
        self.rate = float(rate)
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self):
        return iter(self.arrivals)

    @property
    def makespan(self) -> float:
        """Model seconds from the first arrival to the last."""
        if not self.arrivals:
            return 0.0
        return self.arrivals[-1].time - self.arrivals[0].time

    def bind(self, factory: Callable[[Arrival], object]) -> List[Tuple[float, object]]:
        """Materialize ``(time, SolveRequest)`` pairs via ``factory``.

        ``factory`` receives each :class:`Arrival` and returns the
        request to submit at that instant -- the form
        :meth:`~repro.serve.service.SolverService.run_trace` consumes.
        """
        return [(a.time, factory(a)) for a in self.arrivals]

    # -- generators -----------------------------------------------------
    @classmethod
    def poisson(
        cls, rate: float, n: int, seed: int = 0, tenants: int = 4
    ) -> "ArrivalTrace":
        """``n`` Poisson arrivals at ``rate`` per model second.

        Inter-arrival gaps are iid exponential with mean ``1/rate``;
        tenants rotate round-robin.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        rng = np.random.default_rng(seed)
        times = np.cumsum(rng.exponential(1.0 / rate, size=n))
        arrivals = [
            Arrival(float(t), f"tenant-{i % max(tenants, 1)}", i)
            for i, t in enumerate(times)
        ]
        return cls(arrivals, "poisson", rate, seed)

    @classmethod
    def burst(
        cls,
        rate: float,
        n: int,
        seed: int = 0,
        tenants: int = 4,
        burst_every: int = 8,
        burst_size: int = 4,
    ) -> "ArrivalTrace":
        """Poisson base traffic with a co-arriving burst every
        ``burst_every`` requests: the burst members share one arrival
        instant (``burst_size`` requests land together), which is what
        actually fills a bounded queue."""
        base = cls.poisson(rate, n, seed=seed, tenants=tenants)
        arrivals: List[Arrival] = []
        i = 0
        for a in base.arrivals:
            arrivals.append(Arrival(a.time, a.tenant, i))
            i += 1
            if i >= n:
                break
            if (i % max(burst_every, 1)) == 0:
                for b in range(burst_size):
                    if i >= n:
                        break
                    arrivals.append(
                        Arrival(a.time, f"tenant-{(a.index + b + 1) % max(tenants, 1)}", i)
                    )
                    i += 1
        return cls(arrivals[:n], "burst", rate, seed)

    @classmethod
    def tenant_skewed(
        cls,
        rate: float,
        n: int,
        seed: int = 0,
        tenants: int = 4,
        skew: float = 1.5,
    ) -> "ArrivalTrace":
        """Poisson arrivals with Zipf-weighted tenant assignment:
        ``P(tenant k) ~ 1 / (k+1)^skew`` -- one hot tenant dominates,
        the long tail trickles."""
        if tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {tenants}")
        rng = np.random.default_rng(seed)
        times = np.cumsum(rng.exponential(1.0 / rate, size=n))
        weights = 1.0 / np.power(np.arange(1, tenants + 1, dtype=np.float64), skew)
        weights /= weights.sum()
        picks = rng.choice(tenants, size=n, p=weights)
        arrivals = [
            Arrival(float(t), f"tenant-{int(k)}", i)
            for i, (t, k) in enumerate(zip(times, picks))
        ]
        return cls(arrivals, "tenant_skewed", rate, seed)


class TokenBucket:
    """Token-bucket rate limiter on the modeled clock.

    ``capacity`` tokens maximum, refilled continuously at ``rate``
    tokens per model second.  ``try_take(now)`` spends one token when
    available.  The clock is the *service's* modeled clock, so the
    bucket is exactly as deterministic as the serving simulation.
    """

    def __init__(self, capacity: float, rate: float) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.capacity = float(capacity)
        self.rate = float(rate)
        self.tokens = float(capacity)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(
                self.capacity, self.tokens + (now - self._last) * self.rate
            )
            self._last = now

    def try_take(self, now: float) -> bool:
        """Spend one token at model time ``now``; False when empty."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class ShardLoadEstimator:
    """Smoothed service-time estimates, one pair per shard.

    Two exponentially-weighted moving averages per shard:

    * **per-request** seconds (``batch_seconds / batch_width``) -- the
      *serial* drain model behind admission backlog estimates: an
      upper bound that ignores batching, which is exactly the
      conservatism an admission decision wants;
    * **per-batch** seconds (raw ``batch_seconds``) -- the *flat-cost*
      model: a batched block solve shares one kernel-launch schedule
      across columns, so its cost is nearly width-independent.  This
      is the honest estimate of "what will this batch cost", used for
      degradation pressure and for billing failed batches.

    Before the first observation both estimates are 0 (optimistic --
    the first batch always admits, which both seeds the estimates and
    keeps the no-load path untouched).
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._per_request: Dict[Tuple, float] = {}
        self._per_batch: Dict[Tuple, float] = {}

    def observe(self, shard: Tuple, batch_seconds: float, width: int) -> None:
        """Fold one executed batch into the shard's estimates."""
        per_req = float(batch_seconds) / max(int(width), 1)
        prev = self._per_request.get(shard)
        if prev is None:
            self._per_request[shard] = per_req
        else:
            self._per_request[shard] = (
                self.alpha * per_req + (1.0 - self.alpha) * prev
            )
        prev_b = self._per_batch.get(shard)
        if prev_b is None:
            self._per_batch[shard] = float(batch_seconds)
        else:
            self._per_batch[shard] = (
                self.alpha * float(batch_seconds) + (1.0 - self.alpha) * prev_b
            )

    def per_request_seconds(self, shard: Tuple) -> float:
        """Current per-request estimate (0.0 before any observation)."""
        return self._per_request.get(shard, 0.0)

    def batch_seconds(self, shard: Tuple) -> float:
        """Current flat-cost per-batch estimate (0.0 before any
        observation)."""
        return self._per_batch.get(shard, 0.0)

    def backlog_seconds(self, shard: Tuple, queued: int) -> float:
        """Modeled seconds of serving ``queued`` requests on ``shard``."""
        return self.per_request_seconds(shard) * max(int(queued), 0)


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller.

    Attributes
    ----------
    max_queue_depth:
        Bound on queued requests per shard; arrivals beyond it are shed
        with reason ``"queue_full"``.
    bucket_capacity, bucket_rate:
        Token-bucket size and refill rate (tokens per model second).
        ``bucket_rate=None`` disables rate limiting.
    backlog_factor:
        Reject-on-admission threshold: shed when the shard's modeled
        backlog exceeds ``backlog_factor`` times the arriving request's
        deadline.  Requests without a deadline are never backlog-shed.
    shed_in_queue:
        Also shed queued requests whose deadline has already passed
        when their batch comes up for execution (reason
        ``"deadline_passed"``).
    """

    max_queue_depth: int = 64
    bucket_capacity: float = 64.0
    bucket_rate: Optional[float] = None
    backlog_factor: float = 1.0
    shed_in_queue: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.backlog_factor <= 0:
            raise ValueError(
                f"backlog_factor must be positive, got {self.backlog_factor}"
            )


class AdmissionController:
    """Applies :class:`AdmissionConfig` at request arrival.

    :meth:`decide` returns ``None`` to admit, or a shed-reason string
    (``"queue_full"`` / ``"rate_limited"`` / ``"admission_backlog"``)
    when the request must be refused.  All three checks are pure
    functions of the modeled clock, the queue state, and the load
    estimator, so the decision stream is deterministic.
    """

    def __init__(self, config: AdmissionConfig, estimator: ShardLoadEstimator) -> None:
        self.config = config
        self.estimator = estimator
        self.bucket = (
            TokenBucket(config.bucket_capacity, config.bucket_rate)
            if config.bucket_rate is not None
            else None
        )

    def decide(
        self,
        now: float,
        shard: Tuple,
        queued_in_shard: int,
        deadline: Optional[float],
    ) -> Optional[str]:
        """Admit (None) or shed (reason string) one arrival at ``now``."""
        if queued_in_shard >= self.config.max_queue_depth:
            return "queue_full"
        if self.bucket is not None and not self.bucket.try_take(now):
            return "rate_limited"
        if deadline is not None:
            backlog = self.estimator.backlog_seconds(shard, queued_in_shard)
            if backlog > self.config.backlog_factor * deadline:
                return "admission_backlog"
        return None
