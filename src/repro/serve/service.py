"""The multi-tenant solver service.

:class:`SolverService` accepts a stream of
:class:`~repro.serve.request.SolveRequest` objects and drives the
existing solver stack for them:

* requests are resolved to a *shard* (pattern fingerprint + partition +
  config identity) and queued in the
  :class:`~repro.serve.batcher.RequestBatcher`;
* :meth:`drain` executes the queued work: same-shard same-values
  requests coalesce into one block (multi-RHS) Krylov solve
  (:func:`~repro.krylov.block.block_gmres` /
  :func:`~repro.krylov.block.block_cg`) through the shard's pooled
  :class:`~repro.api.SolverSession`;
* time is a **modeled clock** in model seconds: each batch advances it
  by its priced service time (setup share + lockstep block iterations +
  batched reductions under the service's
  :class:`~repro.runtime.layout.JobLayout`), and every response carries
  its queue wait and end-to-end latency against that clock.  With
  ``concurrent=True`` the drained batches run side by side as MPS
  tenants: each is priced under ``layout.with_tenants(t)`` (a ``1/t``
  GPU share each) and the round takes the slowest batch, not the sum.

Overload robustness (all opt-in; a service constructed without
``admission=`` / ``guard=`` is bit-identical to the fair-weather
service, except that a raising batch now yields terminal ``FAILED``
responses instead of stranding every later request):

* ``admission=`` (:class:`~repro.serve.admission.AdmissionConfig`)
  bounds the per-shard queues, rate-limits through a token bucket, and
  sheds requests whose modeled backlog already exceeds their deadline
  -- at admission and again in queue (``SolveStatus.SHED``);
* ``guard=`` (:class:`~repro.serve.guard.GuardConfig`) adds per-shard
  circuit breakers over the batch outcome stream, deadline-capped
  retry with deterministic seeded backoff for failed requests, and the
  pressure-driven degradation ladder (loosen rtol within each
  request's ``tolerance_budget`` -> half-precision operator ->
  one-level Schwarz), every rung priced on the modeled clock and
  reported in :attr:`~repro.serve.request.SolveResponse.degradation`;
* :meth:`run_trace` replays a streaming arrival timeline
  (:class:`~repro.serve.admission.ArrivalTrace`) against the modeled
  clock: arrivals land while earlier batches are still draining, idle
  gaps fast-forward the clock, and every admission decision happens at
  the request's true arrival instant.

Every request is traced: ``serve/admit`` / ``serve/shed`` /
``serve/retry`` / ``serve/degrade`` spans around the admission and
guard decisions, and a ``serve/batch`` span per executed batch (with
``batch_width`` and per-request ``queue_wait_seconds`` counters)
wrapping the block solve's own ``krylov/*`` spans.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import SolverSession
from repro.krylov import SolveStatus
from repro.krylov.block import BlockSolveResult, block_cg, block_gmres
from repro.obs import get_tracer
from repro.reuse import pattern_fingerprint, values_fingerprint
from repro.runtime.layout import JobLayout
from repro.runtime.pricing import reduce_seconds
from repro.runtime.timings import block_iteration_seconds
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    ShardLoadEstimator,
)
from repro.serve.batcher import RequestBatch, RequestBatcher, shard_key
from repro.serve.guard import DegradationDecision, GuardConfig, GuardState
from repro.serve.pool import SessionPool
from repro.serve.request import SolveRequest, SolveResponse

__all__ = ["SolverService", "RegisteredOperator"]


class RegisteredOperator:
    """One operator known to the service, keyed by pattern fingerprint."""

    __slots__ = ("matrix", "pattern_fp", "values_fp", "coordinates",
                 "dofs_per_node")

    def __init__(self, matrix, coordinates=None, dofs_per_node: int = 1):
        self.matrix = matrix
        self.pattern_fp = pattern_fingerprint(matrix)
        self.values_fp = values_fingerprint(matrix)
        self.coordinates = coordinates
        self.dofs_per_node = int(dofs_per_node)


class _OperatorProblem:
    """Adapter giving a bare operator the problem shape the session
    expects (``a``/``b`` always; geometric extras only when the tenant
    supplied them -- no FEM assumption)."""

    def __init__(self, a, b, coordinates=None, dofs_per_node: int = 1):
        self.a = a
        self.b = b
        self.dofs_per_node = dofs_per_node
        if coordinates is not None:
            self.coordinates = coordinates


class _Retry:
    """One request waiting out its backoff before re-queueing."""

    __slots__ = ("not_before", "req", "shard", "values_fp", "arrival")

    def __init__(self, not_before, req, shard, values_fp, arrival):
        self.not_before = not_before
        self.req = req
        self.shard = shard
        self.values_fp = values_fp
        self.arrival = arrival


class SolverService:
    """Shard-pooled, batch-coalescing solve service.

    Parameters
    ----------
    layout:
        The :class:`~repro.runtime.layout.JobLayout` batches are priced
        under (rank count must match each request's partition).  Default:
        one scaled Summit node, 2 ranks per GPU.
    max_batch:
        Width cap of one coalesced block solve.
    batching:
        ``False`` serves one request at a time (the baseline mode the
        benchmark compares against).
    pool_size:
        LRU bound of the shard session pool.
    admission:
        :class:`~repro.serve.admission.AdmissionConfig` enabling
        bounded queues, token-bucket admission, and deadline-aware load
        shedding.  None (default) admits everything, exactly as before.
    guard:
        :class:`~repro.serve.guard.GuardConfig` enabling per-shard
        circuit breakers, retry with seeded backoff, and the
        degradation ladder.  None (default) disables all three.
    fault_injector:
        Test/chaos hook: a callable ``(batch, attempts) -> None`` run
        before each batch executes; raising simulates a solver fault
        for the whole batch (contained, then retried under ``guard=``).
    elastic:
        :class:`~repro.elastic.policy.ElasticConfig` enabling
        load/health-driven rank scaling: stragglers trigger
        scale-around (merge the slow rank's subdomain away), backlog
        triggers scale-out (split the heaviest subdomain), idle
        capacity scales in.  Every repartition is billed on the modeled
        clock and gated on projected relief.  None (default) keeps the
        static rank pool -- bit-identical to the pre-elastic service.
    stragglers:
        :class:`~repro.ft.plan.StragglerPlan` pricing seeded slow-rank
        windows onto the modeled clock (setup and per-iteration costs
        inflate while a window is active).  Works with or without
        ``elastic=``: without, the service simply eats the slowdown
        (the static arm of the elastic benchmark).
    """

    def __init__(
        self,
        layout: Optional[JobLayout] = None,
        max_batch: "int | str" = 8,
        batching: bool = True,
        pool_size: int = 8,
        admission: Optional[AdmissionConfig] = None,
        guard: Optional[GuardConfig] = None,
        fault_injector: Optional[Callable] = None,
        elastic: "Optional[object]" = None,
        stragglers: "Optional[object]" = None,
    ) -> None:
        if layout is None:
            from repro.bench.harness import model_machine

            layout = JobLayout.gpu_run(1, 2, machine=model_machine())
        self.layout = layout
        #: ``max_batch="auto"`` sizes the width cap from the cost model
        #: (:func:`~repro.serve.batcher.autoscale_max_batch`) at each
        #: shard's first preconditioner build
        self._auto_batch = max_batch == "auto"
        self.batcher = RequestBatcher(
            max_batch=8 if self._auto_batch else int(max_batch),
            batching=batching,
        )
        self.pool = SessionPool(maxsize=pool_size)
        #: the modeled clock, in model seconds since service start
        self.clock = 0.0
        #: total requests served (responses from executed batches)
        self.served = 0
        #: requests refused with ``SolveStatus.SHED``
        self.sheds = 0
        #: retry attempts scheduled by the guard
        self.retries = 0
        #: batches executed below full quality
        self.degraded_batches = 0
        #: batch executions that raised (contained as FAILED/retry)
        self.batch_failures = 0
        self._seq = 0
        self._operators: Dict[str, RegisteredOperator] = {}
        self._inflight: Dict[str, SolveRequest] = {}
        self._estimator = ShardLoadEstimator()
        self._admission = (
            AdmissionController(admission, self._estimator)
            if admission is not None else None
        )
        self._guard = GuardState(guard) if guard is not None else None
        self._fault_injector = fault_injector
        self._retry_queue: List[_Retry] = []
        self._attempts: Dict[str, int] = {}
        self._pending_shed: List[SolveResponse] = []
        # -- elastic runtime state -------------------------------------
        self._elastic = elastic
        self._stragglers = stragglers
        #: scale-out / scale-in / scale-around actions executed
        self.scale_outs = 0
        self.scale_ins = 0
        self.scale_arounds = 0
        #: total modeled seconds billed to repartitions
        self.repartition_seconds = 0.0
        self._scalers: Dict[Tuple, object] = {}
        self._shard_layouts: Dict[Tuple, JobLayout] = {}
        # per-shard map: subdomain index -> physical host id (the
        # StragglerPlan describes hosts; repartitions remap subdomains)
        self._rank_hosts: Dict[Tuple, List[int]] = {}
        self._autoscaled: set = set()

    # -- operator registry ---------------------------------------------
    def register(
        self, matrix, coordinates=None, dofs_per_node: int = 1
    ) -> str:
        """Register an operator; returns its pattern fingerprint.

        Later requests from any tenant may carry only the fingerprint
        plus a right-hand side.  Re-registering the same pattern with
        new values replaces the stored operator (same fingerprint).
        """
        op = RegisteredOperator(matrix, coordinates, dofs_per_node)
        self._operators[op.pattern_fp] = op
        return op.pattern_fp

    def register_matrix_market(
        self, path, coordinates=None, dofs_per_node: int = 1
    ) -> str:
        """Register an operator from a MatrixMarket file.

        Reads ``path`` with :func:`repro.io.read_matrix_market` and
        registers the matrix like :meth:`register`; the returned pattern
        fingerprint is what tenants put in
        :attr:`~repro.serve.request.SolveRequest.matrix_fingerprint`.
        Arbitrary ``.mtx`` operators have no FEM null space, so pair
        them with ``SchwarzConfig(coarse_space="spectral")`` unless a
        null space or coordinates are supplied.
        """
        from repro.io import read_matrix_market

        a = read_matrix_market(path)
        if a.n_rows != a.n_cols:
            raise ValueError(
                f"{path}: the solver service needs a square operator, "
                f"got {a.n_rows} x {a.n_cols}"
            )
        if dofs_per_node < 1 or a.n_rows % dofs_per_node:
            raise ValueError(
                f"{path}: matrix order {a.n_rows} is not divisible by "
                f"dofs_per_node={dofs_per_node}"
            )
        return self.register(
            a, coordinates=coordinates, dofs_per_node=dofs_per_node
        )

    def _resolve(self, req: SolveRequest) -> RegisteredOperator:
        if req.matrix is not None:
            fp = pattern_fingerprint(req.matrix)
            op = self._operators.get(fp)
            if op is None or op.values_fp != values_fingerprint(req.matrix):
                op = RegisteredOperator(
                    req.matrix, req.coordinates, req.dofs_per_node
                )
                self._operators[fp] = op
            return op
        op = self._operators.get(req.matrix_fingerprint)
        if op is None:
            raise KeyError(
                f"no operator registered under fingerprint "
                f"{req.matrix_fingerprint!r}; call register() first"
            )
        return op

    # -- request intake -------------------------------------------------
    def submit(
        self, req: SolveRequest, arrival: Optional[float] = None
    ) -> str:
        """Queue one request; returns its request id.

        ``arrival`` stamps the request's arrival on the modeled clock
        (default: now).  With ``admission=`` configured, the admission
        decision happens here: a refused request is *not* queued -- its
        ``SHED`` response is delivered by the next :meth:`drain` (or
        immediately by :meth:`run_trace`).
        """
        op = self._resolve(req)
        if req.rhs.size != op.matrix.n_rows:
            raise ValueError(
                f"rhs has {req.rhs.size} entries for a "
                f"{op.matrix.n_rows}-row operator"
            )
        if req.request_id is None:
            req.request_id = f"r{self._seq:05d}"
        self._seq += 1
        arrival = self.clock if arrival is None else float(arrival)
        shard = shard_key(req, op.pattern_fp)
        if self._admission is not None:
            reason = self._admission.decide(
                arrival,
                shard,
                self.batcher.pending_in_shard(shard),
                req.deadline,
            )
            if reason is not None:
                self._pending_shed.append(
                    self._shed_response(req, arrival, arrival, reason, shard)
                )
                return req.request_id
            with get_tracer().span("serve/admit") as sp:
                sp.annotate(request=req.request_id)
                sp.count("admitted")
        self.batcher.add(req, shard, op.values_fp, arrival)
        self._inflight[req.request_id] = req
        return req.request_id

    # -- execution ------------------------------------------------------
    def drain(self, concurrent: bool = False) -> List[SolveResponse]:
        """Serve everything queued; returns responses in completion order.

        ``concurrent=False`` runs the batches back to back on the full
        layout; ``concurrent=True`` runs them as simultaneous MPS
        tenants (each priced on a split GPU share, the round costing
        the slowest batch).  Requests the guard scheduled for retry are
        re-queued once their backoff elapses and served in later
        rounds; the drain only returns when every submitted request has
        a terminal response.
        """
        responses: List[SolveResponse] = list(self._pending_shed)
        self._pending_shed.clear()
        while True:
            self._release_due_retries()
            batches = self.batcher.take_batches()
            if not batches:
                nxt = self._next_retry_time()
                if nxt is None:
                    break
                # idle wait: fast-forward to the earliest backoff expiry
                self.clock = max(self.clock, nxt)
                continue
            if concurrent and len(batches) > 1:
                tenants = len(batches)
                layout = self.layout.with_tenants(tenants)
                start = self.clock
                round_secs = 0.0
                for batch in batches:
                    rs, secs = self._execute_batch(batch, layout, start)
                    responses.extend(rs)
                    round_secs = max(round_secs, secs)
                self.clock = start + round_secs
            else:
                for batch in batches:
                    rs, secs = self._execute_batch(
                        batch, self.layout, self.clock
                    )
                    responses.extend(rs)
                    self.clock += secs
        return responses

    def solve(self, req: SolveRequest) -> SolveResponse:
        """Submit one request and serve it immediately (width-1 batch)."""
        self.submit(req)
        return self.drain()[0]

    def run_trace(
        self, arrivals: Sequence[Tuple[float, SolveRequest]]
    ) -> List[SolveResponse]:
        """Replay a streaming arrival timeline; returns all responses.

        ``arrivals`` is a sequence of ``(model_time, request)`` pairs
        (:meth:`ArrivalTrace.bind` produces one).  The loop alternates
        admission and execution on the modeled clock: all arrivals due
        at or before "now" are admitted (through the admission
        controller when configured), then ONE batch -- the earliest in
        execution order -- is served, so arrivals landing during its
        service join the next round's coalescing.  When the service
        goes idle the clock fast-forwards to the next arrival or retry.
        """
        events = sorted(
            enumerate(arrivals), key=lambda e: (e[1][0], e[0])
        )
        events = [ev for _, ev in events]
        responses: List[SolveResponse] = []
        i, n = 0, len(events)
        while True:
            while i < n and events[i][0] <= self.clock:
                t, req = events[i]
                i += 1
                self.submit(req, arrival=t)
                responses.extend(self._pending_shed)
                self._pending_shed.clear()
            self._release_due_retries()
            batch = self.batcher.take_next_batch()
            if batch is not None:
                rs, secs = self._execute_batch(batch, self.layout, self.clock)
                responses.extend(rs)
                self.clock += secs
                continue
            times = []
            if i < n:
                times.append(events[i][0])
            nxt = self._next_retry_time()
            if nxt is not None:
                times.append(nxt)
            if not times:
                break
            self.clock = max(self.clock, min(times))
        return responses

    # -- internals ------------------------------------------------------
    def _session_factory(
        self, batch: RequestBatch, op: RegisteredOperator
    ) -> Callable[[], SolverSession]:
        head = batch.requests[0]
        problem = _OperatorProblem(
            op.matrix, batch.requests[0].rhs,
            coordinates=op.coordinates, dofs_per_node=op.dofs_per_node,
        )

        def factory() -> SolverSession:
            return SolverSession(
                problem,
                partition=head.partition,
                config=head.config,
                krylov=head.krylov,
                nullspace=head.nullspace,
            )

        return factory

    def _run_block(
        self,
        batch: RequestBatch,
        op: RegisteredOperator,
        precond,
        rtol: Optional[float] = None,
    ) -> BlockSolveResult:
        head = batch.requests[0]
        kry = head.krylov
        rtol = kry.rtol if rtol is None else float(rtol)
        b_block = np.stack([r.rhs for r in batch.requests], axis=1)
        if kry.method == "gmres":
            return block_gmres(
                op.matrix,
                b_block,
                preconditioner=precond,
                rtol=rtol,
                restart=kry.restart,
                maxiter=kry.maxiter,
                variant=kry.variant,
            )
        if kry.method == "cg":
            return block_cg(
                op.matrix,
                b_block,
                preconditioner=precond,
                rtol=rtol,
                maxiter=kry.maxiter,
            )
        raise ValueError(
            f"Krylov method {kry.method!r} is not supported by the "
            "batched serving path (gmres and cg are)"
        )

    def _solve_price(
        self,
        result: BlockSolveResult,
        precond,
        layout: JobLayout,
        rank_factors=None,
    ) -> float:
        """Deflation-aware model seconds of the block iteration phase.

        Columns retire as they converge, so iteration ``i`` runs at the
        width of the still-active columns: sorting the per-column depths
        ascending, the block spends ``d_1`` iterations at full width,
        ``d_2 - d_1`` at width ``k-1``, and so on.  Batched reductions
        are priced once from the result's own batched counters.  Under
        a degraded operator the per-iteration kernels are the degraded
        ones (halved bytes, no coarse solve), so the rung's saving is
        priced, not asserted.  ``rank_factors`` (active straggler
        windows) inflates per-rank costs before the lockstep max.
        """
        depths = sorted(result.iterations)
        k = len(depths)
        secs = 0.0
        prev = 0
        for j, d in enumerate(depths):
            span = d - prev
            if span > 0:
                width = k - j
                secs += span * block_iteration_seconds(
                    precond, layout, width, rank_factors=rank_factors
                )
            prev = d
        secs += reduce_seconds(
            layout, result.reduces, result.reduce_doubles
        )
        return secs

    # -- elastic runtime ------------------------------------------------
    def _layout_for_ranks(self, n: int, base: JobLayout) -> JobLayout:
        """A layout like ``base`` resized to ``n`` ranks.

        GPU layouts stay on GPU when ``n`` still fills whole GPUs
        (``ranks_per_gpu`` adjusts the MPS share); otherwise the resized
        pool runs CPU-side on the same machine.
        """
        if n == base.n_ranks:
            return base
        if base.use_gpu and n % base.machine.gpus_per_node == 0:
            return JobLayout(
                nodes=1,
                ranks_per_node=n,
                use_gpu=True,
                ranks_per_gpu=n // base.machine.gpus_per_node,
                threads_per_rank=base.threads_per_rank,
                machine=base.machine,
                tenants=base.tenants,
            )
        return JobLayout(
            nodes=1,
            ranks_per_node=n,
            use_gpu=False,
            threads_per_rank=base.threads_per_rank,
            machine=base.machine,
            tenants=base.tenants,
        )

    def _rank_factors(self, shard: Tuple, t: float, n_ranks: int):
        """Per-subdomain straggler factors at model time ``t`` (or None).

        The plan speaks in physical host ids; ``_rank_hosts`` tracks
        which host each subdomain currently occupies across merges and
        splits.  All-healthy returns None so the healthy pricing path is
        byte-for-byte the pre-straggler one.
        """
        if self._stragglers is None:
            return None
        hosts = self._rank_hosts.get(shard)
        if hosts is None or len(hosts) != n_ranks:
            hosts = list(range(n_ranks))
            self._rank_hosts[shard] = hosts
        factors = np.array(
            [self._stragglers.factor_at(h, t) for h in hosts],
            dtype=np.float64,
        )
        if np.all(factors == 1.0):
            return None
        return factors

    def _reset_elastic_state(self, shard: Tuple) -> None:
        """Forget a shard's repartition state (its session rebuilt)."""
        self._shard_layouts.pop(shard, None)
        self._rank_hosts.pop(shard, None)
        self._scalers.pop(shard, None)

    def _maybe_scale(
        self, batch: RequestBatch, layout: JobLayout, start_clock: float
    ) -> float:
        """Evaluate (and possibly execute) one scaling action for a shard.

        Runs *before* the batch it was triggered by, so the triggering
        batch is already served on the repaired partition (reactive
        repair would let one more straggler-priced batch blow its
        deadline first).  Returns the modeled repartition seconds billed
        to the clock (0.0 when the policy holds still).
        """
        if self._elastic is None:
            return 0.0
        from repro.elastic.policy import ScalingPolicy, repair_seconds
        from repro.runtime.timings import per_rank_iteration_seconds

        shard = batch.shard
        pooled = self.pool.get(shard)
        if pooled is None or pooled.precond is None:
            return 0.0
        precond = pooled.precond
        n = precond.dec.n_subdomains
        factors = self._rank_factors(shard, start_clock, n)
        costs = per_rank_iteration_seconds(
            precond, layout, 1, rank_factors=factors
        )
        policy = self._scalers.get(shard)
        if policy is None:
            policy = ScalingPolicy(self._elastic)
            self._scalers[shard] = policy
        queued = -(-self.batcher.pending_in_shard(shard)
                   // max(1, self.batcher.max_batch))
        batch_secs = self._estimator.batch_seconds(shard)
        decision = policy.decide(
            start_clock, costs, factors, queued, batch_secs, 0.0
        )
        if decision is None:
            return 0.0
        # build the candidate repartition and re-bill with its true cost
        if decision.kind == "scale_out":
            repaired = precond.split_subdomain(decision.rank)
        else:
            repaired = precond.remove_subdomain(decision.rank)
        cost = repair_seconds(repaired, precond, layout)
        final = policy.decide(
            start_clock, costs, factors, queued, batch_secs, cost
        )
        if (
            final is None
            or final.kind != decision.kind
            or final.rank != decision.rank
        ):
            return 0.0
        from repro.reuse import partition_fingerprint

        with get_tracer().span(f"elastic/{final.kind}") as sp:
            sp.annotate(
                rank=final.rank,
                reason=final.reason,
                projected_relief_seconds=final.projected_relief_seconds,
            )
            sp.count("repartition_seconds", cost)
            hosts = self._rank_hosts.get(shard) or list(range(n))
            if final.kind == "scale_out":
                fresh = max(
                    hosts
                    + (self._stragglers.ranks if self._stragglers else [])
                ) + 1
                hosts = hosts + [fresh]
                self.scale_outs += 1
            else:
                hosts = hosts[: final.rank] + hosts[final.rank + 1:]
                if final.kind == "scale_around":
                    self.scale_arounds += 1
                else:
                    self.scale_ins += 1
            self._rank_hosts[shard] = hosts
            new_key = (
                "decomposition",
                shard[0],
                partition_fingerprint(repaired.dec.node_parts),
            )
            pooled.adopt_repartition(repaired, new_key)
            self._shard_layouts[shard] = self._layout_for_ranks(
                repaired.dec.n_subdomains, self.layout
            )
        policy.record_action(start_clock)
        self.repartition_seconds += cost
        return cost

    # -- guard / admission helpers --------------------------------------
    def _shard_str(self, shard: Tuple) -> str:
        return f"{shard[0][:8]}:{shard[2]}"

    def _shed_response(
        self,
        req: SolveRequest,
        arrival: float,
        now: float,
        reason: str,
        shard: Tuple,
    ) -> SolveResponse:
        """Terminal SHED response (fast honest rejection, zero service)."""
        self.sheds += 1
        self._inflight.pop(req.request_id, None)
        with get_tracer().span("serve/shed") as sp:
            sp.annotate(request=req.request_id, reason=reason)
            sp.count("shed")
        wait = max(0.0, now - arrival)
        return SolveResponse(
            request_id=req.request_id,
            tenant=req.tenant,
            status=SolveStatus.SHED,
            x=np.zeros(0),
            iterations=0,
            converged=False,
            residual_norms=[],
            final_relres=float("inf"),
            queue_wait_seconds=wait,
            batch_width=0,
            service_seconds=0.0,
            latency_seconds=wait,
            deadline_met=None if req.deadline is None else False,
            shard=self._shard_str(shard),
            retries=self._attempts.get(req.request_id, 0),
            shed_reason=reason,
        )

    def _failed_response(
        self,
        req: SolveRequest,
        arrival: float,
        now: float,
        error: str,
        shard: Tuple,
        service_seconds: float,
        batch_width: int,
    ) -> SolveResponse:
        """Terminal FAILED response after containment/retry exhaustion."""
        self._inflight.pop(req.request_id, None)
        wait = max(0.0, now - service_seconds - arrival)
        latency = max(0.0, now - arrival)
        return SolveResponse(
            request_id=req.request_id,
            tenant=req.tenant,
            status=SolveStatus.FAILED,
            x=np.zeros(0),
            iterations=0,
            converged=False,
            residual_norms=[],
            final_relres=float("inf"),
            queue_wait_seconds=wait,
            batch_width=batch_width,
            service_seconds=service_seconds,
            latency_seconds=latency,
            deadline_met=(
                None if req.deadline is None
                else latency <= req.deadline
            ),
            shard=self._shard_str(shard),
            retries=self._attempts.get(req.request_id, 0),
            error=error,
        )

    def _release_due_retries(self) -> None:
        """Re-queue retries whose backoff has elapsed at the clock."""
        due = [r for r in self._retry_queue if r.not_before <= self.clock]
        if not due:
            return
        self._retry_queue = [
            r for r in self._retry_queue if r.not_before > self.clock
        ]
        for r in sorted(due, key=lambda r: (r.not_before, r.req.request_id)):
            self.batcher.add(r.req, r.shard, r.values_fp, r.arrival)
            self._inflight[r.req.request_id] = r.req

    def _next_retry_time(self) -> Optional[float]:
        if not self._retry_queue:
            return None
        return min(r.not_before for r in self._retry_queue)

    def _shed_hopeless(
        self, batch: RequestBatch, start_clock: float
    ) -> Tuple[Optional[RequestBatch], List[SolveResponse]]:
        """Shed queued requests whose deadline has already passed.

        A request with ``arrival + deadline <= start_clock`` cannot
        possibly be answered in time -- serving it would only delay
        everything behind it.  Returns the (possibly narrowed) batch
        and the shed responses; None when the whole batch was hopeless.
        """
        keep_r, keep_a, shed = [], [], []
        for req, arrival in zip(batch.requests, batch.arrival_clocks):
            if (
                req.deadline is not None
                and arrival + req.deadline <= start_clock
            ):
                shed.append(self._shed_response(
                    req, arrival, start_clock, "deadline_passed", batch.shard
                ))
            else:
                keep_r.append(req)
                keep_a.append(arrival)
        if not shed:
            return batch, []
        if not keep_r:
            return None, shed
        return (
            RequestBatch(
                shard=batch.shard,
                values_fp=batch.values_fp,
                requests=keep_r,
                arrival_clocks=keep_a,
            ),
            shed,
        )

    def _degradation_for(
        self, batch: RequestBatch, start_clock: float
    ) -> Optional[DegradationDecision]:
        """The ladder's decision for one batch about to execute."""
        guard = self._guard
        if guard is None or not guard.config.degradation:
            return None
        # flat-cost model: a block solve shares one launch schedule, so
        # its cost is nearly width-independent
        est = self._estimator.batch_seconds(batch.shard)
        headrooms = [
            arrival + req.deadline - start_clock
            for req, arrival in zip(batch.requests, batch.arrival_clocks)
            if req.deadline is not None
        ]
        headroom = min(headrooms) if headrooms else None
        pressure = guard.ladder.pressure(est, headroom)
        decision = guard.ladder.decide(
            pressure,
            batch.requests[0].krylov.rtol,
            [r.tolerance_budget for r in batch.requests],
        )
        return decision if decision.degraded else None

    def _schedule_retry_or_fail(
        self,
        batch: RequestBatch,
        now: float,
        error: str,
        service_seconds: float,
    ) -> List[SolveResponse]:
        """Route each request of a failed batch: backoff retry or FAILED."""
        out: List[SolveResponse] = []
        tr = get_tracer()
        for req, arrival in zip(batch.requests, batch.arrival_clocks):
            attempt = self._attempts.get(req.request_id, 0) + 1
            self._attempts[req.request_id] = attempt
            not_before = None
            if self._guard is not None:
                abs_deadline = (
                    None if req.deadline is None else arrival + req.deadline
                )
                not_before = self._guard.retry.should_retry(
                    req.request_id, attempt, now, abs_deadline
                )
            if not_before is not None:
                self.retries += 1
                with tr.span("serve/retry") as sp:
                    sp.annotate(
                        request=req.request_id, attempt=attempt,
                        not_before=not_before,
                    )
                    sp.count("retries")
                self._retry_queue.append(_Retry(
                    not_before, req, batch.shard, batch.values_fp, arrival
                ))
            else:
                out.append(self._failed_response(
                    req, arrival, now, error, batch.shard,
                    service_seconds, batch.width,
                ))
        return out

    def _execute_batch(
        self, batch: RequestBatch, layout: JobLayout, start_clock: float
    ) -> Tuple[List[SolveResponse], float]:
        """Guarded execution of one batch: shed, break, degrade, contain.

        Returns the terminal responses produced now (retried requests
        produce theirs in a later round) and the modeled seconds the
        batch consumed.
        """
        responses: List[SolveResponse] = []
        # elastic scaling runs first: the triggering batch is served on
        # the repaired partition, with the repartition billed up front
        extra = 0.0
        if self._elastic is not None:
            extra = self._maybe_scale(
                batch, self._shard_layouts.get(batch.shard, layout),
                start_clock,
            )
            start_clock += extra
        layout = self._shard_layouts.get(batch.shard, layout)
        # shed-in-queue: drop requests whose deadline already passed
        if (
            self._admission is not None
            and self._admission.config.shed_in_queue
        ):
            narrowed, shed = self._shed_hopeless(batch, start_clock)
            responses.extend(shed)
            if narrowed is None:
                return responses, extra
            batch = narrowed
        # circuit breaker: fail fast on a shard that keeps breaking
        breaker = None
        if self._guard is not None:
            breaker = self._guard.breaker(batch.shard)
            if not breaker.allow(start_clock):
                for req, arrival in zip(batch.requests, batch.arrival_clocks):
                    responses.append(self._shed_response(
                        req, arrival, start_clock, "circuit_open", batch.shard
                    ))
                return responses, extra
        decision = self._degradation_for(batch, start_clock)
        try:
            if self._fault_injector is not None:
                self._fault_injector(batch, self._attempts)
            rs, secs = self._serve_batch(batch, layout, start_clock, decision)
        except Exception as exc:  # containment: the drain must continue
            self.batch_failures += 1
            # the failed attempt consumed real modeled time: bill the
            # shard's smoothed flat-cost batch estimate
            secs = self._estimator.batch_seconds(batch.shard)
            now = start_clock + secs
            if breaker is not None:
                breaker.record_failure(now)
            error = f"{type(exc).__name__}: {exc}"
            responses.extend(
                self._schedule_retry_or_fail(batch, now, error, secs)
            )
            return responses, extra + secs
        self._estimator.observe(batch.shard, secs, batch.width)
        now = start_clock + secs
        if breaker is not None:
            if any(r.converged for r in rs):
                breaker.record_success(now)
            else:
                breaker.record_failure(now)
        # non-converged breakdown columns are retry candidates
        if self._guard is not None and self._guard.config.max_retries > 0:
            terminal, broken_r, broken_a = [], [], []
            for req, arrival, resp in zip(
                batch.requests, batch.arrival_clocks, rs
            ):
                if resp.status is SolveStatus.BREAKDOWN:
                    broken_r.append(req)
                    broken_a.append(arrival)
                else:
                    terminal.append(resp)
            if broken_r:
                sub = RequestBatch(
                    shard=batch.shard, values_fp=batch.values_fp,
                    requests=broken_r, arrival_clocks=broken_a,
                )
                terminal.extend(self._schedule_retry_or_fail(
                    sub, now, "breakdown", secs
                ))
            rs = terminal
        for resp in rs:
            if resp.status is not SolveStatus.FAILED:
                self._finalize_served(resp)
        responses.extend(rs)
        return responses, extra + secs

    def _finalize_served(self, resp: SolveResponse) -> None:
        self._inflight.pop(resp.request_id, None)
        self.served += 1

    def _serve_batch(
        self,
        batch: RequestBatch,
        layout: JobLayout,
        start_clock: float,
        decision: Optional[DegradationDecision] = None,
    ) -> Tuple[List[SolveResponse], float]:
        op = self._operators[batch.shard[0]]
        tr = get_tracer()
        with tr.span("serve/batch") as sp:
            sp.annotate(shard=str(batch.shard[2:]), tenants=sorted(
                {r.tenant for r in batch.requests}
            ))
            sp.count("batch_width", float(batch.width))
            pooled = self.pool.acquire(
                batch.shard, self._session_factory(batch, op)
            )
            first_use = pooled.setups == 0
            precond, reused = pooled.preconditioner_for(
                batch.values_fp,
                _OperatorProblem(
                    op.matrix, batch.requests[0].rhs,
                    coordinates=op.coordinates,
                    dofs_per_node=op.dofs_per_node,
                ),
            )
            if not reused and batch.shard in self._shard_layouts:
                # new operator values rebuilt the session at its
                # requested partition, dropping any elastic repartition
                self._reset_elastic_state(batch.shard)
                layout = self.layout
            if self._auto_batch and not self._autoscaled:
                from repro.serve.batcher import autoscale_max_batch

                width = autoscale_max_batch(precond, layout)
                with tr.span("serve/autoscale") as asp:
                    asp.annotate(max_batch=width)
                    asp.count("batch_width", float(width))
                self.batcher.max_batch = width
                self._autoscaled.add(batch.shard)
            factors = self._rank_factors(
                batch.shard, start_clock, precond.dec.n_subdomains
            )
            if reused:
                setup_secs = 0.0
            else:
                from repro.runtime.timings import time_solver

                t = time_solver(precond, layout, 0, 0, 0,
                                rank_factors=factors)
                setup_secs = (
                    t.first_setup_seconds if first_use else t.setup_seconds
                )
            operator = precond
            rtol_override = None
            degradation_dict = None
            if decision is not None and decision.degraded:
                from repro.serve.guard import DegradationLadder

                self.degraded_batches += 1
                operator = DegradationLadder.wrap_operator(precond, decision)
                rtol_override = decision.effective_rtol
                degradation_dict = decision.to_dict()
                with tr.span("serve/degrade") as dsp:
                    dsp.annotate(
                        rungs=",".join(decision.rungs),
                        pressure=decision.pressure,
                    )
                    dsp.count("degraded_batches")
            with tr.span("serve/solve") as ssp:
                result = self._run_block(batch, op, operator, rtol_override)
                ssp.count("block_width", float(batch.width))
            solve_secs = self._solve_price(
                result, operator, layout, rank_factors=factors
            )
            batch_secs = setup_secs + solve_secs
            sp.annotate(
                setup_seconds=setup_secs,
                solve_seconds=solve_secs,
                setup_reused=reused,
            )
            b_norms = [
                max(float(np.linalg.norm(r.rhs)), 1e-300)
                for r in batch.requests
            ]
            responses = []
            for i, (req, arrival) in enumerate(
                zip(batch.requests, batch.arrival_clocks)
            ):
                x = result.x[:, i].copy()
                relres = float(
                    np.linalg.norm(op.matrix.matvec(x) - req.rhs)
                    / b_norms[i]
                )
                wait = start_clock - arrival
                latency = wait + batch_secs
                sp.count("queue_wait_seconds", wait)
                responses.append(
                    SolveResponse(
                        request_id=req.request_id,
                        tenant=req.tenant,
                        status=result.statuses[i],
                        x=x,
                        iterations=result.iterations[i],
                        converged=result.converged[i],
                        residual_norms=list(result.residual_norms[i]),
                        final_relres=relres,
                        queue_wait_seconds=wait,
                        batch_width=batch.width,
                        service_seconds=batch_secs,
                        latency_seconds=latency,
                        deadline_met=(
                            None if req.deadline is None
                            else latency <= req.deadline
                        ),
                        shard=self._shard_str(batch.shard),
                        retries=self._attempts.get(req.request_id, 0),
                        degradation=degradation_dict,
                    )
                )
                pooled.served += 1
        return responses, batch_secs

    def close(self) -> None:
        """Release pooled sessions and their artifact pins."""
        self.pool.close()
