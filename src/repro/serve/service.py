"""The multi-tenant solver service.

:class:`SolverService` accepts a stream of
:class:`~repro.serve.request.SolveRequest` objects and drives the
existing solver stack for them:

* requests are resolved to a *shard* (pattern fingerprint + partition +
  config identity) and queued in the
  :class:`~repro.serve.batcher.RequestBatcher`;
* :meth:`drain` executes the queued work: same-shard same-values
  requests coalesce into one block (multi-RHS) Krylov solve
  (:func:`~repro.krylov.block.block_gmres` /
  :func:`~repro.krylov.block.block_cg`) through the shard's pooled
  :class:`~repro.api.SolverSession`;
* time is a **modeled clock** in model seconds: each batch advances it
  by its priced service time (setup share + lockstep block iterations +
  batched reductions under the service's
  :class:`~repro.runtime.layout.JobLayout`), and every response carries
  its queue wait and end-to-end latency against that clock.  With
  ``concurrent=True`` the drained batches run side by side as MPS
  tenants: each is priced under ``layout.with_tenants(t)`` (a ``1/t``
  GPU share each) and the round takes the slowest batch, not the sum.

Every request is traced: a ``serve/batch`` span per executed batch
(with ``batch_width`` and per-request ``queue_wait_seconds`` counters)
wrapping the block solve's own ``krylov/*`` spans.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.api import SolverSession
from repro.krylov.block import BlockSolveResult, block_cg, block_gmres
from repro.obs import get_tracer
from repro.reuse import pattern_fingerprint, values_fingerprint
from repro.runtime.layout import JobLayout
from repro.runtime.pricing import reduce_seconds
from repro.runtime.timings import block_iteration_seconds
from repro.serve.batcher import RequestBatch, RequestBatcher, shard_key
from repro.serve.pool import SessionPool
from repro.serve.request import SolveRequest, SolveResponse

__all__ = ["SolverService", "RegisteredOperator"]


class RegisteredOperator:
    """One operator known to the service, keyed by pattern fingerprint."""

    __slots__ = ("matrix", "pattern_fp", "values_fp", "coordinates",
                 "dofs_per_node")

    def __init__(self, matrix, coordinates=None, dofs_per_node: int = 1):
        self.matrix = matrix
        self.pattern_fp = pattern_fingerprint(matrix)
        self.values_fp = values_fingerprint(matrix)
        self.coordinates = coordinates
        self.dofs_per_node = int(dofs_per_node)


class _OperatorProblem:
    """Adapter giving a bare operator the problem shape the session
    expects (``a``/``b`` always; geometric extras only when the tenant
    supplied them -- no FEM assumption)."""

    def __init__(self, a, b, coordinates=None, dofs_per_node: int = 1):
        self.a = a
        self.b = b
        self.dofs_per_node = dofs_per_node
        if coordinates is not None:
            self.coordinates = coordinates


class SolverService:
    """Shard-pooled, batch-coalescing solve service.

    Parameters
    ----------
    layout:
        The :class:`~repro.runtime.layout.JobLayout` batches are priced
        under (rank count must match each request's partition).  Default:
        one scaled Summit node, 2 ranks per GPU.
    max_batch:
        Width cap of one coalesced block solve.
    batching:
        ``False`` serves one request at a time (the baseline mode the
        benchmark compares against).
    pool_size:
        LRU bound of the shard session pool.
    """

    def __init__(
        self,
        layout: Optional[JobLayout] = None,
        max_batch: int = 8,
        batching: bool = True,
        pool_size: int = 8,
    ) -> None:
        if layout is None:
            from repro.bench.harness import model_machine

            layout = JobLayout.gpu_run(1, 2, machine=model_machine())
        self.layout = layout
        self.batcher = RequestBatcher(max_batch=max_batch, batching=batching)
        self.pool = SessionPool(maxsize=pool_size)
        #: the modeled clock, in model seconds since service start
        self.clock = 0.0
        #: total requests served (also sources request ids)
        self.served = 0
        self._seq = 0
        self._operators: Dict[str, RegisteredOperator] = {}
        self._inflight: Dict[str, SolveRequest] = {}

    # -- operator registry ---------------------------------------------
    def register(
        self, matrix, coordinates=None, dofs_per_node: int = 1
    ) -> str:
        """Register an operator; returns its pattern fingerprint.

        Later requests from any tenant may carry only the fingerprint
        plus a right-hand side.  Re-registering the same pattern with
        new values replaces the stored operator (same fingerprint).
        """
        op = RegisteredOperator(matrix, coordinates, dofs_per_node)
        self._operators[op.pattern_fp] = op
        return op.pattern_fp

    def _resolve(self, req: SolveRequest) -> RegisteredOperator:
        if req.matrix is not None:
            fp = pattern_fingerprint(req.matrix)
            op = self._operators.get(fp)
            if op is None or op.values_fp != values_fingerprint(req.matrix):
                op = RegisteredOperator(
                    req.matrix, req.coordinates, req.dofs_per_node
                )
                self._operators[fp] = op
            return op
        op = self._operators.get(req.matrix_fingerprint)
        if op is None:
            raise KeyError(
                f"no operator registered under fingerprint "
                f"{req.matrix_fingerprint!r}; call register() first"
            )
        return op

    # -- request intake -------------------------------------------------
    def submit(self, req: SolveRequest) -> str:
        """Queue one request; returns its request id."""
        op = self._resolve(req)
        if req.rhs.size != op.matrix.n_rows:
            raise ValueError(
                f"rhs has {req.rhs.size} entries for a "
                f"{op.matrix.n_rows}-row operator"
            )
        if req.request_id is None:
            req.request_id = f"r{self._seq:05d}"
        self._seq += 1
        self.batcher.add(
            req, shard_key(req, op.pattern_fp), op.values_fp, self.clock
        )
        self._inflight[req.request_id] = req
        return req.request_id

    # -- execution ------------------------------------------------------
    def drain(self, concurrent: bool = False) -> List[SolveResponse]:
        """Serve everything queued; returns responses in completion order.

        ``concurrent=False`` runs the batches back to back on the full
        layout; ``concurrent=True`` runs them as simultaneous MPS
        tenants (each priced on a split GPU share, the round costing
        the slowest batch).
        """
        batches = self.batcher.take_batches()
        if not batches:
            return []
        responses: List[SolveResponse] = []
        if concurrent and len(batches) > 1:
            tenants = len(batches)
            layout = self.layout.with_tenants(tenants)
            start = self.clock
            round_secs = 0.0
            for batch in batches:
                rs, secs = self._serve_batch(batch, layout, start)
                responses.extend(rs)
                round_secs = max(round_secs, secs)
            self.clock = start + round_secs
        else:
            for batch in batches:
                rs, secs = self._serve_batch(batch, self.layout, self.clock)
                responses.extend(rs)
                self.clock += secs
        return responses

    def solve(self, req: SolveRequest) -> SolveResponse:
        """Submit one request and serve it immediately (width-1 batch)."""
        self.submit(req)
        return self.drain()[0]

    # -- internals ------------------------------------------------------
    def _session_factory(
        self, batch: RequestBatch, op: RegisteredOperator
    ) -> Callable[[], SolverSession]:
        head = batch.requests[0]
        problem = _OperatorProblem(
            op.matrix, batch.requests[0].rhs,
            coordinates=op.coordinates, dofs_per_node=op.dofs_per_node,
        )

        def factory() -> SolverSession:
            return SolverSession(
                problem,
                partition=head.partition,
                config=head.config,
                krylov=head.krylov,
                nullspace=head.nullspace,
            )

        return factory

    def _run_block(
        self, batch: RequestBatch, op: RegisteredOperator, precond
    ) -> BlockSolveResult:
        head = batch.requests[0]
        kry = head.krylov
        b_block = np.stack([r.rhs for r in batch.requests], axis=1)
        if kry.method == "gmres":
            return block_gmres(
                op.matrix,
                b_block,
                preconditioner=precond,
                rtol=kry.rtol,
                restart=kry.restart,
                maxiter=kry.maxiter,
                variant=kry.variant,
            )
        if kry.method == "cg":
            return block_cg(
                op.matrix,
                b_block,
                preconditioner=precond,
                rtol=kry.rtol,
                maxiter=kry.maxiter,
            )
        raise ValueError(
            f"Krylov method {kry.method!r} is not supported by the "
            "batched serving path (gmres and cg are)"
        )

    def _solve_price(
        self, result: BlockSolveResult, precond, layout: JobLayout
    ) -> float:
        """Deflation-aware model seconds of the block iteration phase.

        Columns retire as they converge, so iteration ``i`` runs at the
        width of the still-active columns: sorting the per-column depths
        ascending, the block spends ``d_1`` iterations at full width,
        ``d_2 - d_1`` at width ``k-1``, and so on.  Batched reductions
        are priced once from the result's own batched counters.
        """
        depths = sorted(result.iterations)
        k = len(depths)
        secs = 0.0
        prev = 0
        for j, d in enumerate(depths):
            span = d - prev
            if span > 0:
                width = k - j
                secs += span * block_iteration_seconds(precond, layout, width)
            prev = d
        secs += reduce_seconds(
            layout, result.reduces, result.reduce_doubles
        )
        return secs

    def _serve_batch(
        self, batch: RequestBatch, layout: JobLayout, start_clock: float
    ) -> Tuple[List[SolveResponse], float]:
        op = self._operators[batch.shard[0]]
        tr = get_tracer()
        with tr.span("serve/batch") as sp:
            sp.annotate(shard=str(batch.shard[2:]), tenants=sorted(
                {r.tenant for r in batch.requests}
            ))
            sp.count("batch_width", float(batch.width))
            pooled = self.pool.acquire(
                batch.shard, self._session_factory(batch, op)
            )
            first_use = pooled.setups == 0
            precond, reused = pooled.preconditioner_for(
                batch.values_fp,
                _OperatorProblem(
                    op.matrix, batch.requests[0].rhs,
                    coordinates=op.coordinates,
                    dofs_per_node=op.dofs_per_node,
                ),
            )
            if reused:
                setup_secs = 0.0
            else:
                from repro.runtime.timings import time_solver

                t = time_solver(precond, layout, 0, 0, 0)
                setup_secs = (
                    t.first_setup_seconds if first_use else t.setup_seconds
                )
            with tr.span("serve/solve") as ssp:
                result = self._run_block(batch, op, precond)
                ssp.count("block_width", float(batch.width))
            solve_secs = self._solve_price(result, precond, layout)
            batch_secs = setup_secs + solve_secs
            sp.annotate(
                setup_seconds=setup_secs,
                solve_seconds=solve_secs,
                setup_reused=reused,
            )
            b_norms = [
                max(float(np.linalg.norm(r.rhs)), 1e-300)
                for r in batch.requests
            ]
            responses = []
            for i, (req, arrival) in enumerate(
                zip(batch.requests, batch.arrival_clocks)
            ):
                x = result.x[:, i].copy()
                relres = float(
                    np.linalg.norm(op.matrix.matvec(x) - req.rhs)
                    / b_norms[i]
                )
                wait = start_clock - arrival
                latency = wait + batch_secs
                sp.count("queue_wait_seconds", wait)
                responses.append(
                    SolveResponse(
                        request_id=req.request_id,
                        tenant=req.tenant,
                        status=result.statuses[i],
                        x=x,
                        iterations=result.iterations[i],
                        converged=result.converged[i],
                        residual_norms=list(result.residual_norms[i]),
                        final_relres=relres,
                        queue_wait_seconds=wait,
                        batch_width=batch.width,
                        service_seconds=batch_secs,
                        latency_seconds=latency,
                        deadline_met=(
                            None if req.deadline is None
                            else latency <= req.deadline
                        ),
                        shard=f"{batch.shard[0][:8]}:{batch.shard[2]}",
                    )
                )
                self._inflight.pop(req.request_id, None)
                pooled.served += 1
                self.served += 1
        return responses, batch_secs

    def close(self) -> None:
        """Release pooled sessions and their artifact pins."""
        self.pool.close()
