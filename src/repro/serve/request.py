"""The serving wire schema: :class:`SolveRequest` / :class:`SolveResponse`.

A request carries an *operator* (a CSR matrix, or the pattern
fingerprint of one previously registered with the service), one
right-hand side, the tenant identity, the full solver configuration
(:class:`~repro.api.SchwarzConfig` + :class:`~repro.api.KrylovConfig` +
partition), and scheduling hints (deadline in model seconds, priority).
Nothing in the schema assumes a FEM origin: ``coordinates`` /
``dofs_per_node`` / ``nullspace`` are optional extras a tenant supplies
when its operator has non-trivial near-null structure (elasticity's
rigid-body modes); a bare matrix + RHS is a complete request.

A response carries the solution and convergence record plus the serving
metrics (queue wait, batch width, modeled service seconds) and the
terminal :class:`~repro.krylov.status.SolveStatus`.  Both sides
round-trip through plain dicts (:meth:`SolveResponse.to_dict` /
:meth:`SolveResponse.from_dict`), so service callers never touch the
internal result types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.api import KrylovConfig, SchwarzConfig
from repro.krylov import SolveStatus
from repro.sparse.csr import CsrMatrix

__all__ = ["SolveRequest", "SolveResponse"]


@dataclass
class SolveRequest:
    """One tenant's solve: operator + RHS + config + scheduling hints.

    Attributes
    ----------
    rhs:
        The right-hand side (1-D, length = operator rows).
    matrix:
        The operator as a :class:`~repro.sparse.csr.CsrMatrix`.  Exactly
        one of ``matrix`` / ``matrix_fingerprint`` must be set.
    matrix_fingerprint:
        Pattern fingerprint of an operator previously registered with
        :meth:`~repro.serve.service.SolverService.register` -- repeat
        tenants ship only the fingerprint and the new RHS.
    tenant:
        Opaque tenant identity (billing / observability attribution).
    config, krylov:
        Preconditioner and Krylov configuration.  Their ``describe()``
        strings are part of the shard key: requests batch together only
        when both match.
    partition:
        Subdomain box (one model rank per subdomain).
    nullspace:
        Explicit near-null-space block for the coarse basis (generic
        escape hatch; overrides the coordinate-based defaults).
    coordinates, dofs_per_node:
        Optional geometric extras for operators that have them (needed
        for rigid-body modes when ``dofs_per_node == 3``); scalar
        algebraic operators leave both at their defaults.
    deadline:
        Model-seconds budget from submission; the response reports
        whether it was met.  None means no deadline.  Under an
        admission-controlled service the deadline also drives load
        shedding: a request whose deadline is already unmeetable is
        refused (``SolveStatus.SHED``) instead of served late.
    priority:
        Higher serves first among batches with equal deadlines.
    tolerance_budget:
        The loosest relative tolerance this client accepts (must be
        >= ``krylov.rtol``).  Under overload the degradation ladder may
        loosen the batch's tolerance up to the tightest budget present;
        None (default) pins this request -- and any batch containing it
        -- at full tolerance.
    request_id:
        Assigned by the service at submission when None.
    """

    rhs: np.ndarray
    matrix: Optional[CsrMatrix] = None
    matrix_fingerprint: Optional[str] = None
    tenant: str = "default"
    config: SchwarzConfig = field(default_factory=SchwarzConfig)
    krylov: KrylovConfig = field(default_factory=KrylovConfig)
    partition: Tuple[int, int, int] = (2, 2, 1)
    nullspace: Optional[np.ndarray] = None
    coordinates: Optional[np.ndarray] = None
    dofs_per_node: int = 1
    deadline: Optional[float] = None
    priority: int = 0
    tolerance_budget: Optional[float] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.matrix is None) == (self.matrix_fingerprint is None):
            raise ValueError(
                "exactly one of matrix= and matrix_fingerprint= must be "
                "set on a SolveRequest"
            )
        self.rhs = np.asarray(self.rhs, dtype=np.float64)
        if self.rhs.ndim != 1:
            raise ValueError(
                f"rhs must be 1-D (one request per right-hand side; the "
                f"batcher builds the blocks), got shape {self.rhs.shape}"
            )
        if self.matrix is not None and self.rhs.size != self.matrix.n_rows:
            raise ValueError(
                f"rhs has {self.rhs.size} entries for a "
                f"{self.matrix.n_rows}-row operator"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive model seconds, got "
                f"{self.deadline}"
            )
        if self.tolerance_budget is not None:
            if self.tolerance_budget < self.krylov.rtol:
                raise ValueError(
                    f"tolerance_budget ({self.tolerance_budget:g}) must be "
                    f">= the requested rtol ({self.krylov.rtol:g}); it is "
                    "the loosest tolerance the client accepts"
                )
        self.partition = tuple(int(p) for p in self.partition)


@dataclass
class SolveResponse:
    """Outcome of one served request.

    ``status`` is the public terminal state; callers branch on it (or
    on its string value after :meth:`to_dict`) rather than on any
    internal result type.
    """

    request_id: str
    tenant: str
    status: SolveStatus
    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    final_relres: float
    #: model seconds the request sat queued before its batch started
    queue_wait_seconds: float = 0.0
    #: columns in the batched solve that served this request (1 =
    #: unbatched)
    batch_width: int = 1
    #: model seconds of the batch that served this request (setup
    #: share + block iterations + batched reductions)
    service_seconds: float = 0.0
    #: submission-to-completion model seconds (queue wait + service)
    latency_seconds: float = 0.0
    #: None when the request had no deadline
    deadline_met: Optional[bool] = None
    #: the shard this request was served on (pattern/config identity)
    shard: str = ""
    #: retry attempts beyond the first (0 on the no-fault path)
    retries: int = 0
    #: why the request was shed (``status == SolveStatus.SHED`` only):
    #: ``queue_full`` / ``rate_limited`` / ``admission_backlog`` /
    #: ``deadline_passed`` / ``circuit_open``
    shed_reason: Optional[str] = None
    #: :meth:`DegradationDecision.to_dict` of the batch that served this
    #: request, or None when it ran at full quality
    degradation: Optional[dict] = None
    #: error summary of the failing batch (``status == FAILED`` only)
    error: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "status": str(self.status),
            "x": np.asarray(self.x, dtype=np.float64).tolist(),
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "residual_norms": [float(r) for r in self.residual_norms],
            "final_relres": float(self.final_relres),
            "queue_wait_seconds": float(self.queue_wait_seconds),
            "batch_width": int(self.batch_width),
            "service_seconds": float(self.service_seconds),
            "latency_seconds": float(self.latency_seconds),
            "deadline_met": self.deadline_met,
            "shard": self.shard,
            "retries": int(self.retries),
            "shed_reason": self.shed_reason,
            "degradation": self.degradation,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SolveResponse":
        """Rebuild a response from :meth:`to_dict` output.

        ``SolveStatus`` round-trips through its string value -- the
        enum is a ``str`` subclass, so ``SolveStatus(d["status"])``
        recovers the member exactly.
        """
        return cls(
            request_id=d["request_id"],
            tenant=d["tenant"],
            status=SolveStatus(d["status"]),
            x=np.asarray(d["x"], dtype=np.float64),
            iterations=int(d["iterations"]),
            converged=bool(d["converged"]),
            residual_norms=[float(r) for r in d["residual_norms"]],
            final_relres=float(d["final_relres"]),
            queue_wait_seconds=float(d["queue_wait_seconds"]),
            batch_width=int(d["batch_width"]),
            service_seconds=float(d["service_seconds"]),
            latency_seconds=float(d["latency_seconds"]),
            deadline_met=d["deadline_met"],
            shard=d.get("shard", ""),
            retries=int(d.get("retries", 0)),
            shed_reason=d.get("shed_reason"),
            degradation=d.get("degradation"),
            error=d.get("error"),
        )
