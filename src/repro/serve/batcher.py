"""Same-pattern request coalescing.

Two requests may share one batched multi-RHS solve only when the whole
solve is identical up to the right-hand side:

* same operator *values* (a multi-RHS block solve applies one operator
  to every column), hence same pattern;
* same partition, same :class:`~repro.api.SchwarzConfig` and
  :class:`~repro.api.KrylovConfig` (their ``describe()`` strings), and
  same nullspace source -- one preconditioner serves the block.

The *shard* key (pattern fingerprint + partition + config strings)
identifies the pooled session; within a shard, batches are sub-keyed by
the values fingerprint.  :meth:`RequestBatcher.take_batches` drains the
pending set into width-capped batches ordered by earliest deadline,
then highest priority, then arrival -- the order the service executes
them in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.serve.request import SolveRequest

__all__ = ["RequestBatcher", "RequestBatch", "autoscale_max_batch", "shard_key"]


def autoscale_max_batch(
    precond, layout, cap: int = 32, improvement: float = 0.05
) -> int:
    """The batch width where modeled per-request latency stops improving.

    Block solves amortize kernel launches and halo latency across
    columns, so per-request cost
    (:func:`~repro.runtime.timings.block_iteration_seconds` divided by
    the width) falls as width grows -- until the width-proportional
    flops/bytes dominate and the curve flattens.  Walking doubling
    widths, the scan stops at the first step whose relative per-request
    improvement falls below ``improvement`` (or at ``cap``) and returns
    the last width that still paid for itself.  The service uses this to
    size ``max_batch`` from the cost model instead of a static default.
    """
    from repro.runtime.timings import block_iteration_seconds

    if cap < 1:
        raise ValueError(f"cap must be >= 1, got {cap}")
    best_width = 1
    best_per_req = block_iteration_seconds(precond, layout, 1)
    width = 2
    while width <= cap:
        per_req = block_iteration_seconds(precond, layout, width) / width
        if per_req >= best_per_req * (1.0 - improvement):
            break
        best_width, best_per_req = width, per_req
        width *= 2
    return best_width


def shard_key(req: SolveRequest, pattern_fp: str) -> Tuple:
    """The session-shard identity of one request.

    ``pattern_fp`` is resolved by the service (a request may carry only
    a registered fingerprint); everything else comes from the request's
    configuration.  Matching shard keys mean the same pooled
    :class:`~repro.api.SolverSession` can serve both requests.
    """
    return (
        pattern_fp,
        req.partition,
        req.config.describe(),
        req.krylov.describe(),
    )


@dataclass
class _Pending:
    """One queued request with its resolved identity and arrival stamp."""

    req: SolveRequest
    shard: Tuple
    values_fp: str
    arrival_clock: float
    seq: int


@dataclass
class RequestBatch:
    """One executable unit: same shard, same operator values.

    ``width == len(requests)``; the service stacks the right-hand sides
    into an ``(n, width)`` block and runs one block solve.
    """

    shard: Tuple
    values_fp: str
    requests: List[SolveRequest] = field(default_factory=list)
    arrival_clocks: List[float] = field(default_factory=list)

    @property
    def width(self) -> int:
        return len(self.requests)

    def _deadline(self) -> float:
        ds = [
            c + r.deadline
            for r, c in zip(self.requests, self.arrival_clocks)
            if r.deadline is not None
        ]
        return min(ds) if ds else math.inf

    def _priority(self) -> int:
        return max(r.priority for r in self.requests)


def _chunk_batch(chunk: List[_Pending]) -> RequestBatch:
    """Materialize one ordered chunk as an executable batch."""
    return RequestBatch(
        shard=chunk[0].shard,
        values_fp=chunk[0].values_fp,
        requests=[p.req for p in chunk],
        arrival_clocks=[p.arrival_clock for p in chunk],
    )


class RequestBatcher:
    """Accumulates pending requests and drains them as ordered batches.

    Parameters
    ----------
    max_batch:
        Width cap per batch; a group of ``k > max_batch`` coalescible
        requests splits into ``ceil(k / max_batch)`` batches (in
        priority-then-arrival order).
    batching:
        ``False`` disables coalescing entirely -- every request becomes
        its own width-1 batch (the one-at-a-time baseline the serving
        benchmark compares against).  Ordering rules are unchanged.
    """

    def __init__(self, max_batch: int = 8, batching: bool = True) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = int(max_batch)
        self.batching = bool(batching)
        self._pending: List[_Pending] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(
        self,
        req: SolveRequest,
        shard: Tuple,
        values_fp: str,
        arrival_clock: float,
    ) -> None:
        """Queue one request under its resolved shard / values identity."""
        self._pending.append(
            _Pending(req, shard, values_fp, arrival_clock, self._seq)
        )
        self._seq += 1

    def pending_in_shard(self, shard: Tuple) -> int:
        """Queued requests currently pending for ``shard``.

        The admission controller's per-shard queue-depth and backlog
        checks read this; it never mutates the queue.
        """
        return sum(1 for p in self._pending if p.shard == shard)

    def _ordered_chunks(self) -> List[Tuple[Tuple, List[_Pending]]]:
        """The pending set as execution-ordered width-capped chunks.

        Within a coalescible group, requests are ordered by priority
        (descending) then arrival ``seq``; across chunks, execution
        order is earliest absolute deadline (all-None-deadline groups
        sort last at ``+inf``), then highest priority, then first
        arrival ``seq`` -- a total order, since every chunk's first
        ``seq`` is distinct.  Pure function of the pending list.
        """
        groups: Dict[Tuple, List[_Pending]] = {}
        for p in self._pending:
            if self.batching:
                gkey = (p.shard, p.values_fp)
            else:
                gkey = (p.shard, p.values_fp, p.seq)
            groups.setdefault(gkey, []).append(p)

        chunks: List[Tuple[Tuple, List[_Pending]]] = []
        for members in groups.values():
            members.sort(key=lambda p: (-p.req.priority, p.seq))
            for i in range(0, len(members), self.max_batch):
                chunk = members[i : i + self.max_batch]
                batch = _chunk_batch(chunk)
                first_seq = min(p.seq for p in chunk)
                chunks.append(
                    ((batch._deadline(), -batch._priority(), first_seq), chunk)
                )
        chunks.sort(key=lambda t: t[0])
        return chunks

    def take_batches(self) -> List[RequestBatch]:
        """Drain the pending set into execution-ordered batches.

        See :meth:`_ordered_chunks` for the ordering contract.
        """
        chunks = self._ordered_chunks()
        self._pending = []
        return [_chunk_batch(chunk) for _, chunk in chunks]

    def take_next_batch(self) -> "RequestBatch | None":
        """Pop only the first batch in execution order; None when empty.

        The streaming drain loop serves one batch at a time so arrivals
        landing during a batch's service can join the *next* round's
        coalescing.  Untaken requests stay pending with their original
        arrival stamps and sequence numbers, so a later
        :meth:`take_batches` / :meth:`take_next_batch` sees exactly the
        queue a single up-front drain would have.
        """
        chunks = self._ordered_chunks()
        if not chunks:
            return None
        _, first = chunks[0]
        taken = {id(p) for p in first}
        self._pending = [p for p in self._pending if id(p) not in taken]
        return _chunk_batch(first)
