"""CLI entry: ``python -m repro.serve --bench`` runs the serving bench."""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.bench import run_serve_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant serving benchmark (BENCH_serve.json)",
    )
    ap.add_argument(
        "--bench", action="store_true",
        help="run the tenant-count sweep (the only mode; kept explicit "
             "so the invocation reads as a benchmark, not a server)",
    )
    ap.add_argument("--out", default=None, help="write the JSON report here")
    ap.add_argument(
        "--tenants", type=int, nargs="+", default=[1, 2, 4, 8],
        help="tenant counts to sweep",
    )
    ap.add_argument(
        "--elements", type=int, default=6, help="elements per axis"
    )
    args = ap.parse_args(argv)
    if not args.bench:
        ap.error("pass --bench to run the serving benchmark")

    report = run_serve_bench(
        tenant_counts=args.tenants, elements=args.elements
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    for t, rec in sorted(report["tenants"].items(), key=lambda kv: int(kv[0])):
        m = rec["modes"]
        print(
            f"[serve] t={t:>2s}: unbatched {m['unbatched']['requests_per_second']:.2f} "
            f"req/s, concurrent {m['concurrent']['requests_per_second']:.2f}, "
            f"batched {m['batched']['requests_per_second']:.2f} "
            f"(p99 {m['batched']['p99_latency_seconds']:.3e}s)",
            file=sys.stderr,
        )
    if report["violations"]:
        for v in report["violations"]:
            print(f"[serve] VIOLATION: {v}", file=sys.stderr)
        return 1
    print("[serve] batching/iteration-parity invariants hold",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
