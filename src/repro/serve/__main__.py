"""CLI entry: the serving benches.

* ``python -m repro.serve --bench`` -- the fair-weather tenant-count
  sweep (``BENCH_serve.json``);
* ``python -m repro.serve --overload`` -- the overload chaos bench
  (``BENCH_slo.json``): seeded arrival traces at 1--16x capacity with
  injected faults, guarded vs unguarded arms.

``--seed`` seeds either bench; ``--json`` suppresses the human-readable
summary so stdout is pure JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.bench import run_serve_bench
from repro.serve.overload import run_overload_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant serving benchmarks (BENCH_serve.json / "
                    "BENCH_slo.json)",
    )
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--bench", action="store_true",
        help="run the tenant-count sweep (BENCH_serve.json)",
    )
    mode.add_argument(
        "--overload", action="store_true",
        help="run the overload chaos bench: guarded vs unguarded serving "
             "under seeded traces at 1-16x capacity with injected faults "
             "(BENCH_slo.json)",
    )
    ap.add_argument("--out", default=None, help="write the JSON report here")
    ap.add_argument(
        "--seed", type=int, default=None,
        help="bench seed (default: 7 for --bench, matching the committed "
             "BENCH_serve.json; 0 for --overload)",
    )
    ap.add_argument(
        "--json", action="store_true",
        help="emit only the JSON report on stdout (no summary lines)",
    )
    ap.add_argument(
        "--tenants", type=int, nargs="+", default=[1, 2, 4, 8],
        help="tenant counts to sweep (--bench)",
    )
    ap.add_argument(
        "--elements", type=int, default=None,
        help="elements per axis (default: 6 for --bench, 5 for --overload)",
    )
    ap.add_argument(
        "--requests", type=int, default=96,
        help="requests per trace (--overload)",
    )
    ap.add_argument(
        "--fault-rate", type=float, default=0.25,
        help="injected transient-fault probability per batch (--overload)",
    )
    args = ap.parse_args(argv)

    if args.overload:
        report = run_overload_bench(
            n_requests=args.requests,
            seed=0 if args.seed is None else args.seed,
            elements=5 if args.elements is None else args.elements,
            fault_rate=args.fault_rate,
        )
    else:
        report = run_serve_bench(
            tenant_counts=args.tenants,
            elements=6 if args.elements is None else args.elements,
            seed=7 if args.seed is None else args.seed,
        )

    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)

    if not args.json:
        if args.overload:
            for m, arms in sorted(
                report["multipliers"].items(), key=lambda kv: float(kv[0])
            ):
                g, u = arms["guarded"], arms["unguarded"]
                print(
                    f"[slo] x{m:>2s}: violations guarded "
                    f"{g['slo_violation_rate']:.2f} vs unguarded "
                    f"{u['slo_violation_rate']:.2f}; goodput "
                    f"{g['goodput_rps']:.2f} vs {u['goodput_rps']:.2f} "
                    f"req/s; shed {g['shed_rate']:.2f}; retries "
                    f"{g['retries']}",
                    file=sys.stderr,
                )
            ident = report["no_fault_identity"]
            print(
                f"[slo] 1x no-fault identity: identical="
                f"{ident['identical']} sheds={ident['sheds']} "
                f"retries={ident['retries']} "
                f"degraded={ident['degraded_batches']}",
                file=sys.stderr,
            )
        else:
            for t, rec in sorted(
                report["tenants"].items(), key=lambda kv: int(kv[0])
            ):
                mm = rec["modes"]
                print(
                    f"[serve] t={t:>2s}: unbatched "
                    f"{mm['unbatched']['requests_per_second']:.2f} req/s, "
                    f"concurrent {mm['concurrent']['requests_per_second']:.2f}, "
                    f"batched {mm['batched']['requests_per_second']:.2f} "
                    f"(p99 {mm['batched']['p99_latency_seconds']:.3e}s)",
                    file=sys.stderr,
                )

    if report["violations"]:
        for v in report["violations"]:
            tag = "slo" if args.overload else "serve"
            print(f"[{tag}] VIOLATION: {v}", file=sys.stderr)
        return 1
    if not args.json:
        if args.overload:
            print("[slo] guarded dominance and no-fault identity "
                  "invariants hold", file=sys.stderr)
        else:
            print("[serve] batching/iteration-parity invariants hold",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
