"""The shard-keyed :class:`~repro.api.SolverSession` pool.

One pooled session per shard (pattern fingerprint + partition + config
identity).  The pool:

* builds sessions lazily through a caller-supplied factory and bounds
  the live set with LRU eviction;
* **pins** each live shard's decomposition key
  (``("decomposition", pattern_fp, partition)``) in the ambient
  :class:`~repro.reuse.ArtifactCache` for as long as the session is
  pooled -- an interleaved tenant filling the cache cannot evict an
  artifact an in-flight session holds (the pin is taken *before* the
  first build, so the build-and-put itself is protected);
* memoizes the built preconditioner per operator-values fingerprint, so
  repeated same-values batches skip setup entirely (the serving
  analogue of :meth:`~repro.api.SolverSession.resolve`'s skip path).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Tuple

from repro.api import SolverSession
from repro.reuse import get_artifact_cache

__all__ = ["PooledSession", "SessionPool"]


class PooledSession:
    """One shard's live solver state.

    Attributes
    ----------
    shard:
        The shard key this session serves.
    session:
        The underlying :class:`~repro.api.SolverSession`.
    precond:
        The most recently built preconditioner (None before first use).
    values_fp:
        Values fingerprint ``precond`` was built for.
    setups:
        How many preconditioner builds this session has paid (first
        build prices symbolic + numeric; later rebuilds numeric only).
    served:
        Requests served through this session.
    """

    __slots__ = (
        "shard", "session", "precond", "values_fp", "pin_key", "cache",
        "setups", "served",
    )

    def __init__(
        self, shard: Tuple, session: SolverSession, pin_key: tuple, cache
    ) -> None:
        self.shard = shard
        self.session = session
        self.pin_key = pin_key
        # the cache the pin was taken on: unpin must hit the SAME cache
        # even if the ambient cache has been swapped since
        self.cache = cache
        self.precond = None
        self.values_fp: Optional[str] = None
        self.setups = 0
        self.served = 0

    def preconditioner_for(self, values_fp: str, problem) -> Tuple[object, bool]:
        """The preconditioner for one operator-values identity.

        Returns ``(precond, reused)``: ``reused`` is True when the
        cached build matched and no setup was paid.  A different values
        fingerprint rebuilds through the session (the decomposition
        plan itself comes from the pinned artifact-cache entry).
        """
        if self.precond is not None and self.values_fp == values_fp:
            return self.precond, True
        self.session.problem = problem
        self.precond = self.session.build_preconditioner()
        self.values_fp = values_fp
        self.setups += 1
        return self.precond, False

    def adopt_repartition(self, precond, new_pin_key: tuple) -> None:
        """Swap in an elastically repaired preconditioner.

        After a merge/split the decomposition the session serves is no
        longer the one its pin key names.  The swap (1) invalidates the
        old decomposition artifact -- pinned or not, it describes a
        partition this session will never serve again -- (2) pins and
        publishes the repaired decomposition under its own
        fingerprint key, and (3) releases the old pin.  ``values_fp``
        is kept: the matrix values did not change, so the next
        same-values batch memo-hits on the repaired preconditioner.
        """
        self.cache.invalidate(self.pin_key)
        if new_pin_key != self.pin_key:
            self.cache.pin(new_pin_key)
            self.cache.unpin(self.pin_key)
            self.pin_key = new_pin_key
        self.cache.put(new_pin_key, precond.dec)
        self.precond = precond


class SessionPool:
    """LRU-bounded pool of :class:`PooledSession` objects keyed by shard.

    Eviction unpins the evicted shard's decomposition key; the artifact
    itself then lives or dies by the cache's own LRU policy.
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._sessions: "OrderedDict[Tuple, PooledSession]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, shard: Tuple) -> bool:
        return shard in self._sessions

    def get(self, shard: Tuple) -> Optional[PooledSession]:
        """The pooled session for ``shard`` without building one.

        The elastic scaling policy peeks with this: a shard that has
        never been served has no session (and no utilization signal),
        so there is nothing to scale.  Recency is refreshed on hit.
        """
        pooled = self._sessions.get(shard)
        if pooled is not None:
            self._sessions.move_to_end(shard)
        return pooled

    def acquire(
        self,
        shard: Tuple,
        factory: Callable[[], SolverSession],
    ) -> PooledSession:
        """The pooled session for ``shard``, creating it on first use.

        The decomposition key is pinned before ``factory`` runs, so the
        session's very first ``build_preconditioner`` stores into a
        protected slot.
        """
        pooled = self._sessions.get(shard)
        if pooled is not None:
            self._sessions.move_to_end(shard)
            return pooled
        pattern_fp, partition = shard[0], shard[1]
        pin_key = ("decomposition", pattern_fp, partition)
        cache = get_artifact_cache()
        cache.pin(pin_key)
        try:
            session = factory()
        except BaseException:
            cache.unpin(pin_key)
            raise
        pooled = PooledSession(shard, session, pin_key, cache)
        self._sessions[shard] = pooled
        while len(self._sessions) > self.maxsize:
            _, evicted = self._sessions.popitem(last=False)
            evicted.cache.unpin(evicted.pin_key)
            self.evictions += 1
        return pooled

    def close(self) -> None:
        """Release every pooled session (and its artifact pin)."""
        for pooled in self._sessions.values():
            pooled.cache.unpin(pooled.pin_key)
        self._sessions.clear()
