"""The overload chaos benchmark behind ``BENCH_slo.json``.

``python -m repro.serve --overload`` replays seeded Poisson arrival
traces (:class:`~repro.serve.admission.ArrivalTrace`) at 1--16x the
service's calibrated capacity, with seeded *transient* solver faults
injected (:class:`FaultInjector` -- a faulted batch raises; its retry
re-hashes with the bumped attempt counter and normally succeeds), and
serves every trace twice:

* **unguarded** -- the plain service.  Faults become terminal
  ``FAILED`` responses (the containment fix keeps the drain alive);
  nothing is shed, so under overload every request is served -- late.
* **guarded** -- the same service with an
  :class:`~repro.serve.admission.AdmissionConfig` (bounded queues +
  deadline-aware shedding) and a
  :class:`~repro.serve.guard.GuardConfig` (per-shard circuit breakers,
  deadline-capped seeded-backoff retries, the degradation ladder).

Per arm and multiplier the report records p50/p99 modeled latency over
served requests, shed rate, SLO-violation rate, and goodput.  The SLO
accounting is deliberate: a **violation** is a request the service
answered *wrongly* -- served past its deadline, or terminally failed.
A **shed** is an honest, immediate refusal; it is not a violation but
it scores zero **goodput** (converged-and-on-deadline responses per
model second), so a service cannot win by shedding everything.

Three invariants become ``violations`` entries when they fail (the CI
``overload-chaos`` job gates on them):

1. at every multiplier >= 4 the guarded arm's SLO-violation rate is
   strictly below the unguarded arm's;
2. at the 8x point the guarded arm also has strictly higher goodput;
3. at 1x with faults disabled, the guarded arm is bit-identical to the
   unguarded arm (same solutions, iteration counts and latencies) with
   zero sheds, retries and degradations -- the guard is provably free
   until it fires.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.guard import seeded_jitter

__all__ = ["FaultInjector", "InjectedSolverFault", "run_overload_bench"]


class InjectedSolverFault(RuntimeError):
    """A chaos-injected batch failure (transient by construction)."""


class FaultInjector:
    """Seeded transient batch faults for the chaos arms.

    A batch faults when ``seeded_jitter(seed, "fault:" + head_id,
    attempt) < rate``, where ``head_id`` is the batch's first request
    and ``attempt`` that request's failure count so far.  The decision
    is a pure hash of ``(seed, request, attempt)``: replays are
    bit-identical, and a retried batch re-rolls with the bumped attempt
    counter, so faults are *transient* -- exactly the failure mode
    retry-with-backoff exists for.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"fault rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        #: batches faulted so far (reporting)
        self.injected = 0

    def __call__(self, batch, attempts: Dict[str, int]) -> None:
        if self.rate <= 0.0:
            return
        head = batch.requests[0].request_id
        attempt = attempts.get(head, 0)
        if seeded_jitter(self.seed, f"fault:{head}", attempt) < self.rate:
            self.injected += 1
            raise InjectedSolverFault(
                f"injected transient fault (batch head {head}, "
                f"attempt {attempt})"
            )


def _percentile(latencies: Sequence[float], q: float) -> float:
    if not latencies:
        return float("inf")
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


def _arm_metrics(service, responses, n_requests: int) -> dict:
    """SLO scorecard of one served trace (see module docstring)."""
    from repro.krylov import SolveStatus

    served = [r for r in responses if r.status is not SolveStatus.SHED]
    sheds = [r for r in responses if r.status is SolveStatus.SHED]
    failed = [r for r in served if r.status is SolveStatus.FAILED]
    late = [
        r for r in served
        if r.status is not SolveStatus.FAILED and r.deadline_met is False
    ]
    good = [
        r for r in served
        if r.status is SolveStatus.CONVERGED and r.deadline_met
    ]
    latencies = [r.latency_seconds for r in served]
    clock = max(float(service.clock), 1e-300)
    return {
        "responses": len(responses),
        "served": len(served),
        "sheds": len(sheds),
        "failed": len(failed),
        "late": len(late),
        "good": len(good),
        "retries": int(service.retries),
        "degraded_batches": int(service.degraded_batches),
        "batch_failures": int(service.batch_failures),
        "shed_rate": len(sheds) / n_requests,
        "slo_violation_rate": (len(failed) + len(late)) / n_requests,
        "p50_latency_seconds": _percentile(latencies, 50),
        "p99_latency_seconds": _percentile(latencies, 99),
        "goodput_rps": len(good) / clock,
        "makespan_seconds": float(service.clock),
        "shed_reasons": sorted(
            {r.shed_reason for r in sheds if r.shed_reason}
        ),
    }


def _run_arm(
    problem,
    layout,
    trace,
    *,
    deadline: float,
    tolerance_budget: Optional[float],
    seed: int,
    admission=None,
    guard=None,
    fault_rate: float = 0.0,
) -> tuple:
    """Serve one bound trace on a fresh service; returns (service, responses)."""
    from repro.reuse import ArtifactCache, use_artifact_cache
    from repro.serve.request import SolveRequest
    from repro.serve.service import SolverService

    injector = (
        FaultInjector(fault_rate, seed=seed) if fault_rate > 0.0 else None
    )
    with use_artifact_cache(ArtifactCache()):
        service = SolverService(
            layout=layout,
            admission=admission,
            guard=guard,
            fault_injector=injector,
        )
        fp = service.register(problem.a)

        def factory(arrival):
            rng = np.random.default_rng(100003 * seed + arrival.index)
            return SolveRequest(
                rhs=problem.b + 0.1 * rng.standard_normal(problem.b.size),
                matrix_fingerprint=fp,
                tenant=arrival.tenant,
                partition=(2, 2, 1),
                deadline=deadline,
                tolerance_budget=tolerance_budget,
            )

        responses = service.run_trace(trace.bind(factory))
        service.close()
    return service, responses


def _identical(ra, rb) -> bool:
    """Bit-identity of two response streams (order, solution, clock)."""
    if len(ra) != len(rb):
        return False
    for a, b in zip(ra, rb):
        if (
            a.request_id != b.request_id
            or a.status is not b.status
            or a.iterations != b.iterations
            or a.latency_seconds != b.latency_seconds
            or a.service_seconds != b.service_seconds
            or not np.array_equal(a.x, b.x)
        ):
            return False
    return True


def run_overload_bench(
    multipliers: Sequence[float] = (1, 2, 4, 8, 16),
    n_requests: int = 96,
    seed: int = 0,
    elements: int = 5,
    fault_rate: float = 0.25,
) -> dict:
    """Guarded-vs-unguarded SLO comparison over an overload sweep.

    Capacity is calibrated from a warm full-width block solve, derated
    to 60% utilization: a *streaming* service serves one batch per
    round and ramps its width up from 1, so the full-width rate is a
    ceiling it only approaches -- at 60% of it the queue stays bounded
    and latencies settle near one batch time, while ``m >= 2`` outruns
    even perfect coalescing and the backlog grows without bound.  Every
    request carries the same deadline (45 calibrated batched
    per-request service times: comfortable at 1x, increasingly hopeless
    as the backlog grows) and a ``tolerance_budget`` two decades above
    the default rtol, giving the degradation ladder a declared budget
    to spend under pressure.
    """
    from repro.bench.harness import model_machine
    from repro.fem import laplace_3d
    from repro.reuse import ArtifactCache, use_artifact_cache
    from repro.runtime.layout import JobLayout
    from repro.serve.admission import AdmissionConfig, ArrivalTrace
    from repro.serve.guard import GuardConfig
    from repro.serve.request import SolveRequest
    from repro.serve.service import SolverService

    problem = laplace_3d(elements, elements, elements)
    layout = JobLayout.gpu_run(1, 2, machine=model_machine())

    # ---- capacity calibration: warm full-width batched throughput ----
    calib_width = 8
    with use_artifact_cache(ArtifactCache()):
        calib = SolverService(layout=layout, max_batch=calib_width)
        fp = calib.register(problem.a)
        rng = np.random.default_rng(100003 * seed)

        def _calib_req():
            return SolveRequest(
                rhs=problem.b + 0.1 * rng.standard_normal(problem.b.size),
                matrix_fingerprint=fp, partition=(2, 2, 1),
            )

        calib.solve(_calib_req())  # pays the one-time setup
        warm_clock = calib.clock
        for _ in range(calib_width):
            calib.submit(_calib_req())
        calib.drain()
        calib.close()
    per_request_seconds = (calib.clock - warm_clock) / calib_width
    capacity_rps = 0.6 / per_request_seconds
    deadline = 45.0 * per_request_seconds

    admission = AdmissionConfig(
        max_queue_depth=64,
        bucket_rate=None,
        backlog_factor=1.5,
        shed_in_queue=True,
    )
    guard = GuardConfig(
        breaker_cooldown=2.0 * per_request_seconds,
        backoff_base=0.05 * per_request_seconds,
        seed=seed,
    )

    violations: List[str] = []
    by_multiplier: Dict[str, dict] = {}
    for m in multipliers:
        trace = ArrivalTrace.poisson(
            rate=m * capacity_rps, n=n_requests, seed=seed
        )
        arms = {}
        for arm, adm, grd in (
            ("unguarded", None, None),
            ("guarded", admission, guard),
        ):
            svc, resp = _run_arm(
                problem, layout, trace,
                deadline=deadline, tolerance_budget=1e-5, seed=seed,
                admission=adm, guard=grd, fault_rate=fault_rate,
            )
            arms[arm] = _arm_metrics(svc, resp, n_requests)
        by_multiplier[str(m)] = arms

        g, u = arms["guarded"], arms["unguarded"]
        if m >= 4 and not g["slo_violation_rate"] < u["slo_violation_rate"]:
            violations.append(
                f"x{m}: guarded SLO-violation rate "
                f"{g['slo_violation_rate']:.3f} not strictly below "
                f"unguarded {u['slo_violation_rate']:.3f}"
            )
        if m == 8 and not g["goodput_rps"] > u["goodput_rps"]:
            violations.append(
                f"x{m}: guarded goodput {g['goodput_rps']:.3f} req/s not "
                f"strictly above unguarded {u['goodput_rps']:.3f}"
            )

    # ---- invariant 3: the guard is free until it fires ----
    ident_trace = ArrivalTrace.poisson(
        rate=capacity_rps, n=n_requests, seed=seed
    )
    svc_u, resp_u = _run_arm(
        problem, layout, ident_trace,
        deadline=deadline, tolerance_budget=1e-5, seed=seed,
    )
    svc_g, resp_g = _run_arm(
        problem, layout, ident_trace,
        deadline=deadline, tolerance_budget=1e-5, seed=seed,
        admission=admission, guard=guard,
    )
    identical = _identical(resp_u, resp_g)
    quiet = (
        svc_g.sheds == 0
        and svc_g.retries == 0
        and svc_g.degraded_batches == 0
    )
    if not identical:
        violations.append(
            "1x no-fault: guarded responses differ from unguarded"
        )
    if not quiet:
        violations.append(
            f"1x no-fault: guard fired (sheds={svc_g.sheds}, "
            f"retries={svc_g.retries}, degraded={svc_g.degraded_batches})"
        )

    return {
        "bench": "slo",
        "seed": int(seed),
        "n_requests": int(n_requests),
        "n_dofs": int(problem.a.n_rows),
        "partition": [2, 2, 1],
        "layout": "gpu_run(nodes=1, ranks_per_gpu=2)",
        "fault_rate": float(fault_rate),
        "per_request_seconds": per_request_seconds,
        "capacity_rps": capacity_rps,
        "deadline_seconds": deadline,
        "multipliers": by_multiplier,
        "no_fault_identity": {
            "identical": identical,
            "sheds": int(svc_g.sheds),
            "retries": int(svc_g.retries),
            "degraded_batches": int(svc_g.degraded_batches),
        },
        "violations": violations,
    }
