"""Reproduction of "An Experimental Study of Two-Level Schwarz Domain
Decomposition Preconditioners on GPUs" (Yamazaki, Heinlein,
Rajamanickam; IPDPS 2023).

A from-scratch Python implementation of the FROSch solver stack -- the
GDSW/reduced-GDSW two-level overlapping Schwarz preconditioner with its
full substrate (sparse kernels, direct and incomplete factorizations,
triangular-solve variants, single-reduce GMRES) -- plus a calibrated
Summit-node performance model that regenerates the paper's tables
without GPU hardware.

Quick start (the :class:`~repro.api.SolverSession` facade)::

    from repro import SolverSession, SchwarzConfig, LocalSolverSpec, elasticity_3d

    problem = elasticity_3d(10)
    result = SolverSession(
        problem,
        partition=(2, 2, 2),
        config=SchwarzConfig(local=LocalSolverSpec(kind="tacho")),
    ).solve()
    print(result.iterations, result.reduces)
    print(result.phase_table())

The layered entry points remain available::

    from repro import (
        elasticity_3d, rigid_body_modes, Decomposition,
        GDSWPreconditioner, LocalSolverSpec, gmres,
    )

    problem = elasticity_3d(10)
    dec = Decomposition.from_box_partition(problem, 2, 2, 2)
    M = GDSWPreconditioner(
        dec, rigid_body_modes(problem.coordinates),
        local_spec=LocalSolverSpec(kind="tacho"),
    )
    result = gmres(problem.a, problem.b, preconditioner=M, rtol=1e-7)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.api import (
    KrylovConfig,
    SchwarzConfig,
    SessionResult,
    SolverSession,
)
from repro.dd import (
    Decomposition,
    GDSWPreconditioner,
    HalfPrecisionOperator,
    LocalSolverSpec,
    OneLevelSchwarz,
)
from repro.fem import (
    StructuredGrid,
    constant_nullspace,
    elasticity_3d,
    laplace_2d,
    laplace_3d,
    rigid_body_modes,
    translations_only,
)
from repro.ft import (
    FaultTolerantComm,
    FaultToleranceConfig,
    FtReport,
    RankFailedError,
    RankFailurePlan,
)
from repro.krylov import ReduceCounter, SolveStatus, cg, gmres
from repro.obs import Tracer, get_tracer, use_tracer
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    HealthReport,
    ResilienceConfig,
)
from repro.reuse import (
    ArtifactCache,
    PatternChangedError,
    ReuseConfig,
    get_artifact_cache,
    use_artifact_cache,
)
from repro.runtime import JobLayout, SolverTimings, time_solver, trace_solver
from repro.serve import SolveRequest, SolveResponse, SolverService
from repro.sparse import CsrMatrix

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "CsrMatrix",
    "Decomposition",
    "FaultPlan",
    "FaultSpec",
    "FaultToleranceConfig",
    "FaultTolerantComm",
    "FtReport",
    "GDSWPreconditioner",
    "HalfPrecisionOperator",
    "HealthReport",
    "JobLayout",
    "KrylovConfig",
    "LocalSolverSpec",
    "OneLevelSchwarz",
    "PatternChangedError",
    "RankFailedError",
    "RankFailurePlan",
    "ReduceCounter",
    "ResilienceConfig",
    "ReuseConfig",
    "SchwarzConfig",
    "SessionResult",
    "SolveRequest",
    "SolveResponse",
    "SolveStatus",
    "SolverService",
    "SolverSession",
    "SolverTimings",
    "StructuredGrid",
    "Tracer",
    "__version__",
    "cg",
    "constant_nullspace",
    "elasticity_3d",
    "get_artifact_cache",
    "get_tracer",
    "gmres",
    "laplace_2d",
    "laplace_3d",
    "rigid_body_modes",
    "time_solver",
    "trace_solver",
    "translations_only",
    "use_artifact_cache",
    "use_tracer",
]
