"""Two-level overlapping Schwarz preconditioners (the FROSch core).

This package is the paper's primary contribution layer: GDSW-type
two-level overlapping Schwarz preconditioners

``M^{-1} = Phi A_0^{-1} Phi^T + sum_i R_i^T A_i^{-1} R_i``    (Eq. 1)

with energy-minimizing coarse bases

``Phi = [ -A_II^{-1} A_IG ; I ] Phi_G``                        (Eq. 2)

built *algebraically* from the assembled matrix, a node partition, and
the Neumann null space:

* :mod:`repro.dd.decomposition` -- nonoverlapping node partitions
  (structured boxes or algebraic recursive bisection) and the condensed
  node graph;
* :mod:`repro.dd.overlap` -- algebraic overlap by ``l`` graph layers;
* :mod:`repro.dd.interface` -- interface identification and its
  decomposition into vertex/edge/face components;
* :mod:`repro.dd.coarse_space` -- GDSW and reduced-GDSW (rGDSW)
  interface bases with partition of unity, and the energy-minimizing
  interior extension;
* :mod:`repro.dd.schwarz` -- the one-level additive Schwarz operator;
* :mod:`repro.dd.two_level` -- :class:`GDSWPreconditioner`, the full
  two-level operator with per-phase kernel profiles;
* :mod:`repro.dd.local_solvers` -- the subdomain/coarse solver menu
  (SuperLU/Tacho/ILU(k)/FastILU x CPU/GPU execution);
* :mod:`repro.dd.precision` -- the HalfPrecisionOperator wrapper
  (Section V-A.2);
* :mod:`repro.dd.adaptive` -- the AGDSW eigen-enrichment for
  heterogeneous coefficients (Section III's adaptive variant);
* :mod:`repro.dd.algebraic` -- the fully algebraic spectral coarse
  space (local SPSD splittings + GenEO-style eigenproblems; needs no
  null space or geometry, so arbitrary assembled matrices work);
* :mod:`repro.dd.multilevel` -- the three-level method (recursive GDSW
  on the coarse problem).
"""

from repro.dd.decomposition import Decomposition
from repro.dd.overlap import overlapping_subdomains
from repro.dd.interface import InterfaceAnalysis, analyze_interface
from repro.dd.coarse_space import CoarseSpace, build_coarse_space
from repro.dd.schwarz import OneLevelSchwarz
from repro.dd.two_level import GDSWPreconditioner
from repro.dd.local_solvers import LocalSolverSpec
from repro.dd.precision import HalfPrecisionOperator
from repro.dd.adaptive import build_adaptive_coarse_space
from repro.dd.algebraic import build_spectral_coarse_space
from repro.dd.multilevel import MultilevelCoarseSolver

__all__ = [
    "CoarseSpace",
    "MultilevelCoarseSolver",
    "build_adaptive_coarse_space",
    "build_spectral_coarse_space",
    "Decomposition",
    "GDSWPreconditioner",
    "HalfPrecisionOperator",
    "InterfaceAnalysis",
    "LocalSolverSpec",
    "OneLevelSchwarz",
    "analyze_interface",
    "build_coarse_space",
    "overlapping_subdomains",
]
