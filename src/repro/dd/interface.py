"""Interface identification and component classification.

The GDSW coarse space is built on the *interface* ``Gamma`` of the
nonoverlapping decomposition -- algebraically, the nodes adjacent (in
the node graph) to nodes owned by a different subdomain.  The interface decomposes
into connected *components* of equal subdomain-adjacency: in 3D,

* **faces** -- components shared by exactly 2 subdomains,
* **edges** -- components shared by exactly 3,
* **vertices** -- components shared by 4 or more (typically single
  nodes).

Classical GDSW uses one coarse basis function per component and null-
space vector; reduced GDSW (rGDSW, [Dohrmann & Widlund 2017]) keeps
only the vertex components and distributes face/edge nodes among the
adjacent vertices -- shrinking the coarse problem, which is the variant
all the paper's experiments run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.sparse.graph import subgraph_components

__all__ = ["InterfaceComponent", "InterfaceAnalysis", "analyze_interface"]


@dataclass(frozen=True)
class InterfaceComponent:
    """One connected interface component.

    Attributes
    ----------
    nodes:
        Sorted global node ids of the component.
    subdomains:
        The sorted tuple of subdomain ids every node of the component is
        adjacent to (the component's equivalence class).
    kind:
        ``"face"``, ``"edge"`` or ``"vertex"``.
    """

    nodes: np.ndarray
    subdomains: Tuple[int, ...]
    kind: str

    @property
    def multiplicity(self) -> int:
        """Number of adjacent subdomains."""
        return len(self.subdomains)


@dataclass
class InterfaceAnalysis:
    """Result of :func:`analyze_interface`.

    Attributes
    ----------
    interface_nodes:
        Sorted global ids of all interface nodes.
    interior_nodes:
        The complement (per-subdomain interiors).
    components:
        All interface components.
    node_subdomains:
        For each interface node (indexed by position in
        ``interface_nodes``), its adjacency tuple.
    """

    interface_nodes: np.ndarray
    interior_nodes: np.ndarray
    components: List[InterfaceComponent]
    node_adjacency: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    def by_kind(self, kind: str) -> List[InterfaceComponent]:
        """Components of one kind (``"vertex"``, ``"edge"``, ``"face"``)."""
        return [c for c in self.components if c.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Component counts per kind (the coarse-space size drivers)."""
        out = {"vertex": 0, "edge": 0, "face": 0}
        for c in self.components:
            out[c.kind] += 1
        return out


def analyze_interface(dec: Decomposition, dim: int = 3) -> InterfaceAnalysis:
    """Identify the interface and classify its components.

    Parameters
    ----------
    dec:
        The nonoverlapping decomposition.
    dim:
        Spatial dimension; drives the multiplicity -> kind map.  In 3D:
        2 -> face, 3 -> edge, >=4 -> vertex (singleton components of any
        multiplicity are vertices).  In 2D: 2 -> edge (no faces),
        >=3 -> vertex.
    """
    g = dec.graph
    owner = dec.node_owner
    n = dec.n_nodes

    # adjacency sets: for every node, the owners seen among it and its
    # neighbors; interface nodes see >= 2 owners.
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.indptr))
    pairs_owner = owner[g.indices]
    # collect (node, owner) pairs including self-ownership
    all_nodes = np.concatenate([rows, np.arange(n, dtype=np.int64)])
    all_owner = np.concatenate([pairs_owner, owner])
    key = all_nodes * np.int64(dec.n_subdomains) + all_owner
    key = np.unique(key)
    k_nodes = key // dec.n_subdomains
    k_owner = key % dec.n_subdomains
    counts = np.bincount(k_nodes, minlength=n)
    interface_mask = counts >= 2
    interface_nodes = np.flatnonzero(interface_mask).astype(np.int64)
    interior_nodes = np.flatnonzero(~interface_mask).astype(np.int64)

    # adjacency tuple per interface node
    adj: Dict[int, Tuple[int, ...]] = {}
    order = np.argsort(k_nodes, kind="stable")
    k_nodes, k_owner = k_nodes[order], k_owner[order]
    starts = np.flatnonzero(
        np.concatenate(([True], k_nodes[1:] != k_nodes[:-1]))
    )
    ends = np.concatenate((starts[1:], [k_nodes.size]))
    for s, e in zip(starts, ends):
        node = int(k_nodes[s])
        if interface_mask[node]:
            adj[node] = tuple(sorted(int(o) for o in k_owner[s:e]))

    # group nodes by adjacency class, then split into connected components
    classes: Dict[Tuple[int, ...], List[int]] = {}
    for node, owners in adj.items():
        classes.setdefault(owners, []).append(node)

    components: List[InterfaceComponent] = []
    for owners, nodes in sorted(classes.items()):
        nodes_arr = np.asarray(sorted(nodes), dtype=np.int64)
        for comp in subgraph_components(g.indptr, g.indices, nodes_arr, n):
            kind = _classify(len(owners), comp.size, dim)
            components.append(InterfaceComponent(comp, owners, kind))
    return InterfaceAnalysis(interface_nodes, interior_nodes, components, adj)


def _classify(multiplicity: int, size: int, dim: int) -> str:
    """Map (multiplicity, component size) to face/edge/vertex.

    With the two-sided algebraic interface of a node partition, a box
    decomposition yields multiplicity 2 on faces, ``2^(dim-1)`` along
    edges, and ``2^dim`` at cross points, so the thresholds are powers
    of two (not the element-based 2/3/4 of geometric decompositions).
    Singletons are always vertices.
    """
    if size == 1:
        return "vertex"
    if dim >= 3:
        if multiplicity == 2:
            return "face"
        if multiplicity <= 4:
            return "edge"
        return "vertex"
    # 2D: no faces; multiplicity-2 chains are edges
    if multiplicity == 2:
        return "edge"
    return "vertex"
