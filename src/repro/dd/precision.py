"""Half-precision preconditioning (Section V-A.2).

Trilinos' ``HalfPrecisionOperator`` wraps a preconditioner built in half
the working precision: input vectors are type-cast down, the operator is
applied in the lower precision, and the result is cast back up.  GMRES
itself stays in double precision, so convergence to the double-precision
tolerance is retained while the (memory-bandwidth-bound) preconditioner
moves half the bytes -- the effect behind Tables VI/VII.

Substitution note (see DESIGN.md): rather than re-templating every
kernel on dtype, the wrapped preconditioner is built from a float32-
*rounded* copy of the matrix and its apply result is rounded to float32.
That reproduces the numerical behaviour (a preconditioner accurate to
single precision; iteration counts unchanged) and the cost model halves
the byte counts of every kernel profile.
"""

from __future__ import annotations


import numpy as np

from repro.machine.kernels import KernelProfile
from repro.obs import get_tracer
from repro.resilience.context import get_engine
from repro.resilience.detect import FloatOverflowError

__all__ = ["HalfPrecisionOperator", "round_to_single"]

_F32_MAX = float(np.finfo(np.float32).max)
_F32_TINY = float(np.finfo(np.float32).tiny)


def round_to_single(values: np.ndarray, on_overflow: str = "raise") -> np.ndarray:
    """Round float64 values through float32 (precision emulation).

    Finite values beyond float32 range used to become silent ``inf``
    (poisoning the coarse solve); now they raise
    :class:`~repro.resilience.detect.FloatOverflowError`
    (``on_overflow="raise"``, the default), are clamped to the float32
    max with a ``precision_overflow_clamped`` trace counter
    (``"clamp"``), or are left as ``inf`` (``"ignore"``, the seed
    behavior).  Nonzero values flushed into the float32 subnormal range
    (or to zero) are counted as ``precision_subnormal_flush`` -- they
    lose relative accuracy but stay finite, so they never raise.
    """
    if on_overflow not in ("raise", "clamp", "ignore"):
        raise ValueError(
            f"unknown on_overflow policy {on_overflow!r}; valid values: "
            "'raise', 'clamp', 'ignore'"
        )
    arr = np.asarray(values, dtype=np.float64)
    out = arr.astype(np.float32)
    if on_overflow != "ignore":
        overflowed = np.isinf(out) & np.isfinite(arr)
        n_over = int(np.count_nonzero(overflowed))
        if n_over:
            max_abs = float(np.max(np.abs(arr[overflowed])))
            if on_overflow == "raise":
                raise FloatOverflowError(
                    f"float32 overflow in round_to_single: {n_over} finite "
                    f"values (max magnitude {max_abs:.3e}) exceed the "
                    f"float32 range ({_F32_MAX:.3e}); scale the system or "
                    f"use on_overflow='clamp'",
                    count=n_over,
                    max_abs=max_abs,
                    where="round_to_single",
                )
            np.copyto(
                out,
                (np.sign(arr) * _F32_MAX).astype(np.float32),
                where=overflowed,
            )
            get_tracer().count("precision_overflow_clamped", float(n_over))
        flushed = (np.abs(out) < _F32_TINY) & (arr != 0.0)
        n_flush = int(np.count_nonzero(flushed))
        if n_flush:
            get_tracer().count("precision_subnormal_flush", float(n_flush))
    return out.astype(np.float64)


class HalfPrecisionOperator:
    """Apply a preconditioner in emulated single precision.

    Parameters
    ----------
    inner:
        A preconditioner object with ``apply`` and the per-rank profile
        methods of :class:`~repro.dd.two_level.GDSWPreconditioner`
        (already built from a float32-rounded matrix).

    The profile accessors return the inner profiles with byte counts
    halved, plus the explicit type-cast kernels of the wrapper.
    """

    def __init__(self, inner) -> None:
        self.inner = inner

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Cast down, apply the inner operator, cast back up.

        When a resilience engine with detection is active, a finite
        value overflowing the float32 cast raises
        :class:`~repro.resilience.detect.FloatOverflowError` (the
        recovery ladder responds by promoting the preconditioner back
        to double precision); otherwise the overflow stays silent, the
        seed behavior.
        """
        eng = get_engine()
        detect = eng is not None and eng.detect
        v64 = np.asarray(v, dtype=np.float64)
        # the casts handle out-of-range values themselves (check or
        # propagate inf): numpy's own cast-overflow warning is noise here
        with np.errstate(over="ignore"):
            v32 = v64.astype(np.float32)
            if detect:
                self._check_cast(v64, v32, "input")
            y = self.inner.apply(v32.astype(np.float64))
            y32 = y.astype(np.float32)
        if detect:
            self._check_cast(y, y32, "output")
        return y32.astype(np.float64)

    @staticmethod
    def _check_cast(full: np.ndarray, cast: np.ndarray, where: str) -> None:
        overflowed = np.isinf(cast) & np.isfinite(full)
        n_over = int(np.count_nonzero(overflowed))
        if n_over:
            max_abs = float(np.max(np.abs(full[overflowed])))
            raise FloatOverflowError(
                f"float32 overflow in the half-precision preconditioner "
                f"{where} cast: {n_over} values, max magnitude "
                f"{max_abs:.3e}",
                count=n_over,
                max_abs=max_abs,
                where=f"half_precision_{where}",
            )

    # ------------------------------------------------------------------
    def _cast_kernels(self, n: int) -> KernelProfile:
        prof = KernelProfile()
        prof.add("apply.precision_cast", flops=0.0, bytes=12.0 * n, parallelism=float(n))
        return prof

    def rank_setup_profile(self, rank: int, refactorization: bool = False) -> KernelProfile:
        """Inner setup kernels with halved memory traffic."""
        return self.inner.rank_setup_profile(rank, refactorization).scaled_bytes(0.5)

    def rank_apply_profile(self, rank: int) -> KernelProfile:
        """Inner apply kernels at half the bytes plus the casts."""
        prof = self.inner.rank_apply_profile(rank).scaled_bytes(0.5)
        n_local = self.inner.one_level.dof_sets[rank].size
        prof.extend(self._cast_kernels(n_local))
        return prof

    def halo_doubles(self, rank: int) -> int:
        """Halo payload; halved since the halo moves float32 values."""
        return (self.inner.halo_doubles(rank) + 1) // 2

    # passthroughs used by the harness
    @property
    def n_coarse(self) -> int:
        """Coarse dimension of the wrapped operator."""
        return self.inner.n_coarse

    @property
    def dec(self):
        """Decomposition of the wrapped operator."""
        return self.inner.dec
