"""Half-precision preconditioning (Section V-A.2).

Trilinos' ``HalfPrecisionOperator`` wraps a preconditioner built in half
the working precision: input vectors are type-cast down, the operator is
applied in the lower precision, and the result is cast back up.  GMRES
itself stays in double precision, so convergence to the double-precision
tolerance is retained while the (memory-bandwidth-bound) preconditioner
moves half the bytes -- the effect behind Tables VI/VII.

Substitution note (see DESIGN.md): rather than re-templating every
kernel on dtype, the wrapped preconditioner is built from a float32-
*rounded* copy of the matrix and its apply result is rounded to float32.
That reproduces the numerical behaviour (a preconditioner accurate to
single precision; iteration counts unchanged) and the cost model halves
the byte counts of every kernel profile.
"""

from __future__ import annotations


import numpy as np

from repro.machine.kernels import KernelProfile

__all__ = ["HalfPrecisionOperator", "round_to_single"]


def round_to_single(values: np.ndarray) -> np.ndarray:
    """Round float64 values through float32 (precision emulation)."""
    return np.asarray(values, dtype=np.float64).astype(np.float32).astype(np.float64)


class HalfPrecisionOperator:
    """Apply a preconditioner in emulated single precision.

    Parameters
    ----------
    inner:
        A preconditioner object with ``apply`` and the per-rank profile
        methods of :class:`~repro.dd.two_level.GDSWPreconditioner`
        (already built from a float32-rounded matrix).

    The profile accessors return the inner profiles with byte counts
    halved, plus the explicit type-cast kernels of the wrapper.
    """

    def __init__(self, inner) -> None:
        self.inner = inner

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Cast down, apply the inner operator, cast back up."""
        v32 = np.asarray(v, dtype=np.float32)
        y = self.inner.apply(v32.astype(np.float64))
        return y.astype(np.float32).astype(np.float64)

    # ------------------------------------------------------------------
    def _cast_kernels(self, n: int) -> KernelProfile:
        prof = KernelProfile()
        prof.add("apply.precision_cast", flops=0.0, bytes=12.0 * n, parallelism=float(n))
        return prof

    def rank_setup_profile(self, rank: int, refactorization: bool = False) -> KernelProfile:
        """Inner setup kernels with halved memory traffic."""
        return self.inner.rank_setup_profile(rank, refactorization).scaled_bytes(0.5)

    def rank_apply_profile(self, rank: int) -> KernelProfile:
        """Inner apply kernels at half the bytes plus the casts."""
        prof = self.inner.rank_apply_profile(rank).scaled_bytes(0.5)
        n_local = self.inner.one_level.dof_sets[rank].size
        prof.extend(self._cast_kernels(n_local))
        return prof

    def halo_doubles(self, rank: int) -> int:
        """Halo payload; halved since the halo moves float32 values."""
        return (self.inner.halo_doubles(rank) + 1) // 2

    # passthroughs used by the harness
    @property
    def n_coarse(self) -> int:
        """Coarse dimension of the wrapped operator."""
        return self.inner.n_coarse

    @property
    def dec(self):
        """Decomposition of the wrapped operator."""
        return self.inner.dec
