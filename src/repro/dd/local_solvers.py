"""Subdomain (and coarse) solver menu.

Table I of the paper: the local overlapping subdomain problems can be
solved exactly (SuperLU or Tacho direct factorizations), inexactly
(level-set ILU(k) + SpTRSV), or approximately-iteratively (FastILU +
FastSpTRSV).  A :class:`LocalSolverSpec` names the combination; its
:meth:`~LocalSolverSpec.build` factors one subdomain matrix and returns
a :class:`FactoredLocal` with a uniform ``apply`` plus the per-phase
kernel profiles the harness prices.

GPU-vs-CPU pairing follows Section VIII-A exactly:

* ``superlu`` -- factorization always on the CPU; the *solve* runs
  either through SuperLU's internal substitution (CPU) or through the
  supernodal Kokkos-Kernels SpTRSV (GPU), whose setup must rerun after
  every numeric factorization (``gpu_solve=True``).
* ``tacho`` -- factorization and supernodal solves on either space.
* ``iluk`` -- level-set scheduled SpILU + exact SpTRSV.
* ``fastilu`` -- Jacobi-sweep factorization + FastSpTRSV solves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.machine.kernels import KernelProfile
from repro.sparse.csr import CsrMatrix

__all__ = ["LocalSolverSpec", "FactoredLocal", "SOLVER_KINDS", "ORDERINGS"]

#: valid local-solver kinds (Table I of the paper)
SOLVER_KINDS = ("superlu", "tacho", "iluk", "fastilu")
#: valid fill-reducing orderings (aliases accepted by repro.ordering)
ORDERINGS = (
    "nd",
    "nested_dissection",
    "metis",
    "natural",
    "no",
    "none",
    "rcm",
    "amd",
)


@dataclass(frozen=True)
class LocalSolverSpec:
    """Configuration of a local solver (one cell of Table I/IV).

    Attributes
    ----------
    kind:
        ``"superlu"``, ``"tacho"``, ``"iluk"`` or ``"fastilu"``.
    ordering:
        ``"nd"`` (METIS-like nested dissection) or ``"natural"``
        (Table IV's "ND"/"No" rows).
    ilu_level:
        Fill level for the incomplete kinds.
    factor_sweeps:
        FastILU factorization sweeps (paper default 3).
    solve_sweeps:
        FastSpTRSV solve sweeps (paper default 5).
    factor_damping, solve_damping:
        Damping factors of the two fixed-point iterations (the "Jacobi
        iteration count and damping factor" knobs of Table I); the
        undamped iterations can diverge on stiff elasticity blocks.
    gpu_solve:
        Use the GPU solve pairing (supernodal SpTRSV for superlu;
        level-set vs Fast pairing is implied by ``kind``).
    """

    kind: str = "tacho"
    ordering: str = "nd"
    ilu_level: int = 1
    factor_sweeps: int = 3
    solve_sweeps: int = 5
    factor_damping: float = 0.7
    solve_damping: float = 0.8
    gpu_solve: bool = False

    def __post_init__(self) -> None:
        if self.kind not in SOLVER_KINDS:
            raise ValueError(
                f"unknown local solver kind {self.kind!r}; valid kinds: "
                + ", ".join(repr(k) for k in SOLVER_KINDS)
            )
        if self.ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {self.ordering!r}; valid orderings: "
                + ", ".join(repr(o) for o in ORDERINGS)
            )

    def with_gpu(self, gpu_solve: bool) -> "LocalSolverSpec":
        """Copy with the GPU pairing switched."""
        return replace(self, gpu_solve=gpu_solve)

    def describe(self) -> str:
        """One-line human description, used by trace/table output.

        Examples: ``"tacho (nd, cpu solve)"``,
        ``"iluk(1) (natural, gpu solve)"``,
        ``"fastilu(1, 3/5 sweeps) (nd, gpu solve)"``.
        """
        name = self.kind
        if self.kind == "iluk":
            name = f"iluk({self.ilu_level})"
        elif self.kind == "fastilu":
            name = (
                f"fastilu({self.ilu_level}, "
                f"{self.factor_sweeps}/{self.solve_sweeps} sweeps)"
            )
        space = "gpu" if self.gpu_solve else "cpu"
        return f"{name} ({self.ordering}, {space} solve)"

    def build(self, a: CsrMatrix) -> "FactoredLocal":
        """Factor one subdomain matrix according to this spec."""
        if self.kind == "superlu":
            return _build_superlu(a, self)
        if self.kind == "tacho":
            return _build_tacho(a, self)
        if self.kind == "iluk":
            return _build_iluk(a, self)
        return _build_fastilu(a, self)


class FactoredLocal:
    """A factored local problem with uniform apply and profiles.

    Attributes
    ----------
    apply:
        Callable mapping a residual restriction to the (approximate)
        local solution ``A_i^{-1} v``.
    symbolic_profile:
        Pattern-analysis work, reusable across refactorizations when
        ``symbolic_reusable``.
    numeric_profile:
        Per-refactorization factorization work.
    setup_profile:
        Per-refactorization *solver setup* work (e.g. the KK supernodal
        SpTRSV setup over SuperLU factors).
    solve_profile:
        One application of the local solve.
    cpu_only_numeric:
        True when the numeric factorization cannot run on the GPU
        (SuperLU); the pricing layer then charges it to the CPU even in
        GPU runs.
    """

    def __init__(
        self,
        apply_fn,
        symbolic_profile: KernelProfile,
        numeric_profile: KernelProfile,
        setup_profile: KernelProfile,
        solve_profile: KernelProfile,
        symbolic_reusable: bool,
        cpu_only_numeric: bool = False,
        exact: bool = True,
        refactor_fn=None,
    ) -> None:
        self._apply = apply_fn
        self.symbolic_profile = symbolic_profile
        self.numeric_profile = numeric_profile
        self.setup_profile = setup_profile
        self.solve_profile = solve_profile
        self.symbolic_reusable = symbolic_reusable
        self.cpu_only_numeric = cpu_only_numeric
        self.exact = exact
        self._refactor_fn = refactor_fn

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Apply the (approximate) local inverse."""
        return self._apply(v)

    def refactor(self, a_new: CsrMatrix) -> "FactoredLocal":
        """Numeric-only refactorization over a same-pattern matrix.

        Returns a fresh :class:`FactoredLocal` with updated factors and
        solve closures.  Kinds with ``symbolic_reusable`` skip the
        symbolic phase (their pattern guards raise
        :class:`~repro.reuse.fingerprint.PatternChangedError` on
        pattern drift); SuperLU re-runs the full factorization because
        partial pivoting ties its ordering to the values.
        """
        if self._refactor_fn is None:
            raise RuntimeError(
                "this FactoredLocal was built without a refactor path; "
                "rebuild it via LocalSolverSpec.build"
            )
        return self._refactor_fn(a_new)


# ----------------------------------------------------------------------
def _build_superlu(a: CsrMatrix, spec: LocalSolverSpec) -> FactoredLocal:
    from repro.direct import GilbertPeierlsLU

    slu = GilbertPeierlsLU(ordering=spec.ordering)
    slu.factorize(a)
    # SuperLU's refactorization is a full rebuild: partial pivoting
    # couples the factor structure to the values (symbolic_reusable is
    # False), matching the paper's per-refactorization symbolic cost.
    refactor = lambda a_new: _build_superlu(a_new, spec)  # noqa: E731
    setup = KernelProfile()
    if spec.gpu_solve:
        # supernodal KK SpTRSV over the LU factors: detection + block
        # assembly rerun after EVERY numeric factorization (pivoting).
        snl, setup_l = slu.supernodal_l()
        from repro.tri.supernodal import SupernodalTriangular

        u_csr = slu.u_csr
        snu = SupernodalTriangular.from_csc(
            u_csr.indptr, u_csr.indices, u_csr.data, u_csr.n_rows
        )
        setup.extend(setup_l)
        setup.add(
            "setup.sptrsv_numeric",
            flops=0.0,
            bytes=float(u_csr.nnz * 48),
            parallelism=float(snu.n_supernodes),
        )
        perm, row_perm = slu.perm, slu.row_perm

        def apply_gpu(v: np.ndarray) -> np.ndarray:
            vp = v[perm][row_perm]
            y = snl.solve_forward(vp)
            z = snu.solve_backward(y)
            out = np.empty_like(np.asarray(z, dtype=np.float64))
            out[perm] = z
            return out

        solve_prof = KernelProfile()
        solve_prof.extend(snl.kernel_profile())
        solve_prof.extend(snu.kernel_profile())
        return FactoredLocal(
            apply_gpu,
            slu.symbolic_profile,
            slu.numeric_profile,
            setup,
            solve_prof,
            symbolic_reusable=False,
            cpu_only_numeric=True,
            refactor_fn=refactor,
        )
    return FactoredLocal(
        slu.solve,
        slu.symbolic_profile,
        slu.numeric_profile,
        setup,
        slu.solve_profile,
        symbolic_reusable=False,
        cpu_only_numeric=True,
        refactor_fn=refactor,
    )


def _build_tacho(a: CsrMatrix, spec: LocalSolverSpec) -> FactoredLocal:
    from repro.direct import MultifrontalCholesky

    t = MultifrontalCholesky(ordering=spec.ordering)
    t.factorize(a)
    return _wrap_tacho(t, spec)


def _wrap_tacho(t, spec: LocalSolverSpec) -> FactoredLocal:
    return FactoredLocal(
        t.solve,
        t.symbolic_profile,
        t.numeric_profile,
        KernelProfile(),
        t.solve_profile,
        symbolic_reusable=True,
        refactor_fn=lambda a_new: _wrap_tacho(t.refactorize(a_new), spec),
    )


def _build_iluk(a: CsrMatrix, spec: LocalSolverSpec) -> FactoredLocal:
    from repro.ilu import IlukFactorization

    f = IlukFactorization(level=spec.ilu_level, ordering=spec.ordering)
    f.symbolic(a).numeric(a)
    return _wrap_iluk(f, spec)


def _wrap_iluk(f, spec: LocalSolverSpec) -> FactoredLocal:
    from repro.tri.levelset import LevelScheduledTriangular

    lsol = LevelScheduledTriangular(f.l, lower=True, unit_diagonal=True)
    usol = LevelScheduledTriangular(f.u, lower=False)
    perm = f.perm
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size)

    def apply_fn(v: np.ndarray) -> np.ndarray:
        vp = v[perm]
        x = usol.solve(lsol.solve(vp))
        return x[inv]

    solve_prof = KernelProfile()
    solve_prof.extend(lsol.kernel_profile())
    solve_prof.extend(usol.kernel_profile())
    setup = KernelProfile()
    setup.add(
        "setup.sptrsv_levels",
        flops=0.0,
        bytes=float((f.l.nnz + f.u.nnz) * 12),
        parallelism=1.0,
    )
    return FactoredLocal(
        apply_fn,
        f.symbolic_profile,
        f.numeric_profile,
        setup,
        solve_prof,
        symbolic_reusable=True,
        exact=False,
        refactor_fn=lambda a_new: _wrap_iluk(f.numeric(a_new), spec),
    )


def _build_fastilu(a: CsrMatrix, spec: LocalSolverSpec) -> FactoredLocal:
    from repro.ilu import FastIlu

    f = FastIlu(
        level=spec.ilu_level,
        sweeps=spec.factor_sweeps,
        ordering=spec.ordering,
        damping=spec.factor_damping,
    )
    f.symbolic(a).numeric(a)
    return _wrap_fastilu(f, spec)


def _wrap_fastilu(f, spec: LocalSolverSpec) -> FactoredLocal:
    from repro.tri.jacobi import JacobiTriangular

    lsol = JacobiTriangular(
        f.l, sweeps=spec.solve_sweeps, unit_diagonal=True, damping=spec.solve_damping
    )
    usol = JacobiTriangular(f.u, sweeps=spec.solve_sweeps, damping=spec.solve_damping)
    perm = f.perm
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size)
    scale = f.row_scale  # factors approximate S A S (see FastIlu.numeric)

    def apply_fn(v: np.ndarray) -> np.ndarray:
        vp = scale * v[perm]
        x = scale * usol.solve(lsol.solve(vp))
        return x[inv]

    solve_prof = KernelProfile()
    solve_prof.extend(lsol.kernel_profile())
    solve_prof.extend(usol.kernel_profile())
    return FactoredLocal(
        apply_fn,
        f.symbolic_profile,
        f.numeric_profile,
        KernelProfile(),
        solve_prof,
        symbolic_reusable=True,
        exact=False,
        refactor_fn=lambda a_new: _wrap_fastilu(f.numeric(a_new), spec),
    )
