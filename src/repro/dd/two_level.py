"""The two-level GDSW preconditioner (Eq. 1).

``M^{-1} = Phi A_0^{-1} Phi^T + sum_i R_i^T A_i^{-1} R_i``

combining the one-level overlapping additive Schwarz operator with the
energy-minimizing GDSW/rGDSW coarse level:

* numeric setup -- factor the overlapping local matrices, build the
  interface basis, extend it harmonically (Eq. 2), assemble the coarse
  matrix ``A0 = Phi^T A Phi`` with SpGEMM, and factor ``A0``;
* apply -- one local solve per rank plus the coarse solve (replicated,
  entered through a coarse allreduce).

Every phase exposes per-rank :class:`~repro.machine.kernels.KernelProfile`
objects; the Summit-node model in :mod:`repro.runtime` turns them into
the paper's time tables.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dd.coarse_space import (
    CoarseSpace,
    build_coarse_space,
    energy_minimizing_extension,
)
from repro.dd.decomposition import Decomposition
from repro.dd.interface import analyze_interface
from repro.dd.local_solvers import FactoredLocal, LocalSolverSpec
from repro.dd.schwarz import OneLevelSchwarz
from repro.machine.kernels import KernelProfile
from repro.obs import get_tracer
from repro.resilience.context import get_engine
from repro.reuse.cache import get_artifact_cache
from repro.reuse.fingerprint import partition_fingerprint, pattern_fingerprint
from repro.sparse.csr import CsrMatrix
from repro.sparse.spgemm import spgemm, spgemm_flops

__all__ = ["GDSWPreconditioner"]


class GDSWPreconditioner:
    """Two-level overlapping Schwarz preconditioner of GDSW type.

    Parameters
    ----------
    dec:
        Nonoverlapping decomposition of the assembled problem.
    nullspace:
        ``(n, n_n)`` Neumann null space (rigid-body modes / constants).
    local_spec:
        Local subdomain solver configuration.
    coarse_spec:
        Solver for the coarse matrix; defaults to Tacho with natural
        ordering (the coarse matrix is small and dense-ish).
    overlap:
        Algebraic overlap layers (paper: 1).
    variant:
        ``"rgdsw"`` (paper default), ``"gdsw"``, ``"agdsw"`` (the
        adaptive enrichment for heterogeneous coefficients; Section
        III), or ``"spectral"`` (the fully algebraic SPSD-splitting /
        GenEO coarse space of :mod:`repro.dd.algebraic` -- ignores
        ``nullspace`` and needs no geometry).
    dim:
        Spatial dimension for interface classification.
    extension_spec:
        Solver used for the interior extension solves of Eq. (2); the
        paper uses Tacho here in all configurations.
    adaptive_tol:
        Eigenvalue threshold of the AGDSW enrichment (only used with
        ``variant="agdsw"``).
    spectral_tau:
        Eigenvalue threshold of the algebraic spectral coarse space
        (only used with ``variant="spectral"``).
    spectral_max_vectors:
        Per-subdomain cap on spectral coarse vectors (only used with
        ``variant="spectral"``).
    spectral_drift_tol:
        Relative values-drift threshold above which a same-pattern
        :meth:`refactor` recomputes the spectral eigenvectors instead of
        reusing them (only used with ``variant="spectral"``).  Defaults
        to ``0.1 * spectral_tau``: drift well inside the eigenvalue
        threshold's sensitivity cannot move vectors across the ``tau``
        cut, so they are safe to keep.
    coarse_solver:
        ``"direct"`` (default) factors ``A0`` exactly; ``"multilevel"``
        builds a second GDSW level on the coarse problem and solves it
        inexactly (the three-level method of Section III).
    multilevel_parts:
        Second-level subdomain count for ``coarse_solver="multilevel"``.
    reuse_from:
        An existing preconditioner over the *same matrix values* whose
        untouched local factorizations should be reused (forwarded to
        :class:`~repro.dd.schwarz.OneLevelSchwarz`); the shrink-recovery
        path of :meth:`remove_subdomain` passes the pre-failure
        preconditioner here.
    """

    def __init__(
        self,
        dec: Decomposition,
        nullspace: np.ndarray,
        local_spec: Optional[LocalSolverSpec] = None,
        coarse_spec: Optional[LocalSolverSpec] = None,
        overlap: int = 1,
        variant: str = "rgdsw",
        dim: int = 3,
        extension_spec: Optional[LocalSolverSpec] = None,
        adaptive_tol: float = 1e-2,
        spectral_tau: float = 1e-2,
        spectral_max_vectors: int = 8,
        spectral_drift_tol: Optional[float] = None,
        coarse_solver: str = "direct",
        multilevel_parts: int = 4,
        reuse_from: "GDSWPreconditioner | None" = None,
    ) -> None:
        if coarse_solver not in ("direct", "multilevel"):
            raise ValueError("coarse_solver must be 'direct' or 'multilevel'")
        self.dec = dec
        local_spec = local_spec or LocalSolverSpec()
        coarse_spec = coarse_spec or LocalSolverSpec(kind="tacho", ordering="natural")
        extension_spec = extension_spec or LocalSolverSpec(kind="tacho", ordering="nd")
        self.local_spec = local_spec
        self.variant = variant
        # everything :meth:`remove_subdomain` needs to rebuild over a
        # repaired partition
        self._nullspace = nullspace
        self._dim = dim
        self._extension_spec = extension_spec
        self._adaptive_tol = adaptive_tol
        self._spectral_tau = spectral_tau
        self._spectral_max_vectors = spectral_max_vectors
        self._spectral_drift_tol = (
            0.1 * spectral_tau if spectral_drift_tol is None else spectral_drift_tol
        )
        self._spectral_ref_values: Optional[np.ndarray] = None

        tr = get_tracer()

        # ---- one-level part ----
        self.one_level = OneLevelSchwarz(
            dec,
            local_spec,
            overlap=overlap,
            reuse_from=None if reuse_from is None else reuse_from.one_level,
        )

        # ---- coarse level ----
        with tr.span("setup/coarse_basis") as sp:
            sp.annotate(variant=variant)
            # interface classification is pattern-only (node graph +
            # partition + dim), so it shares the ambient artifact cache
            cache = get_artifact_cache()
            akey = (
                "interface",
                pattern_fingerprint(dec.a),
                partition_fingerprint(dec.node_parts),
                int(dim),
            )
            analysis = cache.get(akey)
            if analysis is None:
                analysis = analyze_interface(dec, dim=dim)
                cache.put(akey, analysis)
            self.analysis = analysis
            if variant == "agdsw":
                from repro.dd.adaptive import build_adaptive_coarse_space

                self.space: CoarseSpace = build_adaptive_coarse_space(
                    dec, self.analysis, nullspace, tol=adaptive_tol
                )
            elif variant == "spectral":
                from repro.dd.algebraic import build_spectral_coarse_space

                self.space = build_spectral_coarse_space(
                    dec,
                    self.analysis,
                    tau=spectral_tau,
                    max_vectors_per_subdomain=spectral_max_vectors,
                    node_sets=self.one_level.node_sets,
                )
                self._spectral_ref_values = dec.a.data.copy()
                sp.annotate(tau=spectral_tau)
            else:
                self.space = build_coarse_space(
                    dec, self.analysis, nullspace, variant=variant
                )
            sp.count("coarse_dim", float(self.space.n_coarse))

        def _ext_factory():
            from repro.direct import direct_solver

            kind = "tacho" if extension_spec.kind != "superlu" else "superlu"
            return direct_solver(kind, ordering=extension_spec.ordering)

        # state the refactorization path reuses (see :meth:`refactor`)
        self._ext_factory = _ext_factory
        self._ext_solver_cache: dict = {}
        self._coarse_spec = coarse_spec
        self._coarse_solver_kind = coarse_solver
        self._multilevel_parts = multilevel_parts
        self._n_null = int(np.atleast_2d(nullspace).shape[1])

        self._ext_rank_profiles: List[KernelProfile]
        if self.space.n_coarse > 0:
            with tr.span("setup/coarse_basis") as sp:
                phi, ext_spgemm, ext_ranks = energy_minimizing_extension(
                    dec,
                    self.analysis,
                    self.space,
                    _ext_factory,
                    solver_cache=self._ext_solver_cache,
                )
                sp.add_profile(ext_spgemm)
            self.phi: Optional[CsrMatrix] = phi
            self._ext_spgemm = ext_spgemm
            self._ext_rank_profiles = ext_ranks
            # A0 = Phi^T A Phi
            with tr.span("setup/spgemm") as sp:
                at_phi = spgemm(dec.a, phi)
                self._a0_flops = spgemm_flops(dec.a, phi)
                phi_t = phi.transpose()
                self.a0 = spgemm(phi_t, at_phi)
                self._a0_flops += spgemm_flops(phi_t, at_phi)
                sp.count("flops", float(self._a0_flops))
                sp.count("nnz", float(self.a0.nnz))
            with tr.span("setup/coarse_factor") as sp:
                sp.annotate(n_coarse=int(self.space.n_coarse))
                if (
                    coarse_solver == "multilevel"
                    and self.a0.n_rows > multilevel_parts
                ):
                    from repro.dd.multilevel import MultilevelCoarseSolver

                    self.coarse = MultilevelCoarseSolver(
                        self.a0,
                        n_parts=multilevel_parts,
                        n_null=np.atleast_2d(nullspace).shape[1],
                    )
                else:
                    self.coarse = coarse_spec.build(self.a0)
        else:  # single subdomain: no interface, pure one-level
            self.phi = None
            self.a0 = None
            self.coarse = None
            self._ext_spgemm = KernelProfile()
            self._ext_rank_profiles = [KernelProfile() for _ in dec.node_parts]
            self._a0_flops = 0

        self._compute_phi_rank_nnz()

    def _compute_phi_rank_nnz(self) -> None:
        """Per-rank nnz of Phi restricted to owned dofs (apply-cost split)."""
        dec = self.dec
        if self.phi is not None:
            row_nodes = (
                np.repeat(np.arange(dec.a.n_rows, dtype=np.int64), self.phi.row_nnz())
                // dec.dofs_per_node
            )
            owners = dec.node_owner[row_nodes]
            self._phi_rank_nnz = np.bincount(
                owners, minlength=dec.n_subdomains
            ).astype(np.int64)
        else:
            self._phi_rank_nnz = np.zeros(dec.n_subdomains, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def n_coarse(self) -> int:
        """Coarse-space dimension ``n_c * n_n`` (after rank reduction)."""
        return self.space.n_coarse

    # ------------------------------------------------------------------
    def _refresh_spectral_space(self, dec_new: Decomposition) -> None:
        """Drift-gated spectral coarse-space reuse for :meth:`refactor`.

        The spectral (GenEO/SPSD) coarse vectors are *value*-dependent,
        unlike the pattern-only GDSW/rGDSW interface basis.  Recomputing
        the per-subdomain eigenproblems on every refactorization would
        erase most of the reuse win, so the refactor path keeps the
        vectors while the values drift (relative inf-norm against the
        values they were computed from) stays within
        ``spectral_drift_tol`` -- drift far inside the ``tau``
        eigenvalue cut cannot move vectors across it.  Past the
        threshold the space is rebuilt from the same interface analysis
        and overlap node sets, which makes the result bit-identical to a
        cold construction over the new values.
        """
        tr = get_tracer()
        ref = self._spectral_ref_values
        new_values = dec_new.a.data
        scale = float(np.max(np.abs(ref))) if ref is not None else 0.0
        if ref is None or scale == 0.0:
            drift = np.inf
        else:
            drift = float(np.max(np.abs(new_values - ref))) / scale
        if drift <= self._spectral_drift_tol:
            with tr.span("reuse/spectral_reuse") as sp:
                sp.annotate(drift=drift, tol=self._spectral_drift_tol)
                sp.count("spectral_vectors_reused", float(self.space.n_coarse))
            return
        from repro.dd.algebraic import build_spectral_coarse_space

        with tr.span("reuse/spectral_rebuild") as sp:
            sp.annotate(drift=drift, tol=self._spectral_drift_tol)
            self.space = build_spectral_coarse_space(
                dec_new,
                self.analysis,
                tau=self._spectral_tau,
                max_vectors_per_subdomain=self._spectral_max_vectors,
                node_sets=self.one_level.node_sets,
            )
            self._spectral_ref_values = new_values.copy()
            sp.count("coarse_dim", float(self.space.n_coarse))

    # ------------------------------------------------------------------
    def refactor(self, a_new: CsrMatrix) -> None:
        """Numeric-only refactorization for a same-pattern matrix.

        Executes the paper's phase (b) end to end: local numeric
        refactorizations (symbolic reused where ``symbolic_reusable``),
        interior extension re-solves through the cached interior
        factorizations, the coarse SpGEMM, and the coarse
        refactorization.  The interface analysis, overlap plan, and
        coarse-space structure (``Phi_Gamma``) are pattern-only and
        reused as-is; ``Phi`` itself is value-dependent (harmonic
        extension of the new values) and is recomputed, so a drifted
        ``A0`` *pattern* (the ``|x| > 1e-14`` sparsification of Phi)
        falls back to a cold coarse factorization.
        """
        tr = get_tracer()
        dec_new = self.dec.with_values(a_new)
        self.dec = dec_new
        self.one_level.refactor(dec_new)
        if self.variant == "spectral":
            self._refresh_spectral_space(dec_new)
        if self.space.n_coarse == 0:
            self.phi = None
            self.a0 = None
            self.coarse = None
            self._compute_phi_rank_nnz()
            return
        with tr.span("reuse/extension_refactor") as sp:
            phi, ext_spgemm, ext_ranks = energy_minimizing_extension(
                dec_new,
                self.analysis,
                self.space,
                self._ext_factory,
                solver_cache=self._ext_solver_cache,
            )
            sp.add_profile(ext_spgemm)
        self.phi = phi
        self._ext_spgemm = ext_spgemm
        self._ext_rank_profiles = ext_ranks
        with tr.span("setup/spgemm") as sp:
            at_phi = spgemm(dec_new.a, phi)
            self._a0_flops = spgemm_flops(dec_new.a, phi)
            phi_t = phi.transpose()
            a0_new = spgemm(phi_t, at_phi)
            self._a0_flops += spgemm_flops(phi_t, at_phi)
            sp.count("flops", float(self._a0_flops))
            sp.count("nnz", float(a0_new.nnz))
        with tr.span("reuse/coarse_refactor") as sp:
            same_pattern = self.a0 is not None and pattern_fingerprint(
                a0_new
            ) == pattern_fingerprint(self.a0)
            self.a0 = a0_new
            if same_pattern and isinstance(self.coarse, FactoredLocal):
                sp.annotate(reused_symbolic=self.coarse.symbolic_reusable)
                self.coarse = self.coarse.refactor(a0_new)
            elif (
                self._coarse_solver_kind == "multilevel"
                and a0_new.n_rows > self._multilevel_parts
            ):
                from repro.dd.multilevel import MultilevelCoarseSolver

                sp.annotate(reused_symbolic=False)
                self.coarse = MultilevelCoarseSolver(
                    a0_new,
                    n_parts=self._multilevel_parts,
                    n_null=self._n_null,
                )
            else:
                sp.annotate(reused_symbolic=False)
                self.coarse = self._coarse_spec.build(a0_new)
        self._compute_phi_rank_nnz()

    def remove_subdomain(
        self, dead: int, into: "int | None" = None
    ) -> "GDSWPreconditioner":
        """The preconditioner repaired after losing subdomain ``dead``.

        The *shrink* recovery of :mod:`repro.ft`: the dead rank's
        nonoverlapping part is merged into a neighbor
        (:meth:`~repro.dd.decomposition.Decomposition.merge_into_neighbor`)
        and a preconditioner over the merged partition is returned.  The
        matrix values are unchanged, so one-level local factorizations
        whose overlapping dof sets survive the merge are reused as-is
        (``reuse_from``) -- only subdomains overlapping the merged
        region refactor.  The coarse level is rebuilt from scratch: the
        interface moves wherever the partition does, and Al Daas-style
        robustness arguments make the coarse space exactly the object
        that must track the new partition.
        """
        dec_new = self.dec.merge_into_neighbor(dead, into)
        with get_tracer().span("ft/precond_repair") as sp:
            sp.annotate(
                dead_rank=int(dead),
                n_subdomains=int(dec_new.n_subdomains),
            )
            return GDSWPreconditioner(
                dec_new,
                self._nullspace,
                local_spec=self.local_spec,
                coarse_spec=self._coarse_spec,
                overlap=self.one_level.overlap,
                variant=self.variant,
                dim=self._dim,
                extension_spec=self._extension_spec,
                adaptive_tol=self._adaptive_tol,
                spectral_tau=self._spectral_tau,
                spectral_max_vectors=self._spectral_max_vectors,
                spectral_drift_tol=self._spectral_drift_tol,
                coarse_solver=self._coarse_solver_kind,
                multilevel_parts=self._multilevel_parts,
                reuse_from=self,
            )

    def split_subdomain(self, rank: int) -> "GDSWPreconditioner":
        """The preconditioner repaired after bisecting subdomain ``rank``.

        The *respawn* side of elastic scaling
        (:meth:`~repro.dd.decomposition.Decomposition.split_subdomain`):
        the heaviest subdomain is bisected and the new half handed to a
        fresh rank appended at the end of the partition.  Matrix values
        are unchanged, so -- exactly as in :meth:`remove_subdomain` --
        one-level local factorizations whose overlapping dof sets
        survive the split are reused through ``reuse_from`` and only the
        split region refactors.  The coarse level is rebuilt because the
        interface gained a new cut.
        """
        dec_new = self.dec.split_subdomain(rank)
        with get_tracer().span("elastic/precond_repair") as sp:
            sp.annotate(
                split_rank=int(rank),
                n_subdomains=int(dec_new.n_subdomains),
            )
            return GDSWPreconditioner(
                dec_new,
                self._nullspace,
                local_spec=self.local_spec,
                coarse_spec=self._coarse_spec,
                overlap=self.one_level.overlap,
                variant=self.variant,
                dim=self._dim,
                extension_spec=self._extension_spec,
                adaptive_tol=self._adaptive_tol,
                spectral_tau=self._spectral_tau,
                spectral_max_vectors=self._spectral_max_vectors,
                spectral_drift_tol=self._spectral_drift_tol,
                coarse_solver=self._coarse_solver_kind,
                multilevel_parts=self._multilevel_parts,
                reuse_from=self,
            )

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1} v`` (additive combination of both levels)."""
        v = np.asarray(v, dtype=np.float64)
        out = self.one_level.apply(v)
        if self.phi is not None:
            with get_tracer().span("apply/coarse_solve") as sp:
                sp.count("coarse_dim", float(self.n_coarse))
                vc = self.phi.rmatvec(v)
                xc = self.coarse.apply(vc)
                eng = get_engine()
                if eng is not None:
                    xc = eng.check_coarse(xc)
                out = out + self.phi.matvec(xc)
        return out

    # ------------------------------------------------------------------
    # cost profiles
    # ------------------------------------------------------------------
    def rank_setup_profile(self, rank: int, refactorization: bool = False) -> KernelProfile:
        """Numeric-setup kernels executed by ``rank``.

        ``refactorization=True`` models the repeated-factorization
        scenario (same pattern, new values): symbolic work is skipped
        where the solver allows reuse.
        """
        prof = KernelProfile()
        prof.extend(
            self.one_level.rank_setup_profile(
                rank, include_symbolic=not refactorization
            )
        )
        prof.extend(self._ext_rank_profiles[rank])
        # distributed share of the coarse SpGEMM + its communication
        n_ranks = self.dec.n_subdomains
        if self.phi is not None and self._a0_flops:
            share = self._a0_flops / n_ranks
            prof.add(
                "coarse.spgemm_a0",
                flops=float(share),
                bytes=float(share * 8),
                parallelism=float(max(self._phi_rank_nnz[rank], 1)),
            )
            prof.add(
                "comm.coarse_assembly",
                flops=0.0,
                bytes=float(self.a0.nnz * 16 / max(n_ranks, 1) + self.n_coarse * 8),
                parallelism=1.0,
            )
            # distributed coarse factorization: the coarse problem lives
            # on a subcommunicator, so each rank carries a 1/P share
            share_f = 1.0 / n_ranks
            if not refactorization or not self.coarse.symbolic_reusable:
                prof.extend(self.coarse.symbolic_profile.work_scaled(share_f))
            prof.extend(self.coarse.numeric_profile.work_scaled(share_f))
            prof.extend(self.coarse.setup_profile.work_scaled(share_f))
        return prof

    def rank_apply_profile(self, rank: int) -> KernelProfile:
        """Kernels of one preconditioner application on ``rank``."""
        prof = self.one_level.rank_solve_profile(rank)
        if self.phi is not None:
            nnz_r = float(self._phi_rank_nnz[rank])
            nc = float(self.n_coarse)
            prof.add(
                "coarse.phi_restrict",
                flops=2.0 * nnz_r,
                bytes=nnz_r * 16.0 + nc * 8.0,
                parallelism=max(nnz_r, 1.0),
            )
            prof.add(
                "comm.coarse_allreduce", flops=0.0, bytes=nc * 8.0, parallelism=1.0
            )
            # distributed coarse solve: 1/P share per rank
            prof.extend(
                self.coarse.solve_profile.work_scaled(1.0 / self.dec.n_subdomains)
            )
            prof.add(
                "coarse.phi_prolong",
                flops=2.0 * nnz_r,
                bytes=nnz_r * 16.0 + nc * 8.0,
                parallelism=max(nnz_r, 1.0),
            )
        return prof

    def halo_doubles(self, rank: int) -> int:
        """Halo payload (float64 count) of one apply on ``rank``."""
        return self.one_level.halo_doubles[rank]
