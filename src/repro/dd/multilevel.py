"""Multi-level (three-level) GDSW.

Section III of the paper: "multi-level approaches have been proposed to
recursively apply GDSW on the coarse problem" [Heinlein, Rheinbach,
Roever 2021] -- the cure when the coarse problem itself becomes the
scalability bottleneck.  This module provides
:class:`MultilevelCoarseSolver`: instead of factoring ``A0`` directly,
the coarse problem is decomposed *algebraically* (recursive bisection of
its graph), a second-level GDSW preconditioner is built for it, and each
coarse solve runs a few inner preconditioned GMRES iterations.  The
outer solver must tolerate an inexact coarse solve, which our
right-preconditioned GMRES (storing the preconditioned directions, i.e.
flexible GMRES) does.

The null space of the coarse operator is the original null space pushed
through the basis: ``A0 (Phi^+ Z) ~ Phi^T A Z ~ 0``; for GDSW bases with
partition of unity, the constant combination of each component's
null-space columns reproduces ``Z`` exactly, so the constant vector per
null-space direction is used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.dd.local_solvers import LocalSolverSpec
from repro.machine.kernels import KernelProfile
from repro.sparse.csr import CsrMatrix

__all__ = ["MultilevelCoarseSolver"]


class MultilevelCoarseSolver:
    """Inexact coarse solver: a second GDSW level plus inner GMRES.

    Parameters
    ----------
    a0:
        The (level-1) coarse matrix ``Phi^T A Phi``.
    n_parts:
        Subdomain count of the second-level decomposition.
    n_null:
        Number of null-space directions of the original problem; the
        coarse null space is spanned by the corresponding constant
        combinations of coarse dofs (``n_null`` vectors).
    null_index:
        Optional ``(n0,)`` array assigning every coarse dof to its
        null-space direction (defaults to ``arange(n0) % n_null``, the
        layout produced by :func:`repro.dd.coarse_space.build_coarse_space`).
    inner_iterations:
        Inner GMRES iterations per coarse solve (a fixed, small count --
        the solve is deliberately inexact).
    local_spec:
        Local solver of the second level.

    The object exposes the :class:`~repro.dd.local_solvers.FactoredLocal`
    interface (``apply`` + phase profiles) so it can stand in for the
    direct coarse solver inside :class:`GDSWPreconditioner`.
    """

    symbolic_reusable = True

    def __init__(
        self,
        a0: CsrMatrix,
        n_parts: int = 4,
        n_null: int = 1,
        null_index: Optional[np.ndarray] = None,
        inner_iterations: int = 5,
        local_spec: Optional[LocalSolverSpec] = None,
    ) -> None:
        if a0.n_rows != a0.n_cols:
            raise ValueError("square coarse matrix required")
        self.a0 = a0
        self.inner_iterations = int(inner_iterations)
        n0 = a0.n_rows
        n_parts = max(1, min(n_parts, n0))
        local_spec = local_spec or LocalSolverSpec(kind="tacho", ordering="nd")

        self.dec = Decomposition.algebraic(a0, n_parts, dofs_per_node=1)
        if null_index is None:
            null_index = np.arange(n0, dtype=np.int64) % max(n_null, 1)
        z0 = np.zeros((n0, max(n_null, 1)))
        z0[np.arange(n0), np.asarray(null_index, dtype=np.int64)] = 1.0

        from repro.dd.two_level import GDSWPreconditioner

        self.precond = GDSWPreconditioner(
            self.dec, z0, local_spec=local_spec, overlap=1, variant="rgdsw", dim=3
        )

        # phase profiles: aggregate the second level's per-rank work
        self.symbolic_profile = KernelProfile()
        self.numeric_profile = KernelProfile()
        self.setup_profile = KernelProfile()
        for r in range(self.dec.n_subdomains):
            self.numeric_profile.extend(
                self.precond.rank_setup_profile(r, refactorization=True)
            )
        self.solve_profile = KernelProfile()
        for _ in range(self.inner_iterations):
            for r in range(self.dec.n_subdomains):
                self.solve_profile.extend(self.precond.rank_apply_profile(r))

    @property
    def exact(self) -> bool:
        """Multi-level coarse solves are inexact by construction."""
        return False

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Approximately solve ``A0 x = v`` with inner GDSW-GMRES."""
        from repro.krylov import gmres

        res = gmres(
            self.a0,
            np.asarray(v, dtype=np.float64),
            preconditioner=self.precond,
            rtol=1e-10,  # iteration cap below is the real control
            restart=max(self.inner_iterations, 1),
            maxiter=self.inner_iterations,
        )
        return res.x
