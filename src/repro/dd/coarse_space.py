"""GDSW / rGDSW coarse spaces and the energy-minimizing extension.

Following Section III of the paper:

1. the interface is split into components (``repro.dd.interface``);
2. diagonal scaling matrices ``D_{Gamma_i}`` form a partition of unity
   on the interface (for classical GDSW the components are disjoint and
   ``D = I``; for rGDSW each face/edge node distributes its weight over
   the covering vertex components, Option 1 of [Dohrmann & Widlund]);
3. per component and null-space vector, an interface basis column is
   the weighted restriction ``D_{Gamma_i} R_{Gamma_i} (R_Gamma Z)``;
   linearly dependent columns (e.g. rotations restricted to a single
   vertex node) are removed by a rank-revealing orthonormalization;
4. the interior values are the energy-minimizing discrete harmonic
   extension ``Phi_I = -A_II^{-1} A_IG Phi_Gamma`` (Eq. 2), computed
   subdomain-by-subdomain since ``A_II`` is block diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.dd.interface import InterfaceAnalysis, InterfaceComponent
from repro.machine.kernels import KernelProfile
from repro.sparse.blocks import extract_submatrix
from repro.sparse.csr import CsrMatrix

__all__ = ["CoarseSpace", "build_coarse_space", "energy_minimizing_extension"]


@dataclass
class CoarseSpace:
    """An interface coarse basis before/after extension.

    Attributes
    ----------
    phi:
        The full coarse basis ``Phi`` (n x n_coarse, CSR); None until
        :func:`energy_minimizing_extension` fills it.
    phi_gamma:
        Interface basis (n_interface_dofs x n_coarse, CSR), rows ordered
        by ``interface_dofs``.
    interface_dofs, interior_dofs:
        Global dof ids of the interface/interior split.
    weights:
        Per coarse component, the ``(nodes, weights)`` partition-of-unity
        data (for the tests).
    variant:
        ``"gdsw"``, ``"rgdsw"``, ``"agdsw"`` or ``"spectral"``.
    eigenvalues:
        For ``"spectral"`` spaces, the kept generalized eigenvalues per
        subdomain (ascending); the verify invariants audit these against
        ``tau``/``max_vectors_per_subdomain``.
    tau, max_vectors_per_subdomain:
        The selection parameters the ``"spectral"`` space was built with.
    """

    phi_gamma: CsrMatrix
    interface_dofs: np.ndarray
    interior_dofs: np.ndarray
    weights: List[Tuple[np.ndarray, np.ndarray]]
    variant: str
    phi: Optional[CsrMatrix] = None
    eigenvalues: Optional[List[np.ndarray]] = None
    tau: Optional[float] = None
    max_vectors_per_subdomain: Optional[int] = None

    @property
    def n_coarse(self) -> int:
        """Dimension of the coarse space."""
        return self.phi_gamma.n_cols

    def partition_of_unity_error(self) -> float:
        """Max deviation of the node weights from summing to one."""
        acc: Dict[int, float] = {}
        for nodes, w in self.weights:
            for node, wv in zip(nodes.tolist(), w.tolist()):
                acc[node] = acc.get(node, 0.0) + wv
        if not acc:
            return 0.0
        return float(max(abs(v - 1.0) for v in acc.values()))


def _rank_reduce(
    cols: np.ndarray, tol: float = 1e-10, orthonormal: bool = False
) -> np.ndarray:
    """Rank-revealing basis of the column span (drops dependent columns).

    By default returns the singular-value-scaled left singular vectors
    ``u[:, :rank] * s[:rank]`` — orthogonal columns whose Gram matrix is
    ``diag(s[:rank]**2)``, preserving the magnitude of the input columns
    (the partition-of-unity weights ride on the column scale, and the
    historical GDSW/rGDSW bases are built from this form bit-for-bit).
    With ``orthonormal=True`` the scaling is dropped and the columns are
    an orthonormal basis (Gram matrix = identity), which is what
    eigenvector blocks want.  Both spans are identical; the coarse
    operator ``Phi A0^{-1} Phi^T`` is invariant under the column scaling
    in exact arithmetic.
    """
    if cols.size == 0:
        return cols.reshape(cols.shape[0], 0)
    u, s, _ = np.linalg.svd(cols, full_matrices=False)
    if s.size == 0 or s[0] == 0.0:
        return cols[:, :0]
    rank = int(np.sum(s > tol * s[0]))
    if orthonormal:
        return u[:, :rank].copy()
    return u[:, :rank] * s[:rank]


def build_coarse_space(
    dec: Decomposition,
    analysis: InterfaceAnalysis,
    nullspace: np.ndarray,
    variant: str = "rgdsw",
) -> CoarseSpace:
    """Build the interface coarse basis ``Phi_Gamma``.

    Parameters
    ----------
    dec:
        The nonoverlapping decomposition.
    analysis:
        Interface analysis of ``dec``.
    nullspace:
        ``(n, n_n)`` null space of the global Neumann operator (rigid
        body modes for elasticity, constants for Laplace).
    variant:
        ``"gdsw"`` -- one basis group per interface component;
        ``"rgdsw"`` -- vertex components only, with multiplicity-weighted
        partition of unity (the paper's configuration).
    """
    if variant not in ("gdsw", "rgdsw"):
        raise ValueError(f"unknown coarse space variant {variant!r}")
    z = np.atleast_2d(np.asarray(nullspace, dtype=np.float64))
    if z.shape[0] != dec.a.n_rows:
        raise ValueError("null space row count must match the matrix")

    d = dec.dofs_per_node
    interface_dofs = dec.dofs_of_nodes(analysis.interface_nodes)
    interior_dofs = dec.dofs_of_nodes(analysis.interior_nodes)
    # position of each node's dof block within the interface dof vector
    node_pos = {int(v): i for i, v in enumerate(analysis.interface_nodes)}

    # ---- coarse components and their node weights ----
    comp_weights: List[Tuple[np.ndarray, np.ndarray]] = []
    if variant == "gdsw":
        for comp in analysis.components:
            comp_weights.append((comp.nodes, np.ones(comp.nodes.size)))
    else:
        vertices = [c for c in analysis.components if c.kind == "vertex"]
        vertex_sets = [frozenset(c.subdomains) for c in vertices]
        cover_nodes: List[List[np.ndarray]] = [[] for _ in vertices]
        cover_w: List[List[np.ndarray]] = [[] for _ in vertices]
        fallbacks: List[InterfaceComponent] = []
        for comp in analysis.components:
            s = frozenset(comp.subdomains)
            cover = [i for i, vs in enumerate(vertex_sets) if vs >= s]
            if not cover:
                fallbacks.append(comp)
                continue
            w = 1.0 / len(cover)
            for i in cover:
                cover_nodes[i].append(comp.nodes)
                cover_w[i].append(np.full(comp.nodes.size, w))
        for i in range(len(vertices)):
            nodes = np.concatenate(cover_nodes[i]) if cover_nodes[i] else np.empty(0, np.int64)
            w = np.concatenate(cover_w[i]) if cover_w[i] else np.empty(0)
            order = np.argsort(nodes)
            comp_weights.append((nodes[order], w[order]))
        for comp in fallbacks:
            comp_weights.append((comp.nodes, np.ones(comp.nodes.size)))

    # ---- assemble Phi_Gamma columns ----
    rows_out: List[np.ndarray] = []
    cols_out: List[np.ndarray] = []
    vals_out: List[np.ndarray] = []
    next_col = 0
    for nodes, w in comp_weights:
        if nodes.size == 0:
            continue
        supp_pos = np.asarray([node_pos[int(v)] for v in nodes], dtype=np.int64)
        supp_rows = (d * supp_pos[:, None] + np.arange(d)[None, :]).ravel()
        gdofs = dec.dofs_of_nodes(nodes)
        block = z[gdofs, :] * np.repeat(w, d)[:, None]
        block = _rank_reduce(block)
        if block.shape[1] == 0:
            continue
        r, c = np.meshgrid(
            supp_rows, np.arange(next_col, next_col + block.shape[1]), indexing="ij"
        )
        rows_out.append(r.ravel())
        cols_out.append(c.ravel())
        vals_out.append(block.ravel())
        next_col += block.shape[1]

    n_gamma = interface_dofs.size
    if next_col == 0:
        phi_gamma = CsrMatrix.from_coo(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), (n_gamma, 0)
        )
    else:
        phi_gamma = CsrMatrix.from_coo(
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
            (n_gamma, next_col),
        )
    return CoarseSpace(
        phi_gamma=phi_gamma,
        interface_dofs=interface_dofs,
        interior_dofs=interior_dofs,
        weights=comp_weights,
        variant=variant,
    )


def energy_minimizing_extension(
    dec: Decomposition,
    analysis: InterfaceAnalysis,
    space: CoarseSpace,
    interior_solver_factory: Callable[[], "object"],
    solver_cache: Optional[dict] = None,
) -> Tuple[CsrMatrix, KernelProfile, List[KernelProfile]]:
    """Extend ``Phi_Gamma`` harmonically into the subdomain interiors.

    Computes ``Phi = [ -A_II^{-1} A_IG ; I ] Phi_Gamma`` (Eq. 2) one
    subdomain at a time: ``A_II`` is block diagonal over subdomain
    interiors, so rank ``i`` factors its interior block and solves for
    the coarse columns supported near it.

    Parameters
    ----------
    interior_solver_factory:
        Zero-argument callable returning a fresh
        :class:`repro.direct.base.DirectSolver` for the interior solves
        (the paper uses Tacho here even in the ILU experiments).
    solver_cache:
        Optional mutable mapping of subdomain index to the interior
        solver factored on a previous (same-pattern) call.  On a hit,
        the interior block is *refactorized* (numeric-only when the
        solver's symbolic phase is reusable); misses populate the cache.
        The phase profiles recorded per rank are identical either way,
        because the symbolic profile is pattern-deterministic.

    Returns
    -------
    ``(phi, spgemm_profile, per_rank_profiles)``: the full basis, the
    profile of the global structural products, and per-rank profiles of
    the interior factor+solve work.
    """
    a = dec.a
    n = a.n_rows
    d = dec.dofs_per_node
    # map global dof -> interface position
    gamma_pos = np.full(n, -1, dtype=np.int64)
    gamma_pos[space.interface_dofs] = np.arange(space.interface_dofs.size)

    rows_out = [
        np.repeat(space.interface_dofs, np.diff(space.phi_gamma.indptr))
    ]
    cols_out = [space.phi_gamma.indices.copy()]
    vals_out = [space.phi_gamma.data.copy()]

    from repro.sparse.spgemm import spgemm, spgemm_flops

    spgemm_profile = KernelProfile()
    rank_profiles: List[KernelProfile] = []

    interface_mask = np.zeros(dec.n_nodes, dtype=bool)
    interface_mask[analysis.interface_nodes] = True

    for part_idx, part in enumerate(dec.node_parts):
        rank_prof = KernelProfile()
        interior_nodes_i = part[~interface_mask[part]]
        if interior_nodes_i.size == 0:
            rank_profiles.append(rank_prof)
            continue
        idofs = dec.dofs_of_nodes(interior_nodes_i)
        a_ii = extract_submatrix(a, idofs, idofs)
        a_ig = extract_submatrix(a, idofs, space.interface_dofs)
        rhs_sparse = spgemm(a_ig, space.phi_gamma)
        ext_kernel = dict(
            flops=float(spgemm_flops(a_ig, space.phi_gamma)),
            bytes=float((a_ig.nnz + space.phi_gamma.nnz + rhs_sparse.nnz) * 16),
            parallelism=float(max(a_ig.n_rows, 1)),
        )
        spgemm_profile.add("coarse.extension_spgemm", **ext_kernel)
        rank_prof.add("coarse.extension_spgemm", **ext_kernel)
        active = np.unique(rhs_sparse.indices)
        if active.size == 0:
            rank_profiles.append(rank_prof)
            continue
        solver = None if solver_cache is None else solver_cache.get(part_idx)
        if solver is None:
            solver = interior_solver_factory()
            solver.factorize(a_ii)
            if solver_cache is not None:
                solver_cache[part_idx] = solver
        else:
            solver.refactorize(a_ii)
        rank_prof.extend(solver.symbolic_profile)
        rank_prof.extend(solver.numeric_profile)
        rhs = -rhs_sparse.todense()[:, active]
        x = solver.solve(rhs)
        # the extension solves run as ONE batched multi-RHS sweep: flops
        # scale with the column count, factor loads amortize, and the
        # level schedule launches once
        ncols = int(active.size)
        for k in solver.solve_profile:
            rank_prof.kernels.append(
                type(k)(
                    "coarse.extension_solve",
                    k.flops * ncols,
                    k.bytes * (1.0 + ncols) / 2.0,
                    k.parallelism * ncols,
                    k.launches,
                )
            )
        nz_r, nz_c = np.nonzero(np.abs(x) > 1e-14)
        rows_out.append(idofs[nz_r])
        cols_out.append(active[nz_c])
        vals_out.append(x[nz_r, nz_c])
        rank_profiles.append(rank_prof)

    phi = CsrMatrix.from_coo(
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(vals_out),
        (n, space.phi_gamma.n_cols),
    )
    space.phi = phi
    return phi, spgemm_profile, rank_profiles
