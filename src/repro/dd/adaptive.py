"""Adaptive GDSW (AGDSW) coarse spaces.

Section III of the paper lists AGDSW [Heinlein, Klawonn, Knepper,
Rheinbach 2019] as the coarse-space variant for problems with highly
heterogeneous coefficients: the classical GDSW basis (null-space
restrictions per interface component) is *enriched* with eigenvectors of
local generalized eigenvalue problems, which automatically pick up the
low-energy modes that coefficient jumps introduce along faces and edges.

Per interface component ``c``:

1. build a patch ``omega_c`` of nodes within a few graph layers of the
   component;
2. apply the *algebraic Neumann correction*: couplings leaving the
   patch are folded into the diagonal, turning the Dirichlet-truncated
   patch block into (for M-matrix-like operators, exactly) the locally
   assembled Neumann matrix -- without it, patch truncation charges
   high-coefficient channels an artificial exit toll and hides them;
3. form the Schur complement ``S_c`` of the Neumann patch matrix onto
   the component dofs and solve the generalized eigenproblem
   ``S_c v = lambda D_c v`` with ``D_c = diag(A_cc)``;
4. keep every eigenvector with ``lambda <= tol`` -- for smooth
   coefficients only the null-space-like modes fall below the threshold
   and AGDSW reduces to GDSW, while multiple high-contrast channels
   crossing a component produce additional small eigenvalues exactly
   where enrichment is needed.

The resulting interface basis plugs into the same energy-minimizing
extension as GDSW/rGDSW.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dd.coarse_space import CoarseSpace, _rank_reduce
from repro.dd.decomposition import Decomposition
from repro.dd.interface import InterfaceAnalysis
from repro.sparse.blocks import extract_submatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import expand_layers

__all__ = ["build_adaptive_coarse_space", "component_eigenmodes"]


def component_eigenmodes(
    dec: Decomposition,
    component_nodes: np.ndarray,
    tol: float,
    patch_layers: int = 2,
    max_modes: int = 12,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eigenmodes of one interface component's Schur-complement problem.

    Returns ``(eigenvalues, modes)`` with ``modes`` of shape
    ``(len(component_dofs), k)`` holding the eigenvectors with
    ``lambda <= tol`` (at most ``max_modes``), in ascending eigenvalue
    order.

    Notes
    -----
    The patch interior is condensed *exactly* (dense solve on the patch;
    patches are small by construction), so the eigenproblem sees the
    true local energy of the operator, coefficient jumps included.
    """
    g = dec.graph
    patch_nodes = expand_layers(
        g.indptr, g.indices, component_nodes, patch_layers, dec.n_nodes
    )
    comp_set = set(component_nodes.tolist())
    rest_nodes = np.asarray(
        [v for v in patch_nodes.tolist() if v not in comp_set], dtype=np.int64
    )
    cdofs = dec.dofs_of_nodes(np.asarray(component_nodes, dtype=np.int64))
    rdofs = dec.dofs_of_nodes(rest_nodes)
    pdofs = np.concatenate([cdofs, rdofs])

    a = dec.a
    app = extract_submatrix(a, pdofs, pdofs).todense()
    # algebraic Neumann correction: subtract the stiffness the patch
    # borrows from outside elements (couplings leaving the patch are
    # folded into the diagonal; exact for operators with elementwise
    # zero row sums, e.g. Laplace and translation-invariant elasticity)
    full_rows = extract_submatrix(a, pdofs, np.arange(a.n_rows)).todense()
    outside = full_rows.sum(axis=1) - app.sum(axis=1)
    app_n = app + np.diag(outside)

    nc = cdofs.size
    if rdofs.size:
        a_rr = app_n[nc:, nc:] + 1e-10 * np.eye(rdofs.size)
        schur = app_n[:nc, :nc] - app_n[:nc, nc:] @ np.linalg.solve(
            a_rr, app_n[nc:, :nc]
        )
    else:
        schur = app_n[:nc, :nc].copy()
    schur = 0.5 * (schur + schur.T)

    from scipy.linalg import eigh

    # weight with the *assembled* (Dirichlet-true) diagonal: channel
    # dofs carry the full coefficient there, so low-energy channel
    # modes surface as small generalized eigenvalues
    d_c = a.diagonal()[cdofs]
    w, v = eigh(schur, np.diag(d_c))
    keep = np.flatnonzero(w <= tol)[:max_modes]
    return w[keep], v[:, keep]


def build_adaptive_coarse_space(
    dec: Decomposition,
    analysis: InterfaceAnalysis,
    nullspace: np.ndarray,
    tol: float = 1e-2,
    patch_layers: int = 2,
    max_modes_per_component: int = 12,
) -> CoarseSpace:
    """Build the AGDSW interface basis.

    Per component, the basis spans the restricted null space (the GDSW
    guarantee) united with the low-energy eigenmodes below ``tol``; a
    rank-revealing orthonormalization removes the overlap between the
    two (for smooth coefficients the eigenmodes *are* the null-space
    restrictions, and AGDSW collapses to classical GDSW).
    """
    z = np.atleast_2d(np.asarray(nullspace, dtype=np.float64))
    if z.shape[0] != dec.a.n_rows:
        raise ValueError("null space row count must match the matrix")
    if tol <= 0:
        raise ValueError("tol must be positive")

    d = dec.dofs_per_node
    interface_dofs = dec.dofs_of_nodes(analysis.interface_nodes)
    interior_dofs = dec.dofs_of_nodes(analysis.interior_nodes)
    node_pos = {int(v): i for i, v in enumerate(analysis.interface_nodes)}

    rows_out: List[np.ndarray] = []
    cols_out: List[np.ndarray] = []
    vals_out: List[np.ndarray] = []
    weights: List[Tuple[np.ndarray, np.ndarray]] = []
    next_col = 0
    for comp in analysis.components:
        nodes = comp.nodes
        weights.append((nodes, np.ones(nodes.size)))
        gdofs = dec.dofs_of_nodes(nodes)
        blocks = [z[gdofs, :]]
        _, modes = component_eigenmodes(
            dec, nodes, tol=tol, patch_layers=patch_layers,
            max_modes=max_modes_per_component,
        )
        if modes.size:
            blocks.append(modes)
        # coarser rank tolerance than plain GDSW: eigenmodes that merely
        # re-discover the null-space restrictions (up to patch-truncation
        # noise) must not enlarge the coarse space
        block = _rank_reduce(np.hstack(blocks), tol=1e-3)
        if block.shape[1] == 0:
            continue
        supp_pos = np.asarray([node_pos[int(v)] for v in nodes], dtype=np.int64)
        supp_rows = (d * supp_pos[:, None] + np.arange(d)[None, :]).ravel()
        r, c = np.meshgrid(
            supp_rows, np.arange(next_col, next_col + block.shape[1]), indexing="ij"
        )
        rows_out.append(r.ravel())
        cols_out.append(c.ravel())
        vals_out.append(block.ravel())
        next_col += block.shape[1]

    n_gamma = interface_dofs.size
    if next_col == 0:
        phi_gamma = CsrMatrix.from_coo(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), (n_gamma, 0)
        )
    else:
        phi_gamma = CsrMatrix.from_coo(
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
            (n_gamma, next_col),
        )
    return CoarseSpace(
        phi_gamma=phi_gamma,
        interface_dofs=interface_dofs,
        interior_dofs=interior_dofs,
        weights=weights,
        variant="agdsw",
    )
