"""One-level overlapping additive Schwarz.

The second term of Eq. (1): ``sum_i R_i^T A_i^{-1} R_i`` with
``A_i = R_i A R_i^T`` the overlapping subdomain matrices.  Alone, this
is the classical one-level preconditioner whose iteration counts grow
with the number of subdomains -- the failure mode the GDSW coarse level
cures (and which our ablation benches demonstrate).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.backend import get_backend
from repro.dd.decomposition import Decomposition
from repro.dd.local_solvers import FactoredLocal, LocalSolverSpec
from repro.dd.overlap import overlapping_subdomains
from repro.machine.kernels import KernelProfile
from repro.obs import get_tracer
from repro.resilience.context import get_engine
from repro.reuse.cache import get_artifact_cache
from repro.reuse.fingerprint import partition_fingerprint, pattern_fingerprint
from repro.sparse.blocks import extract_submatrix
from repro.sparse.csr import CsrMatrix

__all__ = ["OneLevelSchwarz"]


class OneLevelSchwarz:
    """One-level additive Schwarz operator.

    Parameters
    ----------
    dec:
        Nonoverlapping decomposition.
    spec:
        Local solver configuration.
    overlap:
        Number of algebraic overlap layers (paper: 1).
    restricted:
        Apply restricted-additive-Schwarz weighting (each dof's
        correction taken only from its owner; reduces communication and
        often iterations).  The paper uses plain additive Schwarz
        (False).
    reuse_from:
        An existing :class:`OneLevelSchwarz` built over the *same matrix
        values* (typically the pre-failure operator during a
        :mod:`repro.ft` shrink recovery).  Ranks whose overlapping dof
        set is identical to one of the donor's reuse its factorization
        outright -- after a single-subdomain merge only the subdomains
        overlapping the merged region need refactoring.

    Attributes
    ----------
    locals:
        Per-rank :class:`FactoredLocal` objects.
    dof_sets:
        Per-rank overlapping dof index sets (the ``R_i``).
    halo_doubles:
        Per-rank count of dofs imported from other ranks for one apply
        (the halo-exchange payload the runtime prices).
    """

    def __init__(
        self,
        dec: Decomposition,
        spec: LocalSolverSpec,
        overlap: int = 1,
        restricted: bool = False,
        reuse_from: "OneLevelSchwarz | None" = None,
    ) -> None:
        self.dec = dec
        self.spec = spec
        self.overlap = overlap
        self.restricted = restricted

        tr = get_tracer()
        with tr.span("setup/overlap") as sp:
            sp.annotate(overlap=overlap)
            # the overlap import plan is pattern-only: same matrix
            # pattern + same partition -> same node sets, so it lives
            # in the ambient pattern-keyed artifact cache
            cache = get_artifact_cache()
            key = (
                "overlap",
                pattern_fingerprint(dec.a),
                partition_fingerprint(dec.node_parts),
                int(overlap),
            )
            node_sets = cache.get(key)
            if node_sets is None:
                node_sets = overlapping_subdomains(dec, overlap)
                cache.put(key, node_sets)
            self.node_sets = node_sets
            self.dof_sets: List[np.ndarray] = [
                dec.dofs_of_nodes(ns) for ns in node_sets
            ]
            # precomputed scatter plan for apply(): one concatenated
            # index vector drives a single bincount accumulation
            self._scatter_dofs = (
                np.concatenate(self.dof_sets)
                if self.dof_sets
                else np.empty(0, dtype=np.int64)
            )
        self.locals: List[FactoredLocal] = []
        self.matrices: List[CsrMatrix] = []
        # donor factorizations keyed by their overlapping dof set; valid
        # only because reuse_from shares the matrix values (documented
        # contract), so an identical dof set implies an identical A_i
        donor = {}
        if reuse_from is not None and reuse_from.spec == spec:
            for d, a_i, loc in zip(
                reuse_from.dof_sets, reuse_from.matrices, reuse_from.locals
            ):
                donor[d.tobytes()] = (a_i, loc)
        eng = get_engine()
        if eng is not None:
            eng.register_one_level(self)
        for rank, dofs in enumerate(self.dof_sets):
            hit = donor.get(dofs.tobytes())
            if hit is not None:
                with tr.span("reuse/skip_setup", rank=rank) as sp:
                    sp.annotate(solver=spec.describe(), n=int(dofs.size))
                    a_i, loc = hit
                    self.matrices.append(a_i)
                    self.locals.append(loc)
                continue
            with tr.span("setup/local_factor", rank=rank) as sp:
                sp.annotate(solver=spec.describe(), n=int(dofs.size))
                a_i = extract_submatrix(dec.a, dofs, dofs)
                if eng is not None:
                    # resilience hooks: fault injection, breakdown
                    # capture, and the per-subdomain escalation ladder
                    a_i, loc = eng.build_local(rank, spec, a_i)
                else:
                    loc = spec.build(a_i)
                self.matrices.append(a_i)
                self.locals.append(loc)

        # halo sizes: dofs in the overlapping set not owned by the rank
        self.halo_doubles = []
        for rank, ns in enumerate(node_sets):
            owned = dec.node_owner[ns] == rank
            self.halo_doubles.append(
                int((ns.size - int(owned.sum())) * dec.dofs_per_node)
            )

        if restricted:
            self._weights = []
            for rank, ns in enumerate(node_sets):
                w = (dec.node_owner[ns] == rank).astype(np.float64)
                self._weights.append(np.repeat(w, dec.dofs_per_node))
        else:
            self._weights = None

    # ------------------------------------------------------------------
    @property
    def n_subdomains(self) -> int:
        """Number of overlapping subdomains."""
        return len(self.dof_sets)

    def refactor(self, dec_new: Decomposition) -> None:
        """Numeric-only refactorization over a same-pattern matrix.

        Reuses every pattern-derived artifact (overlap node/dof sets,
        scatter plan, halo sizes, RAS weights) and refactorizes each
        local solver in place: symbolic-reusable kinds re-run only their
        numeric phase, SuperLU rebuilds.  ``dec_new`` must share the
        pattern and partition of the original decomposition (enforced by
        :meth:`Decomposition.with_values` upstream and by the per-solver
        pattern guards here).
        """
        tr = get_tracer()
        self.dec = dec_new
        for rank, dofs in enumerate(self.dof_sets):
            with tr.span("reuse/local_refactor", rank=rank) as sp:
                a_i = extract_submatrix(dec_new.a, dofs, dofs)
                loc = self.locals[rank].refactor(a_i)
                sp.annotate(
                    solver=self.spec.describe(),
                    reused_symbolic=loc.symbolic_reusable,
                )
                self.matrices[rank] = a_i
                self.locals[rank] = loc

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Apply ``sum_i R_i^T (D_i) A_i^{-1} R_i v``.

        The gather/scatter halves route through the array backend of
        ``v``; the local subdomain solves stay host solvers (they wrap
        factored objects), so a non-numpy ``v`` is transferred once per
        apply.  The numpy path is bit-identical to the pre-refactor
        bincount plan.
        """
        with get_tracer().span("apply/local_solve") as sp:
            sp.count("local_solves", float(len(self.dof_sets)))
            bk = get_backend(v)
            v = bk.astype(bk.asarray(v), np.float64)
            v_host = v if bk.is_numpy else bk.to_numpy(v)
            eng = get_engine()
            parts: List[np.ndarray] = []
            for rank, dofs in enumerate(self.dof_sets):
                v_i = v_host[dofs]
                if eng is not None:
                    v_i = eng.filter_restrict(rank, v_i)
                x_i = self.locals[rank].apply(v_i)
                if eng is not None:
                    x_i = eng.check_local_solution(rank, x_i)
                if self._weights is not None:
                    x_i = x_i * self._weights[rank]
                parts.append(np.asarray(x_i, dtype=np.float64))  # backend-ok: host solver output
            # single vectorized scatter-add over the precomputed index
            # plan; bincount accumulates sequentially in input order, so
            # concatenating rank-major reproduces the per-rank
            # ``np.add.at`` addition order bit for bit
            if not parts:
                return bk.zeros(v_host.size, dtype=np.float64)
            return bk.scatter_add(
                self._scatter_dofs,
                bk.concatenate(parts),
                v_host.size,
            )

    # ------------------------------------------------------------------
    def rank_solve_profile(self, rank: int) -> KernelProfile:
        """Kernels of one local apply on ``rank`` (restrict + solve)."""
        prof = KernelProfile()
        n_i = self.dof_sets[rank].size
        prof.add(
            "apply.restrict_prolong",
            flops=float(n_i),
            bytes=32.0 * n_i,
            parallelism=float(n_i),
        )
        prof.extend(self.locals[rank].solve_profile)
        return prof

    def rank_setup_profile(self, rank: int, include_symbolic: bool = True) -> KernelProfile:
        """Kernels of one numeric setup on ``rank``.

        ``include_symbolic=False`` models a refactorization that reuses
        the symbolic phase (possible only when the local solver's
        structure is value-independent).
        """
        prof = KernelProfile()
        loc = self.locals[rank]
        # solvers with value-dependent structure (SuperLU) repeat the
        # pattern analysis and triangular-solver setup at every numeric
        # factorization; structure-stable solvers reuse both (phase (a))
        if include_symbolic or not loc.symbolic_reusable:
            prof.extend(loc.symbolic_profile)
            prof.extend(loc.setup_profile)
        prof.extend(loc.numeric_profile)
        # forming A_i = R_i A R_i^T: communication-bound gather
        nnz_i = self.matrices[rank].nnz
        prof.add(
            "comm.overlap_import",
            flops=0.0,
            bytes=float(nnz_i * 16 + self.halo_doubles[rank] * 8),
            parallelism=1.0,
        )
        return prof
