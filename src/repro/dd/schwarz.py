"""One-level overlapping additive Schwarz.

The second term of Eq. (1): ``sum_i R_i^T A_i^{-1} R_i`` with
``A_i = R_i A R_i^T`` the overlapping subdomain matrices.  Alone, this
is the classical one-level preconditioner whose iteration counts grow
with the number of subdomains -- the failure mode the GDSW coarse level
cures (and which our ablation benches demonstrate).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.dd.local_solvers import FactoredLocal, LocalSolverSpec
from repro.dd.overlap import overlapping_subdomains
from repro.machine.kernels import KernelProfile
from repro.obs import get_tracer
from repro.resilience.context import get_engine
from repro.sparse.blocks import extract_submatrix
from repro.sparse.csr import CsrMatrix

__all__ = ["OneLevelSchwarz"]


class OneLevelSchwarz:
    """One-level additive Schwarz operator.

    Parameters
    ----------
    dec:
        Nonoverlapping decomposition.
    spec:
        Local solver configuration.
    overlap:
        Number of algebraic overlap layers (paper: 1).
    restricted:
        Apply restricted-additive-Schwarz weighting (each dof's
        correction taken only from its owner; reduces communication and
        often iterations).  The paper uses plain additive Schwarz
        (False).

    Attributes
    ----------
    locals:
        Per-rank :class:`FactoredLocal` objects.
    dof_sets:
        Per-rank overlapping dof index sets (the ``R_i``).
    halo_doubles:
        Per-rank count of dofs imported from other ranks for one apply
        (the halo-exchange payload the runtime prices).
    """

    def __init__(
        self,
        dec: Decomposition,
        spec: LocalSolverSpec,
        overlap: int = 1,
        restricted: bool = False,
    ) -> None:
        self.dec = dec
        self.spec = spec
        self.overlap = overlap
        self.restricted = restricted

        tr = get_tracer()
        with tr.span("setup/overlap") as sp:
            sp.annotate(overlap=overlap)
            node_sets = overlapping_subdomains(dec, overlap)
            self.node_sets = node_sets
            self.dof_sets: List[np.ndarray] = [
                dec.dofs_of_nodes(ns) for ns in node_sets
            ]
        self.locals: List[FactoredLocal] = []
        self.matrices: List[CsrMatrix] = []
        eng = get_engine()
        if eng is not None:
            eng.register_one_level(self)
        for rank, dofs in enumerate(self.dof_sets):
            with tr.span("setup/local_factor", rank=rank) as sp:
                sp.annotate(solver=spec.describe(), n=int(dofs.size))
                a_i = extract_submatrix(dec.a, dofs, dofs)
                if eng is not None:
                    # resilience hooks: fault injection, breakdown
                    # capture, and the per-subdomain escalation ladder
                    a_i, loc = eng.build_local(rank, spec, a_i)
                else:
                    loc = spec.build(a_i)
                self.matrices.append(a_i)
                self.locals.append(loc)

        # halo sizes: dofs in the overlapping set not owned by the rank
        self.halo_doubles = []
        for rank, ns in enumerate(node_sets):
            owned = dec.node_owner[ns] == rank
            self.halo_doubles.append(
                int((ns.size - int(owned.sum())) * dec.dofs_per_node)
            )

        if restricted:
            self._weights = []
            for rank, ns in enumerate(node_sets):
                w = (dec.node_owner[ns] == rank).astype(np.float64)
                self._weights.append(np.repeat(w, dec.dofs_per_node))
        else:
            self._weights = None

    # ------------------------------------------------------------------
    @property
    def n_subdomains(self) -> int:
        """Number of overlapping subdomains."""
        return len(self.dof_sets)

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Apply ``sum_i R_i^T (D_i) A_i^{-1} R_i v``."""
        with get_tracer().span("apply/local_solve") as sp:
            sp.count("local_solves", float(len(self.dof_sets)))
            out = np.zeros_like(np.asarray(v, dtype=np.float64))
            eng = get_engine()
            for rank, dofs in enumerate(self.dof_sets):
                v_i = v[dofs]
                if eng is not None:
                    v_i = eng.filter_restrict(rank, v_i)
                x_i = self.locals[rank].apply(v_i)
                if eng is not None:
                    x_i = eng.check_local_solution(rank, x_i)
                if self._weights is not None:
                    x_i = x_i * self._weights[rank]
                np.add.at(out, dofs, x_i)
            return out

    # ------------------------------------------------------------------
    def rank_solve_profile(self, rank: int) -> KernelProfile:
        """Kernels of one local apply on ``rank`` (restrict + solve)."""
        prof = KernelProfile()
        n_i = self.dof_sets[rank].size
        prof.add(
            "apply.restrict_prolong",
            flops=float(n_i),
            bytes=32.0 * n_i,
            parallelism=float(n_i),
        )
        prof.extend(self.locals[rank].solve_profile)
        return prof

    def rank_setup_profile(self, rank: int, include_symbolic: bool = True) -> KernelProfile:
        """Kernels of one numeric setup on ``rank``.

        ``include_symbolic=False`` models a refactorization that reuses
        the symbolic phase (possible only when the local solver's
        structure is value-independent).
        """
        prof = KernelProfile()
        loc = self.locals[rank]
        # solvers with value-dependent structure (SuperLU) repeat the
        # pattern analysis and triangular-solver setup at every numeric
        # factorization; structure-stable solvers reuse both (phase (a))
        if include_symbolic or not loc.symbolic_reusable:
            prof.extend(loc.symbolic_profile)
            prof.extend(loc.setup_profile)
        prof.extend(loc.numeric_profile)
        # forming A_i = R_i A R_i^T: communication-bound gather
        nnz_i = self.matrices[rank].nnz
        prof.add(
            "comm.overlap_import",
            flops=0.0,
            bytes=float(nnz_i * 16 + self.halo_doubles[rank] * 8),
            parallelism=1.0,
        )
        return prof
