"""Algebraic overlap construction.

The one-level Schwarz operator of Eq. (1) needs *overlapping* subdomains
``Omega_i'``: each nonoverlapping part extended by ``l`` layers of
adjacent nodes.  FROSch builds this algebraically from the matrix graph
-- layer 1 adds every node adjacent to the subdomain, layer 2 their
neighbors, and so on.  All the paper's experiments use ``l = 1``
("algebraic overlap of one", Section VII).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.sparse.graph import expand_layers

__all__ = ["overlapping_subdomains"]


def overlapping_subdomains(
    dec: Decomposition, layers: int = 1
) -> List[np.ndarray]:
    """Extend every subdomain's node set by ``layers`` graph layers.

    Returns one sorted node array per subdomain (a cover of the node
    set, overlapping where subdomains meet).  ``layers = 0`` returns the
    nonoverlapping parts (useful for ablation: one-level Schwarz without
    overlap is block Jacobi).
    """
    if layers < 0:
        raise ValueError("layers must be non-negative")
    if layers == 0:
        return [p.copy() for p in dec.node_parts]
    g = dec.graph
    return [
        expand_layers(g.indptr, g.indices, part, layers, dec.n_nodes)
        for part in dec.node_parts
    ]
