"""Fully algebraic spectral coarse spaces (GenEO-style).

The GDSW/rGDSW/AGDSW constructions in :mod:`repro.dd.coarse_space` and
:mod:`repro.dd.adaptive` assume FEM-style structure: a known Neumann
null space (rigid-body modes need node coordinates) and an interface
that decomposes into geometric vertex/edge/face components.  This
module drops both assumptions, following the *fully algebraic* two-level
Schwarz of Al Daas, Jolivet, Nataf and Tournier (arXiv 2401.03915): the
coarse space is built from the assembled matrix alone, via

1. a **local SPSD splitting** per overlapping subdomain: the patch
   block ``A_pp`` with every coupling that leaves the patch folded into
   the diagonal (:func:`local_spsd_splitting`).  For operators whose
   off-patch couplings are non-positive with dominated row sums
   (M-matrix-like: Laplace, diffusion with any coefficient field, the
   symmetric part of upwind convection), the folded matrix is symmetric
   positive semi-definite and plays the role of the locally *assembled
   Neumann* matrix ``tilde A_i`` of the splitting
   ``A = sum_i R_i^T tilde A_i R_i`` -- without access to element
   matrices;
2. a **generalized eigenproblem** per subdomain
   (:func:`subdomain_spectral_modes`): condense the splitting exactly
   onto the subdomain's two-sided interface ``Gamma_i`` (dense Schur
   complement; patches are subdomain-sized) and solve

   ``S_i v = lambda D_i v``,   ``D_i = diag(A)`` on ``Gamma_i``

   with dense ``scipy.linalg.eigh``.  Eigenvectors with
   ``lambda <= tau`` are the low-energy interface modes -- for a plain
   Laplacian just the near-constants (recovering GDSW without being
   told the null space), and for high-contrast / anisotropic /
   nearly-incompressible operators exactly the extra channel and
   locking modes plain GDSW misses;
3. a **partition of unity** on the interface: each interface node's
   contribution is weighted by ``1/multiplicity`` over the subdomains
   whose ``Gamma_i`` contains it, so the per-subdomain bases assemble
   into a globally consistent interface basis ``Phi_Gamma``.

The result is an ordinary :class:`~repro.dd.coarse_space.CoarseSpace`
(variant ``"spectral"``) and flows through the unchanged
energy-minimizing extension (Eq. 2) and
:class:`~repro.dd.two_level.GDSWPreconditioner` machinery; select it
with ``SchwarzConfig(coarse_space="spectral")``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dd.coarse_space import CoarseSpace, _rank_reduce
from repro.dd.decomposition import Decomposition
from repro.dd.interface import InterfaceAnalysis
from repro.dd.overlap import overlapping_subdomains
from repro.sparse.blocks import extract_submatrix

__all__ = [
    "build_spectral_coarse_space",
    "local_spsd_splitting",
    "subdomain_spectral_modes",
]


def local_spsd_splitting(
    dec: Decomposition,
    gamma_nodes: np.ndarray,
    patch_nodes: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """The dense SPSD splitting of one overlapping subdomain patch.

    Extracts the patch block of the assembled matrix in
    ``Gamma_i``-first dof ordering and folds every coupling that leaves
    the patch into the diagonal (the algebraic Neumann correction also
    used by :mod:`repro.dd.adaptive`): entry ``sum_{q outside} A[p, q]``
    is added to ``A[p, p]``, which cancels the artificial Dirichlet
    stiffness patch truncation would otherwise charge.  For operators
    with elementwise zero row sums the result *is* the locally assembled
    Neumann matrix; in general it is the algebraic stand-in
    ``tilde A_i`` of the SPSD splitting ``A = sum_i R_i^T tilde A_i
    R_i`` (symmetrized on return, so nonsymmetric operators contribute
    the splitting of their symmetric part).

    Parameters
    ----------
    gamma_nodes:
        The subdomain's interface nodes (first block of the ordering).
    patch_nodes:
        All patch nodes; must contain ``gamma_nodes``.

    Returns
    -------
    ``(a_tilde, n_gamma)``: the dense symmetrized splitting in
    ``[Gamma_i, rest]`` dof ordering, and the leading ``Gamma_i`` dof
    count.
    """
    gamma_nodes = np.asarray(gamma_nodes, dtype=np.int64)
    gamma_set = set(gamma_nodes.tolist())
    rest_nodes = np.asarray(
        [v for v in np.asarray(patch_nodes).tolist() if v not in gamma_set],
        dtype=np.int64,
    )
    gdofs = dec.dofs_of_nodes(gamma_nodes)
    rdofs = dec.dofs_of_nodes(rest_nodes)
    pdofs = np.concatenate([gdofs, rdofs])

    a = dec.a
    app = extract_submatrix(a, pdofs, pdofs).todense()
    full_rows = extract_submatrix(
        a, pdofs, np.arange(a.n_rows, dtype=np.int64)
    ).todense()
    outside = full_rows.sum(axis=1) - app.sum(axis=1)
    a_tilde = app + np.diag(outside)
    return 0.5 * (a_tilde + a_tilde.T), int(gdofs.size)


def subdomain_spectral_modes(
    dec: Decomposition,
    gamma_nodes: np.ndarray,
    patch_nodes: np.ndarray,
    tau: float,
    max_vectors: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Low-energy interface eigenmodes of one subdomain.

    Condenses the patch's SPSD splitting exactly onto the ``Gamma_i``
    dofs (dense Schur complement with a tiny relative regularization of
    the interior block, as in :mod:`repro.dd.adaptive`) and solves the
    generalized eigenproblem ``S_i v = lambda D_i v`` against the
    assembled (Dirichlet-true) diagonal.

    Returns ``(eigenvalues, modes)`` in ascending eigenvalue order:
    every mode with ``lambda <= tau``, capped at ``max_vectors`` -- but
    always at least one (the minimal-energy mode), so each subdomain
    contributes to the coarse space even when ``tau`` is conservative.
    """
    a_tilde, nc = local_spsd_splitting(dec, gamma_nodes, patch_nodes)
    if nc == 0:
        return np.empty(0), np.empty((0, 0))
    nr = a_tilde.shape[0] - nc
    if nr:
        a_rr = a_tilde[nc:, nc:] + 1e-10 * np.eye(nr)
        schur = a_tilde[:nc, :nc] - a_tilde[:nc, nc:] @ np.linalg.solve(
            a_rr, a_tilde[nc:, :nc]
        )
    else:
        schur = a_tilde[:nc, :nc].copy()
    schur = 0.5 * (schur + schur.T)

    from scipy.linalg import eigh

    gdofs = dec.dofs_of_nodes(np.asarray(gamma_nodes, dtype=np.int64))
    d_c = np.abs(dec.a.diagonal()[gdofs])
    d_c = np.maximum(d_c, 1e-300)
    w, v = eigh(schur, np.diag(d_c))
    n_keep = int(np.sum(w <= tau))
    n_keep = max(1, min(n_keep, int(max_vectors)))
    return w[:n_keep], v[:, :n_keep]


def build_spectral_coarse_space(
    dec: Decomposition,
    analysis: InterfaceAnalysis,
    tau: float = 1e-2,
    max_vectors_per_subdomain: int = 8,
    node_sets: Optional[List[np.ndarray]] = None,
) -> CoarseSpace:
    """Build the fully algebraic spectral interface basis ``Phi_Gamma``.

    Parameters
    ----------
    dec:
        The nonoverlapping decomposition (no null space needed -- the
        eigenproblems discover the low-energy modes from the matrix).
    analysis:
        Interface analysis of ``dec`` (only the two-sided interface and
        per-node subdomain adjacency are used; the geometric
        vertex/edge/face classification is irrelevant here).
    tau:
        Eigenvalue threshold: modes with ``lambda <= tau`` enter the
        coarse space.  Larger values buy robustness (more vectors,
        fewer Krylov iterations) at a larger coarse problem.
    max_vectors_per_subdomain:
        Cap on the modes any one subdomain contributes.
    node_sets:
        Optional precomputed overlapping node sets (one per subdomain,
        e.g. :attr:`OneLevelSchwarz.node_sets`); recomputed with one
        overlap layer when omitted.
    """
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    if max_vectors_per_subdomain < 1:
        raise ValueError(
            f"max_vectors_per_subdomain must be >= 1, got "
            f"{max_vectors_per_subdomain}"
        )
    if node_sets is None:
        node_sets = overlapping_subdomains(dec, 1)

    d = dec.dofs_per_node
    interface_dofs = dec.dofs_of_nodes(analysis.interface_nodes)
    interior_dofs = dec.dofs_of_nodes(analysis.interior_nodes)
    node_pos = {int(v): i for i, v in enumerate(analysis.interface_nodes)}
    # interface multiplicity: the number of subdomains whose Gamma_i
    # contains the node (its adjacency class size) -- the PoU weights
    multiplicity = {
        node: len(owners) for node, owners in analysis.node_adjacency.items()
    }

    rows_out: List[np.ndarray] = []
    cols_out: List[np.ndarray] = []
    vals_out: List[np.ndarray] = []
    weights: List[Tuple[np.ndarray, np.ndarray]] = []
    eigenvalues: List[np.ndarray] = []
    next_col = 0
    for rank in range(dec.n_subdomains):
        gamma_nodes = np.asarray(
            sorted(
                node
                for node, owners in analysis.node_adjacency.items()
                if rank in owners
            ),
            dtype=np.int64,
        )
        if gamma_nodes.size == 0:
            weights.append((gamma_nodes, np.empty(0)))
            eigenvalues.append(np.empty(0))
            continue
        patch_nodes = np.union1d(node_sets[rank], gamma_nodes)
        w_nodes = np.asarray(
            [1.0 / multiplicity[int(v)] for v in gamma_nodes]
        )
        weights.append((gamma_nodes, w_nodes))
        evals, modes = subdomain_spectral_modes(
            dec, gamma_nodes, patch_nodes, tau, max_vectors_per_subdomain
        )
        eigenvalues.append(evals)
        if modes.size == 0:
            continue
        block = modes * np.repeat(w_nodes, d)[:, None]
        block = _rank_reduce(block, orthonormal=True)
        if block.shape[1] == 0:
            continue
        supp_pos = np.asarray(
            [node_pos[int(v)] for v in gamma_nodes], dtype=np.int64
        )
        supp_rows = (d * supp_pos[:, None] + np.arange(d)[None, :]).ravel()
        r, c = np.meshgrid(
            supp_rows,
            np.arange(next_col, next_col + block.shape[1]),
            indexing="ij",
        )
        rows_out.append(r.ravel())
        cols_out.append(c.ravel())
        vals_out.append(block.ravel())
        next_col += block.shape[1]

    from repro.sparse.csr import CsrMatrix

    n_gamma = interface_dofs.size
    if next_col == 0:
        phi_gamma = CsrMatrix.from_coo(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0),
            (n_gamma, 0),
        )
    else:
        phi_gamma = CsrMatrix.from_coo(
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
            (n_gamma, next_col),
        )
    return CoarseSpace(
        phi_gamma=phi_gamma,
        interface_dofs=interface_dofs,
        interior_dofs=interior_dofs,
        weights=weights,
        variant="spectral",
        eigenvalues=eigenvalues,
        tau=float(tau),
        max_vectors_per_subdomain=int(max_vectors_per_subdomain),
    )
