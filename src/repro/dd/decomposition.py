"""Nonoverlapping domain decompositions.

A :class:`Decomposition` owns the node-level partition of the assembled
problem: every mesh node (a block of ``dofs_per_node`` matrix rows)
belongs to exactly one subdomain.  Partitions come either from the
structured box split of the generating grid (the paper's setting) or
from algebraic recursive bisection of the node graph (the METIS-like
fallback for matrices without grid information).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.graph import symmetrize_pattern

__all__ = ["Decomposition", "node_graph"]


def node_graph(a: CsrMatrix, dofs_per_node: int) -> CsrMatrix:
    """Condense the dof matrix graph to the node level.

    Nodes ``u`` and ``v`` are adjacent when any dof of ``u`` couples to
    any dof of ``v``.  For scalar problems this is the symmetrized
    matrix graph itself.
    """
    if a.n_rows % dofs_per_node != 0:
        raise ValueError("matrix size is not a multiple of dofs_per_node")
    g = symmetrize_pattern(a)
    if dofs_per_node == 1:
        return g
    n_nodes = a.n_rows // dofs_per_node
    rows = np.repeat(np.arange(g.n_rows, dtype=np.int64), g.row_nnz())
    nr = rows // dofs_per_node
    nc = g.indices // dofs_per_node
    keep = nr != nc
    vals = np.ones(int(keep.sum()))
    return CsrMatrix.from_coo(nr[keep], nc[keep], vals, (n_nodes, n_nodes)).pattern()


@dataclass
class Decomposition:
    """A nonoverlapping node partition of an assembled problem.

    Attributes
    ----------
    a:
        The assembled global matrix.
    dofs_per_node:
        Block size (3 for 3D elasticity).
    node_parts:
        One sorted int64 node array per subdomain; a partition.
    graph:
        Node-level adjacency graph (pattern CSR).
    """

    a: CsrMatrix
    dofs_per_node: int
    node_parts: List[np.ndarray]
    graph: CsrMatrix

    def __post_init__(self) -> None:
        n_nodes = self.a.n_rows // self.dofs_per_node
        owner = np.full(n_nodes, -1, dtype=np.int64)
        for i, part in enumerate(self.node_parts):
            if np.any(owner[part] != -1):
                raise ValueError("node partition overlaps")
            owner[part] = i
        if np.any(owner < 0):
            raise ValueError("node partition does not cover all nodes")
        self.node_owner = owner

    # ------------------------------------------------------------------
    @property
    def n_subdomains(self) -> int:
        """Number of subdomains (MPI ranks in the paper's runs)."""
        return len(self.node_parts)

    @property
    def n_nodes(self) -> int:
        """Number of mesh nodes in the reduced problem."""
        return self.a.n_rows // self.dofs_per_node

    def dofs_of_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """Expand node ids to their dof ids (node-major, sorted)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        d = self.dofs_per_node
        return (d * nodes[:, None] + np.arange(d)[None, :]).ravel()

    def dof_parts(self) -> List[np.ndarray]:
        """The dof-level nonoverlapping partition."""
        return [self.dofs_of_nodes(p) for p in self.node_parts]

    def neighbors_of(self, rank: int) -> List[int]:
        """Subdomains adjacent to ``rank`` in the node graph.

        Two subdomains are neighbors when any node of one couples to a
        node of the other; this is the set a halo exchange touches and
        the candidate pool for :meth:`merge_into_neighbor` and for
        buddy-checkpoint placement in :mod:`repro.ft`.
        """
        part = self.node_parts[rank]
        if part.size == 0:
            return []
        cols = np.concatenate(
            [
                self.graph.indices[self.graph.indptr[u]: self.graph.indptr[u + 1]]
                for u in part
            ]
        )
        owners = np.unique(self.node_owner[cols])
        return [int(o) for o in owners if o != rank]

    def merge_into_neighbor(
        self, dead: int, into: "int | None" = None
    ) -> "Decomposition":
        """The partition with subdomain ``dead`` absorbed by a neighbor.

        This is the *shrink* recovery of :mod:`repro.ft`: when a rank
        dies without a respawn slot, its nonoverlapping part is merged
        into an adjacent surviving subdomain and the solver continues on
        one rank fewer.  ``into`` defaults to the smallest adjacent
        subdomain (ties broken by rank index) to keep the merged load as
        balanced as possible.  Ranks above ``dead`` shift down by one in
        the returned decomposition; the matrix and node graph are shared
        (only the partition changes).
        """
        if not (0 <= dead < self.n_subdomains):
            raise ValueError(
                f"dead rank {dead} out of range [0, {self.n_subdomains})"
            )
        if self.n_subdomains < 2:
            raise ValueError("cannot remove the only subdomain")
        if into is None:
            candidates = self.neighbors_of(dead) or [
                r for r in range(self.n_subdomains) if r != dead
            ]
            into = min(candidates, key=lambda r: (self.node_parts[r].size, r))
        if into == dead or not (0 <= into < self.n_subdomains):
            raise ValueError(
                f"merge target {into} invalid for dead rank {dead} "
                f"({self.n_subdomains} subdomains)"
            )
        parts = []
        for r, p in enumerate(self.node_parts):
            if r == dead:
                continue
            if r == into:
                p = np.sort(np.concatenate([p, self.node_parts[dead]]))
            parts.append(p)
        return Decomposition(self.a, self.dofs_per_node, parts, self.graph)

    def split_subdomain(self, rank: int) -> "Decomposition":
        """The partition with subdomain ``rank`` bisected in two.

        This is the *respawn* side of elastic scaling: under backlog the
        heaviest subdomain is split and the new half handed to a fresh
        rank.  The split reuses the algebraic bisection of
        :meth:`algebraic` restricted to the subdomain's node set
        (separator folded into the smaller side; index-chop fallback for
        unsplittable subgraphs).  The new subdomain is appended at the
        END of the partition, so every untouched subdomain keeps its
        index -- the property the :mod:`repro.reuse` donor path needs to
        skip refactorizing unmoved rows.
        """
        if not (0 <= rank < self.n_subdomains):
            raise ValueError(
                f"rank {rank} out of range [0, {self.n_subdomains})"
            )
        part = self.node_parts[rank]
        if part.size < 2:
            raise ValueError(
                f"subdomain {rank} has {part.size} node(s); need >= 2 to split"
            )
        from repro.ordering.nested_dissection import bisect

        left, sep, right = bisect(
            self.graph.indptr, self.graph.indices, part, self.n_nodes
        )
        if left.size <= right.size:
            left = np.concatenate([left, sep])
        else:
            right = np.concatenate([right, sep])
        if left.size == 0 or right.size == 0:
            half = part.size // 2
            left, right = part[:half], part[half:]
        parts = [p for p in self.node_parts]
        parts[rank] = np.sort(left)
        parts.append(np.sort(right))
        return Decomposition(self.a, self.dofs_per_node, parts, self.graph)

    def with_values(self, a_new: CsrMatrix) -> "Decomposition":
        """The same partition plan over a same-pattern matrix.

        The node graph and partition depend only on the sparsity
        pattern, so a refactorization sequence shares them; a changed
        pattern raises
        :class:`~repro.reuse.fingerprint.PatternChangedError`.
        """
        from repro.reuse.fingerprint import check_same_pattern, pattern_fingerprint

        check_same_pattern(pattern_fingerprint(self.a), a_new, "decomposition")
        return Decomposition(a_new, self.dofs_per_node, self.node_parts, self.graph)

    # ------------------------------------------------------------------
    @classmethod
    def from_box_partition(
        cls, problem, px: int, py: int, pz: int = 1
    ) -> "Decomposition":
        """Partition a FEM problem's free nodes by the grid box split.

        ``problem`` is a :class:`~repro.fem.laplace.ScalarProblem` or
        :class:`~repro.fem.elasticity.ElasticityProblem`; boxes that lose
        all their nodes to the Dirichlet face are dropped.
        """
        grid_parts = problem.grid.box_partition(px, py, pz)
        # map grid node ids -> reduced node ids
        n_grid = problem.grid.n_nodes
        reduced = np.full(n_grid, -1, dtype=np.int64)
        reduced[problem.free_nodes] = np.arange(problem.free_nodes.size)
        parts = []
        for p in grid_parts:
            rp = reduced[p]
            rp = rp[rp >= 0]
            if rp.size:
                parts.append(np.sort(rp))
        g = node_graph(problem.a, problem.dofs_per_node)
        return cls(problem.a, problem.dofs_per_node, parts, g)

    @classmethod
    def algebraic(
        cls, a: CsrMatrix, n_parts: int, dofs_per_node: int = 1
    ) -> "Decomposition":
        """Recursive-bisection partition of the node graph (METIS-like).

        Splits the node set into ``n_parts`` parts of near-equal size by
        repeatedly bisecting with BFS level structures.
        """
        g = node_graph(a, dofs_per_node)
        n_nodes = g.n_rows
        from repro.ordering.nested_dissection import bisect

        parts: List[np.ndarray] = []
        # work queue of (vertex set, parts to produce)
        queue = [(np.arange(n_nodes, dtype=np.int64), n_parts)]
        while queue:
            verts, k = queue.pop()
            if k == 1 or verts.size <= 1:
                parts.append(np.sort(verts))
                continue
            left, sep, right = bisect(g.indptr, g.indices, verts, n_nodes)
            # fold the separator into the smaller side to balance sizes
            if left.size <= right.size:
                left = np.concatenate([left, sep])
            else:
                right = np.concatenate([right, sep])
            if left.size == 0 or right.size == 0:
                # unsplittable (complete subgraph); chop by index
                half = verts.size * (k // 2) // k
                left, right = verts[:half], verts[half:]
            kl = k // 2
            queue.append((left, kl))
            queue.append((right, k - kl))
        return cls(a, dofs_per_node, parts, g)
