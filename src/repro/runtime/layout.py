"""Job layouts: ranks, nodes, and the MPS rank-to-GPU mapping.

The scaled-down "model Summit node" used by the benchmark harness has
``cores_per_node`` CPU cores and ``gpus_per_node`` GPUs (defaults 8 and
2; the real machine's 42/6 behaves identically in shape but would need
hundreds of Python-side subdomain factorizations per data point).  A
CPU run places one rank per core; a GPU run places
``ranks_per_gpu * gpus_per_node`` ranks per node, sharing each GPU via
MPS exactly as in Section VI of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.model import CpuSpace, ExecutionSpace, GpuSpace
from repro.machine.spec import MachineSpec, summit

__all__ = ["JobLayout"]


@dataclass(frozen=True)
class JobLayout:
    """Placement of MPI ranks on a cluster of heterogeneous nodes.

    Attributes
    ----------
    nodes:
        Number of compute nodes.
    ranks_per_node:
        MPI ranks launched on each node.
    use_gpu:
        True when solver kernels run on the GPUs.
    ranks_per_gpu:
        MPS sharing factor for GPU runs (``n_p/gpu`` in Tables II/III).
    threads_per_rank:
        CPU threads each rank drives (Fig. 5's 6-rank CPU runs use
        ``cores_per_node / ranks_per_node`` threads via threaded BLAS).
    machine:
        Hardware spec; defaults to the scaled Summit-like node.
    tenants:
        Concurrent tenant solves sharing every rank's resources (the
        multi-tenant serving model): each rank's GPU slice shrinks to
        ``1 / (ranks_per_gpu * tenants)`` via MPS and its CPU lanes to
        ``threads_per_rank / tenants``.  1 for dedicated (paper) runs.
    """

    nodes: int
    ranks_per_node: int
    use_gpu: bool = False
    ranks_per_gpu: int = 1
    threads_per_rank: int = 1
    machine: MachineSpec = None  # type: ignore[assignment]
    tenants: int = 1

    def __post_init__(self) -> None:
        if self.machine is None:
            object.__setattr__(self, "machine", summit())
        if self.nodes < 1 or self.ranks_per_node < 1:
            raise ValueError("nodes and ranks_per_node must be positive")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.use_gpu:
            expected = self.ranks_per_gpu * self.machine.gpus_per_node
            if self.ranks_per_node != expected:
                raise ValueError(
                    f"GPU layout needs ranks_per_node == ranks_per_gpu * "
                    f"gpus_per_node ({expected}), got {self.ranks_per_node}"
                )

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Total MPI ranks (= subdomains; one subdomain per rank)."""
        return self.nodes * self.ranks_per_node

    def compute_space(self) -> ExecutionSpace:
        """The execution space of one rank's solver kernels."""
        if self.use_gpu:
            space = GpuSpace(self.machine.gpu, share=1.0 / self.ranks_per_gpu)
            if self.tenants > 1:
                space = space.split(self.tenants)
            return space
        return CpuSpace(self.machine.cpu, threads=self._tenant_threads())

    def cpu_space(self) -> ExecutionSpace:
        """The host CPU space of one rank (for CPU-only kernel families)."""
        return CpuSpace(self.machine.cpu, threads=self._tenant_threads())

    def _tenant_threads(self) -> int:
        return max(1, self.threads_per_rank // self.tenants)

    def with_tenants(self, tenants: int) -> "JobLayout":
        """The same placement with ``tenants`` concurrent solves per rank."""
        import dataclasses

        return dataclasses.replace(self, tenants=tenants)

    # ------------------------------------------------------------------
    @classmethod
    def cpu_run(cls, nodes: int, machine: Optional[MachineSpec] = None, ranks_per_node: Optional[int] = None) -> "JobLayout":
        """The paper's CPU baseline: one rank per core."""
        m = machine or summit()
        rpn = m.cores_per_node if ranks_per_node is None else ranks_per_node
        threads = max(1, m.cores_per_node // rpn)
        return cls(nodes, rpn, use_gpu=False, threads_per_rank=threads, machine=m)

    @classmethod
    def gpu_run(
        cls, nodes: int, ranks_per_gpu: int, machine: Optional[MachineSpec] = None
    ) -> "JobLayout":
        """A GPU run with ``ranks_per_gpu`` MPI ranks per GPU via MPS."""
        m = machine or summit()
        return cls(
            nodes,
            ranks_per_gpu * m.gpus_per_node,
            use_gpu=True,
            ranks_per_gpu=ranks_per_gpu,
            machine=m,
        )
