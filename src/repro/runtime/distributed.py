"""Distributed-memory execution of the solver with strictly rank-local data.

This module re-executes the FROSch pipeline the way 672 MPI ranks would:
every rank holds only its owned matrix rows, vector segments, and local
factorizations; halo values move through explicit
:class:`~repro.runtime.simmpi.SimComm` messages; inner products go
through allreduces.  It exists to *validate* the package's central
shortcut -- sequential numerics plus an analytic communication model --
against a message-faithful execution:

* distributed SpMV == sequential SpMV,
* distributed GDSW apply == sequential GDSW apply,
* distributed CG iterates == sequential CG iterates,
* and the counted messages/reductions match the cost model's
  assumptions (e.g. one allreduce per single-reduce-GMRES iteration,
  one halo exchange per SpMV).

This mirrors Tpetra's Map/Import design: a :class:`HaloPlan` is the
Import object, :class:`DistributedCsr` the row-distributed CrsMatrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.obs import get_tracer
from repro.runtime.simmpi import SimComm
from repro.sparse.blocks import extract_submatrix
from repro.sparse.csr import CsrMatrix

__all__ = [
    "HaloPlan",
    "DistributedCsr",
    "DistributedVector",
    "multi_dot",
    "distributed_cg",
]


@dataclass
class HaloPlan:
    """Communication plan importing ghost values onto one rank.

    Attributes
    ----------
    sends:
        Per peer rank, the *local* indices (into the owner's owned
        segment) this rank must ship to that peer.
    recv_order:
        Peer ranks in receive order; ghost values are appended to the
        owned segment in this order.
    recv_counts:
        Ghost counts per peer, aligned with ``recv_order``.
    """

    sends: Dict[int, np.ndarray]
    recv_order: List[int]
    recv_counts: List[int]


class DistributedVector:
    """A vector split into per-rank owned segments."""

    def __init__(self, segments: List[np.ndarray]) -> None:
        self.segments = [np.asarray(s, dtype=np.float64) for s in segments]

    @classmethod
    def from_global(cls, x: np.ndarray, owned_dofs: List[np.ndarray]) -> "DistributedVector":
        """Scatter a global vector to its owners."""
        return cls([np.asarray(x, dtype=np.float64)[d] for d in owned_dofs])

    def to_global(self, owned_dofs: List[np.ndarray], n: int) -> np.ndarray:
        """Gather segments back into a global vector (for verification)."""
        out = np.empty(n)
        for seg, dofs in zip(self.segments, owned_dofs):
            out[dofs] = seg
        return out

    # rank-local algebra (no communication)
    def axpy(self, alpha: float, other: "DistributedVector") -> "DistributedVector":
        """Return ``self + alpha * other``."""
        return DistributedVector(
            [a + alpha * b for a, b in zip(self.segments, other.segments)]
        )

    def scale(self, alpha: float) -> "DistributedVector":
        """Return ``alpha * self``."""
        return DistributedVector([alpha * s for s in self.segments])

    def copy(self) -> "DistributedVector":
        """Deep copy."""
        return DistributedVector([s.copy() for s in self.segments])

    def dot(self, other: "DistributedVector", comm: SimComm) -> float:
        """Global inner product: rank-local partials + one allreduce."""
        parts = [
            np.array([a @ b])
            for a, b in zip(self.segments, other.segments)
        ]
        return float(comm.allreduce(parts)[0])


def multi_dot(pairs, comm: SimComm) -> Tuple[float, ...]:
    """Several global inner products fused into ONE allreduce.

    ``pairs`` is a sequence of ``(x, y)`` :class:`DistributedVector`
    pairs; the per-rank partials of every dot are stacked into one
    contribution array, so ``k`` dots cost one reduction of ``k``
    doubles instead of ``k`` latency-bound reductions of one double
    each (the same batching the single-reduce GMRES applies to its
    orthogonalization coefficients).

    Bit-identity: each rank computes exactly the partial ``x_r @ y_r``
    it would contribute to :meth:`DistributedVector.dot`, and
    :meth:`SimComm.allreduce` sums the stacked contributions
    elementwise in the same rank order ``np.sum`` uses for the
    single-dot case -- so every fused result equals its unfused
    counterpart bit for bit (pinned by
    ``tests/runtime/test_distributed.py``).
    """
    pairs = list(pairs)
    if not pairs:
        return ()
    contribs = [
        np.array([x.segments[r] @ y.segments[r] for x, y in pairs])
        for r in range(comm.size)
    ]
    out = comm.allreduce(contribs)
    return tuple(float(v) for v in out)


class DistributedCsr:
    """A row-distributed sparse matrix with a halo-exchange plan.

    Each rank stores the rows of its owned dofs, with columns renumbered
    into ``[owned | ghosts]`` local ordering (Tpetra's column map).
    """

    def __init__(self, a: CsrMatrix, dec: Decomposition) -> None:
        self.dec = dec
        self.n_ranks = dec.n_subdomains
        self.owned_dofs: List[np.ndarray] = dec.dof_parts()
        n = a.n_rows

        owner_of_dof = np.repeat(dec.node_owner, dec.dofs_per_node)
        # position of each dof within its owner's segment
        local_pos = np.empty(n, dtype=np.int64)
        for dofs in self.owned_dofs:
            local_pos[dofs] = np.arange(dofs.size)

        self.local_rows: List[CsrMatrix] = []
        self.plans: List[HaloPlan] = []
        self.ghost_ranks: List[np.ndarray] = []
        self.ghost_dofs: List[np.ndarray] = []
        for rank, dofs in enumerate(self.owned_dofs):
            rows = extract_submatrix(a, dofs, np.arange(n, dtype=np.int64))
            cols_global = rows.indices
            ghosts = np.unique(cols_global[owner_of_dof[cols_global] != rank])
            # column map: owned first, ghosts appended (sorted by owner
            # then global id for deterministic receive order)
            order = np.lexsort((ghosts, owner_of_dof[ghosts]))
            ghosts = ghosts[order]
            col_map = np.full(n, -1, dtype=np.int64)
            col_map[dofs] = np.arange(dofs.size)
            col_map[ghosts] = dofs.size + np.arange(ghosts.size)
            self.local_rows.append(
                CsrMatrix(
                    rows.indptr,
                    col_map[cols_global],
                    rows.data.copy(),
                    (dofs.size, dofs.size + ghosts.size),
                )
            )
            # receive plan: contiguous runs of ghosts per owner
            g_owner = owner_of_dof[ghosts]
            recv_order = [int(r) for r in np.unique(g_owner)]
            recv_counts = [int(np.sum(g_owner == r)) for r in recv_order]
            sends: Dict[int, np.ndarray] = {}
            for peer in recv_order:
                sends[peer] = local_pos[ghosts[g_owner == peer]]
            self.plans.append(HaloPlan(sends, recv_order, recv_counts))
            self.ghost_ranks.append(owner_of_dof[ghosts])
            self.ghost_dofs.append(ghosts)

        # invert the receive plans into send lists per rank
        self.send_lists: List[List[Tuple[int, np.ndarray]]] = [
            [] for _ in range(self.n_ranks)
        ]
        for rank, plan in enumerate(self.plans):
            for peer, idx in plan.sends.items():
                # `peer` must send its owned values at `idx` to `rank`
                self.send_lists[peer].append((rank, idx))

    # ------------------------------------------------------------------
    def halo_exchange(self, x: DistributedVector, comm: SimComm) -> List[np.ndarray]:
        """Import ghost values: returns per-rank ``[owned | ghosts]`` arrays."""
        # phase 1: everyone posts sends
        for rank in range(self.n_ranks):
            for dst, idx in self.send_lists[rank]:
                comm.send(rank, dst, x.segments[rank][idx], tag=1)
        # phase 2: everyone receives in plan order
        full: List[np.ndarray] = []
        for rank, plan in enumerate(self.plans):
            chunks = [x.segments[rank]]
            for peer in plan.recv_order:
                chunks.append(comm.recv(rank, peer, tag=1))
            full.append(np.concatenate(chunks))
        return full

    def spmv(self, x: DistributedVector, comm: SimComm) -> DistributedVector:
        """Distributed ``A @ x``: one halo exchange + rank-local SpMV."""
        with get_tracer().span("krylov/spmv"):
            full = self.halo_exchange(x, comm)
            return DistributedVector(
                [rows.matvec(xf) for rows, xf in zip(self.local_rows, full)]
            )


def distributed_cg(
    a_dist: DistributedCsr,
    b: DistributedVector,
    comm: SimComm,
    rtol: float = 1e-7,
    maxiter: int = 500,
    preconditioner=None,
    callback: Optional[Callable[[int, DistributedVector], None]] = None,
) -> Tuple[DistributedVector, int, bool]:
    """Conjugate gradients executed with strictly rank-local data.

    ``preconditioner`` optionally maps a :class:`DistributedVector` to a
    :class:`DistributedVector` (see
    :func:`make_distributed_gdsw_apply`).  Control flow is identical on
    every rank (as in real MPI), so the loop is written once.
    ``callback(it, x)`` observes the iterate after every update (used by
    :mod:`repro.verify` to diff against the sequential iterates).
    """
    x = DistributedVector([np.zeros_like(s) for s in b.segments])
    r = b.copy()
    z = preconditioner(r, comm) if preconditioner else r.copy()
    p = z.copy()
    # both dots are available at this point, so they share one fused
    # allreduce (bit-identical to two separate reductions; the verify
    # diff accounts for the one saved collective)
    rz, r0sq = multi_dot([(r, z), (r, r)], comm)
    r0 = np.sqrt(r0sq)
    if r0 == 0.0:
        return x, 0, True
    it = 0
    converged = False
    while it < maxiter:
        ap = a_dist.spmv(p, comm)
        pap = p.dot(ap, comm)
        if pap <= 0:
            break
        alpha = rz / pap
        x = x.axpy(alpha, p)
        r = r.axpy(-alpha, ap)
        it += 1
        if callback is not None:
            callback(it, x)
        rn = np.sqrt(r.dot(r, comm))
        if rn <= rtol * r0:
            converged = True
            break
        z = preconditioner(r, comm) if preconditioner else r.copy()
        rz_new = r.dot(z, comm)
        beta = rz_new / rz
        rz = rz_new
        p = z.axpy(beta, p)
    return x, it, converged


def make_distributed_gdsw_apply(precond, a_dist: DistributedCsr):
    """Wrap a built :class:`GDSWPreconditioner` for rank-local execution.

    Each rank gathers its *overlap* values (a second halo-style import
    built from the overlapping dof sets), applies its own local solver,
    and scatter-adds the correction back to the owners; the coarse solve
    is entered through one allreduce of the coarse residual (the
    replicated-coarse pattern).  Numerically identical to
    ``precond.apply`` -- the tests assert it.
    """
    dec = precond.dec
    n = dec.a.n_rows
    n_ranks = dec.n_subdomains
    owned = a_dist.owned_dofs
    owner_of_dof = np.repeat(dec.node_owner, dec.dofs_per_node)
    local_pos = np.empty(n, dtype=np.int64)
    for dofs in owned:
        local_pos[dofs] = np.arange(dofs.size)

    # per-rank overlap import/export plans
    ov_dofs = precond.one_level.dof_sets
    import_plans: List[List[Tuple[int, np.ndarray, np.ndarray]]] = []
    for rank in range(n_ranks):
        plan = []
        dofs = ov_dofs[rank]
        owners = owner_of_dof[dofs]
        for peer in np.unique(owners):
            sel = np.flatnonzero(owners == peer)
            plan.append((int(peer), local_pos[dofs[sel]], sel))
        import_plans.append(plan)

    # coarse data: per-rank slices of Phi (rows of owned dofs)
    phi = precond.phi
    phi_rows = (
        [extract_submatrix(phi, d, np.arange(phi.n_cols, dtype=np.int64)) for d in owned]
        if phi is not None
        else None
    )

    def apply(v: DistributedVector, comm: SimComm) -> DistributedVector:
        tr = get_tracer()
        # ---- import overlap values ----
        for rank, plan in enumerate(import_plans):
            for peer, pos, _ in plan:
                if peer != rank:
                    comm.send(peer, rank, v.segments[peer][pos], tag=2)
        locals_in: List[np.ndarray] = []
        for rank, plan in enumerate(import_plans):
            buf = np.empty(ov_dofs[rank].size)
            for peer, pos, sel in plan:
                buf[sel] = (
                    v.segments[rank][pos] if peer == rank else comm.recv(rank, peer, tag=2)
                )
            locals_in.append(buf)
        # ---- local solves ----
        with tr.span("apply/local_solve"):
            corrections = [
                precond.one_level.locals[rank].apply(locals_in[rank])
                for rank in range(n_ranks)
            ]
        # ---- export-sum corrections back to owners ----
        out = [np.zeros(d.size) for d in owned]
        for rank, plan in enumerate(import_plans):
            for peer, pos, sel in plan:
                if peer == rank:
                    out[rank][pos] += corrections[rank][sel]
                else:
                    comm.send(rank, peer, np.concatenate(
                        [pos.astype(np.float64), corrections[rank][sel]]
                    ), tag=3)
        for rank, plan in enumerate(import_plans):
            # receive one packed message from every peer that overlaps us
            for peer in range(n_ranks):
                for dst, lpos, sel in import_plans[peer]:
                    if dst == rank and peer != rank:
                        packed = comm.recv(rank, peer, tag=3)
                        k = packed.size // 2
                        out[rank][packed[:k].astype(np.int64)] += packed[k:]
        # ---- coarse level: allreduce the coarse residual, redundant solve
        if phi_rows is not None:
            with tr.span("apply/coarse_solve"):
                contribs = [
                    phi_rows[rank].rmatvec(v.segments[rank])
                    for rank in range(n_ranks)
                ]
                vc = comm.allreduce(contribs)
                xc = precond.coarse.apply(vc)
                for rank in range(n_ranks):
                    out[rank] += phi_rows[rank].matvec(xc)
        return DistributedVector(out)

    return apply
