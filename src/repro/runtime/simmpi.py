"""A simulated MPI communicator (sequential, message-faithful).

The solvers in this package execute their numerics on assembled global
objects while the *cost* of communication is modeled analytically
(:mod:`repro.runtime.pricing`).  :class:`SimComm` closes the loop: it is
a sequential simulator with real message semantics -- typed point-to-
point sends/receives with (source, destination, tag) matching, and
collective operations -- so the distributed execution layer in
:mod:`repro.runtime.distributed` can run the whole solver with strictly
rank-local data and verify, in tests, that the distributed results and
the message/reduction counts match what the sequential implementation
and the cost model assume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_tracer

__all__ = ["SimComm"]


@dataclass
class SimComm:
    """Sequential MPI-communicator simulator.

    Messages are queued per ``(source, destination, tag)`` channel;
    receives pop in FIFO order and raise if no message is pending
    (the simulator executes ranks in a deterministic order, so a missing
    message is a protocol bug, the analogue of an MPI deadlock).

    Attributes
    ----------
    size:
        Number of ranks.
    sends, recvs:
        Point-to-point operation counters.
    bytes_sent:
        Total payload volume (numpy arrays: ``nbytes``; other payloads
        are counted as 0 -- the solvers only ship arrays).
    allreduces, reduce_doubles:
        Collective counters, comparable with
        :class:`repro.krylov.reduce.ReduceCounter`.

    Per-destination, per-tag payload volumes are additionally recorded
    (:meth:`channel_doubles`) so the cost-model audit in
    :mod:`repro.verify` can compare the values each rank actually
    imported per communication family against the modeled counts.

    A :class:`~repro.resilience.inject.FaultPlan` attached as
    ``fault_plan`` lets tests drop (``msg_drop``) or NaN-corrupt
    (``msg_corrupt``) selected messages at the send side; ``dropped``
    counts the messages a fault ate.

    A :class:`~repro.ft.plan.StragglerPlan` attached as ``slow_plan``
    tallies ``delayed`` for every message whose channel touches a slow
    rank.  Payloads are never altered (a straggler is late, not wrong);
    the counter is the op-count evidence that the traffic the pricing
    layer inflates (``rank_factors=`` in :mod:`repro.runtime.timings`)
    actually crosses the slow rank's channels.
    """

    size: int
    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0
    allreduces: int = 0
    reduce_doubles: int = 0
    barriers: int = 0
    dropped: int = 0
    delayed: int = 0
    fault_plan: Optional[Any] = None
    slow_plan: Optional[Any] = None
    _queues: Dict[Tuple[int, int, int], Deque[Any]] = field(default_factory=dict)
    _channel_doubles: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def _ops_summary(self) -> str:
        """The operation counters, formatted for error diagnostics."""
        return (
            f"ops so far: {self.sends} sends, {self.recvs} recvs, "
            f"{self.allreduces} allreduces, {self.barriers} barriers, "
            f"{self.dropped} dropped, {self.bytes_sent} bytes sent"
        )

    def _check_rank(
        self, rank: int, op: str = "", src: int = -1, dst: int = -1, tag: int = 0
    ) -> None:
        if not (0 <= rank < self.size):
            where = (
                f" in {op} on channel (src={src}, dst={dst}, tag={tag})"
                if op
                else ""
            )
            raise ValueError(
                f"rank {rank} out of range [0, {self.size}){where}; "
                + self._pending_summary()
                + "; "
                + self._ops_summary()
            )

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any, tag: int = 0) -> None:
        """Queue a message from ``src`` to ``dst``.

        An out-of-range source or destination raises the same
        channel-naming diagnostic :meth:`recv` produces for an empty
        channel (naming the offending ``(src, dst, tag)`` triple and the
        operation counters) rather than surfacing later as an opaque
        index error when the queue key is consumed.
        """
        self._check_rank(src, op="send", src=src, dst=dst, tag=tag)
        self._check_rank(dst, op="send", src=src, dst=dst, tag=tag)
        if self.fault_plan is not None:
            if self.fault_plan.should_drop(src, dst, tag):
                self.dropped += 1
                self.sends += 1
                return
            payload = self.fault_plan.corrupt_payload(src, dst, tag, payload)
        if self.slow_plan is not None and self.slow_plan.is_slow_channel(
            src, dst, tag
        ):
            self.delayed += 1
            get_tracer().count("delayed_messages", 1.0)
        self._queues.setdefault((src, dst, tag), deque()).append(payload)
        self.sends += 1
        nbytes = int(payload.nbytes) if isinstance(payload, np.ndarray) else 0
        self.bytes_sent += nbytes
        if isinstance(payload, np.ndarray):
            key = (dst, tag)
            self._channel_doubles[key] = (
                self._channel_doubles.get(key, 0) + int(payload.size)
            )
        tr = get_tracer()
        tr.count("messages", 1.0)
        if nbytes:
            tr.count("bytes_sent", float(nbytes))

    def recv(self, dst: int, src: int, tag: int = 0) -> Any:
        """Pop the next message from ``src`` to ``dst`` (FIFO per channel)."""
        self._check_rank(src, op="recv", src=src, dst=dst, tag=tag)
        self._check_rank(dst, op="recv", src=src, dst=dst, tag=tag)
        q = self._queues.get((src, dst, tag))
        if not q:
            raise RuntimeError(
                f"deadlock: rank {dst} waits for a message from {src} "
                f"(tag {tag}) that was never sent; channel "
                f"(src={src}, dst={dst}, tag={tag}) is empty; "
                + self._pending_summary()
                + "; "
                + self._ops_summary()
            )
        self.recvs += 1
        return q.popleft()

    def _pending_summary(self, limit: int = 8) -> str:
        """Human-readable summary of non-empty channels for diagnostics."""
        busy = sorted(
            (key, len(q)) for key, q in self._queues.items() if q
        )
        if not busy:
            return "no channels have pending messages"
        shown = ", ".join(
            f"(src={s}, dst={d}, tag={t}): {n} msg{'s' if n != 1 else ''}"
            for (s, d, t), n in busy[:limit]
        )
        extra = len(busy) - limit
        tail = f", and {extra} more channels" if extra > 0 else ""
        return f"{len(busy)} pending channel(s): {shown}{tail}"

    def pending(self) -> int:
        """Number of undelivered messages (should be 0 after a phase)."""
        return sum(len(q) for q in self._queues.values())

    def channel_doubles(
        self, dst: Optional[int] = None, tag: Optional[int] = None
    ) -> int:
        """Array values sent to ``dst`` (None: all) under ``tag`` (None: all)."""
        return sum(
            v
            for (d, t), v in self._channel_doubles.items()
            if (dst is None or d == dst) and (tag is None or t == tag)
        )

    # ------------------------------------------------------------------
    def allreduce(self, contributions: List[np.ndarray]) -> np.ndarray:
        """Sum one contribution per rank (MPI_Allreduce, op=SUM).

        Every rank must contribute exactly once per call; the summed
        result is what each rank receives.
        """
        if len(contributions) != self.size:
            raise ValueError(
                f"allreduce needs one contribution per rank "
                f"({self.size}), got {len(contributions)}"
            )
        arrays = [np.atleast_1d(np.asarray(c, dtype=np.float64)) for c in contributions]
        out = np.sum(arrays, axis=0)
        self.allreduces += 1
        self.reduce_doubles += int(out.size)
        tr = get_tracer()
        tr.count("reduces", 1.0)
        tr.count("reduce_doubles", float(out.size))
        return out

    def barrier(self) -> None:
        """A barrier is a no-op in the sequential simulator (but asserts
        that no messages are left in flight, the common bug a real
        barrier would expose as a hang).  Counted (``barriers`` and the
        tracer's ``barriers`` key) so the cost audit sees every
        collective, not just the reductions."""
        if self.pending():
            raise RuntimeError(
                f"barrier with {self.pending()} undelivered messages"
            )
        self.barriers += 1
        get_tracer().count("barriers", 1.0)
