"""Simulated distributed runtime (the MPI + Summit-node substitute).

The reproduction executes numerics sequentially over per-rank subdomain
objects, so the distributed-memory behaviour enters through this layer:

* :mod:`repro.runtime.layout` -- job layouts: how many nodes, ranks per
  node, and -- for GPU runs -- MPI ranks per GPU under MPS (the paper's
  Section VI decomposition strategy, Fig. 3);
* :mod:`repro.runtime.pricing` -- turns per-rank
  :class:`~repro.machine.kernels.KernelProfile` objects into model
  seconds, routing kernel families to the right execution space
  (SuperLU numeric factorization stays on the CPU even in GPU runs;
  ``comm.*`` kernels are priced with the alpha-beta model) and charging
  allreduce latencies that grow logarithmically with the rank count;
* :mod:`repro.runtime.timings` -- assembles whole-solver phase timings
  (numerical setup / solve) from a preconditioner, a Krylov result and
  a layout: the quantities tabulated in the paper's Tables II-VII;
* :mod:`repro.runtime.simmpi` / :mod:`repro.runtime.distributed` -- a
  message-faithful sequential MPI simulator and a rank-local execution
  of the whole solver (halo exchanges, allreduces, replicated coarse
  solves), used to validate the sequential-numerics shortcut.
"""

from repro.runtime.layout import JobLayout
from repro.runtime.pricing import price_profile, reduce_seconds, halo_seconds
from repro.runtime.timings import (
    SolverTimings,
    spmv_halo_doubles,
    time_solver,
    trace_solver,
)
from repro.runtime.simmpi import SimComm
from repro.runtime.distributed import (
    DistributedCsr,
    DistributedVector,
    distributed_cg,
    make_distributed_gdsw_apply,
)

__all__ = [
    "DistributedCsr",
    "DistributedVector",
    "JobLayout",
    "SimComm",
    "distributed_cg",
    "make_distributed_gdsw_apply",
    "SolverTimings",
    "halo_seconds",
    "price_profile",
    "reduce_seconds",
    "spmv_halo_doubles",
    "time_solver",
    "trace_solver",
]
