"""Whole-solver phase timings (the numbers in Tables II-VII).

Given a built preconditioner (real numerics), a GMRES result (real
iteration count and reduction count) and a :class:`JobLayout`, build a
*modeled trace*: a :class:`~repro.obs.tracer.Span` tree whose leaves are
the per-rank :class:`~repro.machine.kernels.KernelProfile` objects and
whose modeled seconds come from :mod:`repro.runtime.pricing`.  The
:class:`SolverTimings` the paper tabulates are then *queries* on that
trace:

* **numerical setup time** -- the slowest rank's numeric-setup span
  (local factorization, basis extension, coarse SpGEMM/factorization,
  triangular-solve setup) -- Table III/IV(a)/V(a)/VI;
* **solve (total iteration) time** -- iterations x (slowest rank's
  SpMV + preconditioner apply + halo exchange) + global-reduction cost
  -- Table II/IV(b)/V(b)/VII.

:func:`time_solver` keeps its seed signature; :func:`trace_solver`
additionally returns the priced trace for the exporters (Chrome trace,
phase table) in :mod:`repro.obs.export`.  The SpMV halo is priced from
the decomposition's own interface (:func:`spmv_halo_doubles`), never
from the preconditioner's apply halo -- the Krylov iteration runs in
working precision regardless of the preconditioner's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.machine.kernels import KernelProfile
from repro.obs import Span
from repro.runtime.layout import JobLayout
from repro.runtime.pricing import (
    halo_seconds,
    price_families,
    price_profile,
    reduce_seconds,
)

__all__ = [
    "SolverTimings",
    "block_iteration_seconds",
    "per_rank_iteration_seconds",
    "spmv_halo_doubles",
    "time_solver",
    "trace_solver",
]


def _as_rank_factors(rank_factors, n_ranks: int):
    """Validate per-rank slowdown factors; None means all-healthy.

    Factors multiply a rank's modeled kernel *and* message seconds
    before the slowest-rank max is taken -- a straggler's inflated cost
    lands on the critical path exactly when it is the slowest rank (the
    bulk-synchronous semantics of the paper's runtime).
    """
    if rank_factors is None:
        return None
    f = np.asarray(rank_factors, dtype=np.float64)
    if f.shape != (n_ranks,):
        raise ValueError(
            f"rank_factors must have one entry per rank ({n_ranks}), "
            f"got shape {f.shape}"
        )
    if np.any(f < 1.0):
        raise ValueError("rank slowdown factors must be >= 1")
    return f


def spmv_halo_doubles(dec) -> np.ndarray:
    """Per-rank ghost values imported by one distributed SpMV.

    Rank ``r`` must import every dof referenced by its owned rows but
    owned elsewhere -- the decomposition's own interface, exactly the
    ghost sets :class:`~repro.runtime.distributed.DistributedCsr`
    materializes.  SpMV runs in the Krylov working precision, so this
    count is independent of the preconditioner's precision (the bug the
    cost-model audit guards: deriving it from ``precond.halo_doubles``
    quarter-priced the halo under ``HalfPrecisionOperator``).
    """
    a = dec.a
    owner_of_dof = np.repeat(dec.node_owner, dec.dofs_per_node)
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    row_owner = owner_of_dof[rows]
    col_owner = owner_of_dof[a.indices]
    off = row_owner != col_owner
    pairs = np.unique(
        np.stack([row_owner[off], a.indices[off]], axis=1), axis=0
    )
    return np.bincount(pairs[:, 0], minlength=dec.n_subdomains)


@dataclass
class SolverTimings:
    """Model-second timings of one solver configuration.

    Attributes
    ----------
    setup_seconds:
        *Numerical* setup (slowest rank): phase (b) of the three-phase
        solver structure -- symbolic analysis is reused where the solver
        permits (Tacho, ILU patterns) and repeated where it cannot be
        (SuperLU's pivoting-dependent structure).  This matches what the
        paper tabulates as "Numerical Setup Time".
    first_setup_seconds:
        Setup including the one-time symbolic phase (phase (a) + (b)).
    solve_seconds:
        Total iteration time to convergence.
    iterations:
        Krylov inner iterations (real, from the numerics).
    setup_breakdown:
        Slowest rank's numerical-setup seconds per kernel family
        (Fig. 4).
    per_iteration_seconds:
        One iteration's cost (for amortization analyses).
    trace:
        The priced span tree these numbers were read from (excluded
        from comparison/repr; None for hand-built instances).
    """

    setup_seconds: float
    solve_seconds: float
    iterations: int
    first_setup_seconds: float = 0.0
    setup_breakdown: Dict[str, float] = field(default_factory=dict)
    per_iteration_seconds: float = 0.0
    trace: object = field(default=None, repr=False, compare=False)

    @property
    def total_seconds(self) -> float:
        """Setup + solve (the paper's "total solution time")."""
        return self.setup_seconds + self.solve_seconds


def _spmv_profile(a_nnz_rank: int, n_rank: int) -> KernelProfile:
    prof = KernelProfile()
    prof.add(
        "apply.spmv",
        flops=2.0 * a_nnz_rank,
        bytes=a_nnz_rank * 12.0 + n_rank * 24.0,
        parallelism=float(max(n_rank, 1)),
    )
    return prof


def trace_solver(
    precond,
    layout: JobLayout,
    iterations: int,
    reduces: int,
    reduce_doubles: int,
    rank_factors=None,
) -> Tuple[SolverTimings, Span]:
    """Build the priced trace of one configuration and read its timings.

    The returned :class:`~repro.obs.tracer.Span` root has three phases:

    * ``setup`` -- per-rank ``setup/numeric`` children (profile +
      modeled seconds each; family breakdown annotated), plus per-rank
      ``setup/first`` children for the symbolic-included first setup.
      The phase's own ``modeled_seconds`` is the slowest-rank max.
    * ``solve`` -- per-rank ``apply/iteration`` children (SpMV +
      preconditioner apply + halo exchange for ONE iteration) and one
      ``krylov/allreduce`` child carrying the reduction counters; the
      phase total is ``iterations x slowest-rank + reduction cost``.

    ``rank_factors`` (optional, one multiplier >= 1 per rank) inflates a
    rank's setup and per-iteration seconds before the max -- the
    straggler fault model of :class:`~repro.ft.plan.StragglerPlan`
    priced onto the critical path.  None is the healthy default and
    changes nothing.

    Parameters match :func:`time_solver`.
    """
    dec = precond.dec
    n_ranks = dec.n_subdomains
    if n_ranks != layout.n_ranks:
        raise ValueError(
            f"layout has {layout.n_ranks} ranks but the decomposition has "
            f"{n_ranks} subdomains"
        )
    factors = _as_rank_factors(rank_factors, n_ranks)

    root = Span("solver")
    root.annotate(n_ranks=n_ranks, iterations=iterations)

    # ---- per-rank SpMV work (owned rows) ----
    a = dec.a
    row_owner = dec.node_owner[
        np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
        // dec.dofs_per_node
    ]
    nnz_per_rank = np.bincount(row_owner, minlength=n_ranks)
    rows_per_rank = np.asarray([p.size * dec.dofs_per_node for p in dec.node_parts])

    # ---- setup: slowest rank; "numerical setup" = phase (b) ----
    setup = root.child("setup")
    setup_costs = []
    first_costs = []
    breakdowns = []
    for r in range(n_ranks):
        factor = 1.0 if factors is None else float(factors[r])
        prof = precond.rank_setup_profile(r, refactorization=True)
        cost = price_profile(prof, layout) * factor
        fams = price_families(prof, layout)
        sp = setup.child("setup/numeric", rank=r)
        sp.add_profile(prof)
        sp.modeled_seconds = cost
        sp.annotate(families=fams)
        if factor != 1.0:
            sp.annotate(slow_factor=factor)
        setup_costs.append(cost)
        breakdowns.append(fams)

        first = precond.rank_setup_profile(r, refactorization=False)
        first_cost = price_profile(first, layout) * factor
        fp = setup.child("setup/first", rank=r)
        fp.add_profile(first)
        fp.modeled_seconds = first_cost
        first_costs.append(first_cost)
    worst = int(np.argmax(setup_costs))
    setup_seconds = float(setup_costs[worst])
    first_setup_seconds = float(max(first_costs))
    setup.modeled_seconds = setup_seconds
    setup.annotate(worst_rank=worst, first_setup_seconds=first_setup_seconds)

    # ---- one iteration: slowest rank's spmv + apply, plus comm ----
    solve = root.child("solve")
    iter_costs = []
    # the SpMV halo is the decomposition's own interface: it runs in the
    # Krylov working precision, independent of the preconditioner's
    # (a HalfPrecisionOperator halves only the *apply* halo payload)
    spmv_halo = spmv_halo_doubles(dec)
    for r in range(n_ranks):
        factor = 1.0 if factors is None else float(factors[r])
        prof = _spmv_profile(int(nnz_per_rank[r]), int(rows_per_rank[r]))
        prof.extend(precond.rank_apply_profile(r))
        c = price_profile(prof, layout)
        c += halo_seconds(layout, precond.halo_doubles(r))
        c += halo_seconds(layout, int(spmv_halo[r]))  # spmv halo
        c *= factor
        sp = solve.child("apply/iteration", rank=r)
        sp.add_profile(prof)
        sp.modeled_seconds = c
        sp.count("halo_doubles", float(precond.halo_doubles(r)))
        sp.count("spmv_halo_doubles", float(spmv_halo[r]))
        if factor != 1.0:
            sp.annotate(slow_factor=factor)
        iter_costs.append(c)
    per_iter = float(max(iter_costs)) if iter_costs else 0.0

    reduce_cost = reduce_seconds(layout, reduces, reduce_doubles)
    red = solve.child("krylov/allreduce")
    red.count("reduces", float(reduces))
    red.count("reduce_doubles", float(reduce_doubles))
    red.modeled_seconds = reduce_cost

    solve_seconds = iterations * per_iter + reduce_cost
    solve.modeled_seconds = solve_seconds
    solve.annotate(per_iteration_seconds=per_iter)
    root.modeled_seconds = setup_seconds + solve_seconds

    timings = SolverTimings(
        setup_seconds=setup_seconds,
        solve_seconds=solve_seconds,
        iterations=iterations,
        first_setup_seconds=first_setup_seconds,
        setup_breakdown=breakdowns[worst],
        per_iteration_seconds=per_iter,
        trace=root,
    )
    return timings, root


def per_rank_iteration_seconds(
    precond, layout: JobLayout, width: int = 1, rank_factors=None
) -> np.ndarray:
    """Per-rank cost of ONE lockstep block-Krylov iteration.

    The vector whose max :func:`block_iteration_seconds` returns; the
    elastic :class:`~repro.elastic.policy.ScalingPolicy` reads the whole
    vector as its per-rank utilization signal (which rank is the
    critical path, which is nearly idle).  ``rank_factors`` applies the
    straggler inflation per rank before returning.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    dec = precond.dec
    n_ranks = dec.n_subdomains
    factors = _as_rank_factors(rank_factors, n_ranks)
    a = dec.a
    row_owner = dec.node_owner[
        np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
        // dec.dofs_per_node
    ]
    nnz_per_rank = np.bincount(row_owner, minlength=n_ranks)
    rows_per_rank = np.asarray(
        [p.size * dec.dofs_per_node for p in dec.node_parts]
    )
    spmv_halo = spmv_halo_doubles(dec)
    costs = np.zeros(n_ranks, dtype=np.float64)
    for r in range(n_ranks):
        prof = _spmv_profile(int(nnz_per_rank[r]), int(rows_per_rank[r]))
        prof.extend(precond.rank_apply_profile(r))
        c = price_profile(prof.block_scaled(width), layout)
        c += halo_seconds(layout, width * precond.halo_doubles(r))
        c += halo_seconds(layout, width * int(spmv_halo[r]))
        if factors is not None:
            c *= float(factors[r])
        costs[r] = c
    return costs


def block_iteration_seconds(
    precond,
    layout: JobLayout,
    width: int,
    rank_factors=None,
    exclude_ranks=(),
) -> float:
    """Slowest-rank cost of ONE lockstep block-Krylov iteration.

    The serving layer prices a batched multi-RHS solve with this: every
    compute kernel of the iteration (SpMV + preconditioner apply) is
    :meth:`~repro.machine.kernels.Kernel.block_scaled` by the active
    block width -- ``width``-fold flops, bytes and parallelism under a
    *shared* launch count -- and the halo payloads carry ``width``
    columns per message.  ``width == 1`` reduces to exactly the
    per-iteration term of :func:`trace_solver` (same kernels, same
    halos), so unbatched serving and batch-of-one agree by
    construction.  The global-reduction term is *not* included here; the
    block solvers report their own batched reduction counts, priced
    separately with :func:`~repro.runtime.pricing.reduce_seconds`.

    ``rank_factors`` inflates per-rank costs before the max (straggler
    pricing); ``exclude_ranks`` drops ranks from the max entirely -- the
    bounded-staleness asynchronous Schwarz iteration does not wait for a
    stale rank, so its cost leaves the straggler off the critical path
    until the forced synchronous flush.
    """
    costs = per_rank_iteration_seconds(
        precond, layout, width, rank_factors=rank_factors
    )
    if exclude_ranks:
        keep = np.ones(costs.size, dtype=bool)
        for r in exclude_ranks:
            if 0 <= int(r) < costs.size:
                keep[int(r)] = False
        costs = costs[keep]
    return float(costs.max()) if costs.size else 0.0


def time_solver(
    precond,
    layout: JobLayout,
    iterations: int,
    reduces: int,
    reduce_doubles: int,
    rank_factors=None,
) -> SolverTimings:
    """Assemble phase timings for one configuration.

    Parameters
    ----------
    precond:
        A :class:`~repro.dd.two_level.GDSWPreconditioner` (or the
        half-precision wrapper) whose profile accessors describe the
        per-rank work.
    layout:
        Rank placement / execution spaces.
    iterations, reduces, reduce_doubles:
        From the Krylov result: inner iterations and global-reduction
        counts.
    rank_factors:
        Optional per-rank slowdown multipliers (straggler pricing);
        see :func:`trace_solver`.
    """
    timings, _ = trace_solver(
        precond,
        layout,
        iterations,
        reduces,
        reduce_doubles,
        rank_factors=rank_factors,
    )
    return timings
