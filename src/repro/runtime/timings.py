"""Whole-solver phase timings (the numbers in Tables II-VII).

Given a built preconditioner (real numerics), a GMRES result (real
iteration count and reduction count) and a :class:`JobLayout`, assemble:

* **numerical setup time** -- the slowest rank's numeric-setup profile
  (local factorization, basis extension, coarse SpGEMM/factorization,
  triangular-solve setup) -- Table III/IV(a)/V(a)/VI;
* **solve (total iteration) time** -- iterations x (slowest rank's
  SpMV + preconditioner apply + halo exchange) + global-reduction cost
  -- Table II/IV(b)/V(b)/VII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.machine.kernels import KernelProfile
from repro.runtime.layout import JobLayout
from repro.runtime.pricing import (
    halo_seconds,
    price_families,
    price_profile,
    reduce_seconds,
)

__all__ = ["SolverTimings", "time_solver"]


@dataclass
class SolverTimings:
    """Model-second timings of one solver configuration.

    Attributes
    ----------
    setup_seconds:
        *Numerical* setup (slowest rank): phase (b) of the three-phase
        solver structure -- symbolic analysis is reused where the solver
        permits (Tacho, ILU patterns) and repeated where it cannot be
        (SuperLU's pivoting-dependent structure).  This matches what the
        paper tabulates as "Numerical Setup Time".
    first_setup_seconds:
        Setup including the one-time symbolic phase (phase (a) + (b)).
    solve_seconds:
        Total iteration time to convergence.
    iterations:
        Krylov inner iterations (real, from the numerics).
    setup_breakdown:
        Slowest rank's numerical-setup seconds per kernel family
        (Fig. 4).
    per_iteration_seconds:
        One iteration's cost (for amortization analyses).
    """

    setup_seconds: float
    solve_seconds: float
    iterations: int
    first_setup_seconds: float = 0.0
    setup_breakdown: Dict[str, float] = field(default_factory=dict)
    per_iteration_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Setup + solve (the paper's "total solution time")."""
        return self.setup_seconds + self.solve_seconds


def _spmv_profile(a_nnz_rank: int, n_rank: int) -> KernelProfile:
    prof = KernelProfile()
    prof.add(
        "apply.spmv",
        flops=2.0 * a_nnz_rank,
        bytes=a_nnz_rank * 12.0 + n_rank * 24.0,
        parallelism=float(max(n_rank, 1)),
    )
    return prof


def time_solver(
    precond,
    layout: JobLayout,
    iterations: int,
    reduces: int,
    reduce_doubles: int,
) -> SolverTimings:
    """Assemble phase timings for one configuration.

    Parameters
    ----------
    precond:
        A :class:`~repro.dd.two_level.GDSWPreconditioner` (or the
        half-precision wrapper) whose profile accessors describe the
        per-rank work.
    layout:
        Rank placement / execution spaces.
    iterations, reduces, reduce_doubles:
        From the Krylov result: inner iterations and global-reduction
        counts.
    """
    dec = precond.dec
    n_ranks = dec.n_subdomains
    if n_ranks != layout.n_ranks:
        raise ValueError(
            f"layout has {layout.n_ranks} ranks but the decomposition has "
            f"{n_ranks} subdomains"
        )

    # ---- per-rank SpMV work (owned rows) ----
    a = dec.a
    row_owner = dec.node_owner[
        np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
        // dec.dofs_per_node
    ]
    nnz_per_rank = np.bincount(row_owner, minlength=n_ranks)
    rows_per_rank = np.asarray([p.size * dec.dofs_per_node for p in dec.node_parts])

    # ---- setup: slowest rank; "numerical setup" = phase (b) ----
    setup_costs = []
    first_costs = []
    breakdowns = []
    for r in range(n_ranks):
        prof = precond.rank_setup_profile(r, refactorization=True)
        setup_costs.append(price_profile(prof, layout))
        breakdowns.append(price_families(prof, layout))
        first = precond.rank_setup_profile(r, refactorization=False)
        first_costs.append(price_profile(first, layout))
    worst = int(np.argmax(setup_costs))
    setup_seconds = float(setup_costs[worst])
    first_setup_seconds = float(max(first_costs))

    # ---- one iteration: slowest rank's spmv + apply, plus comm ----
    iter_costs = []
    for r in range(n_ranks):
        prof = _spmv_profile(int(nnz_per_rank[r]), int(rows_per_rank[r]))
        prof.extend(precond.rank_apply_profile(r))
        c = price_profile(prof, layout)
        c += halo_seconds(layout, precond.halo_doubles(r))
        c += halo_seconds(layout, precond.halo_doubles(r) // 2)  # spmv halo
        iter_costs.append(c)
    per_iter = float(max(iter_costs)) if iter_costs else 0.0

    reduce_cost = reduce_seconds(layout, reduces, reduce_doubles)
    solve_seconds = iterations * per_iter + reduce_cost

    return SolverTimings(
        setup_seconds=setup_seconds,
        solve_seconds=solve_seconds,
        iterations=iterations,
        first_setup_seconds=first_setup_seconds,
        setup_breakdown=breakdowns[worst],
        per_iteration_seconds=per_iter,
    )
