"""Pricing kernel profiles under a job layout.

Family routing implements the paper's hardware realities:

* ``factor.superlu*`` and all ``symbolic.*`` kernels execute on the host
  CPU even in GPU runs (SuperLU is CPU-only; symbolic analysis is
  sequential -- Section V-A.1);
* ``setup.*`` kernels (triangular-solver setup: supernode detection,
  level scheduling, block assembly and device upload) are host-side
  multi-pass traversals of the factor, also CPU-priced;
* ``comm.*`` kernels are messages, priced with the alpha-beta model;
* every other family runs on the layout's compute space (GPU under MPS
  or CPU cores), scaled by a per-family *GPU efficiency*: irregular
  kernels like SpGEMM achieve a small fraction of the GPU's sparse-
  kernel throughput, which is why the non-factorization setup parts run
  slower with GPUs in Fig. 4 (the "black" bars).

Global reductions cost ``(alpha log2 P + bytes beta)`` each -- the term
the single-reduce GMRES minimizes.
"""

from __future__ import annotations

import math

from repro.machine.kernels import Kernel, KernelProfile
from repro.runtime.layout import JobLayout

__all__ = ["price_profile", "price_families", "reduce_seconds", "halo_seconds"]

#: kernel families forced onto the host CPU in GPU runs
_CPU_ONLY_PREFIXES = ("factor.superlu", "symbolic.", "setup.")
#: kernel families that are messages rather than compute
_COMM_PREFIX = "comm."
#: GPU efficiency relative to the sparse-kernel peak, by name prefix;
#: first match wins (calibrated -- see DESIGN.md section 5)
_GPU_EFFICIENCY = (
    ("coarse.spgemm", 0.05),  # ESC SpGEMM: irregular, transfer-heavy
    ("coarse.extension_spgemm", 0.05),
    ("coarse.phi", 0.5),
    ("apply.restrict_prolong", 0.5),
)


def _gpu_efficiency(name: str) -> float:
    for prefix, eff in _GPU_EFFICIENCY:
        if name.startswith(prefix):
            return eff
    return 1.0


def _kernel_seconds(kernel: Kernel, layout: JobLayout) -> float:
    name = kernel.name
    if name.startswith(_COMM_PREFIX):
        m = layout.machine
        return m.alpha + kernel.bytes * m.beta
    if any(name.startswith(p) for p in _CPU_ONLY_PREFIXES):
        t = layout.cpu_space().kernel_seconds(kernel)
    else:
        t = layout.compute_space().kernel_seconds(kernel)
        if layout.use_gpu:
            t = t / _gpu_efficiency(name)
    if name.startswith("coarse."):
        # scale correction for the oversized coarse fraction of the
        # laptop-scale problems; see MachineSpec.coarse_scale
        t *= layout.machine.coarse_scale
    return t


def price_profile(profile: KernelProfile, layout: JobLayout) -> float:
    """Model seconds for one rank to execute ``profile`` under ``layout``."""
    return sum(_kernel_seconds(k, layout) for k in profile)


def price_families(profile: KernelProfile, layout: JobLayout) -> dict:
    """Per-family model seconds (Fig. 4's stacked-bar breakdown)."""
    return {
        family: price_profile(sub, layout)
        for family, sub in profile.by_family().items()
    }


def reduce_seconds(layout: JobLayout, count: int, doubles: int) -> float:
    """Cost of ``count`` allreduces carrying ``doubles`` float64 total.

    Latency scales with ``log2`` of the rank count (tree reduction);
    bandwidth with the payload.
    """
    if count <= 0:
        return 0.0
    m = layout.machine
    hops = max(1.0, math.log2(max(layout.n_ranks, 2)))
    return count * m.alpha * hops + doubles * 8.0 * m.beta


def halo_seconds(layout: JobLayout, doubles: int, neighbors: int = 6) -> float:
    """Cost of one halo exchange importing ``doubles`` float64 values.

    ``neighbors`` messages (a 3D box has up to 26, but 6 faces carry
    almost all volume) plus the volume term.
    """
    if doubles <= 0:
        return 0.0
    m = layout.machine
    return neighbors * m.alpha + doubles * 8.0 * m.beta
