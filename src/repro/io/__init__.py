"""Matrix I/O utilities.

A solver library needs a way in and out: :mod:`repro.io.matrixmarket`
reads and writes the MatrixMarket coordinate format (the lingua franca
of sparse-matrix test collections), so assembled problems and factors
can be exchanged with Trilinos, PETSc, or SuiteSparse tooling.
"""

from repro.io.matrixmarket import read_matrix_market, write_matrix_market

__all__ = ["read_matrix_market", "write_matrix_market"]
