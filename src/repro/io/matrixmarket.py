"""MatrixMarket coordinate-format reader/writer.

Supports the subset relevant to this package: ``matrix coordinate
real/integer`` with ``general`` or ``symmetric`` symmetry.  Symmetric
files are expanded to full storage on read (our solvers work on
assembled patterns); ``write_matrix_market`` always writes ``general``.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.sparse.csr import CsrMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

PathLike = Union[str, pathlib.Path]


def read_matrix_market(path: PathLike) -> CsrMatrix:
    """Read a MatrixMarket coordinate file into a CSR matrix.

    Raises
    ------
    ValueError
        For non-coordinate formats, complex fields, or malformed
        headers/sizes.
    """
    path = pathlib.Path(path)
    with path.open("r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing MatrixMarket banner")
        parts = header.strip().split()
        if len(parts) < 5 or parts[1].lower() != "matrix":
            raise ValueError(f"{path}: unsupported object {header!r}")
        fmt, field, symmetry = (
            parts[2].lower(), parts[3].lower(), parts[4].lower()
        )
        if fmt != "coordinate":
            raise ValueError(f"{path}: only coordinate format is supported")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

        # skip comments
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            n_rows, n_cols, nnz = (int(t) for t in line.split())
        except Exception as exc:  # pragma: no cover - malformed input
            raise ValueError(f"{path}: bad size line {line!r}") from exc
        # symmetric storage only makes sense for square matrices;
        # mirroring a rectangular lower triangle would scatter entries
        # out of bounds or silently drop them
        if symmetry == "symmetric" and n_rows != n_cols:
            raise ValueError(
                f"{path}: symmetric matrix must be square, "
                f"got {n_rows} x {n_cols}"
            )

        # pattern entries carry only indices; real/integer need a value
        need = 2 if field == "pattern" else 3
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            toks = fh.readline().split()
            if len(toks) < need:
                raise ValueError(f"{path}: truncated at entry {k}")
            rows[k] = int(toks[0]) - 1
            cols[k] = int(toks[1]) - 1
            vals[k] = float(toks[2]) if field != "pattern" else 1.0

    if symmetry == "symmetric":
        # expand the stored lower triangle: mirror off-diagonal entries
        off = rows != cols
        rows_full = np.concatenate([rows, cols[off]])
        cols_full = np.concatenate([cols, rows[off]])
        vals_full = np.concatenate([vals, vals[off]])
        return CsrMatrix.from_coo(rows_full, cols_full, vals_full, (n_rows, n_cols))
    return CsrMatrix.from_coo(rows, cols, vals, (n_rows, n_cols))


def write_matrix_market(path: PathLike, a: CsrMatrix, comment: str = "") -> None:
    """Write a CSR matrix as ``matrix coordinate real general``."""
    path = pathlib.Path(path)
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    with path.open("w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"%{line}\n")
        fh.write(f"{a.n_rows} {a.n_cols} {a.nnz}\n")
        for i, j, v in zip(rows.tolist(), a.indices.tolist(), a.data.tolist()):
            # repr of a Python float roundtrips float64 exactly
            fh.write(f"{i + 1} {j + 1} {v!r}\n")
