"""Preconditioned conjugate gradients.

The paper's experiments use GMRES, but CG is the natural Krylov method
for the SPD elasticity systems and serves as an ablation/validation
solver (it also makes SPD-ness violations in a preconditioner visible
as breakdowns, a property the test-suite uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.krylov.reduce import ReduceCounter
from repro.obs import get_tracer
from repro.sparse.csr import CsrMatrix

__all__ = ["cg", "CgResult"]

Operator = Union[CsrMatrix, Callable[[np.ndarray], np.ndarray]]


@dataclass
class CgResult:
    """Outcome of a CG solve (fields mirror :class:`GmresResult`)."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    reduces: int


def cg(
    a: Operator,
    b: np.ndarray,
    preconditioner: Optional[Operator] = None,
    x0: Optional[np.ndarray] = None,
    rtol: float = 1e-7,
    maxiter: int = 1000,
    reducer: Optional[ReduceCounter] = None,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
) -> CgResult:
    """Solve SPD ``A x = b`` with preconditioned CG.

    Convergence when ``||r|| <= rtol * ||r0||``; two global reductions
    per iteration (the classic count the pipelined variants reduce).
    ``reducer`` is deprecated -- run under a :class:`repro.obs.Tracer`.
    ``callback(it, x)`` observes the iterate after every update (used by
    :mod:`repro.verify` to diff against the distributed iterates).
    """
    from repro.krylov.gmres import _as_apply, _deprecated_reducer_warning

    apply_a = _as_apply(a)
    if preconditioner is not None and hasattr(preconditioner, "apply"):
        apply_m = preconditioner.apply
    else:
        apply_m = _as_apply(preconditioner)
    tr = get_tracer()
    if reducer is None:
        red = tr.reduce_counter()
    else:
        _deprecated_reducer_warning("cg")
        red = reducer

    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    with tr.span("krylov/spmv"):
        r = b - apply_a(x)
    z = apply_m(r)
    p = z.copy()
    rz = float(red.allreduce(r @ z)[0])
    r0 = float(np.sqrt(red.allreduce(r @ r)[0]))
    residuals = [r0]
    if r0 == 0.0:
        return CgResult(x, 0, True, residuals, red.count)

    it = 0
    converged = False
    while it < maxiter:
        with tr.span("krylov/spmv"):
            ap = apply_a(p)
        pap = float(red.allreduce(p @ ap)[0])
        if pap <= 0.0:
            break  # loss of positive definiteness
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        it += 1
        if callback is not None:
            callback(it, x)
        rn = float(np.sqrt(red.allreduce(r @ r)[0]))
        residuals.append(rn)
        if rn <= rtol * r0:
            converged = True
            break
        z = apply_m(r)
        rz_new = float(red.allreduce(r @ z)[0])
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return CgResult(x, it, converged, residuals, red.count)
