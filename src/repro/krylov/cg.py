"""Preconditioned conjugate gradients.

The paper's experiments use GMRES, but CG is the natural Krylov method
for the SPD elasticity systems and serves as an ablation/validation
solver (it also makes SPD-ness violations in a preconditioner visible
as breakdowns, a property the test-suite uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.krylov.reduce import ReduceCounter
from repro.krylov.status import SolveStatus
from repro.obs import get_tracer
from repro.sparse.csr import CsrMatrix

__all__ = ["cg", "CgResult"]

Operator = Union[CsrMatrix, Callable[[np.ndarray], np.ndarray]]


@dataclass
class CgResult:
    """Outcome of a CG solve (fields mirror :class:`GmresResult`)."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    reduces: int
    status: SolveStatus = SolveStatus.MAXITER
    breakdown_reason: Optional[str] = None


def cg(
    a: Operator,
    b: np.ndarray,
    preconditioner: Optional[Operator] = None,
    x0: Optional[np.ndarray] = None,
    rtol: float = 1e-7,
    maxiter: int = 1000,
    reducer: Optional[ReduceCounter] = None,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
    guard: Optional[object] = None,
) -> CgResult:
    """Solve SPD ``A x = b`` with preconditioned CG.

    Convergence when ``||r|| <= rtol * ||r0||``; two global reductions
    per iteration (the classic count the pipelined variants reduce).
    ``reducer`` is deprecated -- run under a :class:`repro.obs.Tracer`.
    ``callback(it, x)`` observes the iterate after every update (used by
    :mod:`repro.verify` to diff against the distributed iterates).
    ``guard`` is an optional health monitor (see
    :class:`repro.resilience.detect.KrylovGuard`): a non-None return
    from ``on_residual`` stops the solve with ``status="breakdown"``
    and rolls the iterate back to the last finite one.
    """
    from repro.backend import get_backend
    from repro.krylov.gmres import _as_apply, _bk_apply, _deprecated_reducer_warning

    apply_a = _as_apply(a)
    if preconditioner is not None and hasattr(preconditioner, "apply"):
        apply_m = preconditioner.apply
    else:
        apply_m = _as_apply(preconditioner)
    tr = get_tracer()
    if reducer is None:
        red = tr.reduce_counter()
    else:
        _deprecated_reducer_warning("cg")
        red = reducer

    bk = get_backend(b)
    apply_a = _bk_apply(apply_a, bk)
    apply_m = _bk_apply(apply_m, bk)
    b = bk.astype(bk.asarray(b), np.float64)
    if x0 is None:
        x = bk.zeros(b.shape[0], dtype=np.float64)
    else:
        x = bk.astype(bk.copy(bk.asarray(x0)), np.float64)
    with tr.span("krylov/spmv"):
        r = b - apply_a(x)
    z = apply_m(r)
    p = bk.copy(z)
    rz = float(red.allreduce(float(bk.dot(r, z)))[0])
    r0 = float(np.sqrt(red.allreduce(float(bk.dot(r, r)))[0]))  # backend-ok: host scalar
    residuals = [r0]
    if r0 == 0.0:
        return CgResult(
            x, 0, True, residuals, red.count, status=SolveStatus.CONVERGED
        )

    it = 0
    converged = False
    breakdown_reason: Optional[str] = None
    while it < maxiter:
        with tr.span("krylov/spmv"):
            ap = apply_a(p)
        pap = float(red.allreduce(float(bk.dot(p, ap)))[0])
        if not np.isfinite(pap):  # backend-ok: host scalar check
            breakdown_reason = "nonfinite"
            break
        if pap <= 0.0:
            breakdown_reason = "indefinite"
            break  # loss of positive definiteness
        alpha = rz / pap
        x_prev = x if guard is not None else None
        x = x + alpha * p
        r = r - alpha * ap
        it += 1
        if callback is not None:
            callback(it, bk.to_numpy(x))
        rn = float(np.sqrt(red.allreduce(float(bk.dot(r, r)))[0]))  # backend-ok: host scalar
        residuals.append(rn)
        if guard is not None:
            reason = guard.on_residual(it, rn)
            if reason is not None:
                breakdown_reason = reason
                if not bk.all_finite(x):
                    x = x_prev  # roll back to the last finite iterate
                break
        if rn <= rtol * r0:
            converged = True
            break
        z = apply_m(r)
        rz_new = float(red.allreduce(float(bk.dot(r, z)))[0])
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    if converged:
        status = SolveStatus.CONVERGED
    elif breakdown_reason is not None:
        status = SolveStatus.BREAKDOWN
    else:
        status = SolveStatus.MAXITER
    return CgResult(
        x,
        it,
        converged,
        residuals,
        red.count,
        status=status,
        breakdown_reason=breakdown_reason,
    )
