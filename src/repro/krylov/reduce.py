"""Global-reduction accounting.

In a distributed Krylov solver every inner product is an
``MPI_Allreduce``; at scale those synchronizations dominate, which is
why the paper adopts the single-reduce GMRES.  Since the reproduction
executes numerics on the assembled global problem, the reducer is a
pass-through that *counts* reductions and payload bytes; the runtime
layer prices them with the alpha-beta model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReduceCounter"]


class ReduceCounter:
    """Counts global reductions and their payloads.

    Attributes
    ----------
    count:
        Number of allreduce operations issued.
    doubles:
        Total number of float64 values reduced.
    """

    def __init__(self) -> None:
        self.count = 0
        self.doubles = 0

    def allreduce(self, values: np.ndarray) -> np.ndarray:
        """Record one global reduction of ``values`` (returned unchanged)."""
        values = np.atleast_1d(np.asarray(values))
        self.count += 1
        self.doubles += int(values.size)
        return values

    def reset(self) -> None:
        """Zero the counters."""
        self.count = 0
        self.doubles = 0
