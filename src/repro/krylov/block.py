"""Block (multi-RHS) Krylov solvers for same-operator request batches.

The serving layer (:mod:`repro.serve`) coalesces same-pattern solve
requests into one multi-RHS solve: ``k`` tenants sharing one operator
cost one *set* of SpMVs and one *set* of global reductions per
iteration instead of ``k``.  These solvers run ``k`` independent Krylov
iterations in lockstep over an ``(n, k)`` iterate block:

* the SpMV is batched -- one :meth:`~repro.sparse.csr.CsrMatrix.matmat`
  over the active block per step (one kernel-launch set, ``k``-fold
  arithmetic intensity);
* the global reductions of one lockstep step are batched -- the block
  issues ``max_c(reduces_c)`` reductions carrying ``sum_c(doubles_c)``
  values, so a step costs one latency term regardless of the block
  width (the multi-tenant analogue of the single-reduce GMRES idea);
* converged columns are *deflated*: they leave the active block, so the
  batched SpMV and reduction payloads shrink as tenants finish.

Per-column arithmetic is exactly the single-RHS arithmetic of
:func:`repro.krylov.gmres.gmres` / :func:`repro.krylov.cg.cg` -- columns
never mix (each keeps its own Arnoldi basis, Hessenberg factor and
Givens rotations; the batched SpMV reduces each column's products in
the same order as the single-vector kernel).  Column ``c`` of a block
solve therefore reproduces the single-RHS solve of ``(a, b[:, c])``
bit for bit: same iterates, same residual history, same iteration
count.  The documented agreement tolerance for the serving gate is
``BLOCK_ITERATION_TOLERANCE`` extra iterations per column (0 in this
implementation; the gate allows the slack so a future genuinely-fused
orthogonalization keeps the contract meaningful).

Observers and resilience guards are not supported here: batched serving
runs the plain solve path (a breakdown surfaces in the per-column
``status``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.krylov.gmres import (
    GMRES_VARIANTS,
    _ORTHO_EPS,
    _as_apply,
    _orthogonalize,
)
from repro.krylov.status import SolveStatus
from repro.obs import get_tracer
from repro.sparse.csr import CsrMatrix

__all__ = [
    "BLOCK_ITERATION_TOLERANCE",
    "BlockSolveResult",
    "block_cg",
    "block_gmres",
]

Operator = Union[CsrMatrix, Callable[[np.ndarray], np.ndarray]]

#: documented per-column iteration-count slack of a block solve relative
#: to the corresponding single-RHS solve.  The lockstep implementation
#: is bit-identical per column, so the observed slack is 0; benchmarks
#: and CI gate on this constant rather than on exact equality.
BLOCK_ITERATION_TOLERANCE = 0


@dataclass
class BlockSolveResult:
    """Outcome of one block solve over an ``(n, k)`` right-hand-side block.

    Per-column fields mirror :class:`~repro.krylov.gmres.GmresResult` /
    :class:`~repro.krylov.cg.CgResult`; the reduction counters are the
    *batched* counts the block actually issued (the per-step maximum
    over columns, not the per-column sum).

    Attributes
    ----------
    x:
        ``(n, k)`` solution block.
    iterations:
        Inner iterations per column.
    converged:
        Per-column convergence flags.
    residual_norms:
        Per-column residual histories (identical to the single-RHS
        histories).
    statuses:
        Per-column terminal :class:`~repro.krylov.status.SolveStatus`.
    reduces, reduce_doubles:
        Batched global reductions issued for the whole block and the
        total float64 payload they carried.
    spmv_blocks:
        Batched SpMV applications (each covers the active block width).
    """

    x: np.ndarray
    iterations: List[int]
    converged: List[bool]
    residual_norms: List[List[float]]
    statuses: List[SolveStatus] = field(default_factory=list)
    reduces: int = 0
    reduce_doubles: int = 0
    spmv_blocks: int = 0

    @property
    def all_converged(self) -> bool:
        """True when every column converged."""
        return all(self.converged)

    @property
    def max_iterations(self) -> int:
        """The slowest column's iteration count (the block's depth)."""
        return max(self.iterations) if self.iterations else 0


class _Tally:
    """Per-column stand-in reducer: passes values through, tallies counts.

    Interface-compatible with the subset of
    :class:`~repro.krylov.reduce.ReduceCounter` the orthogonalization
    kernels use, so per-column arithmetic is untouched while the block
    layer decides how the tallies fold into batched reductions.
    """

    __slots__ = ("count", "doubles")

    def __init__(self) -> None:
        self.count = 0
        self.doubles = 0

    def allreduce(self, values: np.ndarray) -> np.ndarray:
        values = np.atleast_1d(np.asarray(values))
        self.count += 1
        self.doubles += int(values.size)
        return values

    def take(self) -> tuple:
        """Return and reset ``(count, doubles)``."""
        out = (self.count, self.doubles)
        self.count = 0
        self.doubles = 0
        return out


class _BatchedReduces:
    """Folds per-column tallies of one lockstep step into batched counts.

    A block solver issues, per step, ``max_c(count_c)`` reductions (the
    columns share each batched payload; a column paying an extra
    reorthogonalization pass adds one more batched reduction) carrying
    ``sum_c(doubles_c)`` values.  Tallies land on the ambient tracer
    like :class:`~repro.obs.tracer.TracerReduceCounter` contributions.
    """

    __slots__ = ("tracer", "count", "doubles")

    def __init__(self, tracer) -> None:
        self.tracer = tracer
        self.count = 0
        self.doubles = 0

    def charge(self, tallies) -> None:
        pairs = [t.take() for t in tallies]
        if not pairs:
            return
        count = max(c for c, _ in pairs)
        doubles = sum(d for _, d in pairs)
        if count == 0:
            return
        self.count += count
        self.doubles += doubles
        self.tracer.count("reduces", float(count))
        self.tracer.count("reduce_doubles", float(doubles))


def _as_block_apply(a: Operator):
    """Batched application ``X -> A @ X`` over an ``(n, w)`` block."""
    if isinstance(a, CsrMatrix):
        return a.matmat
    apply1 = _as_apply(a)

    def apply_block(x_block: np.ndarray) -> np.ndarray:
        return np.column_stack(
            [apply1(x_block[:, i]) for i in range(x_block.shape[1])]
        )

    return apply_block


def _check_block_rhs(b: np.ndarray) -> np.ndarray:
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[1] < 1:
        raise ValueError(
            f"block right-hand side must be a 2-D (n, k) array with "
            f"k >= 1, got shape {b.shape}"
        )
    return b


class _GmresColumn:
    """One column's full single-RHS GMRES state (never mixed across
    columns -- the lockstep loop only synchronizes the *schedule*)."""

    __slots__ = (
        "idx", "b", "x", "residuals", "total_iters", "cycles",
        "converged", "done", "status", "tol_abs", "tally",
        "v", "z", "h", "cs", "sn", "g", "j", "j_used", "m",
        "in_cycle", "orth_state", "check_pending",
    )

    def __init__(self, idx: int, b: np.ndarray, x: np.ndarray) -> None:
        self.idx = idx
        self.b = b
        self.x = x
        self.residuals: List[float] = []
        self.total_iters = 0
        self.cycles = 0
        self.converged = False
        self.done = False
        self.status = SolveStatus.MAXITER
        self.tol_abs = 0.0
        self.tally = _Tally()
        self.in_cycle = False
        self.check_pending = False

    def open_cycle(self, r: np.ndarray, beta: float, restart: int,
                   maxiter: int) -> None:
        n = self.b.size
        self.cycles += 1
        self.m = min(restart, maxiter - self.total_iters)
        self.v = np.empty((self.m + 1, n))
        self.z = np.empty((self.m, n))
        self.h = np.zeros((self.m + 1, self.m))
        self.cs = np.zeros(self.m)
        self.sn = np.zeros(self.m)
        self.g = np.zeros(self.m + 1)
        self.g[0] = beta
        self.v[0] = r / beta
        self.j = 0
        self.j_used = 0
        self.orth_state = {"gamma": _ORTHO_EPS}
        self.in_cycle = True
        self.check_pending = False

    def close_cycle(self) -> None:
        """Solution update from the cycle (identical back-substitution)."""
        self.in_cycle = False
        ju = self.j_used
        if not ju:
            return
        y = np.zeros(ju)
        g, h = self.g, self.h
        for i in range(ju - 1, -1, -1):
            y[i] = (g[i] - h[i, i + 1 : ju] @ y[i + 1 :]) / h[i, i]
        self.x = self.x + self.z[:ju].T @ y


def block_gmres(
    a: Operator,
    b: np.ndarray,
    preconditioner: Optional[Operator] = None,
    x0: Optional[np.ndarray] = None,
    rtol: float = 1e-7,
    restart: int = 30,
    maxiter: int = 1000,
    variant: str = "single_reduce",
) -> BlockSolveResult:
    """Solve ``A x_c = b[:, c]`` for every column with lockstep GMRES(m).

    Parameters mirror :func:`repro.krylov.gmres.gmres`; ``b`` (and the
    optional ``x0``) are ``(n, k)`` blocks.  Columns run independent
    restarted GMRES iterations scheduled in lockstep: each step applies
    one batched SpMV over the active block and issues one batched set of
    reductions; columns that converge (explicitly confirmed, as in the
    single-RHS solver) are deflated out of the block.
    """
    if variant not in GMRES_VARIANTS:
        raise ValueError(
            f"unknown GMRES variant {variant!r}; valid variants: "
            + ", ".join(repr(v) for v in GMRES_VARIANTS)
        )
    b = _check_block_rhs(b)
    n, k = b.shape
    if preconditioner is not None and hasattr(preconditioner, "apply"):
        apply_m = preconditioner.apply
    else:
        apply_m = _as_apply(preconditioner)
    apply_block = _as_block_apply(a)
    tr = get_tracer()
    batched = _BatchedReduces(tr)
    spmv_blocks = 0

    if x0 is None:
        x_block = np.zeros((n, k))
    else:
        x_block = np.array(x0, dtype=np.float64)
        if x_block.shape != (n, k):
            raise ValueError(
                f"x0 must match the rhs block shape {(n, k)}, got "
                f"{x_block.shape}"
            )
    cols = [_GmresColumn(c, b[:, c], x_block[:, c].copy()) for c in range(k)]

    def _block_residuals(subset) -> np.ndarray:
        nonlocal spmv_blocks
        xs = np.stack([c.x for c in subset], axis=1)
        with tr.span("krylov/spmv") as sp:
            sp.count("block_width", float(len(subset)))
            ax = apply_block(xs)
        spmv_blocks += 1
        return np.stack([c.b for c in subset], axis=1) - ax

    # initial residual: beta0 anchors the convergence target per column.
    # Columns are copied out of the block before any dot product: a
    # strided view changes BLAS summation order, which would break the
    # bit-for-bit match with the single-RHS solvers.
    r0_block = _block_residuals(cols)
    for i, c in enumerate(cols):
        r = r0_block[:, i].copy()
        beta0 = float(np.sqrt(c.tally.allreduce(r @ r)[0]))
        c.residuals.append(beta0)
        c.tol_abs = rtol * beta0
        if beta0 == 0.0:
            c.converged = True
            c.done = True
            c.status = SolveStatus.CONVERGED
    batched.charge([c.tally for c in cols])

    while True:
        # columns between cycles: start a new one (or retire)
        starting = [c for c in cols if not c.done and not c.in_cycle]
        if starting:
            r_block = _block_residuals(starting)
            for i, c in enumerate(starting):
                if c.total_iters >= maxiter:
                    c.done = True
                    continue
                r = r_block[:, i].copy()
                beta = float(np.sqrt(c.tally.allreduce(r @ r)[0]))
                if beta <= c.tol_abs:
                    c.converged = True
                    c.done = True
                    c.status = SolveStatus.CONVERGED
                else:
                    c.open_cycle(r, beta, restart, maxiter)
            batched.charge([c.tally for c in starting])

        running = [c for c in cols if not c.done and c.in_cycle]
        if not running:
            break

        # one lockstep Arnoldi step over the active block
        for c in running:
            c.z[c.j] = apply_m(c.v[c.j])
        zs = np.stack([c.z[c.j] for c in running], axis=1)
        with tr.span("krylov/spmv") as sp:
            sp.count("block_width", float(len(running)))
            w_block = apply_block(zs)
        spmv_blocks += 1

        with tr.span("krylov/orth") as sp:
            sp.count("block_width", float(len(running)))
            for i, c in enumerate(running):
                j = c.j
                hj, hnext, w = _orthogonalize(
                    variant, c.v[: j + 1], w_block[:, i].copy(), c.tally,
                    c.orth_state,
                )
                h, g, cs, sn = c.h, c.g, c.cs, c.sn
                h[: j + 1, j] = hj
                h[j + 1, j] = hnext
                if hnext > 0:
                    c.v[j + 1] = w / hnext
                else:  # lucky breakdown
                    c.v[j + 1] = 0.0
                for ii in range(j):
                    t = cs[ii] * h[ii, j] + sn[ii] * h[ii + 1, j]
                    h[ii + 1, j] = -sn[ii] * h[ii, j] + cs[ii] * h[ii + 1, j]
                    h[ii, j] = t
                denom = np.hypot(h[j, j], h[j + 1, j])
                if denom == 0.0:
                    cs[j], sn[j] = 1.0, 0.0
                else:
                    cs[j], sn[j] = h[j, j] / denom, h[j + 1, j] / denom
                h[j, j] = denom
                h[j + 1, j] = 0.0
                g[j + 1] = -sn[j] * g[j]
                g[j] = cs[j] * g[j]
                c.total_iters += 1
                c.j_used = j + 1
                c.residuals.append(abs(g[j + 1]))
                if abs(g[j + 1]) <= c.tol_abs or hnext == 0.0:
                    c.converged = abs(g[j + 1]) <= c.tol_abs
                    c.check_pending = c.converged
                    c.close_cycle()
                elif j + 1 >= c.m:
                    c.close_cycle()
                else:
                    c.j = j + 1
            batched.charge([c.tally for c in running])

        # explicit residual confirmation (Belos-style) for candidates
        candidates = [c for c in running if c.check_pending]
        if candidates:
            r_block = _block_residuals(candidates)
            for i, c in enumerate(candidates):
                r = r_block[:, i].copy()
                true_norm = float(np.sqrt(c.tally.allreduce(r @ r)[0]))
                c.converged = true_norm <= c.tol_abs * (1 + 1e-12)
                c.check_pending = False
                if c.converged:
                    c.done = True
                    c.status = SolveStatus.CONVERGED
            batched.charge([c.tally for c in candidates])

    return BlockSolveResult(
        x=np.stack([c.x for c in cols], axis=1),
        iterations=[c.total_iters for c in cols],
        converged=[c.converged for c in cols],
        residual_norms=[c.residuals for c in cols],
        statuses=[c.status for c in cols],
        reduces=batched.count,
        reduce_doubles=batched.doubles,
        spmv_blocks=spmv_blocks,
    )


class _CgColumn:
    """One column's single-RHS CG state."""

    __slots__ = (
        "idx", "b", "x", "r", "z", "p", "rz", "r0", "residuals", "it",
        "converged", "done", "status", "breakdown_reason", "tally",
    )

    def __init__(self, idx: int, b: np.ndarray, x: np.ndarray) -> None:
        self.idx = idx
        self.b = b
        self.x = x
        self.residuals: List[float] = []
        self.it = 0
        self.converged = False
        self.done = False
        self.status = SolveStatus.MAXITER
        self.breakdown_reason: Optional[str] = None
        self.tally = _Tally()


def block_cg(
    a: Operator,
    b: np.ndarray,
    preconditioner: Optional[Operator] = None,
    x0: Optional[np.ndarray] = None,
    rtol: float = 1e-7,
    maxiter: int = 1000,
) -> BlockSolveResult:
    """Solve SPD ``A x_c = b[:, c]`` per column with lockstep CG.

    The three reduction points of one CG iteration (``p^T A p``, the
    residual norm, ``r^T z``) each become one batched reduction for the
    whole active block; the SpMV is one batched
    :meth:`~repro.sparse.csr.CsrMatrix.matmat`.  Per-column arithmetic
    matches :func:`repro.krylov.cg.cg` exactly; a column losing positive
    definiteness retires with ``status="breakdown"`` without disturbing
    the rest of the block.
    """
    b = _check_block_rhs(b)
    n, k = b.shape
    if preconditioner is not None and hasattr(preconditioner, "apply"):
        apply_m = preconditioner.apply
    else:
        apply_m = _as_apply(preconditioner)
    apply_block = _as_block_apply(a)
    tr = get_tracer()
    batched = _BatchedReduces(tr)
    spmv_blocks = 0

    if x0 is None:
        x_block = np.zeros((n, k))
    else:
        x_block = np.array(x0, dtype=np.float64)
        if x_block.shape != (n, k):
            raise ValueError(
                f"x0 must match the rhs block shape {(n, k)}, got "
                f"{x_block.shape}"
            )
    cols = [_CgColumn(c, b[:, c], x_block[:, c].copy()) for c in range(k)]

    with tr.span("krylov/spmv") as sp:
        sp.count("block_width", float(k))
        ax = apply_block(x_block)
    spmv_blocks += 1
    for i, c in enumerate(cols):
        c.r = c.b - ax[:, i]
        c.z = apply_m(c.r)
        c.p = c.z.copy()
        c.rz = float(c.tally.allreduce(c.r @ c.z)[0])
        c.r0 = float(np.sqrt(c.tally.allreduce(c.r @ c.r)[0]))
        c.residuals.append(c.r0)
        if c.r0 == 0.0:
            c.converged = True
            c.done = True
            c.status = SolveStatus.CONVERGED
    batched.charge([c.tally for c in cols])

    while True:
        active = [c for c in cols if not c.done]
        if not active:
            break
        ps = np.stack([c.p for c in active], axis=1)
        with tr.span("krylov/spmv") as sp:
            sp.count("block_width", float(len(active)))
            ap_block = apply_block(ps)
        spmv_blocks += 1
        for i, c in enumerate(active):
            # contiguous copy: a strided view would change the BLAS
            # summation order and break single-RHS bit-equality
            ap = ap_block[:, i].copy()
            pap = float(c.tally.allreduce(c.p @ ap)[0])
            if not np.isfinite(pap):
                c.breakdown_reason = "nonfinite"
            elif pap <= 0.0:
                c.breakdown_reason = "indefinite"
            if c.breakdown_reason is not None:
                c.done = True
                c.status = SolveStatus.BREAKDOWN
                continue
            alpha = c.rz / pap
            c.x = c.x + alpha * c.p
            c.r = c.r - alpha * ap
            c.it += 1
            rn = float(np.sqrt(c.tally.allreduce(c.r @ c.r)[0]))
            c.residuals.append(rn)
            if rn <= rtol * c.r0:
                c.converged = True
                c.done = True
                c.status = SolveStatus.CONVERGED
            elif c.it >= maxiter:
                c.done = True
            else:
                c.z = apply_m(c.r)
                rz_new = float(c.tally.allreduce(c.r @ c.z)[0])
                beta = rz_new / c.rz
                c.rz = rz_new
                c.p = c.z + beta * c.p
        batched.charge([c.tally for c in active])

    return BlockSolveResult(
        x=np.stack([c.x for c in cols], axis=1),
        iterations=[c.it for c in cols],
        converged=[c.converged for c in cols],
        residual_norms=[c.residuals for c in cols],
        statuses=[c.status for c in cols],
        reduces=batched.count,
        reduce_doubles=batched.doubles,
        spmv_blocks=spmv_blocks,
    )
