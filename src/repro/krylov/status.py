"""Explicit terminal status of a Krylov solve.

Callers used to infer the outcome from ``converged`` plus the tail of
``residual_norms`` -- which cannot distinguish "ran out of iterations"
from "the recurrence went NaN at iteration 12".  Every solver result
now carries a :class:`SolveStatus`:

* ``CONVERGED`` -- the (explicitly confirmed) residual met ``rtol``;
* ``MAXITER`` -- the iteration cap was reached while still finite;
* ``BREAKDOWN`` -- a health guard stopped the solve (non-finite
  recurrence, stagnation, loss of positive definiteness); the reported
  iterate is the last finite one;
* ``RECOVERED`` -- session-level only: the solve converged after one or
  more recovery actions (set by :class:`~repro.api.SolverSession`, never
  by the raw solvers);
* ``SHED`` -- service-level only: the request was refused (at admission
  or in queue) because its deadline was already unmeetable, its shard's
  circuit breaker was open, or the service was over capacity -- a fast
  honest rejection instead of a silently-late answer (set by
  :class:`~repro.serve.service.SolverService`, never by the solvers);
* ``FAILED`` -- service-level only: the batch executing this request
  raised and the retry budget (if any) was exhausted; the drain
  continued and the request got this terminal answer instead of being
  stranded in flight.

The enum mixes in ``str``: ``result.status == "converged"`` works, and
the values serialize cleanly into benchmark records.
"""

from __future__ import annotations

import enum

__all__ = ["SolveStatus"]


class SolveStatus(str, enum.Enum):
    """Terminal state of a Krylov solve (see module docstring)."""

    CONVERGED = "converged"
    MAXITER = "maxiter"
    BREAKDOWN = "breakdown"
    RECOVERED = "recovered"
    SHED = "shed"
    FAILED = "failed"

    def __str__(self) -> str:  # "converged", not "SolveStatus.CONVERGED"
        return self.value
