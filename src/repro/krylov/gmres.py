"""Restarted GMRES with selectable orthogonalization variants.

Right-preconditioned GMRES(m) [Saad & Schultz 1986] with incremental
Givens least-squares and three orthogonalization schemes; the
``"single_reduce"`` scheme [Swirydowicz et al. 2021] batches the
projection coefficients and the norm into one global reduction per
iteration, as used for all experiments of the paper (Section VII:
restart 30, rtol 1e-7).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.backend import get_backend
from repro.krylov.reduce import ReduceCounter
from repro.krylov.status import SolveStatus
from repro.obs import get_tracer
from repro.sparse.csr import CsrMatrix

__all__ = ["gmres", "GmresResult", "GMRES_VARIANTS"]

Operator = Union[CsrMatrix, Callable[[np.ndarray], np.ndarray]]

#: valid orthogonalization schemes (see the package docstring table)
GMRES_VARIANTS = ("mgs", "cgs", "single_reduce")


#: call sites (filename, lineno) that already got the reducer warning --
#: our own once-per-site registry, so the warning fires deterministically
#: regardless of the ambient ``warnings`` filter configuration
_REDUCER_WARNED_SITES: set = set()


def _deprecated_reducer_warning(solver: str) -> None:
    import sys

    caller = sys._getframe(2)
    site = (caller.f_code.co_filename, caller.f_lineno)
    if site in _REDUCER_WARNED_SITES:
        return
    _REDUCER_WARNED_SITES.add(site)
    warnings.warn(
        f"the bare 'reducer' kwarg on {solver}() is deprecated; run the "
        "solve under a repro.obs.Tracer (with use_tracer(tracer): ...) and "
        "read tracer.reduces / tracer.reduce_doubles instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class GmresResult:
    """Outcome of a GMRES solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Total inner iterations performed (the paper's reported counts).
    converged:
        True when the relative residual dropped below ``rtol`` *and*
        the explicit residual test confirmed it.
    residual_norms:
        Recurrence residual estimates only: the initial residual
        followed by the Givens estimate ``|g[j+1]|`` after every inner
        iteration.  Explicitly computed residuals never appear here;
        they are recorded in ``true_residual_norms``.
    reduces:
        Number of global reductions issued (orthogonalization + norms).
    restarts:
        Number of *restarts*, i.e. cycles after the first: a solve that
        converges within its first cycle reports 0.
    true_residual_norms:
        Every explicitly computed ``||b - A x||``, tagged with the
        inner-iteration count at which it was evaluated (the Belos-style
        convergence confirmations at cycle ends).
    status:
        Terminal :class:`~repro.krylov.status.SolveStatus`
        (``converged`` / ``maxiter`` / ``breakdown``).
    breakdown_reason:
        What the health guard saw (``"nonfinite"`` / ``"stagnation"``)
        when ``status == "breakdown"``; None otherwise.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    reduces: int
    restarts: int
    true_residual_norms: List[Tuple[int, float]] = field(default_factory=list)
    status: SolveStatus = SolveStatus.MAXITER
    breakdown_reason: Optional[str] = None


def _as_apply(op: Optional[Operator]):
    if op is None:
        return lambda v: v
    if callable(op) and not isinstance(op, CsrMatrix):
        return op
    return op.matvec


def _bk_apply(f, bk):
    """Wrap an operator application for backend-routed Krylov loops.

    Operators and preconditioners are host-facing (CSR matvec routes
    itself; arbitrary callables expect numpy), so the wrapper hands them
    a host array and lifts the result back to the solve's backend.  On
    the numpy backend both conversions are identities, preserving
    bit-identity; on other backends this is the documented host
    round-trip per operator application.
    """
    if bk.is_numpy:
        return f
    return lambda v: bk.asarray(f(bk.to_numpy(v)))


def gmres(
    a: Operator,
    b: np.ndarray,
    preconditioner: Optional[Operator] = None,
    x0: Optional[np.ndarray] = None,
    rtol: float = 1e-7,
    restart: int = 30,
    maxiter: int = 1000,
    variant: str = "single_reduce",
    reducer: Optional[ReduceCounter] = None,
    observer: Optional[object] = None,
    guard: Optional[object] = None,
) -> GmresResult:
    """Solve ``A x = b`` with right-preconditioned restarted GMRES.

    Parameters
    ----------
    a:
        System operator (CSR matrix or callable).
    b:
        Right-hand side.
    preconditioner:
        Right preconditioner ``M^{-1}`` (CSR, callable, or an object
        with ``apply``); identity when None.
    x0:
        Initial guess (zero when None).
    rtol:
        Convergence when ``||b - A x|| <= rtol * ||b - A x0||``
        (the paper's "residual norm reduced by 1e-7").
    restart:
        Cycle length ``m`` (paper: 30).
    maxiter:
        Cap on total inner iterations.
    variant:
        ``"mgs"``, ``"cgs"`` or ``"single_reduce"``.
    reducer:
        Deprecated: reduction counter.  Prefer running the solve under a
        :class:`repro.obs.Tracer`, whose counters absorb this role.
    observer:
        Optional invariant observer (see
        :class:`repro.verify.GmresInvariantObserver`): after every cycle
        its ``on_cycle(basis, x, estimate, true_norm)`` method receives
        the Arnoldi basis built in that cycle, the current iterate, the
        recurrence residual estimate, and -- when the cycle ended in an
        explicit residual test -- the computed ``||b - A x||``.  The
        hook costs nothing when None and issues no extra reductions.
    guard:
        Optional health monitor (see
        :class:`repro.resilience.detect.KrylovGuard`): ``on_residual``
        is fed every recurrence estimate; a non-None return stops the
        solve with ``status="breakdown"``.  With a guard, a non-finite
        Hessenberg column is caught *before* it enters the least-squares
        update, so the returned iterate is assembled from finite basis
        vectors only (the "last finite iterate" a restart resumes from).
        Without a guard behavior is unchanged (NaNs propagate to
        ``maxiter``, the seed behavior).
    """
    if variant not in GMRES_VARIANTS:
        raise ValueError(
            f"unknown GMRES variant {variant!r}; valid variants: "
            + ", ".join(repr(v) for v in GMRES_VARIANTS)
        )
    apply_a = _as_apply(a)
    if preconditioner is not None and hasattr(preconditioner, "apply"):
        apply_m = preconditioner.apply
    else:
        apply_m = _as_apply(preconditioner)
    tr = get_tracer()
    if reducer is None:
        red = tr.reduce_counter()
    else:
        _deprecated_reducer_warning("gmres")
        red = reducer

    bk = get_backend(b)
    apply_a = _bk_apply(apply_a, bk)
    apply_m = _bk_apply(apply_m, bk)
    b = bk.astype(bk.asarray(b), np.float64)
    n = b.shape[0]
    if x0 is None:
        x = bk.zeros(n, dtype=np.float64)
    else:
        x = bk.astype(bk.copy(bk.asarray(x0)), np.float64)

    with tr.span("krylov/spmv"):
        r = b - apply_a(x)
    beta0 = float(np.sqrt(red.allreduce(float(bk.dot(r, r)))[0]))
    residuals = [beta0]
    if beta0 == 0.0:
        return GmresResult(
            x, 0, True, residuals, red.count, 0, status=SolveStatus.CONVERGED
        )
    tol_abs = rtol * beta0

    total_iters = 0
    cycles = 0
    converged = False
    breakdown_reason: Optional[str] = None
    true_residuals: List[Tuple[int, float]] = []

    while total_iters < maxiter and not converged:
        cycles += 1
        with tr.span("krylov/spmv"):
            r = b - apply_a(x)
        beta = float(np.sqrt(red.allreduce(float(bk.dot(r, r)))[0]))
        if beta <= tol_abs:
            converged = True
            break
        m = min(restart, maxiter - total_iters)
        v = bk.empty((m + 1, n), dtype=np.float64)
        z = bk.empty((m, n), dtype=np.float64)  # preconditioned directions
        # host least-squares state (Hessenberg + Givens) stays numpy
        h = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        v[0] = r / beta

        j_used = 0
        orth_state = {"gamma": _ORTHO_EPS}
        for j in range(m):
            z[j] = apply_m(v[j])
            with tr.span("krylov/spmv"):
                w = apply_a(z[j])
            with tr.span("krylov/orth"):
                hj, hnext, w = _orthogonalize(
                    variant, v[: j + 1], w, red, orth_state
                )
            if guard is not None and not (
                np.all(np.isfinite(hj)) and np.isfinite(hnext)
            ):
                # stop BEFORE the broken column enters the least-squares
                # problem: x below is assembled from z[:j_used] only, so
                # the returned iterate stays finite for a restart.
                breakdown_reason = "nonfinite"
                break
            h[: j + 1, j] = hj
            h[j + 1, j] = hnext
            if hnext > 0:
                v[j + 1] = w / hnext
            else:  # lucky breakdown
                v[j + 1] = 0.0
            # incremental Givens QR of H
            for i in range(j):
                t = cs[i] * h[i, j] + sn[i] * h[i + 1, j]
                h[i + 1, j] = -sn[i] * h[i, j] + cs[i] * h[i + 1, j]
                h[i, j] = t
            denom = np.hypot(h[j, j], h[j + 1, j])
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = h[j, j] / denom, h[j + 1, j] / denom
            h[j, j] = denom
            h[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            total_iters += 1
            j_used = j + 1
            residuals.append(abs(g[j + 1]))
            if guard is not None:
                reason = guard.on_residual(total_iters, abs(g[j + 1]))
                if reason is not None:
                    breakdown_reason = reason
                    break
            if abs(g[j + 1]) <= tol_abs or hnext == 0.0:
                converged = abs(g[j + 1]) <= tol_abs
                break
        # solution update from the cycle
        if j_used:
            y = np.zeros(j_used)
            for i in range(j_used - 1, -1, -1):
                y[i] = (g[i] - h[i, i + 1 : j_used] @ y[i + 1 :]) / h[i, i]
            x = x + bk.gemv(z[:j_used].T, bk.asarray(y))
        true_norm = None
        if converged:
            # explicit residual test (Belos-style): the recurrence
            # estimate can be optimistic under lagged-norm CGS; verify
            # against the true residual and keep iterating on failure.
            with tr.span("krylov/spmv"):
                r = b - apply_a(x)
            true_norm = float(np.sqrt(red.allreduce(float(bk.dot(r, r)))[0]))
            true_residuals.append((total_iters, true_norm))
            converged = true_norm <= tol_abs * (1 + 1e-12)
        if observer is not None:
            observer.on_cycle(
                basis=bk.to_numpy(v[: j_used + 1]),
                x=bk.to_numpy(x),
                estimate=abs(g[j_used]) if j_used else beta,
                true_norm=true_norm,
            )
        if breakdown_reason is not None:
            break

    if converged:
        status = SolveStatus.CONVERGED
    elif breakdown_reason is not None:
        status = SolveStatus.BREAKDOWN
    else:
        status = SolveStatus.MAXITER
    return GmresResult(
        x,
        total_iters,
        converged,
        residuals,
        red.count,
        max(cycles - 1, 0),
        true_residuals,
        status=status,
        breakdown_reason=breakdown_reason,
    )


#: machine epsilon, the orthogonality error a fresh (or freshly
#: reorthogonalized) basis carries
_ORTHO_EPS = float(np.finfo(np.float64).eps)
#: compounded orthogonality-error bound at which the single-reduce
#: scheme pays for a second pass (well under the 1e-6 the verification
#: suite holds ``||V V^T - I||`` to)
_ORTHO_LOSS_BUDGET = 1e-10


def _orthogonalize(
    variant: str,
    v: np.ndarray,
    w: np.ndarray,
    red: ReduceCounter,
    state: Optional[dict] = None,
):
    """Orthogonalize ``w`` against the rows of ``v``.

    Returns ``(h, h_next, w_orth)`` and issues the variant's reductions
    through ``red``.  ``state`` carries the single-reduce scheme's
    per-cycle orthogonality-error tracking between iterations; a
    stateless call behaves like the first iteration of a cycle.
    """
    jp1 = v.shape[0]
    bk = get_backend(w)
    if variant == "mgs":
        h = np.empty(jp1)  # backend-ok: host projection coefficients
        for i in range(jp1):
            h[i] = red.allreduce(float(bk.dot(v[i], w)))[0]
            w = w - h[i] * v[i]
        hnext = float(np.sqrt(red.allreduce(float(bk.dot(w, w)))[0]))  # backend-ok: host scalar
        return h, hnext, w
    if variant == "cgs":
        h = red.allreduce(bk.to_numpy(bk.dot(v, w))).copy()
        w = w - bk.gemv(v.T, bk.asarray(h))
        hnext = float(np.sqrt(red.allreduce(float(bk.dot(w, w)))[0]))  # backend-ok: host scalar
        return h, hnext, w
    # single_reduce: batch projections and the squared norm in ONE reduce
    payload = np.concatenate(  # backend-ok: host reduction payload
        [bk.to_numpy(bk.dot(v, w)), [float(bk.dot(w, w))]]
    )
    payload = red.allreduce(payload)
    h = payload[:jp1].copy()
    wtw = payload[jp1]
    w = w - bk.gemv(v.T, bk.asarray(h))
    # lagged (Pythagorean) norm: ||w_orth||^2 = ||w||^2 - ||h||^2
    est = wtw - float(h @ h)
    if state is None:
        state = {"gamma": _ORTHO_EPS}
    # Each single-pass CGS step amplifies the basis' orthogonality
    # error by roughly the cancellation ratio ||w||^2 / ||w_orth||^2:
    # the projection error h^T (V V^T - I) h / est corrupts the lagged
    # norm, the mis-normalized v[j+1] degrades V V^T further, and the
    # loop compounds geometrically across the cycle.  Track the
    # compounded bound and pay a second pass just before it could grow
    # visible -- this keeps ||V V^T - I|| near machine precision while
    # reorthogonalizing only every few iterations (one reduce per
    # iteration stays the common case), where a fixed per-iteration
    # cancellation threshold must either fire every iteration or let
    # the error reach O(1).
    amp = wtw / est if est > 0.0 else np.inf
    gamma = state["gamma"] * max(amp, 1.0) ** 2
    if est > 0.0 and gamma <= _ORTHO_LOSS_BUDGET:
        state["gamma"] = gamma
        return h, float(np.sqrt(est)), w  # backend-ok: host scalar
    # selective reorthogonalization: a second batched pass restores
    # MGS-level stability (and resets the error tracking) at the price
    # of one extra reduce in these iterations.
    state["gamma"] = _ORTHO_EPS
    payload = np.concatenate(  # backend-ok: host reduction payload
        [bk.to_numpy(bk.dot(v, w)), [float(bk.dot(w, w))]]
    )
    payload = red.allreduce(payload)
    h2 = payload[:jp1]
    wtw2 = payload[jp1]
    w = w - bk.gemv(v.T, bk.asarray(h2))
    h = h + h2
    est2 = wtw2 - float(h2 @ h2)
    if est2 <= 0.0:
        # rounding can push the lagged estimate non-positive even when a
        # (tiny but real) new direction survives: reporting hnext = 0
        # here would read as a lucky breakdown and end the cycle early.
        # Pay one explicit norm reduction to distinguish the two cases.
        hnext = float(np.sqrt(red.allreduce(float(bk.dot(w, w)))[0]))  # backend-ok: host scalar
    else:
        hnext = float(np.sqrt(est2))  # backend-ok: host scalar
    return h, hnext, w
