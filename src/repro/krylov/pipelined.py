"""Pipelined conjugate gradients (Ghysels & Vanroose).

Table I of the paper lists pipelined and communication-avoiding Krylov
variants among the available options (Belos implements them; the
experiments use single-reduce GMRES).  Pipelined CG restructures the
recurrences so the *single* global reduction of each iteration can
overlap with the matrix-vector product and preconditioner application:
the two CG inner products (and the residual norm) are batched into one
allreduce, issued *before* the iteration's matvec+preconditioner work,
and auxiliary vectors advance by recurrences instead of recomputation.

In exact arithmetic the iterates coincide with classical PCG; in finite
precision the recurrences drift slowly, which is why production
implementations pair the method with residual replacement -- mirrored
here with a periodic explicit residual recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.krylov.reduce import ReduceCounter
from repro.krylov.status import SolveStatus
from repro.obs import get_tracer
from repro.sparse.csr import CsrMatrix

__all__ = ["pipelined_cg", "PipelinedCgResult"]

Operator = Union[CsrMatrix, Callable[[np.ndarray], np.ndarray]]


@dataclass
class PipelinedCgResult:
    """Outcome of a pipelined-CG solve.

    ``replacements`` counts the residual-replacement steps that bound
    the recurrence drift.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    reduces: int
    replacements: int
    status: SolveStatus = SolveStatus.MAXITER
    breakdown_reason: Optional[str] = None


def pipelined_cg(
    a: Operator,
    b: np.ndarray,
    preconditioner: Optional[Operator] = None,
    x0: Optional[np.ndarray] = None,
    rtol: float = 1e-7,
    maxiter: int = 1000,
    reducer: Optional[ReduceCounter] = None,
    replace_every: int = 50,
    guard: Optional[object] = None,
) -> PipelinedCgResult:
    """Solve SPD ``A x = b`` with preconditioned pipelined CG.

    One batched global reduction per iteration (classical PCG issues
    two to three); ``replace_every`` controls the residual-replacement
    period.  ``reducer`` is deprecated -- run under a
    :class:`repro.obs.Tracer`.  ``guard`` is an optional health monitor
    (see :class:`repro.resilience.detect.KrylovGuard`) stopping the
    solve with ``status="breakdown"`` on NaN/stagnation.
    """
    from repro.krylov.gmres import _as_apply, _deprecated_reducer_warning

    apply_a = _as_apply(a)
    if preconditioner is not None and hasattr(preconditioner, "apply"):
        apply_m = preconditioner.apply
    else:
        apply_m = _as_apply(preconditioner)
    tr = get_tracer()
    if reducer is None:
        red = tr.reduce_counter()
    else:
        _deprecated_reducer_warning("pipelined_cg")
        red = reducer

    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)

    with tr.span("krylov/spmv"):
        r = b - apply_a(x)
    u = apply_m(r)
    with tr.span("krylov/spmv"):
        w = apply_a(u)

    gamma_old = 0.0
    alpha_old = 0.0
    z = q = p = s = None
    r0 = None
    residuals: List[float] = []
    converged = False
    breakdown_reason: Optional[str] = None
    replacements = 0
    it = 0
    x_best = x

    while it < maxiter:
        # ONE batched reduction per iteration; in a real pipeline it
        # overlaps with the m/n computations issued right after
        vals = red.allreduce(np.array([r @ u, w @ u, r @ r]))
        gamma, delta, rr = float(vals[0]), float(vals[1]), float(vals[2])
        rn = float(np.sqrt(max(rr, 0.0)))
        if r0 is None:
            r0 = rn
            residuals.append(rn)
            if r0 == 0.0:
                return PipelinedCgResult(
                    x, 0, True, residuals, red.count, 0,
                    status=SolveStatus.CONVERGED,
                )
        else:
            residuals.append(rn)
        if guard is not None:
            reason = guard.on_residual(it, rn if np.isfinite(rr) else np.nan)
            if reason is not None:
                breakdown_reason = reason
                x = x_best  # roll back to the last finite iterate
                break
        if rn <= rtol * r0:
            converged = True
            break
        x_best = x

        m_vec = apply_m(w)
        with tr.span("krylov/spmv"):
            n_vec = apply_a(m_vec)

        if it == 0:
            beta = 0.0
            alpha = gamma / delta
            z = n_vec.copy()
            q = m_vec.copy()
            p = u.copy()
            s = w.copy()
        else:
            beta = gamma / gamma_old
            denom = delta - beta * gamma / alpha_old
            if denom == 0.0:
                breakdown_reason = "indefinite"
                break  # breakdown (loss of positive definiteness)
            alpha = gamma / denom
            z = n_vec + beta * z
            q = m_vec + beta * q
            p = u + beta * p
            s = w + beta * s

        x = x + alpha * p
        r = r - alpha * s
        u = u - alpha * q
        w = w - alpha * z
        gamma_old, alpha_old = gamma, alpha
        it += 1

        if replace_every and it % replace_every == 0:
            # residual replacement: recompute exactly to stop drift
            with tr.span("krylov/spmv"):
                r = b - apply_a(x)
            u = apply_m(r)
            with tr.span("krylov/spmv"):
                w = apply_a(u)
            replacements += 1

    # final explicit check (one extra reduce, as in the other solvers)
    with tr.span("krylov/spmv"):
        r = b - apply_a(x)
    final = float(np.sqrt(red.allreduce(r @ r)[0]))
    residuals.append(final)
    converged = r0 is not None and final <= rtol * r0
    if converged:
        status = SolveStatus.CONVERGED
    elif breakdown_reason is not None:
        status = SolveStatus.BREAKDOWN
    else:
        status = SolveStatus.MAXITER
    return PipelinedCgResult(
        x,
        it,
        converged,
        residuals,
        red.count,
        replacements,
        status=status,
        breakdown_reason=breakdown_reason,
    )
