"""Krylov solvers (the Belos layer of the paper's stack).

The paper's experiments use the *single-reduce* GMRES variant
[Swirydowicz et al. 2021] with restart length 30 and a relative residual
tolerance of 1e-7 (Section VII).  This package implements restarted
GMRES with three orthogonalization strategies that differ in the number
of global reductions per iteration -- the quantity that dominates
strong-scaled Krylov performance:

=================  ==========================  ====================
variant            orthogonalization           global reduces/iter
=================  ==========================  ====================
``"mgs"``          modified Gram-Schmidt       ``j + 2``
``"cgs"``          classical Gram-Schmidt      2
``"single_reduce"``  CGS with lagged            1
                   normalization
=================  ==========================  ====================

A preconditioned CG and the *pipelined* CG of Ghysels & Vanroose (one
overlappable reduction per iteration, with residual replacement) cover
the SPD side of Table I's Krylov menu.

:mod:`repro.krylov.block` adds the multi-RHS block variants the serving
layer batches same-pattern tenant requests through: ``k`` independent
Krylov iterations run in lockstep over an ``(n, k)`` block, sharing one
batched SpMV and one batched reduction set per step, with per-column
convergence deflation -- bit-identical per column to the single-RHS
solvers.

Reductions are routed through a pluggable reducer
(:class:`repro.krylov.reduce.ReduceCounter` by default) so the simulated
runtime can count and price them; a preconditioned CG is included for
the SPD ablations.
"""

from repro.krylov.gmres import gmres, GmresResult
from repro.krylov.cg import cg, CgResult
from repro.krylov.block import (
    BLOCK_ITERATION_TOLERANCE,
    BlockSolveResult,
    block_cg,
    block_gmres,
)
from repro.krylov.pipelined import pipelined_cg, PipelinedCgResult
from repro.krylov.reduce import ReduceCounter
from repro.krylov.status import SolveStatus

__all__ = [
    "BLOCK_ITERATION_TOLERANCE",
    "BlockSolveResult",
    "CgResult",
    "GmresResult",
    "PipelinedCgResult",
    "ReduceCounter",
    "SolveStatus",
    "block_cg",
    "block_gmres",
    "cg",
    "gmres",
    "pipelined_cg",
]
