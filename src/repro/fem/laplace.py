"""Laplace (Poisson) model problems on structured grids.

The scalar diffusion problem is the canonical test problem of GDSW theory
(its Neumann null space is the constant vector); the paper uses it to
illustrate the method (Fig. 1) and we use it throughout the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.fem.grid import StructuredGrid
from repro.fem.quadrature import tensor_rule
from repro.fem.shape_functions import jacobian_box, q1_gradients
from repro.sparse.csr import CsrMatrix

__all__ = ["laplace_2d", "laplace_3d", "ScalarProblem", "element_stiffness_laplace"]


@dataclass
class ScalarProblem:
    """An assembled scalar diffusion problem with Dirichlet BCs eliminated.

    Attributes
    ----------
    a:
        Reduced (free-dof) stiffness matrix, SPD.
    b:
        Load vector for a unit source term.
    grid:
        The generating grid.
    free_nodes:
        Grid node ids of the free dofs, in reduced-dof order (1 dof/node).
    coordinates:
        ``(n_free, dim)`` coordinates of the free nodes.
    dofs_per_node:
        Always 1 for scalar problems.
    """

    a: CsrMatrix
    b: np.ndarray
    grid: StructuredGrid
    free_nodes: np.ndarray
    coordinates: np.ndarray
    dofs_per_node: int = 1


def element_stiffness_laplace(h: Tuple[float, ...]) -> np.ndarray:
    """Q1 element stiffness for ``-div(grad u)`` on a box with edges ``h``."""
    dim = len(h)
    pts, wts = tensor_rule(dim, 2)
    grads = q1_gradients(pts)  # (nq, na, dim) reference gradients
    jinv, det = jacobian_box(h)
    phys = grads * jinv[None, None, :]  # physical gradients
    # K_ab = sum_q w_q det * grad_a . grad_b
    return np.einsum("q,qad,qbd->ab", wts * det, phys, phys)


def _assemble_scalar(
    grid: StructuredGrid,
    ke: np.ndarray,
    fe: np.ndarray,
    coefficient: Optional[np.ndarray] = None,
):
    conn = grid.element_connectivity()  # (ne, na)
    ne, na = conn.shape
    rows = np.repeat(conn, na, axis=1).ravel()
    cols = np.tile(conn, (1, na)).ravel()
    if coefficient is None:
        vals = np.tile(ke.ravel(), ne)
    else:
        coefficient = np.asarray(coefficient, dtype=np.float64)
        if coefficient.shape != (ne,):
            raise ValueError(f"coefficient must have one value per element ({ne})")
        vals = (coefficient[:, None] * ke.ravel()[None, :]).ravel()
    a_full = CsrMatrix.from_coo(rows, cols, vals, (grid.n_nodes, grid.n_nodes))
    b_full = np.zeros(grid.n_nodes)
    np.add.at(b_full, conn.ravel(), np.tile(fe, ne))
    return a_full, b_full


def _fixed_nodes(grid: StructuredGrid, dirichlet_faces) -> np.ndarray:
    if not dirichlet_faces:  # pure Neumann problem
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate([grid.boundary_nodes(f) for f in dirichlet_faces]))


def _reduce_dirichlet(grid: StructuredGrid, a_full, b_full, fixed: np.ndarray):
    from repro.sparse.blocks import extract_submatrix

    mask = np.zeros(grid.n_nodes, dtype=bool)
    mask[fixed] = True
    free = np.flatnonzero(~mask).astype(np.int64)
    a = extract_submatrix(a_full, free, free)
    return a, b_full[free], free


def laplace_3d(
    nex: int,
    ney: Optional[int] = None,
    nez: Optional[int] = None,
    dirichlet_faces: Tuple[str, ...] = ("x0",),
    coefficient: Optional[np.ndarray] = None,
) -> ScalarProblem:
    """Assemble the 3D Poisson problem on an ``nex x ney x nez`` grid.

    Homogeneous Dirichlet conditions on ``dirichlet_faces`` (default: the
    ``x = 0`` face, matching the clamped elasticity setup); unit source
    term.  ``coefficient`` optionally gives a per-element diffusion
    coefficient (piecewise-constant; the heterogeneous/high-contrast
    setting that motivates adaptive coarse spaces).
    """
    ney = nex if ney is None else ney
    nez = nex if nez is None else nez
    grid = StructuredGrid(nex, ney, nez)
    ke = element_stiffness_laplace(grid.spacing)
    # consistent load for f = 1: integral of each shape function
    fe = np.full(8, np.prod(grid.spacing) / 8.0)
    a_full, b_full = _assemble_scalar(grid, ke, fe, coefficient)
    fixed = _fixed_nodes(grid, dirichlet_faces)
    a, b, free = _reduce_dirichlet(grid, a_full, b_full, fixed)
    coords = grid.node_coordinates()[free]
    return ScalarProblem(a=a, b=b, grid=grid, free_nodes=free, coordinates=coords)


def laplace_2d(
    nex: int,
    ney: Optional[int] = None,
    dirichlet_faces: Tuple[str, ...] = ("x0",),
    coefficient: Optional[np.ndarray] = None,
) -> ScalarProblem:
    """Assemble the 2D Poisson problem on an ``nex x ney`` grid.

    ``coefficient`` optionally gives per-element diffusion values.
    """
    ney = nex if ney is None else ney
    grid = StructuredGrid(nex, ney, 0)
    ke = element_stiffness_laplace(grid.spacing)
    fe = np.full(4, np.prod(grid.spacing) / 4.0)
    a_full, b_full = _assemble_scalar(grid, ke, fe, coefficient)
    fixed = _fixed_nodes(grid, dirichlet_faces)
    a, b, free = _reduce_dirichlet(grid, a_full, b_full, fixed)
    coords = grid.node_coordinates()[free]
    return ScalarProblem(a=a, b=b, grid=grid, free_nodes=free, coordinates=coords)
