"""Structured grids of hexahedral (3D) or quadrilateral (2D) elements.

A :class:`StructuredGrid` numbers nodes lexicographically (x fastest) and
provides the element connectivity, node coordinates, boundary node sets,
and the box decompositions into subdomains that drive the paper's weak-
and strong-scaling experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["StructuredGrid"]


@dataclass(frozen=True)
class StructuredGrid:
    """A structured grid of ``nex * ney * nez`` elements on ``[0, Lx] x ...``.

    Parameters
    ----------
    nex, ney, nez:
        Element counts per axis.  ``nez = 0`` gives a 2D quadrilateral
        grid.
    lengths:
        Physical domain lengths per axis; element spacing is uniform.
    """

    nex: int
    ney: int
    nez: int = 0
    lengths: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if self.nex < 1 or self.ney < 1 or self.nez < 0:
            raise ValueError("element counts must be positive (nez may be 0 for 2D)")

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Spatial dimension (2 or 3)."""
        return 2 if self.nez == 0 else 3

    @property
    def node_counts(self) -> Tuple[int, ...]:
        """Nodes per axis."""
        if self.dim == 2:
            return (self.nex + 1, self.ney + 1)
        return (self.nex + 1, self.ney + 1, self.nez + 1)

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return int(np.prod(self.node_counts))

    @property
    def n_elements(self) -> int:
        """Total element count."""
        return self.nex * self.ney * max(self.nez, 1)

    @property
    def spacing(self) -> Tuple[float, ...]:
        """Element edge lengths per axis."""
        if self.dim == 2:
            return (self.lengths[0] / self.nex, self.lengths[1] / self.ney)
        return (
            self.lengths[0] / self.nex,
            self.lengths[1] / self.ney,
            self.lengths[2] / self.nez,
        )

    # ------------------------------------------------------------------
    def node_id(self, ix, iy, iz=0):
        """Lexicographic node id from per-axis indices (x fastest)."""
        nx, ny = self.nex + 1, self.ney + 1
        if self.dim == 2:
            return np.asarray(ix) + nx * np.asarray(iy)
        return np.asarray(ix) + nx * (np.asarray(iy) + ny * np.asarray(iz))

    def node_coordinates(self) -> np.ndarray:
        """``(n_nodes, dim)`` array of node coordinates."""
        if self.dim == 2:
            hx, hy = self.spacing
            ys, xs = np.meshgrid(
                np.arange(self.ney + 1) * hy, np.arange(self.nex + 1) * hx, indexing="ij"
            )
            return np.column_stack([xs.ravel(), ys.ravel()])
        hx, hy, hz = self.spacing
        zs, ys, xs = np.meshgrid(
            np.arange(self.nez + 1) * hz,
            np.arange(self.ney + 1) * hy,
            np.arange(self.nex + 1) * hx,
            indexing="ij",
        )
        return np.column_stack([xs.ravel(), ys.ravel(), zs.ravel()])

    def element_connectivity(self) -> np.ndarray:
        """``(n_elements, 4 or 8)`` node ids for every element.

        Local node ordering follows the standard Q1 convention: counter-
        clockwise in the bottom plane then the top plane.
        """
        if self.dim == 2:
            ex, ey = np.meshgrid(np.arange(self.nex), np.arange(self.ney), indexing="ij")
            ex, ey = ex.ravel(order="F"), ey.ravel(order="F")
            n0 = self.node_id(ex, ey)
            n1 = self.node_id(ex + 1, ey)
            n2 = self.node_id(ex + 1, ey + 1)
            n3 = self.node_id(ex, ey + 1)
            return np.column_stack([n0, n1, n2, n3]).astype(np.int64)
        ez, ey, ex = np.meshgrid(
            np.arange(self.nez), np.arange(self.ney), np.arange(self.nex), indexing="ij"
        )
        ex, ey, ez = ex.ravel(), ey.ravel(), ez.ravel()
        corners = [
            (0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0),
            (0, 0, 1), (1, 0, 1), (1, 1, 1), (0, 1, 1),
        ]
        cols = [self.node_id(ex + dx, ey + dy, ez + dz) for dx, dy, dz in corners]
        return np.column_stack(cols).astype(np.int64)

    # ------------------------------------------------------------------
    def boundary_nodes(self, face: str) -> np.ndarray:
        """Node ids of a boundary face: one of x0, x1, y0, y1, z0, z1."""
        counts = self.node_counts
        idx = [np.arange(c) for c in counts]
        axis = {"x": 0, "y": 1, "z": 2}[face[0]]
        if axis >= self.dim:
            raise ValueError(f"face {face!r} invalid for a {self.dim}D grid")
        idx[axis] = np.array([0 if face[1] == "0" else counts[axis] - 1])
        if self.dim == 2:
            ix, iy = np.meshgrid(idx[0], idx[1], indexing="ij")
            return np.unique(self.node_id(ix.ravel(), iy.ravel()))
        ix, iy, iz = np.meshgrid(idx[0], idx[1], idx[2], indexing="ij")
        return np.unique(self.node_id(ix.ravel(), iy.ravel(), iz.ravel()))

    # ------------------------------------------------------------------
    def box_partition(self, px: int, py: int, pz: int = 1) -> List[np.ndarray]:
        """Partition *nodes* into ``px*py*pz`` boxes (nonoverlapping subdomains).

        Every node is owned by exactly one subdomain; boxes split the node
        index ranges as evenly as possible.  Returns one sorted int64 node
        array per subdomain, ordered with the x-box index fastest, which is
        the decomposition of Fig. 1/Fig. 3 of the paper.
        """
        counts = self.node_counts
        parts = [px, py, pz][: self.dim]
        for c, p in zip(counts, parts):
            if p < 1 or p > c:
                raise ValueError(f"cannot split {c} nodes into {p} boxes")
        splits = [np.array_split(np.arange(c), p) for c, p in zip(counts, parts)]
        out: List[np.ndarray] = []
        if self.dim == 2:
            for jy in range(py):
                for jx in range(px):
                    ix, iy = np.meshgrid(splits[0][jx], splits[1][jy], indexing="ij")
                    out.append(np.sort(self.node_id(ix.ravel(), iy.ravel())))
            return out
        for jz in range(pz):
            for jy in range(py):
                for jx in range(px):
                    ix, iy, iz = np.meshgrid(
                        splits[0][jx], splits[1][jy], splits[2][jz], indexing="ij"
                    )
                    out.append(
                        np.sort(self.node_id(ix.ravel(), iy.ravel(), iz.ravel()))
                    )
        return out
