"""Null spaces of the Neumann operators (GDSW input ``Z``).

Step 3 of the GDSW construction (Section III of the paper) needs the null
space of the *Neumann* matrix corresponding to ``A``:

* scalar diffusion -- the constant vector;
* 3D linear elasticity -- the six (linearized) rigid-body modes: three
  translations and three linearized rotations.  As in [Heinlein et al.
  2021], a translations-only variant is also provided since rotations
  cannot be recovered purely algebraically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["constant_nullspace", "rigid_body_modes", "translations_only"]


def constant_nullspace(n: int) -> np.ndarray:
    """Null space of a scalar Neumann Laplacian: the constant vector.

    Returns an ``(n, 1)`` array of ones.
    """
    return np.ones((n, 1))


def translations_only(n_nodes: int, dofs_per_node: int = 3) -> np.ndarray:
    """Translational rigid-body modes only (the 'algebraic' variant).

    Returns ``(n_nodes * dofs_per_node, dofs_per_node)``; column ``c`` is
    the unit translation of component ``c``.
    """
    z = np.zeros((n_nodes * dofs_per_node, dofs_per_node))
    for c in range(dofs_per_node):
        z[c::dofs_per_node, c] = 1.0
    return z


def rigid_body_modes(coordinates: np.ndarray) -> np.ndarray:
    """All six rigid-body modes of 3D elasticity at the given nodes.

    Parameters
    ----------
    coordinates:
        ``(n_nodes, 3)`` node positions.

    Returns
    -------
    ``(3 * n_nodes, 6)``: three translations followed by the three
    linearized rotations about the centroid,
    ``r_x = (0, -z, y)``, ``r_y = (z, 0, -x)``, ``r_z = (-y, x, 0)``.
    Centering at the centroid improves the conditioning of the coarse
    basis (the modes stay O(1) regardless of domain position).
    """
    coords = np.asarray(coordinates, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError("coordinates must be (n_nodes, 3)")
    n = coords.shape[0]
    c = coords - coords.mean(axis=0)
    x, y, z = c[:, 0], c[:, 1], c[:, 2]
    modes = np.zeros((3 * n, 6))
    modes[0::3, 0] = 1.0
    modes[1::3, 1] = 1.0
    modes[2::3, 2] = 1.0
    # rotation about x: (0, -z, y)
    modes[1::3, 3] = -z
    modes[2::3, 3] = y
    # rotation about y: (z, 0, -x)
    modes[0::3, 4] = z
    modes[2::3, 4] = -x
    # rotation about z: (-y, x, 0)
    modes[0::3, 5] = -y
    modes[1::3, 5] = x
    return modes
