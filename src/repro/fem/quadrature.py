"""Gauss--Legendre quadrature on the reference cube/square.

Only the tensor-product 2-point rule is needed for Q1 elements (it
integrates the trilinear stiffness exactly on affine elements), but the
1- and 3-point rules are provided for the convergence tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["gauss_points_1d", "tensor_rule"]

_GAUSS_1D = {
    1: (np.array([0.0]), np.array([2.0])),
    2: (
        np.array([-1.0 / np.sqrt(3.0), 1.0 / np.sqrt(3.0)]),
        np.array([1.0, 1.0]),
    ),
    3: (
        np.array([-np.sqrt(3.0 / 5.0), 0.0, np.sqrt(3.0 / 5.0)]),
        np.array([5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0]),
    ),
}


def gauss_points_1d(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Nodes and weights of the n-point Gauss rule on [-1, 1] (n <= 3)."""
    try:
        return _GAUSS_1D[n]
    except KeyError:
        raise ValueError(f"unsupported rule order {n}; use 1, 2, or 3") from None


def tensor_rule(dim: int, n: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Tensor-product Gauss rule on the reference square/cube ``[-1,1]^dim``.

    Returns ``(points, weights)`` with ``points`` of shape
    ``(n**dim, dim)``.
    """
    x, w = gauss_points_1d(n)
    if dim == 1:
        return x[:, None], w
    if dim == 2:
        xi, eta = np.meshgrid(x, x, indexing="ij")
        wi, we = np.meshgrid(w, w, indexing="ij")
        return (
            np.column_stack([xi.ravel(), eta.ravel()]),
            (wi * we).ravel(),
        )
    if dim == 3:
        xi, eta, zeta = np.meshgrid(x, x, x, indexing="ij")
        w3 = np.einsum("i,j,k->ijk", w, w, w)
        return (
            np.column_stack([xi.ravel(), eta.ravel(), zeta.ravel()]),
            w3.ravel(),
        )
    raise ValueError("dim must be 1, 2, or 3")
