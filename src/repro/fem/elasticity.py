"""3D linear elasticity on structured hexahedral grids.

This is the paper's benchmark PDE (Section VII): a clamped isotropic
elastic block discretized with trilinear Q1 elements, three displacement
dofs per node.  The assembled operator is symmetric positive definite
after eliminating the Dirichlet face, and its Neumann null space is the
six rigid-body modes used by the GDSW coarse space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.fem.grid import StructuredGrid
from repro.fem.quadrature import tensor_rule
from repro.fem.shape_functions import jacobian_box, q1_gradients, q1_shape
from repro.sparse.blocks import extract_submatrix
from repro.sparse.csr import CsrMatrix

__all__ = ["ElasticityProblem", "elasticity_3d", "element_stiffness_elasticity", "hooke_matrix"]


@dataclass
class ElasticityProblem:
    """An assembled 3D elasticity problem with the clamped face eliminated.

    Attributes
    ----------
    a:
        Reduced stiffness matrix (SPD), ``3 * n_free_nodes`` square.
    b:
        Consistent load vector for the chosen body force.
    grid:
        Generating grid.
    free_nodes:
        Grid node ids of the free nodes, in reduced order; dof
        ``3*i + c`` of ``a`` is component ``c`` of node ``free_nodes[i]``.
    coordinates:
        ``(n_free_nodes, 3)`` free-node coordinates (for rigid-body modes).
    dofs_per_node:
        Always 3.
    youngs_modulus, poisson_ratio:
        Material parameters used in the assembly.
    """

    a: CsrMatrix
    b: np.ndarray
    grid: StructuredGrid
    free_nodes: np.ndarray
    coordinates: np.ndarray
    dofs_per_node: int = 3
    youngs_modulus: float = 210.0
    poisson_ratio: float = 0.3


def hooke_matrix(e: float, nu: float) -> np.ndarray:
    """Isotropic Hooke law in Voigt notation (6x6), engineering shear strain."""
    lam = e * nu / ((1 + nu) * (1 - 2 * nu))
    mu = e / (2 * (1 + nu))
    d = np.zeros((6, 6))
    d[:3, :3] = lam
    d[np.arange(3), np.arange(3)] += 2 * mu
    d[3:, 3:] = np.eye(3) * mu
    return d


def element_stiffness_elasticity(
    h: Tuple[float, float, float], e: float, nu: float
) -> np.ndarray:
    """Q1 hexahedral element stiffness (24x24) for isotropic elasticity.

    Uses the 2x2x2 Gauss rule; dof ordering is ``(node0_x, node0_y,
    node0_z, node1_x, ...)``.
    """
    d = hooke_matrix(e, nu)
    pts, wts = tensor_rule(3, 2)
    grads = q1_gradients(pts)  # (nq, 8, 3)
    jinv, det = jacobian_box(h)
    phys = grads * jinv[None, None, :]  # (nq, 8, 3) physical gradients
    nq = pts.shape[0]
    ke = np.zeros((24, 24))
    # Voigt strain order: xx, yy, zz, yz, xz, xy
    for q in range(nq):
        b = np.zeros((6, 24))
        g = phys[q]  # (8, 3)
        for a_ in range(8):
            gx, gy, gz = g[a_]
            c = 3 * a_
            b[0, c + 0] = gx
            b[1, c + 1] = gy
            b[2, c + 2] = gz
            b[3, c + 1] = gz
            b[3, c + 2] = gy
            b[4, c + 0] = gz
            b[4, c + 2] = gx
            b[5, c + 0] = gy
            b[5, c + 1] = gx
        ke += wts[q] * det * (b.T @ d @ b)
    return 0.5 * (ke + ke.T)  # enforce exact symmetry


def elasticity_3d(
    nex: int,
    ney: Optional[int] = None,
    nez: Optional[int] = None,
    youngs_modulus: float = 210.0,
    poisson_ratio: float = 0.3,
    body_force: Tuple[float, float, float] = (0.0, 0.0, -1.0),
    dirichlet_faces: Tuple[str, ...] = ("x0",),
    stiffness_scale: Optional[np.ndarray] = None,
) -> ElasticityProblem:
    """Assemble the clamped 3D elasticity benchmark problem.

    A unit-cube isotropic block on an ``nex x ney x nez`` hex grid, fixed
    on ``dirichlet_faces`` (default: the ``x = 0`` face) and loaded with a
    constant ``body_force``.  This mirrors the paper's Summit benchmark
    (3D elasticity, rGDSW coarse space, overlap 1) at laptop scale.
    ``stiffness_scale`` optionally scales each element's Young modulus
    (piecewise-constant material heterogeneity).
    """
    ney = nex if ney is None else ney
    nez = nex if nez is None else nez
    grid = StructuredGrid(nex, ney, nez)
    ke = element_stiffness_elasticity(grid.spacing, youngs_modulus, poisson_ratio)

    conn = grid.element_connectivity()  # (ne, 8)
    ne = conn.shape[0]
    # element dof lists: (ne, 24)
    edofs = (3 * conn[:, :, None] + np.arange(3)[None, None, :]).reshape(ne, 24)
    rows = np.repeat(edofs, 24, axis=1).ravel()
    cols = np.tile(edofs, (1, 24)).ravel()
    if stiffness_scale is None:
        vals = np.tile(ke.ravel(), ne)
    else:
        scale = np.asarray(stiffness_scale, dtype=np.float64)
        if scale.shape != (ne,):
            raise ValueError(f"stiffness_scale must have one value per element ({ne})")
        vals = (scale[:, None] * ke.ravel()[None, :]).ravel()
    n_dofs = 3 * grid.n_nodes
    a_full = CsrMatrix.from_coo(rows, cols, vals, (n_dofs, n_dofs))

    # consistent body-force load: f_a = int N_a dV * b  (Q1, box elements)
    pts, wts = tensor_rule(3, 2)
    shp = q1_shape(pts)  # (nq, 8)
    _, det = jacobian_box(grid.spacing)
    n_int = (wts[:, None] * shp).sum(axis=0) * det  # (8,)
    fe = np.outer(n_int, np.asarray(body_force)).ravel()  # (24,)
    b_full = np.zeros(n_dofs)
    np.add.at(b_full, edofs.ravel(), np.tile(fe, ne))

    if dirichlet_faces:
        fixed_nodes = np.unique(
            np.concatenate([grid.boundary_nodes(f) for f in dirichlet_faces])
        )
    else:  # pure Neumann problem (used to verify the rigid-body null space)
        fixed_nodes = np.empty(0, dtype=np.int64)
    mask = np.zeros(grid.n_nodes, dtype=bool)
    mask[fixed_nodes] = True
    free_nodes = np.flatnonzero(~mask).astype(np.int64)
    free_dofs = (3 * free_nodes[:, None] + np.arange(3)[None, :]).ravel()
    a = extract_submatrix(a_full, free_dofs, free_dofs)
    coords = grid.node_coordinates()[free_nodes]
    return ElasticityProblem(
        a=a,
        b=b_full[free_dofs],
        grid=grid,
        free_nodes=free_nodes,
        coordinates=coords,
        youngs_modulus=youngs_modulus,
        poisson_ratio=poisson_ratio,
    )
