"""Q1 (bi/trilinear) shape functions on the reference element.

Local node ordering matches :meth:`repro.fem.grid.StructuredGrid.element_connectivity`:
counter-clockwise in the bottom plane, then the top plane.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["q1_shape", "q1_gradients", "REF_CORNERS_2D", "REF_CORNERS_3D"]

# reference corner coordinates in {-1, +1}^d matching the connectivity order
REF_CORNERS_2D = np.array(
    [[-1, -1], [1, -1], [1, 1], [-1, 1]], dtype=np.float64
)
REF_CORNERS_3D = np.array(
    [
        [-1, -1, -1], [1, -1, -1], [1, 1, -1], [-1, 1, -1],
        [-1, -1, 1], [1, -1, 1], [1, 1, 1], [-1, 1, 1],
    ],
    dtype=np.float64,
)


def q1_shape(points: np.ndarray) -> np.ndarray:
    """Shape-function values ``N`` at reference points.

    Parameters
    ----------
    points:
        ``(nq, dim)`` reference coordinates in ``[-1, 1]^dim``.

    Returns
    -------
    ``(nq, n_nodes)`` with ``n_nodes = 2**dim``.
    """
    points = np.atleast_2d(points)
    dim = points.shape[1]
    corners = REF_CORNERS_2D if dim == 2 else REF_CORNERS_3D
    # N_a(x) = prod_d (1 + x_d * c_{a,d}) / 2
    return np.prod(1.0 + points[:, None, :] * corners[None, :, :], axis=2) / 2**dim


def q1_gradients(points: np.ndarray) -> np.ndarray:
    """Reference-space gradients ``dN/dxi`` at reference points.

    Returns
    -------
    ``(nq, n_nodes, dim)``.
    """
    points = np.atleast_2d(points)
    dim = points.shape[1]
    corners = REF_CORNERS_2D if dim == 2 else REF_CORNERS_3D
    terms = 1.0 + points[:, None, :] * corners[None, :, :]  # (nq, na, dim)
    grads = np.empty((points.shape[0], corners.shape[0], dim))
    for d in range(dim):
        others = [e for e in range(dim) if e != d]
        grads[:, :, d] = corners[None, :, d] * np.prod(terms[:, :, others], axis=2)
    return grads / 2**dim


def jacobian_box(h: Tuple[float, ...]) -> Tuple[np.ndarray, float]:
    """Jacobian of the affine map from the reference cube to a box element.

    For an axis-aligned box with edge lengths ``h`` the Jacobian is
    ``diag(h)/2``; returns ``(J_inv_diag, detJ)`` where ``J_inv_diag`` is
    the diagonal of the inverse Jacobian.
    """
    h = np.asarray(h, dtype=np.float64)
    det = float(np.prod(h / 2.0))
    return 2.0 / h, det
