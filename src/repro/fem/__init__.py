"""Finite-element problem generators.

The paper's experiments solve sparse systems from the discretization of
3D linear elasticity (plus the Laplace model problem used to explain the
GDSW construction).  This subpackage assembles those systems from scratch
on structured hexahedral grids:

* :mod:`repro.fem.grid` -- structured 2D/3D grids with node/element
  numbering, boundary extraction and box partitions;
* :mod:`repro.fem.quadrature` / :mod:`repro.fem.shape_functions` -- Gauss
  quadrature and trilinear (Q1) shape functions;
* :mod:`repro.fem.laplace` -- Poisson/Laplace stiffness matrices;
* :mod:`repro.fem.elasticity` -- 3D linear elasticity (3 dofs/node) with
  isotropic Hooke law;
* :mod:`repro.fem.nullspace` -- the null spaces of the corresponding
  Neumann operators (constants; rigid-body modes), which feed the GDSW
  coarse space (Section III, step 3 of the paper).
"""

from repro.fem.grid import StructuredGrid
from repro.fem.laplace import laplace_3d, laplace_2d
from repro.fem.elasticity import elasticity_3d, ElasticityProblem
from repro.fem.nullspace import (
    constant_nullspace,
    rigid_body_modes,
    translations_only,
)

__all__ = [
    "ElasticityProblem",
    "StructuredGrid",
    "constant_nullspace",
    "elasticity_3d",
    "laplace_2d",
    "laplace_3d",
    "rigid_body_modes",
    "translations_only",
]
