"""The default (bit-identity) numpy backend.

Every method is the *literal* numpy expression the kernels inlined
before the refactor: ``segment_sum`` is ``np.add.reduceat``,
``scatter_add`` is ``np.bincount``, ``solve_triangular`` is the same
``scipy.linalg.solve_triangular`` call (``check_finite=False``) the
supernodal solver issued directly.  Routing a kernel through this
backend therefore cannot change its floating-point result -- the
bit-identity contract the backend-parametrized test suite pins down.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.backend.base import Backend, normalize_shape

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Array backend over plain numpy (the package default)."""

    name = "numpy"

    # ------------------------------------------------------------------
    def owns(self, x: Any) -> bool:
        """True for ndarrays and numpy scalars."""
        return isinstance(x, (np.ndarray, np.generic))

    def asarray(self, x: Any, dtype: Any = None) -> np.ndarray:
        """``np.asarray`` (no copy when already conforming)."""
        return np.asarray(x, dtype=dtype)

    def to_numpy(self, x: Any) -> np.ndarray:
        """Identity (modulo ``asarray``) on the host backend."""
        return np.asarray(x)

    # ------------------------------------------------------------------
    def zeros(self, shape, dtype: Any = None) -> np.ndarray:
        """``np.zeros``."""
        return np.zeros(normalize_shape(shape), dtype=dtype or np.float64)

    def empty(self, shape, dtype: Any = None) -> np.ndarray:
        """``np.empty``."""
        return np.empty(normalize_shape(shape), dtype=dtype or np.float64)

    def ones(self, shape, dtype: Any = None) -> np.ndarray:
        """``np.ones``."""
        return np.ones(normalize_shape(shape), dtype=dtype or np.float64)

    def arange(self, n: int, dtype: Any = None) -> np.ndarray:
        """``np.arange``."""
        return np.arange(n, dtype=dtype or np.int64)

    def copy(self, x: Any) -> np.ndarray:
        """``np.array(x, copy=True)``."""
        return np.array(x, copy=True)

    # ------------------------------------------------------------------
    def take(self, x: Any, idx: np.ndarray, axis: int = 0) -> np.ndarray:
        """Fancy-index gather ``x[idx]`` (axis 0) / ``x[:, idx]``."""
        if axis == 0:
            return x[idx]
        return np.take(x, idx, axis=axis)

    def put(self, x: Any, idx: np.ndarray, values: Any) -> None:
        """``x[idx] = values``."""
        x[idx] = values

    def repeat(self, x: Any, counts: Any) -> np.ndarray:
        """``np.repeat``."""
        return np.repeat(x, counts)

    def concatenate(self, parts: Sequence[Any], axis: int = 0) -> np.ndarray:
        """``np.concatenate``."""
        return np.concatenate(parts, axis=axis)

    def stack(self, parts: Sequence[Any], axis: int = 0) -> np.ndarray:
        """``np.stack``."""
        return np.stack(parts, axis=axis)

    def argsort(self, x: Any, stable: bool = True) -> np.ndarray:
        """``np.argsort`` (stable kind by default)."""
        return np.argsort(x, kind="stable" if stable else None)

    # ------------------------------------------------------------------
    def segment_sum(self, values: Any, starts: np.ndarray, axis: int = 0) -> np.ndarray:
        """``np.add.reduceat`` -- fixed association, hence bit-identity."""
        return np.add.reduceat(values, starts, axis=axis)

    def scatter_add(self, idx: np.ndarray, values: Any, size: int) -> np.ndarray:
        """``np.bincount`` accumulation (sequential in input order)."""
        return np.bincount(idx, weights=values, minlength=size)

    def scatter_add_into(self, out: np.ndarray, idx: np.ndarray, values: Any) -> None:
        """``np.add.at`` (unbuffered, dtype-preserving)."""
        np.add.at(out, idx, values)

    def dot(self, x: Any, y: Any) -> Any:
        """``x @ y``."""
        return x @ y

    def norm(self, x: Any) -> float:
        """``np.linalg.norm`` as a host float."""
        return float(np.linalg.norm(x))

    def all_finite(self, x: Any) -> bool:
        """``np.all(np.isfinite(x))``."""
        return bool(np.all(np.isfinite(x)))

    # ------------------------------------------------------------------
    def gemv(self, a: Any, x: Any) -> np.ndarray:
        """Dense ``a @ x`` through BLAS."""
        return a @ x

    def solve_triangular(
        self,
        a: Any,
        b: Any,
        lower: bool = True,
        unit_diagonal: bool = False,
    ) -> np.ndarray:
        """The exact LAPACK call the supernodal solver used inline."""
        from scipy.linalg import solve_triangular

        return solve_triangular(
            a, b, lower=lower, unit_diagonal=unit_diagonal,
            check_finite=False,
        )

    # ------------------------------------------------------------------
    def result_type(self, *operands: Any) -> np.dtype:
        """``np.result_type``."""
        return np.result_type(*operands)

    def astype(self, x: Any, dtype: Any) -> np.ndarray:
        """``ndarray.astype`` (no copy when already conforming)."""
        return np.asarray(x).astype(dtype, copy=False)

    def dtype_of(self, x: Any) -> np.dtype:
        """``x.dtype``."""
        return np.asarray(x).dtype
