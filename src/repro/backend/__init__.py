"""Pluggable array backends for the numeric core (`repro.backend`).

The hot kernels of the stack -- CSR SpMV/SpMM, the level-set and
supernodal triangular solves, the FastILU sweeps, the one-level Schwarz
scatter/gather and the Krylov vector operations -- are written against
the thin :class:`~repro.backend.base.Backend` array API instead of
importing numpy directly.  Numpy is the default (and bit-identical to
the pre-refactor kernels); the torch backend activates automatically
when ``torch`` is importable.

Selection, in precedence order:

1. **Operand auto-detection** -- ``get_backend(x)`` returns the backend
   that owns ``x``'s array type (a torch tensor selects the torch
   backend regardless of the ambient default).
2. **Ambient default** -- ``use_backend("torch")`` (a context manager)
   or ``SolverSession(backend="torch")`` select the backend for every
   kernel in scope that received plain-numpy operands.
3. **Package default** -- numpy.

::

    from repro.backend import get_backend, use_backend

    bk = get_backend()            # ambient default (numpy)
    with use_backend("torch"):    # requires torch importable
        result = session.solve()  # kernels run on torch tensors
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Union

from repro.backend.base import Backend, check_out_dtype
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.torch_backend import TorchBackend, torch_available

__all__ = [
    "Backend",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "check_out_dtype",
    "get_backend",
    "resolve_backend",
    "to_numpy",
    "torch_available",
    "use_backend",
]

#: the package-default backend (bit-identity contract)
_NUMPY = NumpyBackend()

#: lazily constructed singletons keyed by name
_INSTANCES: Dict[str, Backend] = {"numpy": _NUMPY}

_STATE = threading.local()


def available_backends() -> List[str]:
    """Names of the backends that can activate in this environment."""
    names = ["numpy"]
    if torch_available():
        names.append("torch")
    return names


def resolve_backend(backend: Union[None, str, Backend]) -> Backend:
    """Normalize a backend selector to a :class:`Backend` instance.

    ``None`` resolves to the ambient default; a string must name an
    *available* backend (``"torch"`` without torch raises with the list
    of valid values, matching the API-validation idiom of
    :mod:`repro.api`).
    """
    if backend is None:
        return get_backend()
    if isinstance(backend, Backend):
        return backend
    if isinstance(backend, str):
        if backend in _INSTANCES:
            return _INSTANCES[backend]
        if backend == "torch":
            if not torch_available():
                raise ValueError(
                    "backend 'torch' is unavailable (torch is not "
                    "importable); available backends: "
                    + ", ".join(repr(n) for n in available_backends())
                )
            _INSTANCES["torch"] = TorchBackend()
            return _INSTANCES["torch"]
        raise ValueError(
            f"unknown backend {backend!r}; valid values: "
            + ", ".join(repr(n) for n in available_backends())
        )
    raise TypeError(
        f"backend must be None, a name, or a Backend instance, got "
        f"{type(backend).__name__}"
    )


def get_backend(x: Any = None) -> Backend:
    """The backend for an operand (auto-detect), else the ambient default.

    A non-numpy operand wins over the ambient default: kernels follow
    their data.  Plain numpy operands (and ``x=None``) defer to the
    innermost :func:`use_backend` scope, defaulting to numpy.
    """
    if x is not None and not _NUMPY.owns(x):
        torch_bk = _INSTANCES.get("torch")
        if torch_bk is not None and torch_bk.owns(x):
            return torch_bk
        if torch_bk is None and torch_available():
            bk = resolve_backend("torch")
            if bk.owns(x):
                return bk
        # unrecognized array-likes (lists, scalars) fall through to the
        # ambient default, exactly as np.asarray would absorb them
    stack = getattr(_STATE, "stack", None)
    if stack:
        return stack[-1]
    return _NUMPY


@contextmanager
def use_backend(backend: Union[None, str, Backend]):
    """Set the ambient default backend for the enclosed scope."""
    bk = resolve_backend(backend)
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = _STATE.stack = []
    stack.append(bk)
    try:
        yield bk
    finally:
        stack.pop()


def to_numpy(x: Any, backend: Optional[Backend] = None) -> Any:
    """Materialize any backend's array as host numpy (numpy: no-op)."""
    bk = backend if backend is not None else get_backend(x)
    return bk.to_numpy(x)
