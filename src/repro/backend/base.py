"""The array-backend protocol of the numeric core.

The paper's central observation is that the whole two-level Schwarz
algorithm runs on GPUs once its hot kernels -- SpMV, level-set and
supernodal SpTRSV, the FastILU sweeps, the Schwarz scatter/gather and
the Arnoldi vector operations -- are expressed as *array operations*.
This module defines the thin array-API surface those kernels are
written against.  :class:`~repro.backend.numpy_backend.NumpyBackend`
is the default implementation (bit-identical to the pre-refactor
kernels: every method is the exact numpy expression the kernels used
to inline); :class:`~repro.backend.torch_backend.TorchBackend`
activates when ``torch`` is importable and maps the same surface onto
tensors (documented tolerance, see docs/performance.md).

The surface is deliberately small: array creation, the gather /
segmented-reduction pair that is the numpy analogue of a row-parallel
CSR kernel, the scatter-accumulate of the Schwarz prolongation, dense
triangular solves + GEMV for the supernodal blocks, and dtype helpers.
Structure arrays (``indptr``/``indices``/level schedules) are host
metadata and stay plain numpy on every backend -- only *values* move.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence, Tuple

import numpy as np

__all__ = ["Backend"]


class Backend(abc.ABC):
    """Abstract array backend.

    Implementations provide a consistent namespace of array operations
    over one array library.  The contract every implementation carries:

    * :attr:`name` identifies the backend (``"numpy"``, ``"torch"``).
    * ``owns(x)`` is True when ``x`` is this backend's native array
      type; :func:`repro.backend.get_backend` uses it for operand
      auto-detection.
    * The numpy backend is **bit-identical** to direct numpy code: each
      method is the literal numpy expression, so routing a kernel
      through the shim cannot change its floating-point result.
    * Non-numpy backends promise the same *semantics* at documented
      tolerance (segmented sums may reassociate on the device).
    """

    #: backend identifier, e.g. ``"numpy"``
    name: str = "abstract"

    # ------------------------------------------------------------------
    # identity / interop
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def owns(self, x: Any) -> bool:
        """True when ``x`` is a native array of this backend."""

    @abc.abstractmethod
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        """Convert ``x`` (any array-like) to this backend's array type."""

    @abc.abstractmethod
    def to_numpy(self, x: Any) -> np.ndarray:
        """Materialize a backend array as a host numpy ndarray."""

    @property
    def is_numpy(self) -> bool:
        """True for the (bit-identity) numpy backend."""
        return self.name == "numpy"

    # ------------------------------------------------------------------
    # array creation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def zeros(self, shape, dtype: Any = None) -> Any:
        """Zero-filled array."""

    @abc.abstractmethod
    def empty(self, shape, dtype: Any = None) -> Any:
        """Uninitialized array."""

    @abc.abstractmethod
    def ones(self, shape, dtype: Any = None) -> Any:
        """One-filled array."""

    @abc.abstractmethod
    def arange(self, n: int, dtype: Any = None) -> Any:
        """``0..n-1``."""

    @abc.abstractmethod
    def copy(self, x: Any) -> Any:
        """Deep copy of an array."""

    # ------------------------------------------------------------------
    # structure ops (gather / repeat / ordering)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def take(self, x: Any, idx: np.ndarray, axis: int = 0) -> Any:
        """Gather ``x[idx]`` (``idx`` is host int64 structure)."""

    @abc.abstractmethod
    def put(self, x: Any, idx: np.ndarray, values: Any) -> None:
        """In-place scatter-assign ``x[idx] = values`` (last write wins)."""

    @abc.abstractmethod
    def repeat(self, x: Any, counts: Any) -> Any:
        """Element-wise repetition (``np.repeat`` semantics)."""

    @abc.abstractmethod
    def concatenate(self, parts: Sequence[Any], axis: int = 0) -> Any:
        """Concatenate along ``axis``."""

    @abc.abstractmethod
    def stack(self, parts: Sequence[Any], axis: int = 0) -> Any:
        """Stack along a new axis."""

    @abc.abstractmethod
    def argsort(self, x: Any, stable: bool = True) -> Any:
        """Sorting permutation (stable by default -- the kernels rely on
        stability for deterministic segment formation)."""

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def segment_sum(self, values: Any, starts: np.ndarray, axis: int = 0) -> Any:
        """Sum of the segments ``values[starts[i]:starts[i+1]]``.

        ``np.add.reduceat`` semantics over *non-empty* segments: callers
        pass ``starts`` filtered to segment heads with at least one
        element (the SpMV/SpTRSV kernels precompute that plan from the
        host structure).  On the numpy backend this IS
        ``np.add.reduceat`` -- fixed left-to-right association, hence
        bit-identity; devices may reassociate (documented tolerance).
        """

    @abc.abstractmethod
    def scatter_add(self, idx: np.ndarray, values: Any, size: int) -> Any:
        """Dense accumulation ``out[idx[k]] += values[k]`` over a fresh
        zero vector of length ``size`` (``np.bincount`` semantics: the
        accumulation order is the input order; the result is float64)."""

    @abc.abstractmethod
    def scatter_add_into(self, out: Any, idx: np.ndarray, values: Any) -> None:
        """In-place accumulation ``out[idx[k]] += values[k]``
        (``np.add.at`` semantics: unbuffered, dtype-preserving)."""

    @abc.abstractmethod
    def dot(self, x: Any, y: Any) -> Any:
        """Inner product ``x @ y`` (vector-vector)."""

    @abc.abstractmethod
    def norm(self, x: Any) -> float:
        """Euclidean norm as a host float."""

    @abc.abstractmethod
    def all_finite(self, x: Any) -> bool:
        """True when every element is finite (host bool)."""

    # ------------------------------------------------------------------
    # dense linear algebra (supernodal blocks, Arnoldi projections)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def gemv(self, a: Any, x: Any) -> Any:
        """Dense ``A @ x`` (also covers matrix-matrix: ``A @ X``)."""

    @abc.abstractmethod
    def solve_triangular(
        self,
        a: Any,
        b: Any,
        lower: bool = True,
        unit_diagonal: bool = False,
    ) -> Any:
        """Dense triangular solve ``a x = b`` (the supernodal diagonal
        block kernel; delegates to LAPACK / cuBLAS-analogue)."""

    # ------------------------------------------------------------------
    # dtype helpers
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def result_type(self, *operands: Any) -> np.dtype:
        """Promoted numpy dtype of the operands (dtypes or arrays).

        All backends speak numpy dtypes at the interface; non-numpy
        backends translate internally.  This is the single promotion
        rule the kernels use, so the ``matvec``/``matmat`` fixed paths
        promote identically on every backend.
        """

    @abc.abstractmethod
    def astype(self, x: Any, dtype: Any) -> Any:
        """Cast ``x`` to ``dtype`` (numpy dtype spelling)."""

    @abc.abstractmethod
    def dtype_of(self, x: Any) -> np.dtype:
        """The numpy dtype corresponding to ``x``'s element type."""

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line summary used by traces and the bench report."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} ({self.name})>"


def check_out_dtype(
    out_dtype: np.dtype, result_dtype: np.dtype, kernel: str
) -> None:
    """Reject an ``out=`` buffer that would silently truncate.

    The pre-refactor SpMV wrote ``out[nonempty] = np.add.reduceat(...)``,
    which silently downcasts when the product promotes past the buffer
    dtype (float32 ``out`` against a float64 product on the
    half-precision operator path).  Kernels now compute in the promoted
    dtype and require the buffer to hold it losslessly.
    """
    if out_dtype == result_dtype:
        return
    if np.can_cast(result_dtype, out_dtype, casting="safe"):
        return
    raise TypeError(
        f"{kernel}: out buffer dtype {out_dtype} cannot hold the "
        f"promoted result dtype {result_dtype} without truncation; "
        f"pass an out buffer of dtype {result_dtype} or cast the "
        "result explicitly"
    )


def normalize_shape(shape) -> Tuple[int, ...]:
    """Accept ``int`` or tuple shapes uniformly (helper for backends)."""
    if isinstance(shape, (int, np.integer)):
        return (int(shape),)
    return tuple(int(s) for s in shape)
