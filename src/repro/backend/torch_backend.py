"""Torch array backend (activates when ``torch`` is importable).

Maps the :class:`~repro.backend.base.Backend` surface onto
``torch.Tensor`` operations -- the same structure the exemplar repos
use for their GPU paths (``apply_gpu`` with torch local solves; the
single-GPU ``dd-solvers`` PyTorch package).  Device placement follows
the constructor argument; structure arrays arrive as host numpy int64
and are converted per call (kernels keep structure on the host by
contract, so only value arrays live on the device).

Numerical contract: *semantic* parity with the numpy backend at
documented tolerance, not bit-identity -- ``segment_sum`` lowers onto
``index_add`` whose accumulation order is unspecified on the device
(see docs/performance.md).  The skipped-if-no-torch parity suite pins
the tolerance.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.backend.base import Backend, normalize_shape

__all__ = ["TorchBackend", "torch_available"]

try:  # torch is an optional dependency; never a hard import
    import torch as _torch
except Exception:  # pragma: no cover - exercised only without torch
    _torch = None


def torch_available() -> bool:
    """True when the torch backend can activate."""
    return _torch is not None


class TorchBackend(Backend):
    """Array backend over ``torch.Tensor`` (optional, GPU-capable).

    Parameters
    ----------
    device:
        Torch device string (``"cpu"``, ``"cuda"``, ``"cuda:1"`` ...);
        default ``"cuda"`` when available, else ``"cpu"``.
    """

    name = "torch"

    def __init__(self, device: Optional[str] = None) -> None:
        if _torch is None:
            raise ImportError(
                "the torch backend requires torch; install it or use the "
                "default numpy backend"
            )
        if device is None:
            device = "cuda" if _torch.cuda.is_available() else "cpu"
        self.device = _torch.device(device)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Backend name plus device, e.g. ``"torch[cuda]"``."""
        return f"torch[{self.device.type}]"

    def _dtype(self, dtype: Any):
        """Translate a numpy dtype spelling to the torch dtype."""
        if dtype is None:
            return None
        if isinstance(dtype, _torch.dtype):
            return dtype
        mapping = {
            np.dtype(np.float64): _torch.float64,
            np.dtype(np.float32): _torch.float32,
            np.dtype(np.float16): _torch.float16,
            np.dtype(np.int64): _torch.int64,
            np.dtype(np.int32): _torch.int32,
            np.dtype(np.bool_): _torch.bool,
        }
        key = np.dtype(dtype)
        if key not in mapping:
            raise TypeError(f"no torch dtype for {key}")
        return mapping[key]

    # ------------------------------------------------------------------
    def owns(self, x: Any) -> bool:
        """True for ``torch.Tensor``."""
        return isinstance(x, _torch.Tensor)

    def asarray(self, x: Any, dtype: Any = None):
        """``torch.as_tensor`` onto the backend device."""
        return _torch.as_tensor(
            x, dtype=self._dtype(dtype), device=self.device
        )

    def to_numpy(self, x: Any) -> np.ndarray:
        """Detach + host transfer."""
        if isinstance(x, _torch.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    # ------------------------------------------------------------------
    def zeros(self, shape, dtype: Any = None):
        """``torch.zeros`` on the device."""
        return _torch.zeros(
            normalize_shape(shape),
            dtype=self._dtype(dtype) or _torch.float64,
            device=self.device,
        )

    def empty(self, shape, dtype: Any = None):
        """``torch.empty`` on the device."""
        return _torch.empty(
            normalize_shape(shape),
            dtype=self._dtype(dtype) or _torch.float64,
            device=self.device,
        )

    def ones(self, shape, dtype: Any = None):
        """``torch.ones`` on the device."""
        return _torch.ones(
            normalize_shape(shape),
            dtype=self._dtype(dtype) or _torch.float64,
            device=self.device,
        )

    def arange(self, n: int, dtype: Any = None):
        """``torch.arange`` on the device."""
        return _torch.arange(
            n, dtype=self._dtype(dtype) or _torch.int64, device=self.device
        )

    def copy(self, x: Any):
        """``tensor.clone()``."""
        return self.asarray(x).clone()

    # ------------------------------------------------------------------
    def take(self, x: Any, idx: np.ndarray, axis: int = 0):
        """``index_select`` with host structure indices."""
        t = self.asarray(x)
        return _torch.index_select(t, axis, self.asarray(idx, np.int64))

    def put(self, x: Any, idx: np.ndarray, values: Any) -> None:
        """``x[idx] = values``."""
        x[self.asarray(idx, np.int64)] = self.asarray(values)

    def repeat(self, x: Any, counts: Any):
        """``torch.repeat_interleave``."""
        return _torch.repeat_interleave(
            self.asarray(x), self.asarray(counts, np.int64)
        )

    def concatenate(self, parts: Sequence[Any], axis: int = 0):
        """``torch.cat``."""
        return _torch.cat([self.asarray(p) for p in parts], dim=axis)

    def stack(self, parts: Sequence[Any], axis: int = 0):
        """``torch.stack``."""
        return _torch.stack([self.asarray(p) for p in parts], dim=axis)

    def argsort(self, x: Any, stable: bool = True):
        """``torch.argsort`` (stable by default, as the kernels need)."""
        return _torch.argsort(self.asarray(x), stable=stable)

    # ------------------------------------------------------------------
    def segment_sum(self, values: Any, starts: np.ndarray, axis: int = 0):
        """Segmented sum via ``index_add`` over segment ids.

        ``starts`` are the heads of the non-empty segments (reduceat
        plan); segment lengths are recovered from consecutive starts.
        Accumulation order on the device is unspecified: parity with
        numpy holds to rounding, not bit-for-bit.
        """
        values = self.asarray(values)
        n_total = values.shape[axis]
        starts_np = np.asarray(starts, dtype=np.int64)
        lengths = np.diff(np.append(starts_np, n_total))
        seg_ids = self.asarray(
            np.repeat(np.arange(starts_np.size, dtype=np.int64), lengths)
        )
        out_shape = list(values.shape)
        out_shape[axis] = starts_np.size
        out = _torch.zeros(
            out_shape, dtype=values.dtype, device=self.device
        )
        return out.index_add_(axis, seg_ids, values)

    def scatter_add(self, idx: np.ndarray, values: Any, size: int):
        """``index_add`` accumulation onto a fresh zero vector."""
        values = self.asarray(values)
        out = _torch.zeros(size, dtype=values.dtype, device=self.device)
        return out.index_add_(0, self.asarray(idx, np.int64), values)

    def scatter_add_into(self, out: Any, idx: np.ndarray, values: Any) -> None:
        """In-place ``index_add_``."""
        out.index_add_(0, self.asarray(idx, np.int64), self.asarray(values))

    def dot(self, x: Any, y: Any):
        """``x @ y``."""
        return self.asarray(x) @ self.asarray(y)

    def norm(self, x: Any) -> float:
        """``torch.linalg.vector_norm`` as a host float."""
        return float(_torch.linalg.vector_norm(self.asarray(x)))

    def all_finite(self, x: Any) -> bool:
        """``torch.all(torch.isfinite(x))``."""
        return bool(_torch.all(_torch.isfinite(self.asarray(x))))

    # ------------------------------------------------------------------
    def gemv(self, a: Any, x: Any):
        """Dense ``a @ x`` through the device BLAS."""
        return self.asarray(a) @ self.asarray(x)

    def solve_triangular(
        self,
        a: Any,
        b: Any,
        lower: bool = True,
        unit_diagonal: bool = False,
    ):
        """``torch.linalg.solve_triangular`` (2-D rhs internally)."""
        a = self.asarray(a)
        b = self.asarray(b)
        vec = b.ndim == 1
        if vec:
            b = b.unsqueeze(1)
        x = _torch.linalg.solve_triangular(
            a, b, upper=not lower, unitriangular=unit_diagonal
        )
        return x.squeeze(1) if vec else x

    # ------------------------------------------------------------------
    def result_type(self, *operands: Any) -> np.dtype:
        """Promotion computed in numpy dtype space (shared rule)."""
        np_ops = []
        for op in operands:
            if isinstance(op, _torch.Tensor):
                np_ops.append(np.empty(0, dtype=self.dtype_of(op)))
            else:
                np_ops.append(op)
        return np.result_type(*np_ops)

    def astype(self, x: Any, dtype: Any):
        """``tensor.to(dtype)``."""
        return self.asarray(x).to(self._dtype(dtype))

    def dtype_of(self, x: Any) -> np.dtype:
        """Torch dtype translated back to numpy."""
        reverse = {
            _torch.float64: np.dtype(np.float64),
            _torch.float32: np.dtype(np.float32),
            _torch.float16: np.dtype(np.float16),
            _torch.int64: np.dtype(np.int64),
            _torch.int32: np.dtype(np.int32),
            _torch.bool: np.dtype(np.bool_),
        }
        if isinstance(x, _torch.Tensor):
            if x.dtype not in reverse:
                raise TypeError(f"no numpy dtype for {x.dtype}")
            return reverse[x.dtype]
        return np.asarray(x).dtype
