"""Recovery paths after a rank loss: repair, reconstruct, restart.

Three steps, mirroring what a ULFM application does after
``MPI_ERR_PROC_FAILED``:

1. **communicator repair** -- :meth:`FaultTolerantComm.shrink` or
   :meth:`~repro.ft.comm.FaultTolerantComm.respawn` (driver's choice);
2. **preconditioner repair** --

   * *shrink*: merge the dead subdomain into a neighbor and rebuild
     only what the merge touches
     (:meth:`~repro.dd.two_level.GDSWPreconditioner.remove_subdomain`
     reuses every untouched local factorization; the coarse basis is
     re-derived because the interface moved);
   * *respawn*: the partition is unchanged -- the replacement process
     re-extracts and refactorizes the dead rank's local matrix
     (:func:`repair_respawn`), then asserts the rebuilt factorization
     matches the checkpointed fingerprint;

3. **interpolated restart** -- reassemble the iterate from surviving
   checkpoint copies, fill unrecoverable segments with the coarse-grid
   interpolation ``x0 += Phi A_0^{-1} Phi^T (b - A x0)`` (the coarse
   space is exactly the object that can see across the hole), and
   restart the Krylov iteration with the tolerance re-anchored to the
   *original* initial residual so the recovered solve targets the same
   absolute accuracy as the fault-free one.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ft.checkpoint import CheckpointStore
from repro.obs import get_tracer
from repro.resilience.policy import RecoveryAction

__all__ = [
    "rank_loss_action",
    "local_fingerprints",
    "repair_shrink",
    "repair_respawn",
    "interpolated_restart",
]


def rank_loss_action(
    dead: List[int], strategy: str, detail: str = ""
) -> RecoveryAction:
    """The rank-loss rung of the escalation ladder as a recorded action.

    Delegates the rung semantics (kind, default wording) to
    :meth:`repro.resilience.policy.RecoveryPolicy.rank_loss_rung` so the
    ladder lives in one place; ``detail`` overrides the wording with
    run-specific context.
    """
    from repro.resilience.policy import RecoveryPolicy

    action = RecoveryPolicy().rank_loss_rung(dead, strategy)
    if detail:
        action = RecoveryAction(action.kind, action.rank, detail)
    return action


def _unwrap(operator):
    """Peel wrappers down to the GDSWPreconditioner."""
    inner = operator
    while hasattr(inner, "inner"):
        inner = inner.inner
    return inner


def local_fingerprints(operator) -> List[str]:
    """Value fingerprints of every rank's overlapping local matrix."""
    from repro.reuse.fingerprint import values_fingerprint

    one_level = _unwrap(operator).one_level
    return [values_fingerprint(a_i) for a_i in one_level.matrices]


def repair_shrink(operator, dead: List[int]):
    """Merge dead subdomains away; returns the repaired preconditioner.

    Multiple simultaneous deaths are merged one at a time, highest rank
    first so earlier merges do not renumber the still-dead ranks.
    """
    inner = _unwrap(operator)
    repaired = inner
    for rank in sorted(dead, reverse=True):
        repaired = repaired.remove_subdomain(rank)
    return repaired


def repair_respawn(
    operator, dead: List[int], store: Optional[CheckpointStore] = None
) -> List[str]:
    """Rebuild dead ranks' local factorizations in place (respawn).

    The partition is unchanged; the replacement process re-extracts its
    overlapping matrix (already held, values unchanged) and
    refactorizes.  Returns one detail line per rank; raises
    ``RuntimeError`` if the rebuilt factorization's fingerprint
    disagrees with the checkpointed one (state corruption a silent
    respawn would otherwise carry into the restarted solve).
    """
    from repro.reuse.fingerprint import values_fingerprint

    one_level = _unwrap(operator).one_level
    tr = get_tracer()
    details: List[str] = []
    for rank in dead:
        with tr.span("ft/refactor", rank=rank) as sp:
            a_i = one_level.matrices[rank]
            one_level.locals[rank] = one_level.locals[rank].refactor(a_i)
            sp.annotate(n=int(a_i.n_rows))
        rebuilt = values_fingerprint(a_i)
        expected = store.fingerprint_of(rank) if store is not None else None
        if expected:
            if rebuilt != expected:
                raise RuntimeError(
                    f"respawned rank {rank}: rebuilt local factorization "
                    f"fingerprint {rebuilt[:12]} does not match the "
                    f"checkpointed {expected[:12]}"
                )
            details.append(
                f"rank {rank}: refactorized, fingerprint verified "
                f"({rebuilt[:12]})"
            )
        else:
            details.append(f"rank {rank}: refactorized (no checkpoint "
                           f"fingerprint to verify)")
    return details


def interpolated_restart(
    operator,
    a,
    b: np.ndarray,
    store: CheckpointStore,
    target_abs: float,
) -> Tuple[np.ndarray, float, float, List[int]]:
    """Reconstruct a restart iterate and its re-anchored tolerance.

    Returns ``(x0, rtol_eff, residual_now, lost_ranks)``:

    * ``x0`` -- surviving checkpoint segments, with unrecoverable
      segments (both copies dead) filled -- and every segment polished
      -- by one coarse-grid correction on the *repaired* operator;
    * ``rtol_eff`` -- ``target_abs / ||b - A x0||``, so the restarted
      Krylov run converges at the same absolute residual the fault-free
      solve targets (the anchoring pattern of the session retry loop);
    * ``residual_now`` -- the restart residual norm (reporting);
    * ``lost_ranks`` -- segments no checkpoint copy survived for.
    """
    tr = get_tracer()
    with tr.span("ft/restart") as sp:
        x0, lost, ckpt_it = store.restore_x(a.n_rows)
        inner = _unwrap(operator)
        r = b - a.matvec(x0)
        if inner.phi is not None:
            # coarse-grid interpolation: the only component with global
            # support, so it fills the lost segments with the
            # energy-minimizing interpolant of the surviving state
            vc = inner.phi.rmatvec(r)
            x0 = x0 + inner.phi.matvec(inner.coarse.apply(vc))
            r = b - a.matvec(x0)
        residual_now = float(np.linalg.norm(r))
        rtol_eff = target_abs / max(residual_now, 1e-300)
        sp.annotate(
            checkpoint_iteration=int(ckpt_it),
            lost_ranks=str(lost),
            restart_residual=residual_now,
        )
        tr.count("ft_restarts", 1.0)
    return x0, rtol_eff, residual_now, lost
