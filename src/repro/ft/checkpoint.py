"""In-memory checkpointing with neighbor (buddy) replication.

Diskless checkpointing in the classic buddy scheme: every rank
periodically snapshots its recovery state -- the owned segment of the
current solution, the tail of the Krylov basis, and a fingerprint of
its local factorization -- and ships a copy to a *buddy* rank chosen
among its subdomain neighbors (the replica then rides on halo-adjacent
links, which is why it is priced as one extra neighbor message per
snapshot).  When a rank dies, its primary copy dies with it, but the
replica survives on the buddy; when the *buddy* dies instead, the
primary survives.  Only the simultaneous death of a rank and its buddy
loses a segment -- and even then the coarse-grid interpolation of
:mod:`repro.ft.recovery` fills the hole.

All snapshot traffic moves through the fault-tolerant communicator
(tag :data:`~repro.ft.comm.CHECKPOINT_TAG`), so a rank can die *during*
a checkpoint, and the shipped volume is tallied as
``ft_checkpoint_doubles`` on the ambient tracer.  The modeled cost
(:meth:`CheckpointStore.modeled_seconds`) prices each snapshot as one
neighbor message per rank through the same alpha-beta model as halo
traffic -- the CI gate requires this overhead below 5% of the modeled
solve time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.ft.comm import CHECKPOINT_TAG, FaultTolerantComm
from repro.obs import get_tracer

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Buddy-replicated in-memory checkpoints of the solver state.

    Parameters
    ----------
    dec:
        The decomposition whose partition defines segment ownership and
        the neighbor-based buddy map.
    interval:
        Snapshot every ``interval`` Krylov iterations (CG) or cycles
        (GMRES).

    Attributes
    ----------
    buddy:
        Per-rank replica placement: the smallest-numbered subdomain
        neighbor (deterministic), falling back to ``(r+1) % P`` for a
        neighborless rank.
    snapshots:
        Snapshots taken so far (across rebinds).
    doubles_shipped:
        Total float64 values replicated to buddies.
    """

    def __init__(self, dec: Decomposition, interval: int = 5) -> None:
        if interval < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {interval}")
        self.interval = int(interval)
        self.snapshots = 0
        self.doubles_shipped = 0
        #: doubles shipped by the most voluminous single snapshot (the
        #: per-snapshot figure the cost formula in docs/robustness.md uses)
        self.doubles_per_snapshot = 0
        self.rebind(dec)

    # ------------------------------------------------------------------
    def rebind(self, dec: Decomposition) -> None:
        """Re-key the store to a (possibly repaired) partition.

        Recovery changes the partition (shrink) or invalidates the dead
        rank's state (respawn); either way the old checkpoints have been
        consumed by the restart, so the store starts a fresh epoch.
        """
        self.dec = dec
        self.owned: List[np.ndarray] = dec.dof_parts()
        n = dec.n_subdomains
        self.buddy: List[int] = []
        for r in range(n):
            neighbors = dec.neighbors_of(r)
            self.buddy.append(min(neighbors) if neighbors else (r + 1) % n)
        # rank -> (iteration, segment, factorization fingerprint)
        self._primary: Dict[int, Tuple[int, np.ndarray, str]] = {}
        # rank -> same payload, held on buddy[rank]
        self._replica: Dict[int, Tuple[int, np.ndarray, str]] = {}

    def due(self, it: int) -> bool:
        """Is iteration ``it`` a snapshot point?"""
        return it > 0 and it % self.interval == 0

    # ------------------------------------------------------------------
    def snapshot(
        self,
        comm: FaultTolerantComm,
        it: int,
        x: np.ndarray,
        fingerprints: Optional[List[str]] = None,
        basis_tail: Optional[np.ndarray] = None,
    ) -> None:
        """Checkpoint iterate ``x`` (and optionally the basis tail).

        Each rank ships its owned segment -- plus its slice of the
        Krylov basis tail, when given -- to its buddy through ``comm``
        (so a scheduled death can fire mid-checkpoint) and keeps the
        primary locally.  ``fingerprints[r]`` records what rank ``r``'s
        local factorization looked like, letting a respawn assert that
        the rebuilt factorization matches the checkpointed one.
        """
        tr = get_tracer()
        with tr.span("ft/checkpoint") as sp:
            shipped = 0
            # stage, then commit: a rank death mid-checkpoint unwinds
            # before the commit, so the store never holds a torn
            # snapshot mixing two iterations (coordinated checkpointing)
            new_primary: Dict[int, Tuple[int, np.ndarray, str]] = {}
            new_replica: Dict[int, Tuple[int, np.ndarray, str]] = {}
            for r in range(self.dec.n_subdomains):
                seg = np.array(x[self.owned[r]])
                payload = (
                    seg
                    if basis_tail is None
                    else np.concatenate([seg, basis_tail[self.owned[r]]])
                )
                comm.send(r, self.buddy[r], payload, tag=CHECKPOINT_TAG)
                received = comm.recv(self.buddy[r], r, tag=CHECKPOINT_TAG)
                fp = fingerprints[r] if fingerprints is not None else ""
                new_primary[r] = (it, seg, fp)
                new_replica[r] = (it, np.array(received[: seg.size]), fp)
                shipped += int(payload.size)
            self._primary.update(new_primary)
            self._replica.update(new_replica)
            self.snapshots += 1
            self.doubles_shipped += shipped
            self.doubles_per_snapshot = max(self.doubles_per_snapshot, shipped)
            sp.count("ft_checkpoint_doubles", float(shipped))
            sp.annotate(iteration=int(it))
            tr.count("ft_checkpoints", 1.0)

    # ------------------------------------------------------------------
    def on_failure(self, dead: List[int]) -> None:
        """Drop every copy that lived on a now-dead rank.

        The primary of a dead rank is gone; so is any *replica* whose
        buddy was the dead rank.
        """
        for r in dead:
            self._primary.pop(r, None)
        for s, b in enumerate(self.buddy):
            if b in dead:
                self._replica.pop(s, None)

    def restore_x(self, n: int) -> Tuple[np.ndarray, List[int], int]:
        """Best-effort iterate from the surviving checkpoint copies.

        Returns ``(x, lost_ranks, iteration)``: the reconstructed
        global iterate (zeros where no copy survived), the ranks whose
        segment was unrecoverable (rank *and* buddy dead -- the
        coarse-grid interpolation must fill these), and the checkpoint
        iteration the restored state corresponds to.
        """
        x = np.zeros(n)
        lost: List[int] = []
        it = 0
        for r in range(self.dec.n_subdomains):
            entry = self._primary.get(r) or self._replica.get(r)
            if entry is None:
                lost.append(r)
                continue
            it_r, seg, _fp = entry
            x[self.owned[r]] = seg
            it = max(it, it_r)
        return x, lost, it

    def fingerprint_of(self, rank: int) -> Optional[str]:
        """The checkpointed factorization fingerprint of ``rank``."""
        entry = self._primary.get(rank) or self._replica.get(rank)
        return entry[2] if entry is not None else None

    @property
    def have_any(self) -> bool:
        """Does any checkpoint copy exist in the current epoch?"""
        return bool(self._primary) or bool(self._replica)

    # ------------------------------------------------------------------
    def modeled_seconds(self, layout) -> float:
        """Modeled cost of every snapshot taken so far under ``layout``.

        Each snapshot is one buddy message per rank; the slowest rank
        pays one message of its own segment size, so per snapshot the
        critical path is ``halo_seconds(layout, max_segment, neighbors=1)``
        -- checkpoint replication rides a single neighbor link, unlike
        the 6-face halo exchange.
        """
        from repro.runtime.pricing import halo_seconds

        if self.snapshots == 0:
            return 0.0
        max_segment = max(
            (d.size for d in self.owned), default=0
        )
        per_snapshot = halo_seconds(layout, int(max_segment), neighbors=1)
        return float(self.snapshots) * per_snapshot
