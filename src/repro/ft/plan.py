"""Seeded rank-failure plans: which rank dies, when.

A :class:`RankFailurePlan` is the rank-loss analogue of
:class:`repro.resilience.inject.FaultPlan`: a deterministic, seeded
description of the process deaths a chaos run injects.  Failures are
keyed by *solver phase* (``setup`` / ``apply`` / ``reduce``) and by the
index of the communication operation within that phase, so a test can
kill rank 2 "during the 30th apply-phase message" and get exactly the
same death on every run -- the property the CI ``chaos-ft`` matrix
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

import numpy as np

__all__ = ["PHASES", "RankFailure", "RankFailurePlan"]

#: the solver phases a failure can be scheduled in:
#: ``setup`` -- during preconditioner construction (overlap import);
#: ``apply`` -- during a preconditioner application (halo exchange /
#: coarse allreduce); ``reduce`` -- during a Krylov global reduction.
PHASES = ("setup", "apply", "reduce")


@dataclass(frozen=True)
class RankFailure:
    """One scheduled process death.

    Attributes
    ----------
    rank:
        The rank that dies (in the communicator's numbering at the time
        the failure fires).
    phase:
        One of :data:`PHASES`; the failure fires during an operation of
        this phase.
    op_index:
        Zero-based index of the triggering operation *within the phase*
        (counted over the whole run, across restarts): ``op_index=0``
        kills at the phase's very first communication op.
    """

    rank: int
    phase: str
    op_index: int = 0

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(
                f"unknown failure phase {self.phase!r}; valid phases: "
                + ", ".join(repr(p) for p in PHASES)
            )
        if self.op_index < 0:
            raise ValueError(f"op_index must be >= 0, got {self.op_index}")


class RankFailurePlan:
    """A deterministic set of scheduled rank deaths.

    Parameters
    ----------
    failures:
        One :class:`RankFailure` or an iterable of them.
    seed:
        Recorded for provenance (the convenience constructors derive
        their random choices from it); the plan itself is fully
        deterministic once built.
    """

    def __init__(
        self,
        failures: Union[RankFailure, Iterable[RankFailure]],
        seed: int = 0,
    ) -> None:
        if isinstance(failures, RankFailure):
            failures = [failures]
        self.failures: List[RankFailure] = list(failures)
        self.seed = int(seed)
        self._fired: set = set()

    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls, rank: int, phase: str, op_index: int = 0, seed: int = 0
    ) -> "RankFailurePlan":
        """Plan killing exactly one rank at one phase op."""
        return cls(RankFailure(rank, phase, op_index), seed=seed)

    @classmethod
    def random_failures(
        cls,
        n_ranks: int,
        count: int = 1,
        seed: int = 0,
        phases: Sequence[str] = PHASES,
        max_op: int = 60,
    ) -> "RankFailurePlan":
        """A seeded random plan of ``count`` deaths (for soak tests)."""
        rng = np.random.default_rng(seed)
        failures = [
            RankFailure(
                rank=int(rng.integers(n_ranks)),
                phase=str(phases[int(rng.integers(len(phases)))]),
                op_index=int(rng.integers(max_op)),
            )
            for _ in range(count)
        ]
        return cls(failures, seed=seed)

    # ------------------------------------------------------------------
    def due(self, phase: str, op_index: int) -> List[int]:
        """Ranks whose death triggers at this phase op (fires once each)."""
        out: List[int] = []
        for i, f in enumerate(self.failures):
            if i in self._fired:
                continue
            if f.phase == phase and f.op_index == op_index:
                self._fired.add(i)
                out.append(f.rank)
        return out

    @property
    def pending(self) -> int:
        """Scheduled deaths that have not fired yet."""
        return len(self.failures) - len(self._fired)

    def describe(self) -> str:
        """One line per scheduled failure."""
        return "; ".join(
            f"rank {f.rank} dies at {f.phase} op {f.op_index}"
            for f in self.failures
        ) or "no failures scheduled"
