"""Seeded rank-failure and slow-rank (straggler) plans.

A :class:`RankFailurePlan` is the rank-loss analogue of
:class:`repro.resilience.inject.FaultPlan`: a deterministic, seeded
description of the process deaths a chaos run injects.  Failures are
keyed by *solver phase* (``setup`` / ``apply`` / ``reduce``) and by the
index of the communication operation within that phase, so a test can
kill rank 2 "during the 30th apply-phase message" and get exactly the
same death on every run -- the property the CI ``chaos-ft`` matrix
depends on.

A :class:`StragglerPlan` describes the *degraded-but-alive* failure
mode in between healthy and dead: a rank whose kernel and message times
are inflated by a factor for a window of model seconds.  The plan is
pure description -- pricing happens in :mod:`repro.runtime.timings`
(``rank_factors=``), message accounting in
:class:`~repro.runtime.simmpi.SimComm` (``slow_plan=``), and the
scale-around reaction in :mod:`repro.elastic`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

import numpy as np

__all__ = [
    "PHASES",
    "RankFailure",
    "RankFailurePlan",
    "SlowRank",
    "StragglerPlan",
]

#: the solver phases a failure can be scheduled in:
#: ``setup`` -- during preconditioner construction (overlap import);
#: ``apply`` -- during a preconditioner application (halo exchange /
#: coarse allreduce); ``reduce`` -- during a Krylov global reduction.
PHASES = ("setup", "apply", "reduce")


@dataclass(frozen=True)
class RankFailure:
    """One scheduled process death.

    Attributes
    ----------
    rank:
        The rank that dies (in the communicator's numbering at the time
        the failure fires).
    phase:
        One of :data:`PHASES`; the failure fires during an operation of
        this phase.
    op_index:
        Zero-based index of the triggering operation *within the phase*
        (counted over the whole run, across restarts): ``op_index=0``
        kills at the phase's very first communication op.
    """

    rank: int
    phase: str
    op_index: int = 0

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(
                f"unknown failure phase {self.phase!r}; valid phases: "
                + ", ".join(repr(p) for p in PHASES)
            )
        if self.op_index < 0:
            raise ValueError(f"op_index must be >= 0, got {self.op_index}")


class RankFailurePlan:
    """A deterministic set of scheduled rank deaths.

    Parameters
    ----------
    failures:
        One :class:`RankFailure` or an iterable of them.
    seed:
        Recorded for provenance (the convenience constructors derive
        their random choices from it); the plan itself is fully
        deterministic once built.
    """

    def __init__(
        self,
        failures: Union[RankFailure, Iterable[RankFailure]],
        seed: int = 0,
    ) -> None:
        if isinstance(failures, RankFailure):
            failures = [failures]
        self.failures: List[RankFailure] = list(failures)
        self.seed = int(seed)
        self._fired: set = set()

    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls, rank: int, phase: str, op_index: int = 0, seed: int = 0
    ) -> "RankFailurePlan":
        """Plan killing exactly one rank at one phase op."""
        return cls(RankFailure(rank, phase, op_index), seed=seed)

    @classmethod
    def random_failures(
        cls,
        n_ranks: int,
        count: int = 1,
        seed: int = 0,
        phases: Sequence[str] = PHASES,
        max_op: int = 60,
    ) -> "RankFailurePlan":
        """A seeded random plan of ``count`` deaths (for soak tests)."""
        rng = np.random.default_rng(seed)
        failures = [
            RankFailure(
                rank=int(rng.integers(n_ranks)),
                phase=str(phases[int(rng.integers(len(phases)))]),
                op_index=int(rng.integers(max_op)),
            )
            for _ in range(count)
        ]
        return cls(failures, seed=seed)

    # ------------------------------------------------------------------
    def due(self, phase: str, op_index: int) -> List[int]:
        """Ranks whose death triggers at this phase op (fires once each)."""
        out: List[int] = []
        for i, f in enumerate(self.failures):
            if i in self._fired:
                continue
            if f.phase == phase and f.op_index == op_index:
                self._fired.add(i)
                out.append(f.rank)
        return out

    @property
    def pending(self) -> int:
        """Scheduled deaths that have not fired yet."""
        return len(self.failures) - len(self._fired)

    def describe(self) -> str:
        """One line per scheduled failure."""
        return "; ".join(
            f"rank {f.rank} dies at {f.phase} op {f.op_index}"
            for f in self.failures
        ) or "no failures scheduled"


@dataclass(frozen=True)
class SlowRank:
    """One scheduled slowdown window.

    Attributes
    ----------
    rank:
        The physical rank that slows down (the plan describes *hosts*;
        elastic repartitions remap subdomains over them).
    factor:
        Multiplier on the rank's kernel and message times while the
        window is active; ``factor >= 1``.
    start:
        Window start, in model seconds on the run's clock.
    duration:
        Window length in model seconds (``math.inf`` for a permanent
        degradation).
    """

    rank: int
    factor: float
    start: float = 0.0
    duration: float = math.inf

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.factor < 1.0:
            raise ValueError(
                f"slowdown factor must be >= 1, got {self.factor}"
            )
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0.0:
            raise ValueError(
                f"duration must be positive, got {self.duration}"
            )

    def active_at(self, t: float) -> bool:
        """Whether the window covers model time ``t``."""
        return self.start <= t < self.start + self.duration


class StragglerPlan:
    """A deterministic set of scheduled slow-rank windows.

    The time axis is the *model clock* of whatever run consumes the
    plan (the serving clock for :class:`~repro.serve.service.SolverService`,
    a solve-relative clock for standalone pricing).  Overlapping windows
    on the same rank compose by taking the worst (largest) factor.
    """

    def __init__(
        self,
        slow_ranks: Union[SlowRank, Iterable[SlowRank]],
        seed: int = 0,
    ) -> None:
        if isinstance(slow_ranks, SlowRank):
            slow_ranks = [slow_ranks]
        self.slow_ranks: List[SlowRank] = list(slow_ranks)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        rank: int,
        factor: float,
        start: float = 0.0,
        duration: float = math.inf,
        seed: int = 0,
    ) -> "StragglerPlan":
        """Plan slowing exactly one rank for one window."""
        return cls(SlowRank(rank, factor, start, duration), seed=seed)

    @classmethod
    def random_stragglers(
        cls,
        n_ranks: int,
        count: int = 1,
        seed: int = 0,
        factor_range: Sequence[float] = (2.0, 8.0),
        horizon: float = 100.0,
        duration_range: Sequence[float] = (10.0, 50.0),
    ) -> "StragglerPlan":
        """A seeded random plan of ``count`` slowdowns (for soak tests)."""
        rng = np.random.default_rng(seed)
        lo_f, hi_f = float(factor_range[0]), float(factor_range[1])
        lo_d, hi_d = float(duration_range[0]), float(duration_range[1])
        slow = [
            SlowRank(
                rank=int(rng.integers(n_ranks)),
                factor=float(lo_f + (hi_f - lo_f) * rng.random()),
                start=float(horizon * rng.random()),
                duration=float(lo_d + (hi_d - lo_d) * rng.random()),
            )
            for _ in range(count)
        ]
        return cls(slow, seed=seed)

    # ------------------------------------------------------------------
    @property
    def ranks(self) -> List[int]:
        """Distinct physical ranks with at least one window (sorted)."""
        return sorted({s.rank for s in self.slow_ranks})

    def factor_at(self, rank: int, t: float) -> float:
        """Inflation factor of ``rank`` at model time ``t`` (1.0 if healthy)."""
        factor = 1.0
        for s in self.slow_ranks:
            if s.rank == rank and s.active_at(t):
                factor = max(factor, s.factor)
        return factor

    def factors_at(self, t: float, n_ranks: int) -> np.ndarray:
        """Per-rank inflation factors at model time ``t`` (length ``n_ranks``)."""
        out = np.ones(n_ranks, dtype=np.float64)
        for s in self.slow_ranks:
            if s.rank < n_ranks and s.active_at(t):
                out[s.rank] = max(out[s.rank], s.factor)
        return out

    def slow_at(self, t: float) -> List[int]:
        """Ranks with an active window at model time ``t`` (sorted)."""
        return sorted({s.rank for s in self.slow_ranks if s.active_at(t)})

    def remaining(self, rank: int, t: float) -> float:
        """Model seconds of slowdown left for ``rank`` at time ``t``.

        Zero when no window of ``rank`` is active at ``t``; the maximum
        remaining span when several overlap.
        """
        rem = 0.0
        for s in self.slow_ranks:
            if s.rank == rank and s.active_at(t):
                rem = max(rem, s.start + s.duration - t)
        return rem

    # -- SimComm hook ---------------------------------------------------
    def is_slow_channel(self, src: int, dst: int, tag: int) -> bool:
        """Whether a message on ``(src, dst, tag)`` touches a slow rank.

        :class:`~repro.runtime.simmpi.SimComm` consults this (as
        ``slow_plan``) on every send to tally ``delayed`` messages --
        the op-count honesty check that the straggler's traffic really
        crosses the channels the pricing inflates.  Window timing is
        ignored here: the sequential simulator has no clock, so any
        planned window marks the rank's channels.
        """
        slow = {s.rank for s in self.slow_ranks}
        return src in slow or dst in slow

    def describe(self) -> str:
        """One line per scheduled slowdown."""
        return "; ".join(
            f"rank {s.rank} x{s.factor:g} for "
            + ("ever" if math.isinf(s.duration) else f"{s.duration:g}s")
            + f" from t={s.start:g}"
            for s in self.slow_ranks
        ) or "no stragglers scheduled"
