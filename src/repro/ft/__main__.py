"""Rank-loss chaos driver: the kill matrix as an executable check.

``PYTHONPATH=src python -m repro.ft`` sweeps kill-phase
(``setup`` / ``apply`` / ``reduce``) x recovery strategy
(``shrink`` / ``respawn``) over a Laplace and a nearly-incompressible
(``nu = 0.49``) elasticity problem, plus per problem:

* a **control** arm (protection off) that must raise
  :class:`~repro.ft.comm.RankFailedError` -- proving the scheduled
  death is real and the recovery is doing the work, and
* a **fault-free** arm measuring the checkpoint overhead against the
  modeled solve time.

Results land in ``BENCH_ft.json`` (``--out``); the CI ``chaos-ft`` job
fails when any recovered arm misses the 1e-7 tolerance, any recovered
arm needs more than twice the fault-free iterations, any control arm
survives, or the fault-free checkpoint overhead exceeds 5% of the
modeled solve time.  Exit status: 0 when every cell behaves.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

__all__ = ["main", "run_matrix"]

_RTOL = 1e-7
#: kill op indexes a few operations into each phase, so setup kills
#: strike after the sequential build and apply/reduce kills strike a
#: few iterations in (checkpoints may or may not exist -- both paths
#: are exercised; recovery must handle either)
_KILL_OPS = {"setup": 2, "apply": 30, "reduce": 10}
_KILL_RANK = 1
#: iteration budget multiplier the recovered arms must stay within
_ITER_FACTOR = 2.0
#: modeled checkpoint overhead budget of the fault-free arm
_OVERHEAD_BUDGET = 0.05


def _problems(which: str):
    from repro.fem import elasticity_3d, laplace_3d

    out = []
    if which in ("laplace", "all"):
        out.append(("laplace", laplace_3d(6)))
    if which in ("elasticity", "all"):
        out.append(("elasticity", elasticity_3d(4, poisson_ratio=0.49)))
    return out


def _session(problem, ft_config):
    from repro.api import KrylovConfig, SolverSession

    return SolverSession(
        problem,
        partition=(2, 2, 1),
        krylov=KrylovConfig(rtol=_RTOL),
        policy=ft_config or None,
    )


def _cell(problem, baseline_iters: int, phase: str, strategy: str,
          seed: int):
    """One protected kill cell; returns a record dict."""
    from repro.ft import FaultToleranceConfig, RankFailurePlan

    plan = RankFailurePlan.single(
        _KILL_RANK, phase, _KILL_OPS[phase], seed=seed
    )
    cfg = FaultToleranceConfig(plan=plan, strategy=strategy)
    res = _session(problem, cfg).solve()
    recovered = bool(
        res.converged
        and np.all(np.isfinite(res.x))
        and res.final_relres <= _RTOL * 1.01
    )
    within_budget = res.iterations <= _ITER_FACTOR * baseline_iters
    return {
        "phase": phase,
        "strategy": strategy,
        "ok": recovered and within_budget and res.ft.recoveries >= 1,
        "status": str(res.status),
        "iterations": int(res.iterations),
        "baseline_iterations": int(baseline_iters),
        "final_relres": float(res.final_relres),
        "recoveries": int(res.ft.recoveries),
        "failures": len(res.ft.failures),
        "checkpoints": int(res.ft.checkpoints),
        "lost_segments": res.ft.lost_segments,
        "n_ranks_final": int(res.n_ranks),
        "actions": [
            {"kind": act.kind, "rank": act.rank, "detail": act.detail}
            for act in (res.health.actions if res.health else [])
        ],
    }


def _control_cell(problem, seed: int):
    """Protection off: the death must take the solve down."""
    from repro.ft import (
        FaultToleranceConfig,
        RankFailedError,
        RankFailurePlan,
    )

    plan = RankFailurePlan.single(
        _KILL_RANK, "apply", _KILL_OPS["apply"], seed=seed
    )
    cfg = FaultToleranceConfig(plan=plan, protect=False)
    try:
        res = _session(problem, cfg).solve()
    except RankFailedError as err:
        return {
            "phase": "apply", "strategy": "none", "arm": "control",
            "ok": True, "detail": f"raised RankFailedError: {err}",
        }
    return {
        "phase": "apply", "strategy": "none", "arm": "control",
        "ok": False,
        "detail": "unguarded run survived a rank death: "
                  f"status={res.status} relres={res.final_relres:.2e}",
    }


def _fault_free_cell(problem, baseline):
    """Protected but fault-free: bit-identity + checkpoint overhead."""
    from repro.ft import FaultToleranceConfig
    from repro.runtime.layout import JobLayout

    res = _session(problem, FaultToleranceConfig()).solve()
    identical = bool(
        np.array_equal(res.x, baseline.x)
        and res.iterations == baseline.iterations
        and res.reduces == baseline.reduces
    )
    layout = JobLayout.cpu_run(1, ranks_per_node=res.n_ranks)
    modeled = res.timings(layout).total_seconds
    ckpt = res.ft.modeled_checkpoint_seconds(layout)
    overhead = ckpt / max(modeled, 1e-300)
    return {
        "arm": "fault_free",
        "ok": identical and overhead <= _OVERHEAD_BUDGET,
        "bit_identical": identical,
        "checkpoints": int(res.ft.checkpoints),
        "checkpoint_doubles": int(res.ft.checkpoint_doubles),
        "modeled_solve_seconds": float(modeled),
        "modeled_checkpoint_seconds": float(ckpt),
        "checkpoint_overhead": float(overhead),
        "overhead_budget": _OVERHEAD_BUDGET,
    }


def run_matrix(which: str = "all", seed: int = 7, out=sys.stdout) -> dict:
    """Run the kill matrix; returns the BENCH_ft document."""
    from repro.ft.plan import PHASES

    doc = {"seed": int(seed), "rtol": _RTOL, "problems": {}}
    bad = 0
    for pname, problem in _problems(which):
        baseline = _session(problem, False).solve()
        cells = []
        for phase in PHASES:
            for strategy in ("shrink", "respawn"):
                rec = _cell(problem, baseline.iterations, phase, strategy,
                            seed)
                cells.append(rec)
                mark = "ok " if rec["ok"] else "BAD"
                print(
                    f"[{mark}] {pname:<10} kill@{phase:<6} {strategy:<7} "
                    f"status={rec['status']} iters={rec['iterations']}"
                    f"/{rec['baseline_iterations']} "
                    f"relres={rec['final_relres']:.2e}",
                    file=out,
                )
                bad += 0 if rec["ok"] else 1
        for rec in (_control_cell(problem, seed),
                    _fault_free_cell(problem, baseline)):
            cells.append(rec)
            mark = "ok " if rec["ok"] else "BAD"
            arm = rec["arm"]
            detail = rec.get("detail") or (
                f"overhead={rec['checkpoint_overhead']:.2%} "
                f"bit_identical={rec['bit_identical']}"
            )
            print(f"[{mark}] {pname:<10} {arm:<16} {detail}", file=out)
            bad += 0 if rec["ok"] else 1
        doc["problems"][pname] = {
            "baseline_iterations": int(baseline.iterations),
            "cells": cells,
        }
    doc["bad"] = bad
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ft",
        description="run the deterministic rank-loss kill matrix",
    )
    parser.add_argument(
        "--problem", choices=("laplace", "elasticity", "all"),
        default="all", help="which problem family to kill (default: all)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="failure-plan seed (default: 7)"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the matrix as JSON on stdout (human lines go to stderr)",
    )
    parser.add_argument(
        "--out", default="BENCH_ft.json",
        help="benchmark document path (default: BENCH_ft.json)",
    )
    args = parser.parse_args(argv)
    human = sys.stderr if args.json else sys.stdout
    doc = run_matrix(which=args.problem, seed=args.seed, out=human)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    if args.json:
        json.dump(doc, sys.stdout, indent=2)
        print()
    if doc["bad"]:
        print(f"{doc['bad']} kill cell(s) misbehaved", file=sys.stderr)
        return 1
    print("kill matrix clean", file=human)
    return 0


if __name__ == "__main__":
    sys.exit(main())
