"""ULFM-style fault-tolerant communicator over :class:`SimComm`.

MPI's User-Level Failure Mitigation (ULFM) proposal defines the
semantics this wrapper simulates: a process death is *not* detected by
the dying rank (it is gone) but by the survivors, whose next
communication operation involving the dead rank returns
``MPI_ERR_PROC_FAILED``.  Collectives fail for everyone; point-to-point
between two survivors keeps working.  The application then repairs the
communicator -- ``MPI_Comm_shrink`` (continue with fewer ranks) or a
respawn/``MPI_Comm_spawn`` cycle (replace the dead process) -- and
resumes.

:class:`FaultTolerantComm` reproduces exactly that surface on top of a
sequential :class:`~repro.runtime.simmpi.SimComm`:

* a :class:`~repro.ft.plan.RankFailurePlan` kills ranks at chosen
  (phase, op) points;
* every ``send``/``recv``/``allreduce``/``barrier`` first polls the
  plan, then raises :class:`RankFailedError` -- naming the dead ranks,
  the phase, and the failing operation -- under the ULFM involvement
  rules above;
* :meth:`shrink` / :meth:`respawn` repair the communicator.

The underlying ``SimComm`` calls run with the ambient tracer masked
(``use_tracer(None)``): the fault-tolerance traffic (halo replays,
checkpoints) is *extra* modeled communication that must not perturb the
session tracer's ``reduces``/``messages`` counters -- the fault-free
bit-identity regression pins those against non-FT runs.  The FT layer
instead tallies its own ``ft_failures`` / ``ft_recoveries`` counters
(and the checkpoint layer ``ft_checkpoint_doubles``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.ft.plan import PHASES, RankFailurePlan
from repro.obs import get_tracer, use_tracer
from repro.resilience.inject import FaultEvent
from repro.runtime.simmpi import SimComm

__all__ = ["RankFailedError", "FaultTolerantComm", "CHECKPOINT_TAG"]

#: message tag reserved for checkpoint replication traffic
CHECKPOINT_TAG = 7


class RankFailedError(RuntimeError):
    """A communication operation touched a failed rank (ULFM
    ``MPI_ERR_PROC_FAILED``).

    Attributes
    ----------
    dead_ranks:
        Every currently-failed rank (what ``MPIX_Comm_failure_ack`` +
        ``get_acked`` would report).
    phase:
        Solver phase the failing operation belonged to.
    op:
        The operation that surfaced the failure (``send(src=..,dst=..)``
        style).
    """

    def __init__(
        self, dead_ranks: Sequence[int], phase: str, op: str, message: str
    ) -> None:
        super().__init__(message)
        self.dead_ranks: Tuple[int, ...] = tuple(int(r) for r in dead_ranks)
        self.phase = phase
        self.op = op


class FaultTolerantComm:
    """A :class:`SimComm` with ULFM failure semantics and repair.

    Parameters
    ----------
    size:
        Initial rank count.
    plan:
        Scheduled deaths (:class:`~repro.ft.plan.RankFailurePlan`);
        None never kills (but :meth:`kill` still works for tests).

    Attributes
    ----------
    base:
        The live underlying :class:`SimComm` (replaced on repair).
    alive:
        Per-rank liveness flags.
    phase:
        Current solver phase (set by the driver via :meth:`set_phase`);
        plan lookups and error messages are keyed on it.
    failures:
        Every death as a :class:`~repro.resilience.inject.FaultEvent`
        (kind ``"rank_loss"``), for the health report.
    ft_failures, ft_recoveries:
        Counters, also tallied onto the ambient tracer under the same
        keys.
    """

    def __init__(self, size: int, plan: Optional[RankFailurePlan] = None) -> None:
        self.base = SimComm(size)
        self.alive: List[bool] = [True] * size
        self.plan = plan
        self.phase = "setup"
        self._phase_ops = {p: 0 for p in PHASES}
        self.failures: List[FaultEvent] = []
        self.ft_failures = 0
        self.ft_recoveries = 0
        #: retired SimComms from previous repair epochs (counter history)
        self.retired: List[SimComm] = []

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current rank count (shrinks after :meth:`shrink`)."""
        return self.base.size

    def set_phase(self, phase: str) -> None:
        """Enter a solver phase (``setup`` / ``apply`` / ``reduce``)."""
        if phase not in PHASES:
            raise ValueError(
                f"unknown phase {phase!r}; valid phases: "
                + ", ".join(repr(p) for p in PHASES)
            )
        self.phase = phase

    def dead_ranks(self) -> List[int]:
        """Currently-failed ranks, ascending."""
        return [r for r, ok in enumerate(self.alive) if not ok]

    def n_alive(self) -> int:
        """Surviving rank count."""
        return sum(self.alive)

    # ------------------------------------------------------------------
    def kill(self, rank: int) -> None:
        """Mark ``rank`` failed (the plan's hook; tests call it directly)."""
        if not (0 <= rank < self.size) or not self.alive[rank]:
            return
        self.alive[rank] = False
        self.ft_failures += 1
        event = FaultEvent(
            "rank_loss",
            rank,
            f"rank {rank} died during {self.phase} "
            f"(op {self._phase_ops[self.phase]})",
        )
        self.failures.append(event)
        tr = get_tracer()
        tr.count("ft_failures", 1.0)
        sp = tr.current
        sp.annotate(ft_last_failure=event.detail)

    def _tick(self) -> None:
        """Advance the phase op counter and fire any due deaths."""
        idx = self._phase_ops[self.phase]
        self._phase_ops[self.phase] = idx + 1
        if self.plan is not None:
            for rank in self.plan.due(self.phase, idx):
                self.kill(rank)

    def _raise_failed(self, op: str) -> None:
        dead = self.dead_ranks()
        raise RankFailedError(
            dead,
            self.phase,
            op,
            f"rank(s) {dead} failed: {op} during {self.phase} returned "
            f"MPI_ERR_PROC_FAILED; shrink() or respawn() must repair the "
            f"communicator before further collectives "
            f"({self.n_alive()}/{self.size} ranks alive)",
        )

    def _p2p_check(self, op: str, src: int, dst: int) -> None:
        # ULFM: point-to-point between survivors keeps working; only an
        # endpoint's death surfaces the error
        bad = [
            r for r in (src, dst) if 0 <= r < self.size and not self.alive[r]
        ]
        if bad:
            self._raise_failed(op)

    def _collective_check(self, op: str) -> None:
        # ULFM: a collective over a communicator with any failed rank
        # raises on every survivor
        if self.n_alive() != self.size:
            self._raise_failed(op)

    # -- the SimComm surface -------------------------------------------
    def send(self, src: int, dst: int, payload: Any, tag: int = 0) -> None:
        """Point-to-point send; raises if either endpoint is dead."""
        self._tick()
        self._p2p_check(f"send(src={src}, dst={dst}, tag={tag})", src, dst)
        with use_tracer(None):
            self.base.send(src, dst, payload, tag=tag)

    def recv(self, dst: int, src: int, tag: int = 0) -> Any:
        """Point-to-point receive; raises if either endpoint is dead."""
        self._tick()
        self._p2p_check(f"recv(dst={dst}, src={src}, tag={tag})", src, dst)
        with use_tracer(None):
            return self.base.recv(dst, src, tag=tag)

    def allreduce(self, contributions: List[np.ndarray]) -> np.ndarray:
        """Collective sum; raises on every survivor if any rank is dead."""
        self._tick()
        self._collective_check("allreduce")
        with use_tracer(None):
            return self.base.allreduce(contributions)

    def barrier(self) -> None:
        """Collective barrier; raises if any rank is dead."""
        self._tick()
        self._collective_check("barrier")
        with use_tracer(None):
            self.base.barrier()

    # -- repair ---------------------------------------------------------
    def shrink(self) -> List[int]:
        """Repair by dropping failed ranks (``MPIX_Comm_shrink``).

        Returns the old-rank -> new-rank mapping (-1 for dead ranks).
        The underlying ``SimComm`` is replaced: in-flight messages of
        the failed epoch are discarded (their senders may be dead), and
        the retired communicator is kept for cumulative statistics.
        """
        mapping = []
        new = 0
        for ok in self.alive:
            mapping.append(new if ok else -1)
            new += 1 if ok else 0
        self._retire(SimComm(new))
        return mapping

    def respawn(self) -> List[int]:
        """Repair by replacing failed ranks (spawn + reconnect).

        Rank numbering is preserved -- the replacement process takes
        over the dead rank's slot (and must rebuild its state from a
        checkpoint; that is the driver's job).  Returns the dead ranks
        that were replaced.
        """
        replaced = self.dead_ranks()
        self._retire(SimComm(self.size))
        return replaced

    def _retire(self, new_base: SimComm) -> None:
        self.retired.append(self.base)
        self.base = new_base
        self.alive = [True] * new_base.size
        self.ft_recoveries += 1
        get_tracer().count("ft_recoveries", 1.0)

    # -- statistics -----------------------------------------------------
    def total_counter(self, name: str) -> int:
        """Cumulative op counter across all repair epochs."""
        return sum(
            getattr(c, name) for c in self.retired + [self.base]
        )
