"""The fault-tolerant solve driver: detect, repair, restart.

:func:`solve_fault_tolerant` runs one :class:`~repro.api.SolverSession`
solve with rank-loss protection.  The numerics are byte-for-byte the
session's own (the same sequential Krylov iteration on the same global
operator); what changes is the *communication*: every preconditioner
application replays its halo import and coarse-residual allreduce
through a :class:`~repro.ft.comm.FaultTolerantComm`, every Krylov
global reduction routes its values through one fault-tolerant
``allreduce``, and the setup phase replays the overlap import -- so a
scheduled process death surfaces exactly where a distributed run would
see it, as a :class:`~repro.ft.comm.RankFailedError` in the middle of
the phase the plan names.

On a failure the driver walks the rank-loss rung of the escalation
ladder (:mod:`repro.resilience.policy`):

1. drop the dead ranks' checkpoint copies
   (:meth:`CheckpointStore.on_failure` -- buddies keep the replicas);
2. repair the communicator (``shrink`` or ``respawn``, per
   :class:`FaultToleranceConfig`);
3. repair the preconditioner (merge the dead subdomain away, or
   refactorize the dead rank in place with a fingerprint check);
4. replay the setup exchange on the repaired communicator (a second
   scheduled setup death can fire here);
5. interpolated restart: reassemble the iterate from surviving
   checkpoint copies, coarse-fill the lost segments, and re-anchor the
   tolerance to the original initial residual
   (:func:`repro.ft.recovery.interpolated_restart`).

Bit-identity contract: a *fault-free* run through this driver (no plan,
or a plan that never fires) produces the same iterates, the same
residual history, and the same ``reduces``/``reduce_doubles`` counters
as ``SolverSession.solve`` -- the FT reductions contribute
``[v, 0, ..., 0]`` (``x + 0.0 == x`` bitwise), the FT comm masks the
ambient tracer around its own base ops, and :class:`FtReduceCounter`
tallies exactly what :class:`~repro.obs.tracer.TracerReduceCounter`
would.  ``tests/ft`` pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.dd.precision import HalfPrecisionOperator
from repro.ft.checkpoint import CheckpointStore
from repro.ft.comm import FaultTolerantComm, RankFailedError
from repro.ft.plan import RankFailurePlan
from repro.ft.recovery import (
    _unwrap,
    interpolated_restart,
    local_fingerprints,
    rank_loss_action,
    repair_respawn,
    repair_shrink,
)
from repro.obs import Tracer
from repro.resilience.policy import RecoveryAction

__all__ = [
    "STRATEGIES",
    "FaultToleranceConfig",
    "FtOperator",
    "FtReport",
    "solve_fault_tolerant",
]

#: valid rank-loss recovery strategies
STRATEGIES = ("shrink", "respawn")

#: message tag of the apply-phase halo import replay
HALO_TAG = 4
#: message tag of the setup-phase overlap import replay
SETUP_TAG = 5


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Rank-loss protection knobs (``SolverSession(fault_tolerance=)``).

    Attributes
    ----------
    plan:
        Scheduled deaths (:class:`~repro.ft.plan.RankFailurePlan`);
        None runs fully protected but fault-free.
    strategy:
        ``"shrink"`` merges a dead subdomain into a neighbor and
        continues with fewer ranks; ``"respawn"`` replaces the dead
        process and rebuilds its state from checkpoint.
    checkpoint_interval:
        Snapshot cadence in Krylov iterations (GMRES snapshots at the
        first cycle boundary past the cadence).
    protect:
        False is the control arm: no recovery --
        :class:`~repro.ft.comm.RankFailedError` propagates to the
        caller, demonstrating what an unguarded run does.
    max_failures:
        Recovery budget; one more failure than this raises.
    """

    plan: Optional[RankFailurePlan] = None
    strategy: str = "shrink"
    checkpoint_interval: int = 5
    protect: bool = True
    max_failures: int = 4

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown rank-loss strategy {self.strategy!r}; valid "
                "values: " + ", ".join(repr(s) for s in STRATEGIES)
            )
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval}"
            )
        if self.max_failures < 0:
            raise ValueError(
                f"max_failures must be >= 0, got {self.max_failures}"
            )


class FtReduceCounter:
    """A reduction counter that routes values through the FT comm.

    Drop-in for :class:`~repro.obs.tracer.TracerReduceCounter`: same
    tallies onto the tracer's active span, same returned values.  The
    routing is bit-identical -- rank 0 contributes the values, every
    other rank zeros, and IEEE-754 guarantees ``v + 0.0 == v`` bitwise
    for every finite (and NaN) ``v`` -- but the allreduce now *counts
    as a collective* on the fault-tolerant communicator, so a death
    scheduled in the ``reduce`` phase fires here.
    """

    __slots__ = ("tracer", "comm", "count", "doubles")

    def __init__(self, tracer, comm: FaultTolerantComm) -> None:
        self.tracer = tracer
        self.comm = comm
        self.count = 0
        self.doubles = 0

    def allreduce(self, values: np.ndarray) -> np.ndarray:
        values = np.atleast_1d(np.asarray(values))
        comm = self.comm
        comm.set_phase("reduce")
        contributions = [
            values if r == 0 else np.zeros_like(values, dtype=np.float64)
            for r in range(comm.size)
        ]
        out = comm.allreduce(contributions)
        self.count += 1
        self.doubles += int(values.size)
        t = self.tracer
        t.count("reduces", 1.0)
        t.count("reduce_doubles", float(values.size))
        return out

    def reset(self) -> None:
        self.count = 0
        self.doubles = 0


class FtTracer(Tracer):
    """Session tracer whose Krylov reductions go through the FT comm.

    The Krylov solvers obtain their reduction counter from the ambient
    tracer (``tr.reduce_counter()``); overriding that hook is how the
    driver threads the fault-tolerant communicator under the unchanged
    solver code.
    """

    def __init__(self, ft_comm: Optional[FaultTolerantComm] = None) -> None:
        super().__init__()
        self.ft_comm = ft_comm

    def reduce_counter(self):
        if self.ft_comm is None:  # before the comm exists: plain counting
            return super().reduce_counter()
        return FtReduceCounter(self, self.ft_comm)


class FtOperator:
    """Preconditioner wrapper replaying per-apply FT communication.

    The wrapped operator's numerics are untouched (``apply`` delegates
    to it, sequentially, bit-identically); what this wrapper adds is
    the *communication shape* of one distributed application, moved
    through the fault-tolerant communicator so scheduled deaths fire
    mid-apply:

    * one aggregated halo-import message per rank with a nonempty
      overlap ghost region (tag :data:`HALO_TAG`), and
    * one coarse-residual allreduce when a coarse space exists.

    Cost-model calls (``rank_apply_profile``, ``halo_doubles``, ...)
    and attribute lookups delegate to the wrapped operator, so
    ``SessionResult.timings`` prices an FT run like a plain one.
    """

    def __init__(self, inner, comm: FaultTolerantComm) -> None:
        self.inner = inner
        self.comm = comm
        self._rebuild_plans()

    def _rebuild_plans(self) -> None:
        gdsw = _unwrap(self.inner)
        dec = gdsw.dec
        owner = dec.node_owner
        #: per rank: (peer rank shipping the aggregated halo, ghost dofs)
        self._halo = []
        for r, ns in enumerate(gdsw.one_level.node_sets):
            ghost_nodes = ns[owner[ns] != r]
            dofs = dec.dofs_of_nodes(ghost_nodes)
            neighbors = dec.neighbors_of(r)
            peer = neighbors[0] if neighbors else None
            self._halo.append((peer, dofs))
        self._n_coarse = int(gdsw.n_coarse)
        self._has_coarse = gdsw.phi is not None and self._n_coarse > 0

    def rebind(self, inner) -> None:
        """Point at a repaired operator and re-derive the comm plans."""
        self.inner = inner
        self._rebuild_plans()

    def apply(self, v: np.ndarray) -> np.ndarray:
        comm = self.comm
        comm.set_phase("apply")
        for r, (peer, dofs) in enumerate(self._halo):
            if peer is None or dofs.size == 0:
                continue
            comm.send(peer, r, v[dofs], tag=HALO_TAG)
            comm.recv(r, peer, tag=HALO_TAG)
        y = self.inner.apply(v)
        if self._has_coarse:
            # the coarse residual enters the replicated coarse solve
            # through one allreduce of n_coarse doubles
            contributions = [
                np.zeros(self._n_coarse) for _ in range(comm.size)
            ]
            comm.allreduce(contributions)
        return y

    def __getattr__(self, name):
        # cost-model interface (rank_*_profile, halo_doubles, n_coarse,
        # dec, phi, coarse, ...) delegates to the wrapped operator
        return getattr(self.inner, name)


class _RecordingGuard:
    """Per-iteration recorder (no intervention), chainable."""

    def __init__(self, inner=None) -> None:
        self.inner = inner
        self.iters = 0
        self.history: List[float] = []

    def on_residual(self, it: int, rn: float):
        self.iters = it
        self.history.append(float(rn))
        if self.inner is not None:
            return self.inner.on_residual(it, rn)
        return None


class _CheckpointHook:
    """CG callback / GMRES observer taking snapshots on cadence.

    Snapshot points: CG checkpoints every ``interval`` iterations via
    the solver callback; GMRES checkpoints at the first cycle boundary
    at least ``interval`` iterations past the previous snapshot (the
    iterate only materializes at cycle ends), shipping the last basis
    vector alongside the owned solution segments.
    """

    def __init__(
        self,
        store: CheckpointStore,
        comm: FaultTolerantComm,
        operator,
        guard: _RecordingGuard,
        base_iters: int = 0,
        inner_observer=None,
    ) -> None:
        self.store = store
        self.comm = comm
        self.operator = operator
        self.guard = guard
        self.base_iters = base_iters
        self.inner_observer = inner_observer
        self._last_snapshot = base_iters
        self._fingerprints: Optional[List[str]] = None

    def fingerprints(self) -> List[str]:
        if self._fingerprints is None:
            self._fingerprints = local_fingerprints(self.operator)
        return self._fingerprints

    def _maybe_snapshot(self, iters: int, x, basis_tail=None) -> None:
        if iters - self._last_snapshot < self.store.interval:
            return
        if not np.all(np.isfinite(x)):
            return
        self.store.snapshot(
            self.comm, iters, x,
            fingerprints=self.fingerprints(),
            basis_tail=basis_tail,
        )
        self._last_snapshot = iters

    # -- CG callback interface -----------------------------------------
    def cg_callback(self, it: int, x: np.ndarray) -> None:
        self._maybe_snapshot(self.base_iters + it, x)

    # -- GMRES observer interface --------------------------------------
    def on_cycle(self, basis, x, estimate, true_norm=None) -> None:
        if self.inner_observer is not None:
            self.inner_observer.on_cycle(
                basis=basis, x=x, estimate=estimate, true_norm=true_norm
            )
        tail = basis[-1] if len(basis) else None
        self._maybe_snapshot(self.base_iters + self.guard.iters, x, tail)


@dataclass
class FtReport:
    """What the fault-tolerance layer saw and did during one solve.

    Attached to :class:`~repro.api.SessionResult` as ``result.ft``.
    """

    strategy: str
    #: every rank death, as recorded by the communicator
    failures: List[object] = field(default_factory=list)
    recoveries: int = 0
    checkpoints: int = 0
    checkpoint_doubles: int = 0
    #: segments no checkpoint copy survived for (coarse-filled), per
    #: recovery
    lost_segments: List[List[int]] = field(default_factory=list)
    #: residual norm at each interpolated restart
    restart_residuals: List[float] = field(default_factory=list)
    store: Optional[CheckpointStore] = field(default=None, repr=False)

    def modeled_checkpoint_seconds(self, layout) -> float:
        """Modeled replication cost of every snapshot under ``layout``."""
        return self.store.modeled_seconds(layout) if self.store else 0.0

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"fault tolerance ({self.strategy}): "
            f"{len(self.failures)} failure(s), {self.recoveries} "
            f"recovery(ies), {self.checkpoints} checkpoint(s) "
            f"({self.checkpoint_doubles} doubles replicated)"
        ]
        for f in self.failures:
            lines.append(f"  - {f.detail}")
        for i, (lost, rn) in enumerate(
            zip(self.lost_segments, self.restart_residuals)
        ):
            lines.append(
                f"  restart {i + 1}: residual {rn:.3e}, "
                f"coarse-filled segments {lost or 'none'}"
            )
        return "\n".join(lines)


def _setup_exchange(ft_op: FtOperator, comm: FaultTolerantComm) -> None:
    """Replay the setup-phase overlap import through the FT comm.

    One aggregated message per rank with a ghost region (tag
    :data:`SETUP_TAG`) plus a closing barrier -- the communication of
    building the overlapping subdomain matrices.  A death scheduled in
    the ``setup`` phase fires here, *after* the sequential build, so a
    repairable preconditioner exists when the error unwinds (exactly
    the ULFM situation: survivors hold their state, the dead rank's
    contribution is lost).
    """
    from repro.obs import get_tracer

    comm.set_phase("setup")
    with get_tracer().span("ft/setup_exchange"):
        for r, (peer, dofs) in enumerate(ft_op._halo):
            if peer is None or dofs.size == 0:
                continue
            comm.send(peer, r, np.zeros(min(dofs.size, 1)), tag=SETUP_TAG)
            comm.recv(r, peer, tag=SETUP_TAG)
        comm.barrier()


def _rewrap(template, repaired):
    """Re-apply the session's precision wrapper to a repaired operator."""
    if isinstance(template, HalfPrecisionOperator):
        return HalfPrecisionOperator(repaired)
    return repaired


def _recover(
    err: RankFailedError,
    ft: FaultToleranceConfig,
    operator,
    ft_op: FtOperator,
    comm: FaultTolerantComm,
    store: CheckpointStore,
    a,
    b: np.ndarray,
    target_abs: float,
    tracer: Tracer,
    actions: List[RecoveryAction],
    detections: List[str],
    report: FtReport,
):
    """One full pass of the rank-loss rung; returns the repaired state.

    Returns ``(operator, x0, rtol_eff)``.  May itself raise
    :class:`RankFailedError` if another scheduled death fires during
    the repair's setup exchange (the caller loops).
    """
    dead = list(err.dead_ranks)
    detections.append(
        f"rank loss detected: {err.op} during {err.phase} raised "
        f"MPI_ERR_PROC_FAILED for rank(s) {dead}"
    )
    with tracer.span("ft/recovery") as sp:
        sp.annotate(
            dead_ranks=str(dead), phase=err.phase, strategy=ft.strategy
        )
        # 1. the dead ranks' checkpoint copies died with them
        store.on_failure(dead)
        # 2. + 3. repair communicator and preconditioner
        if ft.strategy == "shrink":
            comm.shrink()
            repaired = repair_shrink(operator, dead)
            operator = _rewrap(operator, repaired)
            detail = (
                f"rank(s) {dead} lost during {err.phase}; shrank to "
                f"{comm.size} ranks, merged dead subdomain(s) into "
                f"neighbors ({_unwrap(operator).dec.n_subdomains} "
                f"subdomains remain)"
            )
        else:
            comm.respawn()
            lines = repair_respawn(operator, dead, store)
            detail = (
                f"rank(s) {dead} lost during {err.phase}; respawned "
                f"replacement(s): " + "; ".join(lines)
            )
        actions.append(rank_loss_action(dead, ft.strategy, detail))
        ft_op.rebind(operator)
        # 4. the repair's own communication (can re-fail)
        _setup_exchange(ft_op, comm)
        # 5. interpolated restart from the surviving checkpoint copies
        x0, rtol_eff, residual_now, lost = interpolated_restart(
            operator, a, b, store, target_abs
        )
        actions.append(
            RecoveryAction(
                "interpolated_restart",
                -1,
                f"restarted from surviving checkpoint copies "
                f"(coarse-filled segments: {lost or 'none'}); restart "
                f"residual {residual_now:.3e}, tolerance re-anchored to "
                f"rtol_eff={rtol_eff:.3e}",
            )
        )
        report.lost_segments.append(lost)
        report.restart_residuals.append(residual_now)
        # fresh checkpoint epoch on the repaired partition
        store.rebind(_unwrap(operator).dec)
    return operator, x0, rtol_eff


def solve_fault_tolerant(session, ft: FaultToleranceConfig):
    """Run ``session``'s solve under rank-loss protection.

    Returns the same :class:`~repro.api.SessionResult` shape as
    ``SolverSession.solve``, with ``result.ft`` holding the
    :class:`FtReport`, ``result.health`` the rank-loss actions, and
    ``result.status`` reading ``recovered`` when the solve converged
    after at least one repair.
    """
    from repro.api import SessionResult
    from repro.krylov import SolveStatus, cg, gmres, pipelined_cg
    from repro.obs import use_tracer
    from repro.resilience.engine import HealthReport

    kry = session.krylov
    problem = session.problem
    a, b = problem.a, problem.b
    tracer = FtTracer()
    actions: List[RecoveryAction] = []
    detections: List[str] = []
    report = FtReport(strategy=ft.strategy)

    with use_tracer(tracer):
        with tracer.span("setup") as sp:
            sp.annotate(
                config=session.config.describe(),
                partition=str(session.partition),
                fault_tolerance=ft.strategy,
            )
            operator = session.build_preconditioner()
        inner0 = _unwrap(operator)
        comm = FaultTolerantComm(inner0.dec.n_subdomains, plan=ft.plan)
        tracer.ft_comm = comm
        ft_op = FtOperator(operator, comm)
        store = CheckpointStore(inner0.dec, interval=ft.checkpoint_interval)
        # the convergence target stays anchored to the fault-free
        # initial residual (x0 = 0) across every recovery restart
        target_abs = kry.rtol * float(np.linalg.norm(b))

        pending: Optional[RankFailedError] = None
        try:
            _setup_exchange(ft_op, comm)
        except RankFailedError as exc:
            if not ft.protect:
                raise
            pending = exc

        x0: Optional[np.ndarray] = None
        rtol_eff = kry.rtol
        iterations = 0
        residual_norms: List[float] = []
        res = None
        while True:
            if pending is not None:
                if comm.ft_failures > ft.max_failures:
                    raise pending
                exc, pending = pending, None
                try:
                    operator, x0, rtol_eff = _recover(
                        exc, ft, operator, ft_op, comm, store, a, b,
                        target_abs, tracer, actions, detections, report,
                    )
                except RankFailedError as exc2:
                    if not ft.protect:
                        raise
                    pending = exc2
                    continue
            remaining = kry.maxiter - iterations
            if remaining < 1:
                break
            guard = _RecordingGuard()
            hook = _CheckpointHook(
                store, comm, operator, guard, base_iters=iterations
            )
            try:
                with tracer.span("krylov") as sp:
                    sp.annotate(method=kry.method)
                    if kry.method == "gmres":
                        res = gmres(
                            a, b, preconditioner=ft_op, x0=x0,
                            rtol=rtol_eff, restart=kry.restart,
                            maxiter=remaining, variant=kry.variant,
                            observer=hook, guard=guard,
                        )
                    elif kry.method == "cg":
                        res = cg(
                            a, b, preconditioner=ft_op, x0=x0,
                            rtol=rtol_eff, maxiter=remaining,
                            callback=hook.cg_callback, guard=guard,
                        )
                    else:
                        # pipelined_cg exposes no iterate callback; its
                        # recovery falls back to the coarse-interpolated
                        # restart alone
                        res = pipelined_cg(
                            a, b, preconditioner=ft_op, x0=x0,
                            rtol=rtol_eff, maxiter=remaining, guard=guard,
                        )
            except RankFailedError as exc:
                if not ft.protect:
                    raise
                # the failed attempt's completed iterations still count
                iterations += guard.iters
                residual_norms.extend(guard.history)
                pending = exc
                continue
            iterations += res.iterations
            residual_norms.extend(res.residual_norms)
            break
    tracer.finish()

    if res is None:  # maxiter exhausted before any attempt completed
        x = x0 if x0 is not None else np.zeros(a.n_rows)
        converged = False
        status = SolveStatus.MAXITER
    else:
        x = res.x
        converged = bool(res.converged)
        status = getattr(res, "status", SolveStatus.MAXITER)
    recoveries = comm.ft_recoveries
    if converged and recoveries:
        status = SolveStatus.RECOVERED

    report.failures = list(comm.failures)
    report.recoveries = recoveries
    report.checkpoints = store.snapshots
    report.checkpoint_doubles = store.doubles_shipped
    report.store = store

    health = HealthReport(
        status=str(status),
        faults=list(comm.failures),
        detections=detections,
        actions=actions,
        restarts=recoveries,
        refactorizations=sum(
            1 for act in actions if act.kind == "rank_respawn"
        ),
    )

    relres = float(
        np.linalg.norm(a.matvec(x) - b) / max(np.linalg.norm(b), 1e-300)
    )
    inner = _unwrap(operator)
    return SessionResult(
        x=x,
        iterations=iterations,
        converged=converged,
        residual_norms=residual_norms,
        reduces=tracer.reduces,
        reduce_doubles=tracer.reduce_doubles,
        final_relres=relres,
        n_coarse=inner.n_coarse,
        n_ranks=inner.dec.n_subdomains,
        precond=ft_op,
        trace=tracer.root,
        status=status,
        health=health,
        ft=report,
    )
