"""Rank-loss fault tolerance: ULFM-style recovery for the model runtime.

The :mod:`repro.resilience` ladder handles everything a *live* rank can
retry -- pivot breakdowns, diverging sweeps, overflow, stagnation.
This package handles the failure mode beyond all of those: the process
itself dies.  It simulates MPI's User-Level Failure Mitigation (ULFM)
semantics on top of :class:`~repro.runtime.simmpi.SimComm` and
implements the standard HPC recovery stack over it:

* :class:`FaultTolerantComm` -- survivors see
  :class:`RankFailedError` on any op touching a dead rank; repaired by
  :meth:`~FaultTolerantComm.shrink` or
  :meth:`~FaultTolerantComm.respawn`;
* :class:`RankFailurePlan` -- seeded, phase-keyed death schedules;
* :class:`CheckpointStore` -- diskless in-memory checkpoints with
  neighbor (buddy) replication, priced as halo traffic;
* :func:`~repro.ft.recovery.interpolated_restart` -- restart iterate
  from surviving checkpoint copies, lost segments filled by the GDSW
  coarse interpolation, tolerance re-anchored to the original residual;
* :func:`solve_fault_tolerant` / ``SolverSession(fault_tolerance=)`` --
  the driver threading all of the above through an unchanged Krylov
  solve;
* ``python -m repro.ft`` -- the chaos matrix (kill-phase x strategy)
  emitting ``BENCH_ft.json`` for the CI ``chaos-ft`` gate.
"""

from repro.ft.checkpoint import CheckpointStore
from repro.ft.comm import CHECKPOINT_TAG, FaultTolerantComm, RankFailedError
from repro.ft.driver import (
    STRATEGIES,
    FaultToleranceConfig,
    FtOperator,
    FtReport,
    solve_fault_tolerant,
)
from repro.ft.plan import (
    PHASES,
    RankFailure,
    RankFailurePlan,
    SlowRank,
    StragglerPlan,
)
from repro.ft.recovery import (
    interpolated_restart,
    local_fingerprints,
    rank_loss_action,
    repair_respawn,
    repair_shrink,
)

__all__ = [
    "PHASES",
    "STRATEGIES",
    "CHECKPOINT_TAG",
    "RankFailure",
    "RankFailurePlan",
    "SlowRank",
    "StragglerPlan",
    "RankFailedError",
    "FaultTolerantComm",
    "CheckpointStore",
    "FaultToleranceConfig",
    "FtOperator",
    "FtReport",
    "solve_fault_tolerant",
    "rank_loss_action",
    "local_fingerprints",
    "repair_shrink",
    "repair_respawn",
    "interpolated_restart",
]
