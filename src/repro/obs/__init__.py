"""Structured observability: span tracing, metrics, exporters.

The measurement substrate every paper table is derived from.  Run any
part of the stack under a :class:`Tracer` and the instrumented layers
(:mod:`repro.dd`, :mod:`repro.krylov`, :mod:`repro.direct`,
:mod:`repro.runtime`) record a hierarchical span trace -- wall times,
kernel-profile leaf events, reduction/message counters, rank
attribution -- which the exporters turn into a JSON-lines event stream,
a Chrome ``chrome://tracing`` file, or a paper-style phase table::

    from repro.obs import Tracer, use_tracer, chrome_trace_json

    tracer = Tracer()
    with use_tracer(tracer):
        result = gmres(a, b, preconditioner=m)
    tracer.finish()
    print(tracer.reduces)                  # == the legacy ReduceCounter
    open("trace.json", "w").write(chrome_trace_json(tracer.root))

The default ambient tracer is a shared no-op (:data:`NULL_TRACER`), so
untraced hot paths stay allocation-free.  See ``docs/observability.md``
for the span taxonomy and the table-to-query mapping.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracerReduceCounter,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    from_jsonl,
    modeled_total,
    phase_table,
    to_jsonl,
    wall_total,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "TracerReduceCounter",
    "chrome_trace",
    "chrome_trace_json",
    "from_jsonl",
    "get_tracer",
    "modeled_total",
    "phase_table",
    "set_tracer",
    "to_jsonl",
    "use_tracer",
    "wall_total",
]
