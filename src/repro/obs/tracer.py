"""Hierarchical span tracer and metrics registry.

The paper's entire contribution is a set of timing/counter breakdowns
(Tables II-VII, Figs. 4-5): setup vs. apply vs. reduction phases, per
rank, per kernel family.  This module provides the measurement
substrate those tables are derived from:

* :class:`Span` -- one node of a trace tree: a named phase with wall
  time, an optional modeled cost (priced via :mod:`repro.machine`),
  accumulated flop/byte/launch counters, rank attribution, and the
  :class:`~repro.machine.kernels.KernelProfile` leaf events it covers.
* :class:`Tracer` -- the ambient recorder: nested ``with
  tracer.span("setup/local_factor", rank=r):`` blocks build the tree;
  ``tracer.count("reduces")`` tallies events onto the active span.
* :class:`NullTracer` -- the module-level default.  Its ``span`` method
  returns one shared no-op object, so the untraced hot path performs no
  allocation per call.
* :class:`TracerReduceCounter` -- the global-reduction counter the
  Krylov solvers use when no explicit reducer is passed; it mirrors the
  legacy :class:`repro.krylov.reduce.ReduceCounter` interface while also
  tallying ``reduces``/``reduce_doubles`` onto the active span.

Span taxonomy (the names the instrumented stack emits)::

    setup/overlap        setup/local_factor   setup/coarse_basis
    setup/spgemm         setup/coarse_factor
    apply/local_solve    apply/coarse_solve
    krylov/spmv          krylov/orth          krylov/allreduce
    factor/symbolic      factor/numeric       comm/message
    reuse/skip_setup     reuse/refactor       reuse/local_refactor
    reuse/extension_refactor  reuse/coarse_refactor  reuse/recycle
    reuse/spectral_reuse reuse/spectral_rebuild
    serve/batch          serve/solve
    serve/admit          serve/shed           serve/retry
    serve/degrade        serve/autoscale
    ft/precond_repair    elastic/precond_repair
    elastic/scale_out    elastic/scale_in     elastic/scale_around

Counters use fixed keys: ``flops``, ``bytes``, ``launches`` (from
kernel profiles), ``reduces``, ``reduce_doubles`` (global reductions),
``messages``, ``bytes_sent`` (point-to-point traffic), and on the
serving spans ``batch_width``, ``block_width`` and
``queue_wait_seconds`` (request queueing against the modeled clock).
The SLO-guard spans count ``admitted``, ``shed``, ``retries`` and
``degraded_batches``; ``serve/shed`` annotates the shed reason and
``serve/degrade`` the ladder rungs and pressure that triggered them.
The elastic runtime adds ``delayed_messages`` (traffic crossing a
straggler's channels, from :class:`~repro.runtime.simmpi.SimComm`),
``reuse_invalidations`` (repartition dropping a pinned artifact), and
on the ``elastic/*`` spans ``repartition_seconds`` and the
scale-decision annotations (rank, reason, projected relief).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "TracerReduceCounter",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


class Span:
    """One node of a trace tree.

    Attributes
    ----------
    name:
        Hierarchical phase name, e.g. ``"setup/local_factor"``.
    rank:
        MPI-rank attribution (None for rank-agnostic phases).
    t0, t1:
        Wall-clock enter/exit stamps (``time.perf_counter`` seconds);
        None for purely modeled spans built by the pricing layer.
    modeled_seconds:
        Model-predicted cost of this span (via :mod:`repro.machine`
        pricing); None when no cost model was attached.
    counters:
        Accumulated event tallies (flops, bytes, reduces, ...), local
        to this span; use :meth:`total` for subtree sums.
    profile:
        The :class:`~repro.machine.kernels.KernelProfile` leaf events
        this span covers (populated by :meth:`add_profile`).
    annotations:
        Free-form metadata (e.g. a solver description string).
    """

    __slots__ = (
        "name",
        "rank",
        "t0",
        "t1",
        "children",
        "counters",
        "profile",
        "modeled_seconds",
        "annotations",
    )

    def __init__(self, name: str, rank: Optional[int] = None) -> None:
        self.name = name
        self.rank = rank
        self.t0: Optional[float] = None
        self.t1: Optional[float] = None
        self.children: List["Span"] = []
        self.counters: Dict[str, float] = {}
        self.profile = None  # lazily a KernelProfile
        self.modeled_seconds: Optional[float] = None
        self.annotations: Dict[str, Any] = {}

    # -- construction --------------------------------------------------
    def child(self, name: str, rank: Optional[int] = None) -> "Span":
        """Append and return a child span (no clock involved)."""
        sp = Span(name, rank=rank)
        self.children.append(sp)
        return sp

    def count(self, key: str, value: float = 1.0) -> None:
        """Add ``value`` to this span's ``key`` counter."""
        self.counters[key] = self.counters.get(key, 0.0) + value

    def add_profile(self, profile) -> None:
        """Attach kernel leaf events; accumulates flop/byte/launch counters."""
        if profile is None or not len(profile):
            return
        if self.profile is None:
            from repro.machine.kernels import KernelProfile

            self.profile = KernelProfile()
        self.profile.extend(profile)
        self.count("flops", profile.total_flops)
        self.count("bytes", profile.total_bytes)
        self.count("launches", float(profile.total_launches))

    def annotate(self, **kv: Any) -> None:
        """Attach free-form metadata."""
        self.annotations.update(kv)

    # -- queries -------------------------------------------------------
    @property
    def wall_seconds(self) -> Optional[float]:
        """Wall time spent inside this span (None for modeled spans)."""
        if self.t0 is None or self.t1 is None:
            return None
        return self.t1 - self.t0

    def walk(self) -> Iterator["Span"]:
        """Yield this span and all descendants (pre-order)."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(self, prefix: str) -> List["Span"]:
        """All spans in the subtree whose name starts with ``prefix``."""
        return [s for s in self.walk() if s.name.startswith(prefix)]

    def total(self, key: str, prefix: str = "") -> float:
        """Subtree sum of one counter, optionally filtered by name prefix."""
        return sum(
            s.counters.get(key, 0.0)
            for s in self.walk()
            if s.name.startswith(prefix)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        wall = self.wall_seconds
        parts = [self.name]
        if self.rank is not None:
            parts.append(f"rank={self.rank}")
        if wall is not None:
            parts.append(f"wall={wall:.3e}s")
        if self.modeled_seconds is not None:
            parts.append(f"model={self.modeled_seconds:.3e}s")
        return f"<Span {' '.join(parts)} children={len(self.children)}>"


class _SpanContext:
    """Context manager pushing one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span.t0 = self._tracer._clock()
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._span.t1 = self._tracer._clock()
        self._tracer._stack.pop()
        return False


class Tracer:
    """Ambient recorder of a hierarchical span trace.

    Parameters
    ----------
    clock:
        Monotonic timestamp source (``time.perf_counter`` by default;
        tests inject deterministic clocks).

    Usage::

        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("setup"):
                ...   # instrumented code opens nested spans
        tracer.root.find("setup/local_factor")
        tracer.total("reduces")
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.root = Span("trace")
        self.root.t0 = clock()
        self._stack: List[Span] = [self.root]

    # -- recording -----------------------------------------------------
    @property
    def current(self) -> Span:
        """The innermost open span."""
        return self._stack[-1]

    def span(self, name: str, rank: Optional[int] = None) -> _SpanContext:
        """Open a child span of the current span (use as ``with``)."""
        return _SpanContext(self, self.current.child(name, rank=rank))

    def count(self, key: str, value: float = 1.0) -> None:
        """Tally one event onto the active span."""
        self.current.count(key, value)

    def add_profile(self, profile) -> None:
        """Attach kernel leaf events to the active span."""
        self.current.add_profile(profile)

    def reduce_counter(self) -> "TracerReduceCounter":
        """A reduction counter bound to this tracer (the replacement for
        passing a bare ``ReduceCounter`` into the Krylov solvers)."""
        return TracerReduceCounter(self)

    def finish(self) -> Span:
        """Stamp the root span's exit time and return it."""
        self.root.t1 = self._clock()
        return self.root

    # -- queries -------------------------------------------------------
    def total(self, key: str, prefix: str = "") -> float:
        """Whole-trace sum of one counter (see :meth:`Span.total`)."""
        return self.root.total(key, prefix)

    @property
    def reduces(self) -> int:
        """Total global reductions recorded."""
        return int(self.total("reduces"))

    @property
    def reduce_doubles(self) -> int:
        """Total float64 values carried by recorded reductions."""
        return int(self.total("reduce_doubles"))


class _NullSpan:
    """Shared no-op span: every method does nothing, ``with`` works."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def count(self, key: str, value: float = 1.0) -> None:
        pass

    def add_profile(self, profile) -> None:
        pass

    def annotate(self, **kv: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default, disabled tracer.

    Every call is a no-op; :meth:`span` returns one shared object, so
    instrumented hot paths (``with get_tracer().span(...)``) allocate
    nothing when tracing is off.
    """

    __slots__ = ()

    def span(self, name: str, rank: Optional[int] = None) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> _NullSpan:
        return _NULL_SPAN

    def count(self, key: str, value: float = 1.0) -> None:
        pass

    def add_profile(self, profile) -> None:
        pass

    def reduce_counter(self) -> "TracerReduceCounter":
        return TracerReduceCounter(self)


NULL_TRACER = NullTracer()
_CURRENT: Any = NULL_TRACER


def get_tracer():
    """The ambient tracer (the shared :data:`NULL_TRACER` by default)."""
    return _CURRENT


def set_tracer(tracer) -> None:
    """Install ``tracer`` as the ambient tracer (None restores the null)."""
    global _CURRENT
    _CURRENT = NULL_TRACER if tracer is None else tracer


@contextmanager
def use_tracer(tracer):
    """Scope ``tracer`` as the ambient tracer, restoring the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = NULL_TRACER if tracer is None else tracer
    try:
        yield tracer
    finally:
        _CURRENT = previous


class TracerReduceCounter:
    """Global-reduction pass-through counter bound to a tracer.

    Interface-compatible with :class:`repro.krylov.reduce.ReduceCounter`
    (``allreduce``/``count``/``doubles``/``reset``); additionally
    tallies ``reduces``/``reduce_doubles`` onto the tracer's active
    span, which is how the trace attributes reductions to the phase
    (``krylov/orth``, ``apply/coarse_solve``, ...) that issued them.
    """

    __slots__ = ("tracer", "count", "doubles")

    def __init__(self, tracer) -> None:
        self.tracer = tracer
        self.count = 0
        self.doubles = 0

    def allreduce(self, values: np.ndarray) -> np.ndarray:
        """Record one global reduction of ``values`` (returned unchanged)."""
        values = np.atleast_1d(np.asarray(values))
        self.count += 1
        self.doubles += int(values.size)
        t = self.tracer
        t.count("reduces", 1.0)
        t.count("reduce_doubles", float(values.size))
        return values

    def reset(self) -> None:
        """Zero the local counters (the trace keeps its tallies)."""
        self.count = 0
        self.doubles = 0
