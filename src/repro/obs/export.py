"""Trace exporters: JSON-lines, Chrome ``chrome://tracing``, phase table.

Three views of one :class:`~repro.obs.tracer.Span` tree:

* :func:`to_jsonl` / :func:`from_jsonl` -- a lossless line-per-span
  event stream (kernel leaf events included), machine-diffable and
  round-trippable;
* :func:`chrome_trace` / :func:`chrome_trace_json` -- the Chrome trace
  event format (open in ``chrome://tracing`` or Perfetto): one complete
  ("X") event per span, ranks mapped to rows (``tid``);
* :func:`phase_table` -- the paper-style monospace phase summary whose
  setup/solve rows match :func:`repro.runtime.timings.time_solver`.

Wall-timed spans keep their measured timestamps; purely *modeled* spans
(built by the pricing layer, ``t0 is None``) are laid out sequentially
using their modeled seconds so a priced trace renders on the same
timeline tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.tracer import Span

__all__ = [
    "modeled_total",
    "wall_total",
    "to_jsonl",
    "from_jsonl",
    "chrome_trace",
    "chrome_trace_json",
    "phase_table",
]


def modeled_total(span: Span) -> float:
    """Modeled seconds of a subtree.

    A span with its own ``modeled_seconds`` *covers* its children (the
    pricing layer sets phase totals explicitly, e.g. the slowest-rank
    max); otherwise the children's totals sum.
    """
    if span.modeled_seconds is not None:
        return float(span.modeled_seconds)
    return sum(modeled_total(c) for c in span.children)


def wall_total(span: Span) -> float:
    """Wall seconds of a subtree (0.0 when never wall-timed)."""
    if span.wall_seconds is not None:
        return float(span.wall_seconds)
    return sum(wall_total(c) for c in span.children)


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def _span_record(span: Span, sid: int, parent: Optional[int]) -> dict:
    rec: dict = {"id": sid, "parent": parent, "name": span.name}
    if span.rank is not None:
        rec["rank"] = span.rank
    if span.t0 is not None:
        rec["t0"] = span.t0
    if span.t1 is not None:
        rec["t1"] = span.t1
    if span.modeled_seconds is not None:
        rec["modeled_seconds"] = span.modeled_seconds
    if span.counters:
        rec["counters"] = dict(span.counters)
    if span.annotations:
        rec["annotations"] = {k: repr(v) if not isinstance(v, (str, int, float, bool, type(None))) else v
                              for k, v in span.annotations.items()}
    if span.profile is not None:
        rec["kernels"] = [
            {
                "name": k.name,
                "flops": k.flops,
                "bytes": k.bytes,
                "parallelism": k.parallelism,
                "launches": k.launches,
            }
            for k in span.profile
        ]
    return rec


def to_jsonl(root: Span) -> str:
    """Serialize a span tree as one JSON object per line (pre-order)."""
    lines: List[str] = []
    ids: Dict[int, int] = {}
    next_id = 0

    def emit(span: Span, parent: Optional[int]) -> None:
        nonlocal next_id
        sid = next_id
        next_id += 1
        ids[id(span)] = sid
        lines.append(json.dumps(_span_record(span, sid, parent), sort_keys=True))
        for c in span.children:
            emit(c, sid)

    emit(root, None)
    return "\n".join(lines) + "\n"


def from_jsonl(text: str) -> Span:
    """Rebuild a span tree from :func:`to_jsonl` output (round-trip)."""
    spans: Dict[int, Span] = {}
    root: Optional[Span] = None
    for line in text.splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        sp = Span(rec["name"], rank=rec.get("rank"))
        sp.t0 = rec.get("t0")
        sp.t1 = rec.get("t1")
        sp.modeled_seconds = rec.get("modeled_seconds")
        sp.counters = dict(rec.get("counters", {}))
        sp.annotations = dict(rec.get("annotations", {}))
        if "kernels" in rec:
            from repro.machine.kernels import KernelProfile

            prof = KernelProfile()
            for k in rec["kernels"]:
                prof.add(
                    k["name"],
                    flops=k["flops"],
                    bytes=k["bytes"],
                    parallelism=k["parallelism"],
                    launches=k["launches"],
                )
            sp.profile = prof
        spans[rec["id"]] = sp
        parent = rec.get("parent")
        if parent is None:
            root = sp
        else:
            spans[parent].children.append(sp)
    if root is None:
        raise ValueError("empty JSONL trace")
    return root


# ----------------------------------------------------------------------
# Chrome trace event format
# ----------------------------------------------------------------------
def chrome_trace(root: Span) -> dict:
    """The Chrome trace-event representation of a span tree.

    Every span becomes one complete ("X") event; ``tid`` is the rank
    (0 for rank-agnostic spans) so per-rank phases stack into per-rank
    rows.  Counters and annotations ride along in ``args``.
    """
    events: List[dict] = []
    origin = root.t0 if root.t0 is not None else 0.0

    def emit(span: Span, cursor: float) -> float:
        if span.t0 is not None:
            ts = span.t0 - origin
            dur = span.wall_seconds or 0.0
        else:  # modeled span: sequential layout from the cursor
            ts = cursor
            dur = modeled_total(span)
        args: dict = {k: v for k, v in span.counters.items()}
        if span.modeled_seconds is not None:
            args["modeled_seconds"] = span.modeled_seconds
        for k, v in span.annotations.items():
            args[k] = v if isinstance(v, (str, int, float, bool)) else repr(v)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split("/", 1)[0],
                "ph": "X",
                "ts": ts * 1e6,
                "dur": dur * 1e6,
                "pid": 0,
                "tid": int(span.rank) if span.rank is not None else 0,
                "args": args,
            }
        )
        child_cursor = ts
        for c in span.children:
            child_cursor = emit(c, child_cursor)
        return ts + dur

    emit(root, 0.0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(root: Span) -> str:
    """:func:`chrome_trace` serialized to a JSON string."""
    return json.dumps(chrome_trace(root))


# ----------------------------------------------------------------------
# paper-style phase table
# ----------------------------------------------------------------------
def _fmt_seconds(s: float) -> str:
    return f"{s:.6f}" if s else "-"


def _fmt_count(c: float) -> str:
    return f"{int(c)}" if c else "-"


def phase_table(root: Span, title: str = "phase breakdown") -> str:
    """Render the per-phase summary table of a trace.

    One row per top-level phase (the children of ``root``), aggregated
    by name, followed by indented rows for each distinct sub-phase name.
    Wall and modeled seconds come from :func:`wall_total` /
    :func:`modeled_total`; counters are subtree sums.
    """
    header = ["phase", "wall s", "model s", "flops", "bytes", "launches", "reduces"]
    rows: List[List[str]] = []

    def aggregate(spans: List[Span], label: str) -> List[str]:
        wall = sum(wall_total(s) for s in spans)
        model = sum(modeled_total(s) for s in spans)
        flops = sum(s.total("flops") for s in spans)
        nbytes = sum(s.total("bytes") for s in spans)
        launches = sum(s.total("launches") for s in spans)
        reduces = sum(s.total("reduces") for s in spans)
        return [
            label,
            _fmt_seconds(wall),
            _fmt_seconds(model),
            f"{flops:.3e}" if flops else "-",
            f"{nbytes:.3e}" if nbytes else "-",
            _fmt_count(launches),
            _fmt_count(reduces),
        ]

    top: Dict[str, List[Span]] = {}
    for c in root.children:
        top.setdefault(c.name, []).append(c)
    for name, spans in top.items():
        rows.append(aggregate(spans, name))
        sub: Dict[str, List[Span]] = {}
        for s in spans:
            for d in s.walk():
                if d is not s:
                    sub.setdefault(d.name, []).append(d)
        for sub_name in sorted(sub):
            rows.append(aggregate(sub[sub_name], "  " + sub_name))

    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append(
        " | ".join(h.ljust(w) if i == 0 else h.rjust(w)
                   for i, (h, w) in enumerate(zip(header, widths)))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(c.ljust(w) if i == 0 else c.rjust(w)
                       for i, (c, w) in enumerate(zip(row, widths)))
        )
    return "\n".join(lines)
