"""Hardware specifications for the cost model.

The default spec is *calibrated*, not transcribed from data sheets: the
reproduction's local problems are 10-30x smaller than the paper's
(9K-dof subdomains do not fit a pure-Python factorization budget), so
the constants are chosen to put those scaled kernels at the same
roofline / launch-latency / occupancy balance that Summit's V100s and
Power9 cores impose on the paper's kernels.  The calibration targets
(all from the paper's tables) are: GPU solve ~2x faster than the
all-cores CPU run at matching decompositions (Table II); Tacho setup
parity between CPU and GPU with a 2-3x MPS improvement (Table III(b));
SuperLU GPU setup ~1.4x slower than CPU with a large MPS improvement
(Table III(a)); launch-bound level-set solves (Table IV).  Absolute
values are therefore "model seconds", not Summit seconds -- see
DESIGN.md sections 2 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuSpec", "GpuSpec", "MachineSpec", "summit"]


@dataclass(frozen=True)
class CpuSpec:
    """One CPU core (the per-MPI-rank resource in 42-rank-per-node runs).

    Attributes
    ----------
    flop_rate:
        Sustained flop/s of one core on solver kernels.
    bandwidth:
        Sustained memory bytes/s available to one core.
    """

    flop_rate: float = 2.0e9
    bandwidth: float = 2.0e9

    def threaded(self, threads: int) -> "CpuSpec":
        """Resource of a rank driving ``threads`` cores (Fig. 5's
        6-ranks-per-node CPU configuration with 7 ESSL threads)."""
        return CpuSpec(
            flop_rate=self.flop_rate * threads,
            bandwidth=self.bandwidth * threads,
        )


@dataclass(frozen=True)
class GpuSpec:
    """One GPU (V100-like).

    Attributes
    ----------
    flop_rate:
        Peak sustained flop/s for solver kernels (post-efficiency).
    bandwidth:
        Peak sustained memory bytes/s.
    launch_latency:
        Seconds per kernel launch (critical-path cost of level-set
        scheduling; ~5-10 microseconds on CUDA).
    saturation_parallelism:
        Independent work items needed to reach peak throughput on the
        whole GPU; kernels with fewer items run at a proportionally
        lower rate.  (80 SMs x 32-64 resident warps ~ O(10^4) rows.)
    """

    flop_rate: float = 25.0e9
    bandwidth: float = 50.0e9
    launch_latency: float = 1.5e-6
    saturation_parallelism: float = 1500.0


@dataclass(frozen=True)
class MachineSpec:
    """One heterogeneous compute node.

    Attributes
    ----------
    cpu:
        Per-core CPU spec.
    gpu:
        Per-GPU spec.
    cores_per_node, gpus_per_node:
        Node composition (Summit: 42 and 6).
    alpha, beta:
        MPI message latency (s) and inverse bandwidth (s/byte) for the
        alpha-beta communication model used by :mod:`repro.runtime`.
    coarse_scale:
        Scale correction applied to ``coarse.*`` kernel families on
        *every* execution space.  The laptop-scale problems have an
        artificially large interface/coarse fraction (tiny subdomains:
        ~70% of a 5^3-node subdomain is interface, vs ~15% at the
        paper's 9K-dof locals), which would let coarse-space work drown
        the local-solver superlinearity that drives Tables II/III.
        Charging coarse work at this factor restores the paper's
        coarse-to-local work ratio without biasing any CPU-vs-GPU
        comparison (both spaces are scaled identically).
    """

    cpu: CpuSpec = CpuSpec()
    gpu: GpuSpec = GpuSpec()
    cores_per_node: int = 42
    gpus_per_node: int = 6
    alpha: float = 2.0e-6
    beta: float = 1.0 / 10.0e9
    coarse_scale: float = 0.5


def summit() -> MachineSpec:
    """The default Summit-like node specification."""
    return MachineSpec()
