"""Machine performance model (the Summit-node substitute).

The paper's experiments run on Summit nodes (42 Power9 cores + 6 V100
GPUs, NVIDIA MPS).  This environment has no GPUs, so -- per the
substitution policy in DESIGN.md -- the hardware is replaced by an
analytic cost model with the three effects every conclusion of the paper
rests on:

1. **Roofline pricing**: each kernel is characterized by flop and byte
   counts; execution time on a space is
   ``max(flops / flop_rate, bytes / bandwidth)`` -- sparse kernels are
   bandwidth bound, dense frontal kernels compute bound.
2. **Critical path / launch overhead**: GPU kernels pay a fixed launch
   latency, so level-set triangular solves with thousands of tiny levels
   are launch-bound; supernodal blocking reduces the launch count
   (Section V-B.2).
3. **Occupancy**: a GPU only reaches peak throughput when a kernel
   carries enough parallel work; a kernel's ``parallelism`` scales its
   achievable rate.  MPS gives each of ``k`` ranks ``1/k`` of the GPU,
   which both shrinks the saturation requirement and the peak rate
   (Section VI).

The numeric kernels in :mod:`repro.direct`, :mod:`repro.tri`,
:mod:`repro.ilu` and :mod:`repro.dd` compute *real* results and expose
:class:`~repro.machine.kernels.Kernel` descriptors; the model prices
those descriptors in "model seconds".
"""

from repro.machine.kernels import Kernel, KernelProfile
from repro.machine.spec import CpuSpec, GpuSpec, MachineSpec, summit
from repro.machine.model import ExecutionSpace, CpuSpace, GpuSpace, price

__all__ = [
    "CpuSpace",
    "CpuSpec",
    "ExecutionSpace",
    "GpuSpace",
    "GpuSpec",
    "Kernel",
    "KernelProfile",
    "MachineSpec",
    "price",
    "summit",
]
