"""Kernel descriptors: the interface between numerics and the cost model.

A :class:`Kernel` characterizes one device kernel launch (or one
sequential CPU routine) by its floating-point work, memory traffic, and
available parallelism.  Solvers build :class:`KernelProfile` lists once
per symbolic/numeric structure; the execution spaces in
:mod:`repro.machine.model` turn them into model seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List

__all__ = ["Kernel", "KernelProfile"]


@dataclass(frozen=True)
class Kernel:
    """One priced unit of work.

    Parameters
    ----------
    name:
        Kernel family, e.g. ``"sptrsv.level"``, ``"getrf.front"``; used
        for breakdown reporting (Fig. 4).
    flops:
        Floating-point operations performed.
    bytes:
        Bytes moved to/from memory (load + store).
    parallelism:
        Number of independent work items (rows, supernodes, nnz) that a
        parallel space can spread over its lanes.  ``1`` means strictly
        sequential.
    launches:
        Number of device kernel launches this unit corresponds to
        (level-set solvers batch one launch per level).
    """

    name: str
    flops: float
    bytes: float
    parallelism: float = 1.0
    launches: int = 1

    def scaled(self, factor: float) -> "Kernel":
        """Scale memory traffic by ``factor`` (the half-precision
        operator halves the bytes of every kernel)."""
        return Kernel(
            self.name, self.flops, self.bytes * factor, self.parallelism, self.launches
        )

    def work_scaled(self, factor: float) -> "Kernel":
        """Scale both flops and bytes by ``factor`` (used to spread a
        shared task, e.g. a distributed coarse solve, across ranks)."""
        return Kernel(
            self.name,
            self.flops * factor,
            self.bytes * factor,
            self.parallelism,
            self.launches,
        )

    def block_scaled(self, width: float) -> "Kernel":
        """The same kernel applied to ``width`` fused right-hand sides.

        A block (multi-RHS) application multiplies the arithmetic and
        traffic by the block width *and* the independent work items
        (every column's rows are independent), while the launch count is
        shared across the whole block -- the throughput argument behind
        same-pattern request batching: ``k`` fused columns pay one
        launch-latency critical path, and the ``k``-fold parallelism
        *improves* occupancy on an MPS share exactly as Section VI's
        small-subdomain kernels do.
        """
        return Kernel(
            self.name,
            self.flops * width,
            self.bytes * width,
            self.parallelism * width,
            self.launches,
        )


class KernelProfile:
    """An ordered collection of kernels representing one operation.

    Kernels execute sequentially (each may be internally parallel); the
    profile's cost on a space is the sum of its kernels' costs.
    """

    __slots__ = ("kernels",)

    def __init__(self, kernels: Iterable[Kernel] = ()) -> None:
        self.kernels: List[Kernel] = list(kernels)

    def add(
        self,
        name: str,
        flops: float,
        bytes: float,
        parallelism: float = 1.0,
        launches: int = 1,
    ) -> None:
        """Append one kernel."""
        self.kernels.append(Kernel(name, flops, bytes, parallelism, launches))

    def extend(self, other: "KernelProfile") -> None:
        """Append all kernels of another profile."""
        self.kernels.extend(other.kernels)

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    @property
    def total_flops(self) -> float:
        """Sum of kernel flops."""
        return sum(k.flops for k in self.kernels)

    @property
    def total_bytes(self) -> float:
        """Sum of kernel bytes."""
        return sum(k.bytes for k in self.kernels)

    @property
    def total_launches(self) -> int:
        """Sum of kernel launch counts (GPU critical-path length)."""
        return sum(k.launches for k in self.kernels)

    def by_family(self) -> Dict[str, "KernelProfile"]:
        """Group kernels by the prefix before the first dot.

        Drives the setup-time breakdown of Fig. 4.
        """
        groups: Dict[str, KernelProfile] = {}
        for k in self.kernels:
            family = k.name.split(".", 1)[0]
            groups.setdefault(family, KernelProfile()).kernels.append(k)
        return groups

    def scaled_bytes(self, factor: float) -> "KernelProfile":
        """Profile with all byte counts scaled (precision conversion)."""
        return KernelProfile(k.scaled(factor) for k in self.kernels)

    def work_scaled(self, factor: float) -> "KernelProfile":
        """Profile with flops and bytes scaled (shared-task spreading)."""
        return KernelProfile(k.work_scaled(factor) for k in self.kernels)

    def block_scaled(self, width: float) -> "KernelProfile":
        """Profile applied to ``width`` fused right-hand sides (work and
        parallelism scale, launches are shared; see
        :meth:`Kernel.block_scaled`)."""
        return KernelProfile(k.block_scaled(width) for k in self.kernels)
