"""Execution spaces and kernel pricing.

An :class:`ExecutionSpace` prices :class:`~repro.machine.kernels.Kernel`
descriptors in model seconds:

* :class:`CpuSpace` -- one rank on ``threads`` CPU cores.  No launch
  overhead; a kernel's rate is limited by ``min(threads, parallelism)``
  lanes.
* :class:`GpuSpace` -- one rank's share of a GPU under MPS with ``share``
  = 1/(ranks per GPU).  Each kernel pays ``launches * launch_latency``
  and runs at an occupancy-scaled fraction of the shared peak.

This is where the paper's Section VI argument lives: with MPS, the rank's
peak drops by ``share`` but its local problem shrinks superlinearly, and
the occupancy of small kernels *improves* because saturating 1/7 of a
V100 needs 7x fewer rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machine.kernels import Kernel, KernelProfile
from repro.machine.spec import CpuSpec, GpuSpec

__all__ = ["ExecutionSpace", "CpuSpace", "GpuSpace", "price", "price_breakdown"]


class ExecutionSpace:
    """Abstract pricing interface."""

    #: True for spaces that execute on a GPU (used to pick solver variants)
    is_gpu: bool = False

    def kernel_seconds(self, kernel: Kernel) -> float:
        """Model seconds to execute one kernel."""
        raise NotImplementedError


@dataclass(frozen=True)
class CpuSpace(ExecutionSpace):
    """One MPI rank executing on ``threads`` CPU cores."""

    spec: CpuSpec = CpuSpec()
    threads: int = 1
    is_gpu = False

    def kernel_seconds(self, kernel: Kernel) -> float:
        lanes = max(1.0, min(float(self.threads), kernel.parallelism))
        flop_rate = self.spec.flop_rate * lanes
        bandwidth = self.spec.bandwidth * lanes
        t_flops = kernel.flops / flop_rate
        t_bytes = kernel.bytes / bandwidth
        return max(t_flops, t_bytes)


@dataclass(frozen=True)
class GpuSpace(ExecutionSpace):
    """One MPI rank's MPS share of a GPU.

    Parameters
    ----------
    spec:
        The GPU hardware spec.
    share:
        Fraction of the GPU owned by this rank: ``1 / (ranks per GPU)``.
        MPS partitions SMs (compute and achievable bandwidth scale with
        ``share``) while the launch path is unchanged.
    """

    spec: GpuSpec = GpuSpec()
    share: float = 1.0
    is_gpu = True

    def occupancy(self, parallelism: float) -> float:
        """Fraction of the rank's peak achieved by a kernel.

        A kernel saturates this rank's slice of the GPU once it carries
        ``saturation_parallelism * share`` independent items; below that
        the achieved rate degrades linearly (a standard latency-limited
        throughput model).  The floor corresponds to one resident warp's
        worth of work (64 items): a tiny kernel is launch-latency bound,
        not arbitrarily slow.
        """
        need = self.spec.saturation_parallelism * self.share
        return min(1.0, max(parallelism, 64.0) / need)

    def kernel_seconds(self, kernel: Kernel) -> float:
        occ = self.occupancy(kernel.parallelism)
        flop_rate = self.spec.flop_rate * self.share * occ
        bandwidth = self.spec.bandwidth * self.share * occ
        t_flops = kernel.flops / flop_rate
        t_bytes = kernel.bytes / bandwidth
        return kernel.launches * self.spec.launch_latency + max(t_flops, t_bytes)

    def split(self, tenants: int) -> "GpuSpace":
        """This rank's slice when ``tenants`` concurrent solves share it.

        The multi-tenant serving model stacks a second MPS partition on
        top of the per-solve one: ``t`` tenants running concurrently on
        a rank's share each see ``share / t`` of the GPU (compute and
        achievable bandwidth), while the launch path and the
        occupancy-improvement effect of the smaller slice are unchanged
        -- the paper's Section VI economics applied to tenant
        concurrency instead of MPI ranks.
        """
        if tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {tenants}")
        return GpuSpace(self.spec, share=self.share / tenants)


def price(profile: KernelProfile, space: ExecutionSpace) -> float:
    """Model seconds to execute a profile's kernels back-to-back."""
    return sum(space.kernel_seconds(k) for k in profile)


def price_breakdown(profile: KernelProfile, space: ExecutionSpace) -> Dict[str, float]:
    """Per-family model seconds (the Fig. 4 stacked bars)."""
    return {
        family: price(sub, space) for family, sub in profile.by_family().items()
    }
