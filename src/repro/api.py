"""The unified solver facade: one validated entry point for the stack.

The scattered seed-era flow --

    dec = Decomposition.from_box_partition(problem, 2, 2, 2)
    m = GDSWPreconditioner(dec, rigid_body_modes(problem.coordinates),
                           local_spec=LocalSolverSpec(...), overlap=1, ...)
    red = ReduceCounter()
    res = gmres(problem.a, problem.b, preconditioner=m, rtol=..., reducer=red)

-- collapses to::

    from repro import SolverSession, SchwarzConfig, KrylovConfig

    result = SolverSession(
        problem,
        partition=(2, 2, 2),
        config=SchwarzConfig(local=LocalSolverSpec(kind="tacho")),
        krylov=KrylovConfig(rtol=1e-7, restart=30),
    ).solve()
    result.x, result.iterations, result.reduces
    print(result.phase_table())
    open("trace.json", "w").write(result.chrome_trace_json())
    timings = result.timings(JobLayout.gpu_run(1, 4))   # paper tables

Every option is validated at *construction* with an error that lists
the valid values, and every solve runs under a
:class:`~repro.obs.tracer.Tracer`, so the full observability surface
(span tree, reduction counters, Chrome trace, phase tables) comes for
free.  The old entry points keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.backend import resolve_backend, to_numpy, use_backend
from repro.dd.decomposition import Decomposition
from repro.dd.local_solvers import LocalSolverSpec
from repro.dd.precision import HalfPrecisionOperator, round_to_single
from repro.dd.two_level import GDSWPreconditioner
from repro.fem import constant_nullspace, rigid_body_modes, translations_only
from repro.krylov import SolveStatus, cg, gmres, pipelined_cg
from repro.krylov.gmres import GMRES_VARIANTS
from repro.obs import Span, Tracer, use_tracer
from repro.obs.export import chrome_trace_json, phase_table, to_jsonl
from repro.reuse import (
    RecycleSpace,
    ReuseConfig,
    get_artifact_cache,
    pattern_fingerprint,
    values_fingerprint,
)
from repro.sparse.csr import CsrMatrix

__all__ = [
    "SchwarzConfig",
    "KrylovConfig",
    "SolverSession",
    "SessionResult",
    "COARSE_VARIANTS",
    "COARSE_SPACES",
    "KRYLOV_METHODS",
    "PRECISIONS",
]

#: valid coarse-space variants of :class:`SchwarzConfig`
COARSE_VARIANTS = ("rgdsw", "gdsw", "agdsw")
#: valid coarse-space families: the FEM-structured GDSW family
#: (selected further by ``variant``) or the fully algebraic spectral
#: space of :mod:`repro.dd.algebraic`
COARSE_SPACES = ("gdsw", "spectral")
#: valid Krylov methods of :class:`KrylovConfig`
KRYLOV_METHODS = ("gmres", "cg", "pipelined_cg")
#: valid working precisions of :class:`SchwarzConfig`
PRECISIONS = ("double", "single")
_COARSE_SOLVERS = ("direct", "multilevel")


def _check(value: str, valid: Tuple[str, ...], what: str) -> None:
    if value not in valid:
        raise ValueError(
            f"unknown {what} {value!r}; valid values: "
            + ", ".join(repr(v) for v in valid)
        )


#: call sites (filename, lineno) that already got the policy warning --
#: the same once-per-site registry idiom as the Krylov reducer
#: deprecation, so the warning fires deterministically regardless of the
#: ambient ``warnings`` filter configuration
_POLICY_WARNED_SITES: set = set()


def _deprecated_policy_warning(kwarg: str) -> None:
    import sys
    import warnings

    caller = sys._getframe(2)
    site = (caller.f_code.co_filename, caller.f_lineno)
    if site in _POLICY_WARNED_SITES:
        return
    _POLICY_WARNED_SITES.add(site)
    warnings.warn(
        f"the '{kwarg}' kwarg on SolverSession() is deprecated; pass the "
        "config as policy= instead (policy=ResilienceConfig(...) or "
        "policy=FaultToleranceConfig(...); the session dispatches on its "
        "type)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class SchwarzConfig:
    """Preconditioner options (one validated object instead of kwargs).

    Attributes
    ----------
    local:
        Local subdomain solver (validated by
        :class:`~repro.dd.local_solvers.LocalSolverSpec` itself).
    coarse:
        Coarse-matrix solver; None selects the GDSW default (Tacho,
        natural ordering).
    extension:
        Solver for the interior extension solves of Eq. (2); None
        selects the GDSW default (Tacho, ND ordering).  Nonsymmetric
        operators (e.g. upwinded convection-diffusion via ``.mtx``)
        need ``LocalSolverSpec(kind="superlu")`` here and in
        ``local``/``coarse`` -- the Cholesky-based default assumes
        symmetry.
    overlap:
        Algebraic overlap layers (paper: 1).
    variant:
        Coarse space: ``"rgdsw"`` (paper), ``"gdsw"`` or ``"agdsw"``.
    precision:
        ``"double"`` or ``"single"`` (HalfPrecisionOperator wrapping).
    dim:
        Spatial dimension for interface classification.
    adaptive_tol:
        AGDSW eigenvalue threshold (``variant="agdsw"`` only).
    coarse_space:
        Coarse-space family: ``"gdsw"`` (default -- the FEM-structured
        GDSW family, refined by ``variant``) or ``"spectral"`` (the
        fully algebraic SPSD-splitting / GenEO space of
        :mod:`repro.dd.algebraic`; needs no null space or geometry, so
        it accepts arbitrary assembled matrices, e.g. MatrixMarket
        inputs).
    tau:
        Spectral eigenvalue threshold: generalized eigenmodes with
        ``lambda <= tau`` enter the coarse space
        (``coarse_space="spectral"`` only).
    max_vectors_per_subdomain:
        Per-subdomain cap on spectral coarse vectors
        (``coarse_space="spectral"`` only).
    coarse_solver:
        ``"direct"`` or ``"multilevel"`` (the three-level method).
    multilevel_parts:
        Second-level subdomain count for ``coarse_solver="multilevel"``.
    """

    local: LocalSolverSpec = field(default_factory=LocalSolverSpec)
    coarse: Optional[LocalSolverSpec] = None
    extension: Optional[LocalSolverSpec] = None
    overlap: int = 1
    variant: str = "rgdsw"
    precision: str = "double"
    dim: int = 3
    adaptive_tol: float = 1e-2
    coarse_space: str = "gdsw"
    tau: float = 1e-2
    max_vectors_per_subdomain: int = 8
    coarse_solver: str = "direct"
    multilevel_parts: int = 4

    def __post_init__(self) -> None:
        _check(self.variant, COARSE_VARIANTS, "coarse-space variant")
        _check(self.coarse_space, COARSE_SPACES, "coarse-space family")
        _check(self.precision, PRECISIONS, "precision")
        _check(self.coarse_solver, _COARSE_SOLVERS, "coarse solver")
        if self.overlap < 0:
            raise ValueError(f"overlap must be >= 0, got {self.overlap}")
        if self.tau <= 0:
            raise ValueError(f"tau must be positive, got {self.tau}")
        if self.max_vectors_per_subdomain < 1:
            raise ValueError(
                f"max_vectors_per_subdomain must be >= 1, "
                f"got {self.max_vectors_per_subdomain}"
            )

    def describe(self) -> str:
        """One-line summary used by trace annotations and tables.

        Also the preconditioner half of a serving shard key.  Default
        (``coarse_space="gdsw"``) configurations keep the historical
        format byte-for-byte; spectral configurations append their
        selection parameters so they never share a shard with a GDSW
        run.
        """
        base = (
            f"{self.variant} overlap={self.overlap} "
            f"local=[{self.local.describe()}] {self.precision}"
        )
        if self.extension is not None:
            base += f" ext=[{self.extension.describe()}]"
        if self.coarse_space == "spectral":
            base += (
                f" spectral tau={self.tau:g} "
                f"maxvec={self.max_vectors_per_subdomain}"
            )
        return base


@dataclass(frozen=True)
class KrylovConfig:
    """Krylov options (paper defaults: single-reduce GMRES(30), 1e-7).

    Attributes
    ----------
    method:
        ``"gmres"`` (paper), ``"cg"`` or ``"pipelined_cg"``.
    variant:
        GMRES orthogonalization: ``"mgs"``, ``"cgs"`` or
        ``"single_reduce"`` (ignored by the CG methods).
    rtol, restart, maxiter:
        Convergence tolerance, GMRES cycle length, iteration cap.
    """

    method: str = "gmres"
    variant: str = "single_reduce"
    rtol: float = 1e-7
    restart: int = 30
    maxiter: int = 1000

    def __post_init__(self) -> None:
        _check(self.method, KRYLOV_METHODS, "Krylov method")
        _check(self.variant, GMRES_VARIANTS, "GMRES variant")
        if self.rtol <= 0:
            raise ValueError(f"rtol must be positive, got {self.rtol}")
        if self.restart < 1:
            raise ValueError(f"restart must be >= 1, got {self.restart}")
        if self.maxiter < 1:
            raise ValueError(f"maxiter must be >= 1, got {self.maxiter}")

    def describe(self) -> str:
        """One-line summary, mirroring :meth:`SchwarzConfig.describe`.

        Also the Krylov half of a serving shard key: two requests may
        share a batched solve only when this string matches.
        """
        return (
            f"{self.method}[{self.variant}] rtol={self.rtol:g} "
            f"restart={self.restart} maxiter={self.maxiter}"
        )


@dataclass
class SessionResult:
    """Outcome of one :meth:`SolverSession.solve`.

    Numerics (``x``, ``iterations``, ...) plus the run's wall-time
    trace and accessors deriving every paper-style artifact from it.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    reduces: int
    reduce_doubles: int
    final_relres: float
    n_coarse: int
    n_ranks: int
    precond: object
    trace: Span
    #: :class:`repro.verify.VerificationReport` when the session was
    #: constructed with ``verify=``; None otherwise
    verification: Optional[object] = None
    #: terminal :class:`~repro.krylov.status.SolveStatus`; ``recovered``
    #: when the solve converged only after resilience actions
    status: SolveStatus = SolveStatus.MAXITER
    #: :class:`repro.resilience.engine.HealthReport` when the session
    #: was constructed with ``resilience=``; None otherwise
    health: Optional[object] = None
    #: True when this solve reused the previous setup (the
    #: :meth:`SolverSession.resolve` skip/refactor paths); the priced
    #: setup is then the refactorization cost, not the first-solve cost
    setup_reused: bool = False
    #: :class:`repro.ft.FtReport` when the session was constructed with
    #: ``fault_tolerance=``; None otherwise
    ft: Optional[object] = None

    def priced_setup_seconds(self, layout) -> float:
        """The setup time this solve is billed under ``layout``.

        The first solve of a sequence pays
        ``SolverTimings.first_setup_seconds`` (symbolic + numeric);
        reused solves pay ``setup_seconds`` (the ``include_symbolic=
        False`` refactorization path for symbolic-reusable solvers).
        """
        t = self.timings(layout)
        return float(
            t.setup_seconds if self.setup_reused else t.first_setup_seconds
        )

    def timings(self, layout):
        """Price this run under a :class:`~repro.runtime.layout.JobLayout`.

        Returns the :class:`~repro.runtime.timings.SolverTimings` the
        paper tabulates; its ``.trace`` attribute holds the priced span
        tree (render with :func:`repro.obs.phase_table`).
        """
        from repro.runtime.timings import time_solver

        return time_solver(
            self.precond, layout, self.iterations, self.reduces,
            self.reduce_doubles,
        )

    def chrome_trace_json(self) -> str:
        """The wall-time trace in Chrome ``chrome://tracing`` format."""
        return chrome_trace_json(self.trace)

    def jsonl(self) -> str:
        """The wall-time trace as a JSON-lines event stream."""
        return to_jsonl(self.trace)

    def phase_table(self, title: str = "solver phases (wall time)") -> str:
        """Paper-style phase table of the wall-time trace."""
        return phase_table(self.trace, title=title)


@dataclass
class _AlgebraicProblem:
    """A bare assembled operator (the ``.mtx`` ingestion adapter).

    No grid and usually no geometry: sessions built on it partition the
    node graph algebraically and (for the GDSW family) fall back to the
    translation/constant null spaces.
    """

    a: CsrMatrix
    b: np.ndarray
    dofs_per_node: int = 1
    coordinates: Optional[np.ndarray] = None
    source: str = ""


class SolverSession:
    """One problem + partition + configuration, solved under a tracer.

    Parameters
    ----------
    problem:
        An assembled problem (:func:`repro.fem.elasticity_3d`,
        :func:`repro.fem.laplace_3d`, ...): needs ``a``, ``b``,
        ``coordinates`` and ``dofs_per_node``.
    partition:
        Subdomain box ``(px, py, pz)`` -- one subdomain per model rank.
    config:
        :class:`SchwarzConfig` (defaults to the paper configuration).
    krylov:
        :class:`KrylovConfig` (defaults to single-reduce GMRES(30)).
    nullspace:
        Neumann null space override; by default rigid-body modes for
        3-dof problems, constants for scalar problems.
    tracer:
        A :class:`~repro.obs.tracer.Tracer` to record into (a fresh one
        per solve by default).
    verify:
        ``False`` (default) solves without verification.  ``True`` runs
        the :mod:`repro.verify` invariant suite after the solve with
        default tolerances; a :class:`~repro.verify.VerifyConfig`
        selects tolerances and the optional distributed diff /
        cost-model audit.  The report lands on
        ``SessionResult.verification``; in strict mode (the config
        default) a failed check raises
        :class:`~repro.verify.VerificationError`.
    policy:
        The session's protection policy -- one parameter for the two
        mutually-exclusive protection runtimes, dispatched on type:

        * a :class:`~repro.resilience.ResilienceConfig` enables the
          breakdown-tolerant runtime (detection/recovery ladder, an
          optional :class:`~repro.resilience.FaultPlan` to inject).
          The :class:`~repro.resilience.HealthReport` lands on
          ``SessionResult.health`` and ``SessionResult.status`` reads
          ``"recovered"`` when the solve converged only thanks to
          recovery actions.
        * a :class:`~repro.ft.FaultToleranceConfig` enables the
          :mod:`repro.ft` rank-loss driver (failure plan, shrink /
          respawn recovery, checkpoint cadence).  The
          :class:`~repro.ft.FtReport` lands on ``SessionResult.ft``
          and the recovery actions on ``SessionResult.health``.

        ``None`` (default) solves unprotected.  The runtimes each own
        the solve loop in incompatible ways, which is why the API
        models them as one slot rather than two flags.
    resilience:
        Deprecated spelling of ``policy=ResilienceConfig(...)``
        (``True`` selects defaults).  Warns once per call site.
    fault_tolerance:
        Deprecated spelling of ``policy=FaultToleranceConfig(...)``
        (``True`` selects defaults).  Warns once per call site.
    reuse:
        Controls the amortized-setup paths of :meth:`resolve` and
        :meth:`solve_sequence`.  The default (``False`` or ``True``)
        keeps the reuse path bit-identical to cold solves: same-values
        re-solves skip setup, same-pattern new values refactorize
        numerically.  A :class:`~repro.reuse.ReuseConfig` additionally
        opts into GMRES warm starts and solution recycling (which
        change the iterates and are therefore off by default).
    backend:
        Array backend for the numeric core: ``None`` (default -- the
        ambient :func:`repro.backend.use_backend` scope, ultimately
        numpy), a backend name (``"numpy"``, ``"torch"``), or a
        :class:`~repro.backend.Backend` instance.  Validated at
        construction (an unavailable backend raises with the valid
        values).  The solve runs under the selected backend and the
        returned ``SessionResult.x`` is always host numpy.  The numpy
        backend is bit-identical to pre-backend releases; see
        docs/performance.md for the other backends' tolerance contract.
    """

    def __init__(
        self,
        problem,
        partition: Tuple[int, int, int] = (2, 2, 2),
        config: Optional[SchwarzConfig] = None,
        krylov: Optional[KrylovConfig] = None,
        nullspace: Optional[np.ndarray] = None,
        tracer: Optional[Tracer] = None,
        verify: object = False,
        policy: object = None,
        resilience: object = False,
        fault_tolerance: object = False,
        reuse: object = False,
        backend: object = None,
    ) -> None:
        for attr in ("a", "b"):
            if not hasattr(problem, attr):
                raise TypeError(
                    f"problem must expose '{attr}' (got {type(problem).__name__})"
                )
        partition = tuple(int(p) for p in partition)
        if len(partition) != 3 or any(p < 1 for p in partition):
            raise ValueError(
                f"partition must be a (px, py, pz) triple of positive "
                f"integers, got {partition!r}"
            )
        self.problem = problem
        self.partition = partition
        self.config = config or SchwarzConfig()
        self.krylov = krylov or KrylovConfig()
        self._nullspace = nullspace
        self.tracer = tracer
        if verify is True:
            from repro.verify import VerifyConfig

            verify = VerifyConfig()
        self.verify: object = verify or None
        # the deprecated two-flag spelling feeds the same policy slot
        if resilience is not False and resilience is not None:
            _deprecated_policy_warning("resilience")
        if fault_tolerance is not False and fault_tolerance is not None:
            _deprecated_policy_warning("fault_tolerance")
        if resilience is True:
            from repro.resilience.engine import ResilienceConfig

            resilience = ResilienceConfig()
        if fault_tolerance is True:
            from repro.ft import FaultToleranceConfig

            fault_tolerance = FaultToleranceConfig()
        self.resilience: object = resilience or None
        self.fault_tolerance: object = fault_tolerance or None
        if self.fault_tolerance is not None and self.resilience is not None:
            raise ValueError(
                "resilience= and fault_tolerance= are mutually exclusive: "
                "the breakdown-tolerant engine and the rank-loss driver "
                "each own the solve loop; run them in separate sessions"
            )
        if policy is not None and policy is not False:
            if self.resilience is not None or self.fault_tolerance is not None:
                raise ValueError(
                    "pass policy= alone; the deprecated resilience=/"
                    "fault_tolerance= keywords cannot be combined with it"
                )
            from repro.ft import FaultToleranceConfig
            from repro.resilience.engine import ResilienceConfig

            if isinstance(policy, ResilienceConfig):
                self.resilience = policy
            elif isinstance(policy, FaultToleranceConfig):
                self.fault_tolerance = policy
            else:
                raise TypeError(
                    "policy must be a ResilienceConfig or a "
                    f"FaultToleranceConfig, got {type(policy).__name__}"
                )
        self.policy: object = self.resilience or self.fault_tolerance
        # reuse is always available through resolve()/solve_sequence();
        # the config only switches on the opt-in non-bit-identical
        # accelerators (warm start, recycling)
        if reuse is True or not reuse:
            reuse = ReuseConfig()
        if not isinstance(reuse, ReuseConfig):
            raise TypeError(
                f"reuse must be a bool or ReuseConfig, got {type(reuse).__name__}"
            )
        self.reuse: ReuseConfig = reuse
        #: resolved Backend instance, or None for the ambient default
        self.backend = None if backend is None else resolve_backend(backend)
        self._recycle = (
            RecycleSpace(reuse.recycle) if reuse.recycle > 0 else None
        )
        #: state of the previous solve, keyed by matrix fingerprints;
        #: drives the resolve() skip/refactor/cold decision ladder
        self._last: Optional[dict] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix_market(
        cls,
        path,
        b: Optional[np.ndarray] = None,
        *,
        dofs_per_node: int = 1,
        coordinates: Optional[np.ndarray] = None,
        **kwargs,
    ) -> "SolverSession":
        """A session over an arbitrary assembled ``.mtx`` matrix.

        Reads the MatrixMarket coordinate file at ``path``
        (:func:`repro.io.read_matrix_market`), wraps it as an algebraic
        problem (no grid -- the decomposition falls back to
        :meth:`~repro.dd.decomposition.Decomposition.algebraic` graph
        partitioning), and returns a normal :class:`SolverSession`.
        ``SchwarzConfig(coarse_space="spectral")`` needs nothing else;
        the GDSW family additionally wants a meaningful null space
        (constants for scalar problems and per-component translations
        for block problems are the automatic fallbacks; pass
        ``coordinates`` or ``nullspace=`` for true rigid-body modes).

        Parameters
        ----------
        path:
            A MatrixMarket coordinate file (``real``/``integer``/
            ``pattern`` field, ``general`` or ``symmetric``); must be
            square.
        b:
            Right-hand side; defaults to the vector of ones.
        dofs_per_node:
            Block size of the matrix (3 for 3D elasticity); the matrix
            order must be divisible by it.
        coordinates:
            Optional ``(n_nodes, 3)`` node coordinates enabling the
            rigid-body null space for 3-dof problems.
        kwargs:
            Forwarded to :class:`SolverSession` (``partition``,
            ``config``, ``krylov``, ``nullspace``, ``verify``, ...).
        """
        from repro.io import read_matrix_market

        a = read_matrix_market(path)
        if a.n_rows != a.n_cols:
            raise ValueError(
                f"{path}: solver sessions need a square matrix, "
                f"got {a.n_rows} x {a.n_cols}"
            )
        if dofs_per_node < 1 or a.n_rows % dofs_per_node:
            raise ValueError(
                f"{path}: matrix order {a.n_rows} is not divisible by "
                f"dofs_per_node={dofs_per_node}"
            )
        if b is None:
            b = np.ones(a.n_rows, dtype=np.float64)
        else:
            b = np.asarray(b, dtype=np.float64)
            if b.shape != (a.n_rows,):
                raise ValueError(
                    f"{path}: rhs shape {b.shape} does not match the "
                    f"matrix order {a.n_rows}"
                )
        problem = _AlgebraicProblem(
            a=a, b=b, dofs_per_node=int(dofs_per_node),
            coordinates=coordinates, source=str(path),
        )
        return cls(problem, **kwargs)

    # ------------------------------------------------------------------
    def nullspace(self) -> np.ndarray:
        """The Neumann null space used for the coarse basis.

        Rigid-body modes for 3-dof problems with coordinates; per-
        component translations for block problems without geometry (the
        algebraic ``.mtx`` ingestion path); constants for scalar
        problems.
        """
        if self._nullspace is not None:
            return self._nullspace
        d = int(getattr(self.problem, "dofs_per_node", 1))
        if d == 3 and getattr(self.problem, "coordinates", None) is not None:
            return rigid_body_modes(self.problem.coordinates)
        if d > 1:
            return translations_only(self.problem.a.n_rows // d, d)
        return constant_nullspace(self.problem.a.n_rows)

    def build_preconditioner(self, precision: Optional[str] = None):
        """Build the (possibly precision-wrapped) preconditioner only.

        ``precision`` overrides the config's working precision -- the
        resilience engine uses it to rebuild in double after a float32
        overflow.
        """
        cfg = self.config
        problem = self.problem
        precision = precision or cfg.precision
        if precision == "single":
            import copy

            a = problem.a
            a32 = CsrMatrix(
                a.indptr.copy(), a.indices.copy(), round_to_single(a.data),
                a.shape,
            )
            problem = copy.copy(problem)
            problem.a = a32
        # the partition plan is pattern-only: same pattern + same box
        # split -> same node parts, so it lives in the artifact cache
        # and is re-bound to the new values on a hit
        cache = get_artifact_cache()
        dkey = (
            "decomposition",
            pattern_fingerprint(problem.a),
            self.partition,
        )
        dec_plan = cache.get(dkey)
        if dec_plan is None:
            if hasattr(problem, "grid"):
                dec = Decomposition.from_box_partition(
                    problem, *self.partition
                )
            else:
                # bare algebraic operators (the serving path) have no
                # grid; partition the node graph into the same number
                # of subdomains the box split would have produced
                px, py, pz = self.partition
                dec = Decomposition.algebraic(
                    problem.a,
                    px * py * pz,
                    dofs_per_node=getattr(problem, "dofs_per_node", 1),
                )
            cache.put(dkey, dec)
        else:
            dec = dec_plan.with_values(problem.a)
        variant = (
            "spectral" if cfg.coarse_space == "spectral" else cfg.variant
        )
        precond = GDSWPreconditioner(
            dec,
            self.nullspace(),
            local_spec=cfg.local,
            coarse_spec=cfg.coarse,
            overlap=cfg.overlap,
            variant=variant,
            dim=cfg.dim,
            extension_spec=cfg.extension,
            adaptive_tol=cfg.adaptive_tol,
            spectral_tau=cfg.tau,
            spectral_max_vectors=cfg.max_vectors_per_subdomain,
            coarse_solver=cfg.coarse_solver,
            multilevel_parts=cfg.multilevel_parts,
        )
        if precision == "single":
            return HalfPrecisionOperator(precond)
        return precond

    def _run_krylov(self, operator, rtol, maxiter, x0, observer, engine):
        """One Krylov attempt (the retry loop may issue several)."""
        kry = self.krylov
        problem = self.problem
        guard = engine.guard() if engine is not None else None
        if kry.method == "gmres":
            return gmres(
                problem.a,
                problem.b,
                preconditioner=operator,
                x0=x0,
                rtol=rtol,
                restart=kry.restart,
                maxiter=maxiter,
                variant=kry.variant,
                observer=observer,
                guard=guard,
            )
        if kry.method == "cg":
            return cg(
                problem.a,
                problem.b,
                preconditioner=operator,
                x0=x0,
                rtol=rtol,
                maxiter=maxiter,
                guard=guard,
            )
        return pipelined_cg(
            problem.a,
            problem.b,
            preconditioner=operator,
            x0=x0,
            rtol=rtol,
            maxiter=maxiter,
            guard=guard,
        )

    def solve(self) -> SessionResult:
        """Build the preconditioner and run the Krylov solve, traced.

        With ``resilience=``, a breakdown caught by the Krylov health
        guard re-enters the solve through the engine's session-level
        recovery: ladder escalations and precision promotion are applied
        and the iteration restarts from the last finite iterate, until
        the solve converges or the restart budget is spent.
        """
        if self.fault_tolerance is not None:
            from repro.ft.driver import solve_fault_tolerant

            return solve_fault_tolerant(self, self.fault_tolerance)
        kry = self.krylov
        problem = self.problem
        tracer = self.tracer or Tracer()
        engine = None
        if self.resilience is not None:
            engine = self.resilience.make_engine()
        observer = None
        if (
            self.verify is not None
            and kry.method == "gmres"
            and (engine is None or engine.plan is None)
        ):
            # injected faults violate the Krylov invariants by design,
            # so the invariant observer stays off in chaos runs
            from repro.verify import GmresInvariantObserver

            observer = GmresInvariantObserver()
        from contextlib import nullcontext

        from repro.resilience.context import use_engine
        from repro.resilience.engine import GuardedOperator

        bk_ctx = (
            use_backend(self.backend) if self.backend is not None
            else nullcontext()
        )
        with use_tracer(tracer), use_engine(engine), bk_ctx:
            with tracer.span("setup") as sp:
                sp.annotate(config=self.config.describe(),
                            partition=str(self.partition))
                operator = self.build_preconditioner()
                if engine is not None:
                    operator = GuardedOperator(operator, engine)

            with tracer.span("krylov") as sp:
                sp.annotate(method=kry.method)
                # the Krylov iteration always runs in working (double)
                # precision on the unrounded operator
                res = self._run_krylov(
                    operator, kry.rtol, kry.maxiter, None, observer, engine
                )
                iterations = res.iterations
                residual_norms = list(res.residual_norms)
                # the convergence target stays anchored to the FIRST
                # run's initial residual across restarts
                target_abs = kry.rtol * residual_norms[0] \
                    if residual_norms else 0.0
                while (
                    engine is not None
                    and not res.converged
                    and res.breakdown_reason is not None
                ):
                    plan = engine.plan_recovery(res.breakdown_reason)
                    if plan is None:
                        break
                    if plan == "promote_precision":
                        with tracer.span("resilience/promote") as rp:
                            rp.annotate(reason="float32 overflow")
                            # the discarded single-precision setup still
                            # happened: re-bill it before rebuilding
                            engine.bill_full_setup(operator.inner)
                            operator = GuardedOperator(
                                self.build_preconditioner(precision="double"),
                                engine,
                            )
                    remaining = kry.maxiter - iterations
                    if remaining < 1:
                        break
                    x0 = res.x
                    rtol_eff = kry.rtol
                    if np.all(np.isfinite(x0)):
                        rnow = float(np.linalg.norm(
                            problem.a.matvec(x0) - problem.b
                        ))
                        rtol_eff = target_abs / max(rnow, 1e-300)
                    else:  # guard missed: restart cold
                        x0 = None
                    res = self._run_krylov(
                        operator, rtol_eff, remaining, x0, observer, engine
                    )
                    iterations += res.iterations
                    residual_norms.extend(res.residual_norms)
        tracer.finish()
        # results are host-facing regardless of the solve backend
        res.x = to_numpy(res.x)

        relres = float(
            np.linalg.norm(problem.a.matvec(res.x) - problem.b)
            / max(np.linalg.norm(problem.b), 1e-300)
        )
        base = operator.inner if isinstance(operator, GuardedOperator) \
            else operator
        inner = base.inner if isinstance(base, HalfPrecisionOperator) \
            else base
        status = getattr(res, "status", SolveStatus.MAXITER)
        health = None
        if engine is not None:
            if res.converged and (engine.actions or engine.restarts):
                status = SolveStatus.RECOVERED
            health = engine.report(str(status))
        verification = None
        if self.verify is not None:
            from repro.verify import verify_run

            # the unwrapped operator: a GuardedOperator would re-apply
            # its faults inside the verification solves
            verification = verify_run(
                problem.a,
                problem.b,
                res.x,
                res.residual_norms,
                base,
                config=self.verify,
                nullspace=self.nullspace(),
                observer=observer,
            )
            if getattr(self.verify, "strict", True):
                verification.raise_on_failure()
        # record the reuse state for resolve()/solve_sequence()
        self._last = {
            "operator": base,
            "precond": inner,
            "pattern_fp": pattern_fingerprint(problem.a),
            "values_fp": values_fingerprint(problem.a),
            "x": res.x,
        }
        if self._recycle is not None and res.converged:
            self._recycle.add(res.x)
        return SessionResult(
            x=res.x,
            iterations=iterations,
            converged=res.converged,
            residual_norms=residual_norms,
            reduces=tracer.reduces,
            reduce_doubles=tracer.reduce_doubles,
            final_relres=relres,
            n_coarse=inner.n_coarse,
            n_ranks=inner.dec.n_subdomains,
            precond=operator,
            trace=tracer.root,
            verification=verification,
            status=status,
            health=health,
        )

    # ------------------------------------------------------------------
    # amortized-setup solve sequences (repro.reuse)
    # ------------------------------------------------------------------
    def _apply_updates(self, b, a_new) -> None:
        """Swap in a new right-hand side and/or matrix (shallow copy)."""
        if b is None and a_new is None:
            return
        import copy

        problem = copy.copy(self.problem)
        if b is not None:
            problem.b = np.asarray(b, dtype=np.float64)
        if a_new is not None:
            problem.a = a_new
        self.problem = problem

    def _suggest_x0(self) -> Optional[np.ndarray]:
        """Opt-in initial guess: recycling wins over plain warm start."""
        if self._recycle is not None and len(self._recycle):
            x0 = self._recycle.suggest_x0(
                self.problem.a.matvec, self.problem.b
            )
            if x0 is not None:
                return x0
        if self.reuse.warm_start and self._last is not None:
            x0 = self._last.get("x")
            if x0 is not None and np.all(np.isfinite(x0)):
                return np.asarray(x0, dtype=np.float64).copy()
        return None

    def resolve(self, b=None, a_new=None) -> SessionResult:
        """Solve again, reusing whatever the previous solve allows.

        The decision ladder, keyed on matrix fingerprints:

        * no previous solve, or a changed sparsity *pattern* -- full
          cold :meth:`solve` (counted as a ``reuse_miss``);
        * same pattern, new values -- numeric-only refactorization of
          the stored preconditioner (phase (b) of the paper's setup
          split; SuperLU locals rebuild, ``symbolic_reusable`` kinds
          skip phase (a));
        * identical values -- setup skipped entirely (repeated-RHS
          path).

        The reuse paths run without the resilience retry ladder (a
        breakdown there surfaces directly); with the default
        :class:`~repro.reuse.ReuseConfig` they are bit-identical to
        cold solves -- same iterates, same residual history.
        """
        last = self._last
        if last is None:
            self._apply_updates(b, a_new)
            return self.solve()
        kind = "skip"
        if a_new is not None:
            new_vfp = values_fingerprint(a_new)
            if new_vfp == last["values_fp"]:
                kind = "skip"
            elif pattern_fingerprint(a_new) == last["pattern_fp"]:
                kind = "refactor"
            else:
                kind = "cold"
        if kind == "cold":
            get_artifact_cache().misses += 1
            self._apply_updates(b, a_new)
            self._last = None
            return self.solve()
        self._apply_updates(b, a_new)

        kry = self.krylov
        problem = self.problem
        tracer = self.tracer or Tracer()
        operator = last["operator"]
        observer = None
        if self.verify is not None and kry.method == "gmres":
            from repro.verify import GmresInvariantObserver

            observer = GmresInvariantObserver()
        from contextlib import nullcontext

        bk_ctx = (
            use_backend(self.backend) if self.backend is not None
            else nullcontext()
        )
        with use_tracer(tracer), bk_ctx:
            with tracer.span("setup") as sp:
                sp.annotate(
                    config=self.config.describe(),
                    partition=str(self.partition),
                    reused=kind,
                )
                if kind == "refactor":
                    with tracer.span("reuse/refactor") as rp:
                        rp.count("reuse_hits", 1.0)
                        if isinstance(operator, HalfPrecisionOperator):
                            a = problem.a
                            a32 = CsrMatrix(
                                a.indptr.copy(),
                                a.indices.copy(),
                                round_to_single(a.data),
                                a.shape,
                            )
                            operator.inner.refactor(a32)
                        else:
                            operator.refactor(problem.a)
                else:
                    with tracer.span("reuse/skip_setup") as rp:
                        rp.count("reuse_hits", 1.0)
            with tracer.span("krylov") as sp:
                sp.annotate(method=kry.method)
                res = self._run_krylov(
                    operator, kry.rtol, kry.maxiter, self._suggest_x0(),
                    observer, None,
                )
        tracer.finish()
        res.x = to_numpy(res.x)

        relres = float(
            np.linalg.norm(problem.a.matvec(res.x) - problem.b)
            / max(np.linalg.norm(problem.b), 1e-300)
        )
        inner = operator.inner if isinstance(operator, HalfPrecisionOperator) \
            else operator
        verification = None
        if self.verify is not None:
            from repro.verify import verify_run

            verification = verify_run(
                problem.a,
                problem.b,
                res.x,
                res.residual_norms,
                operator,
                config=self.verify,
                nullspace=self.nullspace(),
                observer=observer,
            )
            if getattr(self.verify, "strict", True):
                verification.raise_on_failure()
        last["x"] = res.x
        last["values_fp"] = values_fingerprint(problem.a)
        if self._recycle is not None and res.converged:
            self._recycle.add(res.x)
        return SessionResult(
            x=res.x,
            iterations=res.iterations,
            converged=res.converged,
            residual_norms=list(res.residual_norms),
            reduces=tracer.reduces,
            reduce_doubles=tracer.reduce_doubles,
            final_relres=relres,
            n_coarse=inner.n_coarse,
            n_ranks=inner.dec.n_subdomains,
            precond=operator,
            trace=tracer.root,
            verification=verification,
            status=getattr(res, "status", SolveStatus.MAXITER),
            setup_reused=True,
        )

    def solve_sequence(self, bs, a_seq=None) -> List[SessionResult]:
        """Solve ``A_k x_k = b_k`` for a sequence, amortizing the setup.

        The first solve is cold; every later solve goes through
        :meth:`resolve`, so matching patterns pay only refactorization
        and matching values pay no setup at all (the paper's
        "Numerical Setup Time" amortization).

        Parameters
        ----------
        bs:
            Iterable of right-hand sides.
        a_seq:
            Optional iterable of matrices, one per right-hand side
            (None entries keep the current matrix).
        """
        bs = list(bs)
        if a_seq is None:
            a_list: List[Optional[CsrMatrix]] = [None] * len(bs)
        else:
            a_list = list(a_seq)
            if len(a_list) != len(bs):
                raise ValueError(
                    f"a_seq has {len(a_list)} entries for {len(bs)} "
                    f"right-hand sides"
                )
        return [self.resolve(b=b, a_new=a) for b, a in zip(bs, a_list)]
