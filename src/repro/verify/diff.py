"""Diff sequential numerics against the message-faithful execution.

The package's central shortcut is running the numerics sequentially on
assembled global objects while the distributed layer
(:mod:`repro.runtime.distributed`) exists to prove the shortcut valid.
:func:`diff_executions` makes that proof a first-class verification
artifact: it replays the solver's building blocks through
:class:`~repro.runtime.simmpi.SimComm` and compares, phase by phase and
in causal order,

1. **halo_payloads** -- the ghost values each rank imports are exactly
   the owner's values at the rank's ghost dofs (and nothing is left
   undelivered);
2. **spmv** -- the distributed SpMV equals the sequential one;
3. **precond_apply** -- the rank-local GDSW apply (overlap import,
   local solves, correction export, replicated coarse solve) equals the
   sequential apply;
4. **reduction_counts** -- the distributed solve issues exactly the
   sequential solve's reductions plus one coarse allreduce per
   preconditioner application;
5. **iterates** -- the CG iterates agree to tolerance, iteration by
   iteration.

Each phase runs under a dedicated :mod:`repro.obs` span, and
:attr:`ExecutionDiff.first_divergence` names the first phase (in the
causal order above) that disagrees -- a halo bug surfaces as
``halo_payloads``, not as a mysterious iterate drift three layers up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import Span, Tracer, use_tracer
from repro.runtime.distributed import (
    DistributedCsr,
    DistributedVector,
    distributed_cg,
    make_distributed_gdsw_apply,
)
from repro.runtime.simmpi import SimComm
from repro.verify.invariants import InvariantCheck

__all__ = ["PhaseDiff", "ExecutionDiff", "diff_executions"]

#: causal order of the diffed phases (divergence is reported earliest-first)
PHASES = (
    "halo_payloads",
    "spmv",
    "precond_apply",
    "reduction_counts",
    "iterates",
)


@dataclass
class PhaseDiff:
    """Agreement of one phase between the two executions."""

    phase: str
    span: str
    value: float
    tol: float
    ok: bool
    detail: str = ""


@dataclass
class ExecutionDiff:
    """Phase-by-phase comparison result, with its trace."""

    phases: List[PhaseDiff]
    trace: Span

    @property
    def ok(self) -> bool:
        """True when every phase agrees."""
        return all(p.ok for p in self.phases)

    @property
    def first_divergence(self) -> Optional[str]:
        """Name of the first (causally earliest) disagreeing phase."""
        for p in self.phases:
            if not p.ok:
                return p.phase
        return None

    def as_checks(self) -> List[InvariantCheck]:
        """The phases as invariant checks for a verification report."""
        return [
            InvariantCheck(
                f"diff/{p.phase}", p.value, p.tol, p.ok,
                (p.detail + " " if p.detail else "") + f"[span {p.span}]",
            )
            for p in self.phases
        ]

    def summary(self) -> str:
        """One line per phase; flags the first divergence."""
        lines = []
        for p in self.phases:
            mark = "ok " if p.ok else "FAIL"
            lines.append(
                f"[{mark}] {p.phase}: {p.value:.3e} (tol {p.tol:.1e}) {p.detail}"
            )
        head = (
            "executions agree"
            if self.ok
            else f"first divergence: {self.first_divergence}"
        )
        return "\n".join([head] + ["  " + s for s in lines])


class _CountingPrecond:
    """Wraps a preconditioner to count sequential applications."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.applies = 0

    def apply(self, v: np.ndarray) -> np.ndarray:
        self.applies += 1
        return self.inner.apply(v)


def diff_executions(
    precond,
    b: Optional[np.ndarray] = None,
    rtol: float = 1e-7,
    maxiter: int = 200,
    tol: float = 1e-8,
) -> ExecutionDiff:
    """Replay the solver distributedly and diff it against the sequential run.

    Runs on the matrix the preconditioner was built from (``dec.a`` of
    the unwrapped operator, so half-precision setups compare
    self-consistently) with CG as the Krylov driver -- its identical
    control flow on every rank makes the iterate and reduction-count
    comparisons exact in structure.  ``b`` defaults to a deterministic
    dense vector; ``tol`` bounds the relative elementwise disagreement
    permitted for the floating-point phases (the two executions sum in
    different orders).
    """
    inner = getattr(precond, "inner", precond)
    dec = inner.dec
    a = dec.a
    n = a.n_rows
    n_ranks = dec.n_subdomains
    if b is None:
        b = np.cos(0.7 * np.arange(n)) + 0.1
    xg = np.sin(0.3 * np.arange(n)) + 0.05  # probe vector for the kernels

    phases: List[PhaseDiff] = []
    tracer = Tracer()
    with use_tracer(tracer):
        a_dist = DistributedCsr(a, dec)
        owned = a_dist.owned_dofs
        xd = DistributedVector.from_global(xg, owned)

        with tracer.span("verify/halo_payloads"):
            comm = SimComm(n_ranks)
            full = a_dist.halo_exchange(xd, comm)
            worst = 0.0
            for r, arr in enumerate(full):
                expected = xg[np.concatenate([owned[r], a_dist.ghost_dofs[r]])]
                if arr.size:
                    worst = max(worst, float(np.max(np.abs(arr - expected))))
            undelivered = comm.pending()
            phases.append(
                PhaseDiff(
                    "halo_payloads", "verify/halo_payloads", worst, 0.0,
                    worst == 0.0 and undelivered == 0,
                    f"{comm.sends} messages, {undelivered} undelivered",
                )
            )

        with tracer.span("verify/spmv"):
            comm = SimComm(n_ranks)
            y_dist = a_dist.spmv(xd, comm).to_global(owned, n)
            y_seq = a.matvec(xg)
            scale = max(1.0, float(np.max(np.abs(y_seq))))
            d = float(np.max(np.abs(y_dist - y_seq))) / scale
            phases.append(
                PhaseDiff("spmv", "krylov/spmv", d, tol, d <= tol)
            )

        apply_dist = make_distributed_gdsw_apply(inner, a_dist)
        with tracer.span("verify/precond_apply"):
            comm = SimComm(n_ranks)
            z_dist = apply_dist(xd, comm).to_global(owned, n)
            z_seq = inner.apply(xg)
            scale = max(1.0, float(np.max(np.abs(z_seq))))
            d = float(np.max(np.abs(z_dist - z_seq))) / scale
            phases.append(
                PhaseDiff(
                    "precond_apply", "verify/precond_apply", d, tol, d <= tol
                )
            )

        with tracer.span("verify/krylov"):
            from repro.krylov.cg import cg

            seq_iterates = {}
            counting = _CountingPrecond(inner)
            seq = cg(
                a, b,
                preconditioner=counting,
                rtol=rtol,
                maxiter=maxiter,
                callback=lambda it, x: seq_iterates.__setitem__(it, x.copy()),
            )

            comm = SimComm(n_ranks)
            dist_applies = [0]

            def counting_apply(v, c):
                dist_applies[0] += 1
                return apply_dist(v, c)

            dist_iterates = {}
            bd = DistributedVector.from_global(b, owned)
            _, dist_iters, _ = distributed_cg(
                a_dist, bd, comm,
                rtol=rtol,
                maxiter=maxiter,
                preconditioner=counting_apply,
                callback=lambda it, x: dist_iterates.__setitem__(
                    it, x.to_global(owned, n)
                ),
            )

            # one coarse allreduce per distributed apply, on top of the
            # dot products the sequential solve also issues -- minus the
            # one reduction distributed_cg saves by fusing the initial
            # (r, z) and (r, r) dots into a single multi_dot allreduce
            expected = (
                seq.reduces
                - 1
                + (dist_applies[0] if inner.phi is not None else 0)
            )
            mismatch = abs(comm.allreduces - expected)
            phases.append(
                PhaseDiff(
                    "reduction_counts", "verify/krylov", float(mismatch), 0.0,
                    mismatch == 0 and dist_iters == seq.iterations,
                    f"distributed {comm.allreduces} allreduces vs sequential "
                    f"{seq.reduces} - 1 fused + {dist_applies[0]} coarse; "
                    f"iterations {dist_iters} vs {seq.iterations}",
                )
            )

            worst = 0.0
            first_bad = None
            for it in range(1, min(seq.iterations, dist_iters) + 1):
                scale = max(1.0, float(np.max(np.abs(seq_iterates[it]))))
                d = float(
                    np.max(np.abs(seq_iterates[it] - dist_iterates[it]))
                ) / scale
                if d > tol and first_bad is None:
                    first_bad = it
                worst = max(worst, d)
            phases.append(
                PhaseDiff(
                    "iterates", "verify/krylov", worst, tol,
                    worst <= tol and dist_iters == seq.iterations,
                    f"{min(seq.iterations, dist_iters)} iterations compared"
                    + (
                        f"; first divergence at iteration {first_bad}"
                        if first_bad is not None
                        else ""
                    ),
                )
            )
    tracer.finish()
    return ExecutionDiff(phases, tracer.root)
