"""Numerical-invariant verification for the Schwarz solver stack.

Three layers of defense against silently-wrong numbers:

* :mod:`repro.verify.invariants` -- algebraic invariants of one solve
  (residual drift, Arnoldi orthogonality, overlap symmetry/SPD-ness,
  coarse-basis partition of unity / Eq. (2) / null-space reproduction),
  bundled by :func:`verify_run` into a :class:`VerificationReport`;
* :mod:`repro.verify.diff` -- phase-by-phase comparison of the
  sequential numerics against the message-faithful distributed
  execution, reporting the causally first divergent phase;
* :mod:`repro.verify.cost_audit` -- replay of a priced trace against
  the communication counters the simulated MPI layer recorded.

Entry points: ``SolverSession(problem, verify=True)`` runs the suite
after every solve; ``python -m repro.verify`` runs it standalone for CI.
"""

from repro.verify.cost_audit import AuditEntry, CostModelAudit, audit_cost_model
from repro.verify.diff import ExecutionDiff, PhaseDiff, diff_executions
from repro.verify.invariants import (
    InvariantCheck,
    VerificationError,
    VerificationReport,
    VerifyConfig,
    check_coarse_basis,
    check_overlap_operator,
    check_residual_drift,
    check_spectral_space,
    verify_run,
)
from repro.verify.observers import CycleRecord, GmresInvariantObserver

__all__ = [
    "AuditEntry",
    "CostModelAudit",
    "CycleRecord",
    "ExecutionDiff",
    "GmresInvariantObserver",
    "InvariantCheck",
    "PhaseDiff",
    "VerificationError",
    "VerificationReport",
    "VerifyConfig",
    "audit_cost_model",
    "check_coarse_basis",
    "check_overlap_operator",
    "check_residual_drift",
    "check_spectral_space",
    "diff_executions",
    "verify_run",
]
