"""In-flight Krylov observers feeding the invariant suite.

:func:`repro.krylov.gmres.gmres` accepts an ``observer`` whose
``on_cycle`` hook fires after every restart cycle with the Arnoldi
basis built in that cycle.  :class:`GmresInvariantObserver` records the
basis orthogonality loss ``||V V^T - I||_max`` -- the quantity the
single-reduce scheme's selective reorthogonalization exists to bound
(Swirydowicz et al. 2021) -- and the recurrence-vs-explicit residual
agreement at the cycle boundary.  The hook reads state the solver
already has in registers: it issues no extra reductions and, outside
verification runs, costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.verify.invariants import InvariantCheck, VerifyConfig

__all__ = ["CycleRecord", "GmresInvariantObserver"]


@dataclass(frozen=True)
class CycleRecord:
    """What one GMRES cycle left behind for verification.

    Attributes
    ----------
    cycle:
        0-based cycle index.
    basis_size:
        Number of (nonzero) Arnoldi vectors the cycle built.
    ortho_loss:
        ``||V V^T - I||_max`` of those vectors.
    estimate:
        Recurrence residual estimate at the cycle boundary.
    true_norm:
        Explicit ``||b - Ax||`` when the cycle ended in a convergence
        confirmation; None when the cycle was merely exhausted.
    """

    cycle: int
    basis_size: int
    ortho_loss: float
    estimate: float
    true_norm: Optional[float]


@dataclass
class GmresInvariantObserver:
    """Records per-cycle Arnoldi health; plug into ``gmres(observer=)``."""

    records: List[CycleRecord] = field(default_factory=list)

    def on_cycle(
        self,
        basis: np.ndarray,
        x: np.ndarray,
        estimate: float,
        true_norm: Optional[float],
    ) -> None:
        """The hook ``gmres`` calls after each cycle (rows = basis)."""
        # a lucky-breakdown cycle appends one all-zero row: exclude it
        # (it is a sentinel, not a basis vector)
        norms = np.linalg.norm(basis, axis=1)
        v = basis[norms > 0.0]
        if v.shape[0]:
            gram = v @ v.T
            loss = float(np.max(np.abs(gram - np.eye(v.shape[0]))))
        else:
            loss = 0.0
        self.records.append(
            CycleRecord(
                cycle=len(self.records),
                basis_size=int(v.shape[0]),
                ortho_loss=loss,
                estimate=float(estimate),
                true_norm=None if true_norm is None else float(true_norm),
            )
        )

    # ------------------------------------------------------------------
    @property
    def max_ortho_loss(self) -> float:
        """Worst ``||V V^T - I||_max`` across all recorded cycles."""
        return max((r.ortho_loss for r in self.records), default=0.0)

    def checks(
        self, config: VerifyConfig, beta0: Optional[float] = None
    ) -> List[InvariantCheck]:
        """The observer's contribution to a verification report."""
        worst = max(self.records, key=lambda r: r.ortho_loss, default=None)
        out = [
            InvariantCheck(
                "krylov/orthogonality",
                self.max_ortho_loss,
                config.orthogonality_tol,
                self.max_ortho_loss <= config.orthogonality_tol,
                f"{len(self.records)} cycles"
                + (
                    f"; worst at cycle {worst.cycle} "
                    f"(basis size {worst.basis_size})"
                    if worst is not None
                    else ""
                ),
            )
        ]
        confirmed = [r for r in self.records if r.true_norm is not None]
        if confirmed and beta0:
            drift = max(
                abs(r.estimate - r.true_norm) / beta0 for r in confirmed
            )
            out.append(
                InvariantCheck(
                    "krylov/cycle_residual_drift",
                    drift,
                    config.residual_drift_tol,
                    drift <= config.residual_drift_tol,
                    f"{len(confirmed)} explicit confirmations",
                )
            )
        return out
