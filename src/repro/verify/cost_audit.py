"""Cost-model audit: replay a priced trace against executed counters.

The timing tables rest on modeled communication volumes -- the halo and
reduction payloads :func:`repro.runtime.timings.trace_solver` attaches
to its priced span tree.  Those numbers are *assumptions* about what a
distributed execution would send; :func:`audit_cost_model` turns them
into *checked* quantities by executing one distributed SpMV and one
distributed preconditioner apply through
:class:`~repro.runtime.simmpi.SimComm` and comparing, per kernel
family, the modeled value counts against what the simulated MPI layer
actually shipped:

* ``comm.spmv_halo`` -- the trace's per-iteration SpMV ghost imports
  vs the tag-1 payloads of one distributed SpMV (this is the family
  that was silently quarter-priced when the model derived it from the
  half-precision preconditioner's apply halo);
* ``comm.overlap_import`` -- the apply-halo counter vs the tag-2
  overlap imports (scaled for emulated-half payloads, which the
  simulator ships as float64);
* ``comm.correction_export`` -- the tag-3 export is structurally twice
  the import (packed ``[positions | values]``);
* ``comm.coarse_allreduce`` -- the modeled coarse-residual reduction
  payload vs the values the apply's allreduce actually reduced.

Disagreeing families are *flagged* (:attr:`CostModelAudit.flagged`) and
fail the audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.distributed import (
    DistributedCsr,
    DistributedVector,
    make_distributed_gdsw_apply,
)
from repro.runtime.layout import JobLayout
from repro.runtime.simmpi import SimComm
from repro.runtime.timings import trace_solver
from repro.verify.invariants import InvariantCheck

__all__ = ["AuditEntry", "CostModelAudit", "audit_cost_model"]


@dataclass
class AuditEntry:
    """One kernel family: modeled vs executed communication volume."""

    family: str
    modeled: float
    executed: float
    tol: float
    ok: bool
    note: str = ""

    def __str__(self) -> str:
        mark = "ok " if self.ok else "FLAG"
        s = (
            f"[{mark}] {self.family}: modeled {self.modeled:.6g} vs "
            f"executed {self.executed:.6g} (tol {self.tol:g})"
        )
        return s + (f" -- {self.note}" if self.note else "")


@dataclass
class CostModelAudit:
    """Verdict of one cost-model audit run."""

    entries: List[AuditEntry]

    @property
    def ok(self) -> bool:
        """True when no family disagrees."""
        return all(e.ok for e in self.entries)

    @property
    def flagged(self) -> List[str]:
        """Kernel families whose modeled counts disagree."""
        return [e.family for e in self.entries if not e.ok]

    def as_checks(self) -> List[InvariantCheck]:
        """The entries as invariant checks for a verification report."""
        return [
            InvariantCheck(
                f"audit/{e.family}",
                abs(e.modeled - e.executed),
                e.tol,
                e.ok,
                e.note,
            )
            for e in self.entries
        ]

    def summary(self) -> str:
        """One line per audited family."""
        head = (
            "cost model consistent"
            if self.ok
            else "flagged families: " + ", ".join(self.flagged)
        )
        return "\n".join([head] + ["  " + str(e) for e in self.entries])


def audit_cost_model(
    precond, layout: Optional[JobLayout] = None
) -> CostModelAudit:
    """Audit the priced trace of ``precond`` against an executed apply.

    ``layout`` defaults to one CPU node with one rank per subdomain (the
    layout only prices seconds; the audited *counts* are layout-free).
    """
    inner = getattr(precond, "inner", precond)
    half = inner is not precond
    dec = inner.dec
    n_ranks = dec.n_subdomains
    layout = layout or JobLayout(1, n_ranks)

    # ---- modeled side: one iteration's priced trace ----
    _, trace = trace_solver(precond, layout, 1, 0, 0)
    iter_spans = trace.find("apply/iteration")
    modeled_spmv = sum(
        sp.counters.get("spmv_halo_doubles", 0.0) for sp in iter_spans
    )
    modeled_halo = sum(
        sp.counters.get("halo_doubles", 0.0) for sp in iter_spans
    )
    # the coarse residual is reduced once per apply; the model carries
    # its payload as per-rank comm.coarse_allreduce bytes (halved under
    # emulated half precision, where the payload would be float32)
    value_bytes = 4.0 if half else 8.0
    modeled_coarse = 0.0
    for sp in iter_spans:
        if sp.profile is not None:
            for k in sp.profile:
                if k.name == "comm.coarse_allreduce":
                    modeled_coarse = max(modeled_coarse, k.bytes / value_bytes)

    # ---- executed side: one SpMV + one apply on the simulator ----
    n = dec.a.n_rows
    xg = np.cos(0.3 * np.arange(n)) + 0.1
    a_dist = DistributedCsr(dec.a, dec)
    xd = DistributedVector.from_global(xg, a_dist.owned_dofs)

    comm_spmv = SimComm(n_ranks)
    a_dist.spmv(xd, comm_spmv)
    executed_spmv = float(comm_spmv.channel_doubles(tag=1))

    comm_apply = SimComm(n_ranks)
    make_distributed_gdsw_apply(inner, a_dist)(xd, comm_apply)
    executed_import_raw = float(comm_apply.channel_doubles(tag=2))
    executed_export = float(comm_apply.channel_doubles(tag=3))

    entries = [
        AuditEntry(
            "comm.spmv_halo",
            modeled_spmv,
            executed_spmv,
            0.0,
            modeled_spmv == executed_spmv,
            "ghost values imported by one distributed SpMV "
            "(working precision, independent of the preconditioner's)",
        )
    ]
    # the simulator ships emulated-half payloads as float64 values, so
    # the executed count is scaled down; the model rounds each rank's
    # halved count up, hence the half-value-per-rank tolerance
    scale = 0.5 if half else 1.0
    executed_import = executed_import_raw * scale
    tol_import = 0.5 * n_ranks if half else 0.0
    entries.append(
        AuditEntry(
            "comm.overlap_import",
            modeled_halo,
            executed_import,
            tol_import,
            abs(modeled_halo - executed_import) <= tol_import,
            "overlap values imported by one preconditioner apply"
            + (" (executed float64 count scaled to half)" if half else ""),
        )
    )
    expected_export = 2.0 * executed_import_raw
    entries.append(
        AuditEntry(
            "comm.correction_export",
            expected_export,
            executed_export,
            0.0,
            expected_export == executed_export,
            "packed [positions | values] correction export; the model "
            "prices it within the apply halo",
        )
    )
    if inner.phi is not None:
        executed_coarse = float(comm_apply.reduce_doubles)
        entries.append(
            AuditEntry(
                "comm.coarse_allreduce",
                modeled_coarse,
                executed_coarse,
                0.0,
                modeled_coarse == executed_coarse,
                f"coarse residual values reduced per apply "
                f"({comm_apply.allreduces} allreduce)",
            )
        )
    return CostModelAudit(entries)
