"""CI entry point: ``python -m repro.verify``.

Runs the full invariant suite -- algebraic invariants, the
sequential-vs-distributed diff, and the cost-model audit -- on the
quickstart problems (Laplace and elasticity) in both working
precisions, and exits nonzero when any check fails.  This is the
``verify`` job of ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api import KrylovConfig, SchwarzConfig, SolverSession
from repro.fem import elasticity_3d, laplace_3d
from repro.verify import VerifyConfig

PROBLEMS = {
    "laplace": lambda: laplace_3d(6),
    "elasticity": lambda: elasticity_3d(4),
}
PRECISIONS = ("double", "single")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the suite; returns the number of failing configurations."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Run the numerical-invariant verification suite.",
    )
    parser.add_argument(
        "--problems",
        default=",".join(PROBLEMS),
        help="comma-separated subset of: " + ", ".join(PROBLEMS),
    )
    parser.add_argument(
        "--precisions",
        default=",".join(PRECISIONS),
        help="comma-separated subset of: " + ", ".join(PRECISIONS),
    )
    parser.add_argument(
        "--partition", default="2,2,2", help="subdomain box, e.g. 2,2,2"
    )
    parser.add_argument(
        "--no-diff", action="store_true",
        help="skip the sequential-vs-distributed execution diff",
    )
    parser.add_argument(
        "--no-audit", action="store_true",
        help="skip the cost-model audit",
    )
    args = parser.parse_args(argv)

    partition = tuple(int(p) for p in args.partition.split(","))
    config = VerifyConfig(
        strict=False,
        diff_distributed=not args.no_diff,
        audit_cost_model=not args.no_audit,
    )
    failures = 0
    for name in args.problems.split(","):
        name = name.strip()
        if name not in PROBLEMS:
            parser.error(f"unknown problem {name!r}")
        for precision in args.precisions.split(","):
            precision = precision.strip()
            session = SolverSession(
                PROBLEMS[name](),
                partition=partition,
                config=SchwarzConfig(precision=precision),
                krylov=KrylovConfig(),
                verify=config,
            )
            result = session.solve()
            report = result.verification
            status = "PASS" if report.ok and result.converged else "FAIL"
            print(f"== {name} / {precision}: {status} "
                  f"({result.iterations} iterations)")
            print(report.summary())
            if not (report.ok and result.converged):
                failures += 1
    print(f"\n{failures} failing configuration(s)")
    return failures


if __name__ == "__main__":
    sys.exit(main())
