"""Algebraic invariants of the two-level Schwarz solve.

Every quantity the reproduction reports rests on a small set of exact
algebraic identities.  This module checks them after (or during) a
solve, so that a numerical regression -- a mispriced halo, an
orthogonality loss that the lagged norm estimate papers over, an
overlap extraction that destroys symmetry -- fails loudly instead of
silently bending an iteration count or a modeled second:

* **residual drift** -- the Krylov recurrence estimate of ``||b - Ax||``
  must agree with the explicitly recomputed residual to within
  ``residual_drift_tol`` relative to the initial residual;
* **Arnoldi orthogonality** -- ``||V V^T - I||_max`` of each cycle's
  basis stays below ``orthogonality_tol`` (recorded by
  :class:`~repro.verify.observers.GmresInvariantObserver`);
* **overlap extraction** -- every overlapping local matrix
  ``A_i = R_i A R_i^T`` stays symmetric (exact: extraction permutes and
  selects entries) and positive definite (checked by dense Cholesky on
  subdomains up to ``spd_check_cap`` rows);
* **coarse basis** -- the GDSW/rGDSW interface weights partition unity,
  the harmonic extension satisfies Eq. (2)
  (``A_II Phi_I + A_IGamma Phi_Gamma = 0``: the interior rows of
  ``A Phi`` vanish), and the interface basis reproduces the Neumann
  null space.

:func:`verify_run` bundles the checks into a
:class:`VerificationReport`; :class:`~repro.api.SolverSession` runs it
when constructed with ``verify=``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = [
    "InvariantCheck",
    "VerificationError",
    "VerificationReport",
    "VerifyConfig",
    "check_coarse_basis",
    "check_overlap_operator",
    "check_residual_drift",
    "check_spectral_space",
    "verify_run",
]


class VerificationError(RuntimeError):
    """Raised (in strict mode) when an invariant check fails."""


@dataclass(frozen=True)
class VerifyConfig:
    """Tolerances and scope of the invariant suite.

    Attributes
    ----------
    residual_drift_tol:
        Allowed ``|estimate - true| / ||r0||`` between the recurrence
        residual and the recomputed ``||b - Ax||``.
    orthogonality_tol:
        Allowed ``||V V^T - I||_max`` per GMRES cycle.  The default
        matches the loss budget of the single-reduce scheme's selective
        reorthogonalization (``_ORTHO_LOSS_BUDGET`` amplified by the
        iterations between second passes) -- tight enough to catch the
        orthogonality collapse an under-triggered reorthogonalization
        produces, loose enough for one-reduce iterations to stay the
        common case.
    symmetry_tol:
        Allowed relative asymmetry ``max|A_i - A_i^T| / max|A_i|`` of
        the overlapping local matrices (0 would also hold: extraction
        moves entries verbatim).
    spd_check_cap:
        Local matrices with more rows than this skip the dense-Cholesky
        SPD check (cost control; symmetry is still checked).
    pou_tol:
        Allowed deviation of the coarse interface weights from summing
        to one at every interface node.
    extension_tol:
        Allowed relative magnitude of the interior rows of ``A Phi``
        (zero by Eq. (2) up to the extension solves' accuracy).
    nullspace_tol:
        Allowed relative residual of reproducing the Neumann null space
        from the interface basis ``Phi_Gamma``.
    spsd_tol:
        Allowed relative negativity ``-lambda_min / max|tilde A_i|`` of
        each subdomain's recomputed local SPSD splitting (spectral
        coarse spaces only; the splitting is SPSD up to roundoff for
        the M-matrix-like operators the construction targets).
    strict:
        When run through :class:`~repro.api.SolverSession`, raise
        :class:`VerificationError` on failure instead of only recording
        it on the result.
    diff_distributed:
        Also diff the sequential numerics against the message-faithful
        distributed execution (:func:`repro.verify.diff.diff_executions`).
    audit_cost_model:
        Also replay a priced trace against the simulated MPI layer's
        counters (:func:`repro.verify.cost_audit.audit_cost_model`).
    """

    residual_drift_tol: float = 1e-6
    orthogonality_tol: float = 1e-6
    symmetry_tol: float = 1e-12
    spd_check_cap: int = 2000
    pou_tol: float = 1e-12
    extension_tol: float = 1e-8
    nullspace_tol: float = 1e-10
    spsd_tol: float = 1e-8
    strict: bool = True
    diff_distributed: bool = False
    audit_cost_model: bool = False


@dataclass
class InvariantCheck:
    """One checked invariant: a measured value against its tolerance."""

    name: str
    value: float
    tol: float
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        s = f"[{mark}] {self.name}: {self.value:.3e} (tol {self.tol:.1e})"
        return s + (f" -- {self.detail}" if self.detail else "")


@dataclass
class VerificationReport:
    """The collected outcome of an invariant suite run."""

    checks: List[InvariantCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[InvariantCheck]:
        """The failing checks."""
        return [c for c in self.checks if not c.ok]

    def extend(self, checks: List[InvariantCheck]) -> "VerificationReport":
        """Append checks; returns self for chaining."""
        self.checks.extend(checks)
        return self

    def summary(self) -> str:
        """Multi-line human-readable report."""
        head = (
            f"verification: {len(self.checks)} checks, "
            f"{len(self.failures)} failed"
        )
        return "\n".join([head] + ["  " + str(c) for c in self.checks])

    def raise_on_failure(self) -> None:
        """Raise :class:`VerificationError` listing any failed checks."""
        if not self.ok:
            raise VerificationError(self.summary())


def _unwrap(precond):
    """The bare :class:`GDSWPreconditioner` under a precision wrapper."""
    return getattr(precond, "inner", precond)


# ----------------------------------------------------------------------
def check_residual_drift(
    x: np.ndarray,
    a,
    b: np.ndarray,
    residual_norms: List[float],
    config: VerifyConfig,
) -> List[InvariantCheck]:
    """Recompute ``||b - Ax||`` and compare with the recurrence estimate.

    The Givens recurrence (GMRES) and the recursively updated residual
    (CG) both drift away from the true residual in finite precision;
    bounded drift is what makes the reported iteration counts
    trustworthy.  Drift is measured relative to the initial residual
    ``residual_norms[0]``, the quantity the convergence test divides by.
    """
    apply_a = a.matvec if hasattr(a, "matvec") else a
    true = float(np.linalg.norm(b - apply_a(x)))
    beta0 = residual_norms[0] if residual_norms else float(np.linalg.norm(b))
    est = residual_norms[-1] if residual_norms else true
    drift = abs(est - true) / max(beta0, 1e-300)
    return [
        InvariantCheck(
            "residual/recurrence_drift",
            drift,
            config.residual_drift_tol,
            drift <= config.residual_drift_tol,
            f"estimate {est:.3e}, recomputed {true:.3e}, ||r0|| {beta0:.3e}",
        )
    ]


def check_overlap_operator(precond, config: VerifyConfig) -> List[InvariantCheck]:
    """Symmetry and positive definiteness of every ``A_i = R_i A R_i^T``.

    Overlap extraction selects rows/columns of a symmetric matrix, so
    each local matrix is exactly symmetric; any asymmetry means the
    extraction (or a precision cast applied to only one triangle) is
    broken.  SPD-ness is what licenses CG/Cholesky on the subdomain
    solves; it is confirmed by dense Cholesky on subdomains up to
    ``spd_check_cap`` rows.
    """
    inner = _unwrap(precond)
    matrices = inner.one_level.matrices
    worst_sym, worst_rank = 0.0, -1
    for rank, a_i in enumerate(matrices):
        d = a_i - a_i.transpose()
        asym = float(np.max(np.abs(d.data))) if d.data.size else 0.0
        scale = float(np.max(np.abs(a_i.data))) if a_i.data.size else 1.0
        rel = asym / max(scale, 1e-300)
        if rel > worst_sym:
            worst_sym, worst_rank = rel, rank
    checks = [
        InvariantCheck(
            "overlap/symmetry",
            worst_sym,
            config.symmetry_tol,
            worst_sym <= config.symmetry_tol,
            f"worst of {len(matrices)} local matrices"
            + (f" (rank {worst_rank})" if worst_rank >= 0 else ""),
        )
    ]

    factored, skipped, failed = 0, 0, []
    for rank, a_i in enumerate(matrices):
        if a_i.n_rows > config.spd_check_cap:
            skipped += 1
            continue
        dense = a_i.todense()
        try:
            np.linalg.cholesky(0.5 * (dense + dense.T))
        except np.linalg.LinAlgError:
            failed.append(rank)
        factored += 1
    checks.append(
        InvariantCheck(
            "overlap/spd",
            float(len(failed)),
            0.0,
            not failed,
            f"{factored} subdomains factored, {skipped} over the "
            f"{config.spd_check_cap}-row cap"
            + (f"; indefinite ranks {failed}" if failed else ""),
        )
    )
    return checks


def check_coarse_basis(
    precond,
    config: VerifyConfig,
    nullspace: Optional[np.ndarray] = None,
) -> List[InvariantCheck]:
    """Partition of unity, Eq. (2), and null-space reproduction of Phi.

    * The interface weights of every GDSW/rGDSW component sum to one at
      every interface node (the partition-of-unity construction).
    * The energy-minimizing extension solves
      ``A_II Phi_I = -A_IGamma Phi_Gamma``, so the interior rows of
      ``A Phi`` vanish -- checked relative to ``max|A| * max|Phi|``.
    * Since the coarse columns are (weights x null-space) products, the
      interface restriction of each Neumann null-space vector lies in
      ``range(Phi_Gamma)``; checked by least squares when a null space
      is supplied (GDSW/rGDSW only -- adaptive spaces have their own
      basis selection).
    """
    inner = _unwrap(precond)
    space = inner.space
    if inner.phi is None:
        return [
            InvariantCheck(
                "coarse/partition_of_unity", 0.0, config.pou_tol, True,
                "no coarse level (single subdomain)",
            )
        ]
    pou = float(space.partition_of_unity_error())
    checks = [
        InvariantCheck(
            "coarse/partition_of_unity",
            pou,
            config.pou_tol,
            pou <= config.pou_tol,
            f"{space.n_coarse} coarse functions ({space.variant})",
        )
    ]

    from repro.sparse.blocks import extract_submatrix
    from repro.sparse.spgemm import spgemm

    a = inner.dec.a
    ap = spgemm(a, inner.phi)
    interior = space.interior_dofs
    if interior.size:
        rows = extract_submatrix(
            ap, interior, np.arange(ap.n_cols, dtype=np.int64)
        )
        worst = float(np.max(np.abs(rows.data))) if rows.data.size else 0.0
    else:
        worst = 0.0
    scale = float(np.max(np.abs(a.data))) * max(
        float(np.max(np.abs(inner.phi.data))) if inner.phi.data.size else 1.0,
        1e-300,
    )
    rel = worst / max(scale, 1e-300)
    checks.append(
        InvariantCheck(
            "coarse/harmonic_extension",
            rel,
            config.extension_tol,
            rel <= config.extension_tol,
            f"max interior row of A@Phi {worst:.3e} vs scale {scale:.3e}",
        )
    )

    if nullspace is not None and space.variant in ("gdsw", "rgdsw"):
        z = np.asarray(nullspace, dtype=np.float64)
        if z.ndim == 1:
            z = z[:, None]
        ifc = space.interface_dofs
        if space.n_coarse and ifc.size * space.n_coarse <= 2_000_000:
            pg = space.phi_gamma.todense()
            zg = z[ifc]
            coeff, *_ = np.linalg.lstsq(pg, zg, rcond=None)
            resid = pg @ coeff - zg
            rel = float(np.max(np.abs(resid))) / max(
                float(np.max(np.abs(zg))), 1e-300
            )
            checks.append(
                InvariantCheck(
                    "coarse/nullspace_reproduction",
                    rel,
                    config.nullspace_tol,
                    rel <= config.nullspace_tol,
                    f"{z.shape[1]} null-space vectors on "
                    f"{ifc.size} interface dofs",
                )
            )
    return checks


def check_spectral_space(precond, config: VerifyConfig) -> List[InvariantCheck]:
    """SPSD-splitting and eigenvalue-threshold invariants (spectral only).

    * **eigenvalue threshold** -- every kept generalized eigenvalue
      beyond each subdomain's guaranteed first mode satisfies
      ``lambda <= tau``, and no subdomain exceeds
      ``max_vectors_per_subdomain`` (the selection contract of
      :func:`repro.dd.algebraic.subdomain_spectral_modes`);
    * **SPSD splitting** -- each subdomain's local splitting
      ``tilde A_i`` (recomputed from the assembled matrix) has
      ``lambda_min >= -spsd_tol * max|tilde A_i|``, i.e. the algebraic
      Neumann correction produced a positive semi-definite local
      operator.  Subdomains whose patch exceeds ``spd_check_cap`` dofs
      skip the dense eigenvalue check (cost control).

    Returns no checks for non-spectral preconditioners.
    """
    inner = _unwrap(precond)
    space = inner.space
    if space.variant != "spectral" or space.eigenvalues is None:
        return []
    tau = float(space.tau)
    max_vec = int(space.max_vectors_per_subdomain)

    worst_excess = 0.0
    worst_count = 0
    for evals in space.eigenvalues:
        if evals.size > max_vec:
            worst_count = max(worst_count, int(evals.size))
        # the first mode is the always-kept floor; the rest must clear tau
        if evals.size > 1:
            worst_excess = max(worst_excess, float(np.max(evals[1:]) - tau))
    checks = [
        InvariantCheck(
            "spectral/eigenvalue_threshold",
            max(worst_excess, 0.0),
            0.0,
            worst_excess <= 0.0 and worst_count <= max_vec,
            f"tau {tau:g}, cap {max_vec}, "
            f"{sum(e.size for e in space.eigenvalues)} modes over "
            f"{len(space.eigenvalues)} subdomains"
            + (f"; a subdomain kept {worst_count}" if worst_count else ""),
        )
    ]

    from repro.dd.algebraic import local_spsd_splitting
    from repro.dd.overlap import overlapping_subdomains

    dec = inner.dec
    analysis = inner.analysis
    node_sets = getattr(inner.one_level, "node_sets", None)
    if node_sets is None:
        node_sets = overlapping_subdomains(dec, 1)
    worst_neg, checked, skipped = 0.0, 0, 0
    for rank in range(dec.n_subdomains):
        gamma_nodes = np.asarray(
            sorted(
                node
                for node, owners in analysis.node_adjacency.items()
                if rank in owners
            ),
            dtype=np.int64,
        )
        if gamma_nodes.size == 0:
            continue
        patch_nodes = np.union1d(node_sets[rank], gamma_nodes)
        if patch_nodes.size * dec.dofs_per_node > config.spd_check_cap:
            skipped += 1
            continue
        a_tilde, _ = local_spsd_splitting(dec, gamma_nodes, patch_nodes)
        evs = np.linalg.eigvalsh(a_tilde)
        scale = max(float(np.max(np.abs(a_tilde))), 1e-300)
        worst_neg = max(worst_neg, float(-evs[0]) / scale)
        checked += 1
    checks.append(
        InvariantCheck(
            "spectral/spsd_splitting",
            worst_neg,
            config.spsd_tol,
            worst_neg <= config.spsd_tol,
            f"{checked} subdomain splittings eig-checked, {skipped} over "
            f"the {config.spd_check_cap}-dof cap",
        )
    )
    return checks


# ----------------------------------------------------------------------
def verify_run(
    a,
    b: np.ndarray,
    x: np.ndarray,
    residual_norms: List[float],
    precond,
    config: Optional[VerifyConfig] = None,
    nullspace: Optional[np.ndarray] = None,
    observer=None,
) -> VerificationReport:
    """Run the full invariant suite on one completed solve.

    ``a``/``b`` are the operator and right-hand side the Krylov method
    iterated on (the *working-precision* system); the preconditioner
    invariants are checked against the matrix the preconditioner was
    built from (its own ``dec.a``, which differs under emulated half
    precision).  ``observer`` optionally supplies the per-cycle Arnoldi
    records of a :class:`~repro.verify.observers.GmresInvariantObserver`.
    """
    config = config or VerifyConfig()
    report = VerificationReport()
    report.extend(check_residual_drift(x, a, b, residual_norms, config))
    if observer is not None:
        beta0 = residual_norms[0] if residual_norms else None
        report.extend(observer.checks(config, beta0=beta0))
    report.extend(check_overlap_operator(precond, config))
    report.extend(check_coarse_basis(precond, config, nullspace=nullspace))
    report.extend(check_spectral_space(precond, config))
    if config.diff_distributed:
        from repro.verify.diff import diff_executions

        report.extend(diff_executions(precond).as_checks())
    if config.audit_cost_model:
        from repro.verify.cost_audit import audit_cost_model

        report.extend(audit_cost_model(precond).as_checks())
    return report
