"""Compressed-sparse-row (CSR) matrices.

The central storage format of the package.  All kernels are vectorized
numpy; no scipy is used.  The class is deliberately small and explicit --
the factorizations, triangular solves and Schwarz operators are built on
top of it rather than hidden inside it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["CsrMatrix", "eye", "diags"]


class CsrMatrix:
    """A sparse matrix in compressed-sparse-row format.

    Parameters
    ----------
    indptr:
        ``(n_rows + 1,)`` int64 row-pointer array.
    indices:
        ``(nnz,)`` int64 column indices; sorted within each row.
    data:
        ``(nnz,)`` value array (float32 or float64).
    shape:
        ``(n_rows, n_cols)``.

    Notes
    -----
    Rows are kept with sorted column indices; constructors enforce this.
    The invariant is relied upon by the binary-merge kernels (SpAdd, the
    ILU symbolic phase) and by :meth:`sorted_index_of`.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.ndim != 1 or self.indptr.size != self.shape[0] + 1:
            raise ValueError("indptr must have length n_rows + 1")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have identical length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("inconsistent indptr")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CsrMatrix":
        """Build from triplets, summing duplicates."""
        from repro.sparse.coo import coalesce

        r, c, v = coalesce(rows, cols, vals, shape)
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, r + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, c, v, shape)

    @classmethod
    def from_dense(cls, a: np.ndarray, tol: float = 0.0) -> "CsrMatrix":
        """Build from a dense array, dropping entries with ``|a| <= tol``."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("expected a 2-D array")
        mask = np.abs(a) > tol
        rows, cols = np.nonzero(mask)
        return cls.from_coo(rows, cols, a[rows, cols], a.shape)

    @classmethod
    def from_scipy(cls, a) -> "CsrMatrix":
        """Convert from a ``scipy.sparse`` matrix (test-oracle interop)."""
        a = a.tocsr()
        a.sort_indices()
        a.sum_duplicates()
        return cls(
            a.indptr.astype(np.int64),
            a.indices.astype(np.int64),
            a.data.copy(),
            a.shape,
        )

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (test-oracle interop)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def dtype(self) -> np.dtype:
        """Value dtype."""
        return self.data.dtype

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def row_nnz(self) -> np.ndarray:
        """Per-row entry counts."""
        return np.diff(self.indptr)

    def copy(self) -> "CsrMatrix":
        """Deep copy."""
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape
        )

    def astype(self, dtype) -> "CsrMatrix":
        """Copy with values cast to ``dtype`` (used by the half-precision path)."""
        return CsrMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            self.data.astype(dtype),
            self.shape,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"
        )

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` (views, do not mutate)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def diagonal(self) -> np.ndarray:
        """Main-diagonal values (zeros where the diagonal is not stored)."""
        n = min(self.shape)
        out = np.zeros(n, dtype=self.dtype)
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_nnz()
        )
        mask = rows == self.indices
        out_rows = rows[mask]
        sel = out_rows < n
        out[out_rows[sel]] = self.data[mask][sel]
        return out

    def todense(self) -> np.ndarray:
        """Materialize as a dense ndarray."""
        out = np.zeros(self.shape, dtype=self.dtype)
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Sparse matrix--vector product ``A @ x``.

        Vectorized via a gather followed by a segmented reduction
        (``np.add.reduceat``), which is the numpy analogue of the
        row-parallel CSR SpMV kernel.
        """
        x = np.asarray(x)
        prods = self.data * x[self.indices]
        result_dtype = prods.dtype if prods.size else np.result_type(self.dtype, x.dtype)
        if out is None:
            out = np.zeros(self.n_rows, dtype=result_dtype)
        else:
            out[:] = 0
        if self.nnz == 0:
            return out
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            out[nonempty] = np.add.reduceat(prods, self.indptr[nonempty])
        return out

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix--dense matrix product ``A @ X`` for 2-D ``X``."""
        x = np.asarray(x)
        if x.ndim == 1:
            return self.matvec(x)
        prods = self.data[:, None] * x[self.indices, :]
        out = np.zeros((self.n_rows, x.shape[1]), dtype=prods.dtype)
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            out[nonempty] = np.add.reduceat(prods, self.indptr[nonempty], axis=0)
        return out

    def __matmul__(self, other):
        if isinstance(other, CsrMatrix):
            from repro.sparse.spgemm import spgemm

            return spgemm(self, other)
        return self.matmat(other)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Transpose product ``A.T @ y`` without forming the transpose."""
        y = np.asarray(y)
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        out = np.zeros(self.n_cols, dtype=np.result_type(self.dtype, y.dtype))
        np.add.at(out, self.indices, self.data * y[rows])
        return out

    def transpose(self) -> "CsrMatrix":
        """Explicit transpose (counting-sort based, O(nnz))."""
        n_rows, n_cols = self.shape
        indptr_t = np.zeros(n_cols + 1, dtype=np.int64)
        np.add.at(indptr_t, self.indices + 1, 1)
        np.cumsum(indptr_t, out=indptr_t)
        rows = np.repeat(np.arange(n_rows, dtype=np.int64), self.row_nnz())
        order = np.argsort(self.indices, kind="stable")
        return CsrMatrix(indptr_t, rows[order], self.data[order], (n_cols, n_rows))

    @property
    def T(self) -> "CsrMatrix":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def scale_rows(self, d: np.ndarray) -> "CsrMatrix":
        """Return ``diag(d) @ A``."""
        d = np.asarray(d)
        if d.size != self.n_rows:
            raise ValueError("scaling vector length mismatch")
        data = self.data * np.repeat(d, self.row_nnz())
        return CsrMatrix(self.indptr.copy(), self.indices.copy(), data, self.shape)

    def scale_cols(self, d: np.ndarray) -> "CsrMatrix":
        """Return ``A @ diag(d)``."""
        d = np.asarray(d)
        if d.size != self.n_cols:
            raise ValueError("scaling vector length mismatch")
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data * d[self.indices], self.shape
        )

    def __mul__(self, alpha: float) -> "CsrMatrix":
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data * alpha, self.shape
        )

    __rmul__ = __mul__

    def __add__(self, other: "CsrMatrix") -> "CsrMatrix":
        from repro.sparse.spadd import spadd

        return spadd(self, other)

    def __sub__(self, other: "CsrMatrix") -> "CsrMatrix":
        from repro.sparse.spadd import spadd

        return spadd(self, other, beta=-1.0)

    # ------------------------------------------------------------------
    # structure utilities
    # ------------------------------------------------------------------
    def eliminate_zeros(self, tol: float = 0.0) -> "CsrMatrix":
        """Drop stored entries with ``|a_ij| <= tol``."""
        keep = np.abs(self.data) > tol
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows[keep] + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CsrMatrix(indptr, self.indices[keep], self.data[keep], self.shape)

    def pattern(self) -> "CsrMatrix":
        """Structure-only copy with all stored values set to one."""
        return CsrMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            np.ones(self.nnz, dtype=self.dtype),
            self.shape,
        )

    def is_sorted(self) -> bool:
        """True when every row's column indices are strictly increasing."""
        if self.nnz < 2:
            return True
        d = np.diff(self.indices)
        row_start = self.indptr[1:-1]
        interior = np.ones(self.nnz - 1, dtype=bool)
        interior[row_start[(row_start > 0) & (row_start < self.nnz)] - 1] = False
        return bool(np.all(d[interior] > 0))

    def norm_fro(self) -> float:
        """Frobenius norm of the stored values."""
        return float(np.sqrt(np.sum(np.abs(self.data) ** 2)))

    def bandwidth(self) -> int:
        """Maximum ``|i - j|`` over stored entries (0 for empty matrices)."""
        if self.nnz == 0:
            return 0
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        return int(np.max(np.abs(rows - self.indices)))


def eye(n: int, dtype=np.float64) -> CsrMatrix:
    """The n-by-n identity in CSR form."""
    idx = np.arange(n, dtype=np.int64)
    return CsrMatrix(
        np.arange(n + 1, dtype=np.int64), idx, np.ones(n, dtype=dtype), (n, n)
    )


def diags(d: np.ndarray) -> CsrMatrix:
    """A diagonal matrix from a vector (zeros are kept as stored entries)."""
    d = np.asarray(d)
    n = d.size
    idx = np.arange(n, dtype=np.int64)
    return CsrMatrix(np.arange(n + 1, dtype=np.int64), idx, d.copy(), (n, n))
