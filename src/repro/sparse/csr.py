"""Compressed-sparse-row (CSR) matrices.

The central storage format of the package.  The structure arrays
(``indptr``/``indices``) are host numpy; the value kernels (SpMV,
SpMM, transpose product) are routed through the pluggable
:mod:`repro.backend` array API, with numpy as the bit-identical
default and torch activating on tensor operands or under
``use_backend("torch")``.  The class is deliberately small and
explicit -- the factorizations, triangular solves and Schwarz
operators are built on top of it rather than hidden inside it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend import check_out_dtype, get_backend

__all__ = ["CsrMatrix", "eye", "diags"]


class CsrMatrix:
    """A sparse matrix in compressed-sparse-row format.

    Parameters
    ----------
    indptr:
        ``(n_rows + 1,)`` int64 row-pointer array.
    indices:
        ``(nnz,)`` int64 column indices; sorted within each row.
    data:
        ``(nnz,)`` value array (float32 or float64).
    shape:
        ``(n_rows, n_cols)``.

    Notes
    -----
    Rows are kept with sorted column indices; constructors enforce this.
    The invariant is relied upon by the binary-merge kernels (SpAdd, the
    ILU symbolic phase) and by :meth:`sorted_index_of`.
    """

    __slots__ = (
        "indptr", "indices", "data", "shape",
        "_rows_cache", "_spmv_plan", "_diag_plan",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)
        self.shape = (int(shape[0]), int(shape[1]))
        # structure-derived plans, built on first use (the structure
        # arrays are never mutated in place, so the plans stay valid
        # for the object's lifetime; see expanded_rows)
        self._rows_cache: Optional[np.ndarray] = None
        self._spmv_plan: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._diag_plan: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if self.indptr.ndim != 1 or self.indptr.size != self.shape[0] + 1:
            raise ValueError("indptr must have length n_rows + 1")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have identical length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("inconsistent indptr")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CsrMatrix":
        """Build from triplets, summing duplicates."""
        from repro.sparse.coo import coalesce

        r, c, v = coalesce(rows, cols, vals, shape)
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, r + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, c, v, shape)

    @classmethod
    def from_dense(cls, a: np.ndarray, tol: float = 0.0) -> "CsrMatrix":
        """Build from a dense array, dropping entries with ``|a| <= tol``."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("expected a 2-D array")
        mask = np.abs(a) > tol
        rows, cols = np.nonzero(mask)
        return cls.from_coo(rows, cols, a[rows, cols], a.shape)

    @classmethod
    def from_scipy(cls, a) -> "CsrMatrix":
        """Convert from a ``scipy.sparse`` matrix (test-oracle interop)."""
        a = a.tocsr()
        a.sort_indices()
        a.sum_duplicates()
        return cls(
            a.indptr.astype(np.int64),
            a.indices.astype(np.int64),
            a.data.copy(),
            a.shape,
        )

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (test-oracle interop)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def dtype(self) -> np.dtype:
        """Value dtype."""
        return self.data.dtype

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def row_nnz(self) -> np.ndarray:
        """Per-row entry counts."""
        return np.diff(self.indptr)

    def expanded_rows(self) -> np.ndarray:
        """The row index of every stored entry (COO row expansion).

        Cached: the pre-refactor kernels rebuilt
        ``np.repeat(arange(n_rows), row_nnz())`` on every
        ``diagonal()``/``todense()``/``rmatvec()`` call, which made
        per-iteration diagonal extraction (FastILU/Jacobi setup over a
        solve sequence) quadratic in solve count.  Treat as read-only.
        """
        if self._rows_cache is None:
            self._rows_cache = np.repeat(
                np.arange(self.n_rows, dtype=np.int64), self.row_nnz()
            )
        return self._rows_cache

    def _spmv_segments(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(nonempty_rows, segment_starts)`` SpMV plan."""
        if self._spmv_plan is None:
            nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
            self._spmv_plan = (nonempty, self.indptr[nonempty])
        return self._spmv_plan

    def _diag_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(rows_with_diag, entry_positions)`` diagonal plan."""
        if self._diag_plan is None:
            n = min(self.shape)
            rows = self.expanded_rows()
            mask = rows == self.indices
            entry_pos = np.flatnonzero(mask)
            out_rows = rows[entry_pos]
            sel = out_rows < n
            self._diag_plan = (out_rows[sel], entry_pos[sel])
        return self._diag_plan

    def copy(self) -> "CsrMatrix":
        """Deep copy."""
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape
        )

    def astype(self, dtype) -> "CsrMatrix":
        """Copy with values cast to ``dtype`` (used by the half-precision path)."""
        return CsrMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            self.data.astype(dtype),
            self.shape,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"
        )

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` (views, do not mutate)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def diagonal(self) -> np.ndarray:
        """Main-diagonal values (zeros where the diagonal is not stored).

        A cached structure plan makes repeated extraction (per-iteration
        Jacobi/FastILU setup) a single gather instead of a full COO
        re-expansion per call.
        """
        out = np.zeros(min(self.shape), dtype=self.dtype)
        out_rows, entry_pos = self._diag_positions()
        out[out_rows] = self.data[entry_pos]
        return out

    def todense(self) -> np.ndarray:
        """Materialize as a dense ndarray."""
        out = np.zeros(self.shape, dtype=self.dtype)
        out[self.expanded_rows(), self.indices] = self.data
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Sparse matrix--vector product ``A @ x``.

        A gather followed by a segmented reduction -- the array-API
        analogue of the row-parallel CSR SpMV kernel, routed through
        :func:`repro.backend.get_backend` (numpy default,
        bit-identical; torch on tensor operands).

        The product is computed and returned in the promoted dtype
        ``result_type(A.dtype, x.dtype)``.  An ``out=`` buffer that
        cannot hold that dtype losslessly raises ``TypeError`` instead
        of silently truncating (the float32-buffer downcast bug of the
        half-precision operator path).
        """
        bk = get_backend(x)
        x = bk.asarray(x)
        result_dtype = bk.result_type(self.dtype, x)
        if out is not None:
            if not bk.owns(out):
                raise TypeError(
                    "CsrMatrix.matvec: out buffer must belong to the "
                    f"operand's backend ({bk.name})"
                )
            check_out_dtype(bk.dtype_of(out), result_dtype, "CsrMatrix.matvec")
        prods = bk.asarray(self.data) * bk.take(x, self.indices)
        acc = bk.astype(prods, result_dtype)
        if out is None:
            out = bk.zeros(self.n_rows, dtype=result_dtype)
        else:
            out[:] = 0
        if self.nnz == 0:
            return out
        nonempty, starts = self._spmv_segments()
        if nonempty.size:
            bk.put(out, nonempty, bk.segment_sum(acc, starts))
        return out

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix--dense matrix product ``A @ X`` for 2-D ``X``.

        Returns the promoted dtype ``result_type(A.dtype, X.dtype)``
        regardless of the stored-entry count; the pre-fix kernel read
        the dtype off an empty product array, which yields float64 for
        a zero-nnz matrix whatever the operand dtypes -- the block
        GMRES/CG deflated-shard inconsistency with :meth:`matvec`.
        """
        bk = get_backend(x)
        x = bk.asarray(x)
        if x.ndim == 1:
            return self.matvec(x)
        result_dtype = bk.result_type(self.dtype, x)
        prods = bk.asarray(self.data)[:, None] * bk.take(x, self.indices)
        out = bk.zeros((self.n_rows, x.shape[1]), dtype=result_dtype)
        nonempty, starts = self._spmv_segments()
        if nonempty.size:
            bk.put(out, nonempty, bk.segment_sum(bk.astype(prods, result_dtype), starts, axis=0))
        return out

    def __matmul__(self, other):
        if isinstance(other, CsrMatrix):
            from repro.sparse.spgemm import spgemm

            return spgemm(self, other)
        return self.matmat(other)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Transpose product ``A.T @ y`` without forming the transpose."""
        bk = get_backend(y)
        y = bk.asarray(y)
        out = bk.zeros(self.n_cols, dtype=bk.result_type(self.dtype, y))
        bk.scatter_add_into(
            out, self.indices, bk.asarray(self.data) * bk.take(y, self.expanded_rows())
        )
        return out

    def transpose(self) -> "CsrMatrix":
        """Explicit transpose (counting-sort based, O(nnz))."""
        n_rows, n_cols = self.shape
        indptr_t = np.zeros(n_cols + 1, dtype=np.int64)
        np.add.at(indptr_t, self.indices + 1, 1)
        np.cumsum(indptr_t, out=indptr_t)
        order = np.argsort(self.indices, kind="stable")
        return CsrMatrix(
            indptr_t, self.expanded_rows()[order], self.data[order],
            (n_cols, n_rows),
        )

    @property
    def T(self) -> "CsrMatrix":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def scale_rows(self, d: np.ndarray) -> "CsrMatrix":
        """Return ``diag(d) @ A``."""
        d = np.asarray(d)
        if d.size != self.n_rows:
            raise ValueError("scaling vector length mismatch")
        data = self.data * np.repeat(d, self.row_nnz())
        return CsrMatrix(self.indptr.copy(), self.indices.copy(), data, self.shape)

    def scale_cols(self, d: np.ndarray) -> "CsrMatrix":
        """Return ``A @ diag(d)``."""
        d = np.asarray(d)
        if d.size != self.n_cols:
            raise ValueError("scaling vector length mismatch")
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data * d[self.indices], self.shape
        )

    def __mul__(self, alpha: float) -> "CsrMatrix":
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data * alpha, self.shape
        )

    __rmul__ = __mul__

    def __add__(self, other: "CsrMatrix") -> "CsrMatrix":
        from repro.sparse.spadd import spadd

        return spadd(self, other)

    def __sub__(self, other: "CsrMatrix") -> "CsrMatrix":
        from repro.sparse.spadd import spadd

        return spadd(self, other, beta=-1.0)

    # ------------------------------------------------------------------
    # structure utilities
    # ------------------------------------------------------------------
    def eliminate_zeros(self, tol: float = 0.0) -> "CsrMatrix":
        """Drop stored entries with ``|a_ij| <= tol``."""
        keep = np.abs(self.data) > tol
        rows = self.expanded_rows()
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows[keep] + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CsrMatrix(indptr, self.indices[keep], self.data[keep], self.shape)

    def pattern(self) -> "CsrMatrix":
        """Structure-only copy with all stored values set to one."""
        return CsrMatrix(
            self.indptr.copy(),
            self.indices.copy(),
            np.ones(self.nnz, dtype=self.dtype),
            self.shape,
        )

    def is_sorted(self) -> bool:
        """True when every row's column indices are strictly increasing."""
        if self.nnz < 2:
            return True
        d = np.diff(self.indices)
        row_start = self.indptr[1:-1]
        interior = np.ones(self.nnz - 1, dtype=bool)
        interior[row_start[(row_start > 0) & (row_start < self.nnz)] - 1] = False
        return bool(np.all(d[interior] > 0))

    def norm_fro(self) -> float:
        """Frobenius norm of the stored values."""
        return float(np.sqrt(np.sum(np.abs(self.data) ** 2)))

    def bandwidth(self) -> int:
        """Maximum ``|i - j|`` over stored entries (0 for empty matrices)."""
        if self.nnz == 0:
            return 0
        return int(np.max(np.abs(self.expanded_rows() - self.indices)))


def eye(n: int, dtype=np.float64) -> CsrMatrix:
    """The n-by-n identity in CSR form."""
    idx = np.arange(n, dtype=np.int64)
    return CsrMatrix(
        np.arange(n + 1, dtype=np.int64), idx, np.ones(n, dtype=dtype), (n, n)
    )


def diags(d: np.ndarray) -> CsrMatrix:
    """A diagonal matrix from a vector (zeros are kept as stored entries)."""
    d = np.asarray(d)
    n = d.size
    idx = np.arange(n, dtype=np.int64)
    return CsrMatrix(np.arange(n + 1, dtype=np.int64), idx, d.copy(), (n, n))
