"""Submatrix extraction, permutation, and 2-by-2 block splitting.

These are the structural kernels of the domain-decomposition layer: the
restriction ``A_i = R_i A R_i^T`` onto an overlapping subdomain is a
row/column gather, the GDSW coarse-space construction needs the
``[[A_II, A_IG], [A_GI, A_GG]]`` split, and the direct solvers permute
with fill-reducing orderings.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.sparse.csr import CsrMatrix

__all__ = ["extract_submatrix", "permute", "split_2x2", "inverse_permutation"]


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse of a permutation vector: ``inv[perm[i]] = i``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def extract_submatrix(
    a: CsrMatrix,
    rows: Sequence[int],
    cols: Optional[Sequence[int]] = None,
) -> CsrMatrix:
    """Extract ``A[rows, :][:, cols]`` as a new CSR matrix.

    Equivalent to ``R_r A R_c^T`` for boolean restriction operators; this
    is how the overlapping subdomain matrices of Eq. (1) are formed.

    Parameters
    ----------
    a:
        Source matrix.
    rows:
        Global row indices to keep (order defines the local numbering).
    cols:
        Global column indices to keep; defaults to ``rows`` (principal
        submatrix).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = rows if cols is None else np.asarray(cols, dtype=np.int64)
    # map global column -> local column (or -1)
    col_map = np.full(a.n_cols, -1, dtype=np.int64)
    col_map[cols] = np.arange(cols.size, dtype=np.int64)

    starts = a.indptr[rows]
    lens = a.indptr[rows + 1] - starts
    from repro.sparse.spgemm import _concat_ranges

    gather = _concat_ranges(starts, lens)
    sub_cols = col_map[a.indices[gather]]
    keep = sub_cols >= 0
    sub_rows = np.repeat(np.arange(rows.size, dtype=np.int64), lens)[keep]
    sub_cols = sub_cols[keep]
    sub_vals = a.data[gather][keep]
    return CsrMatrix.from_coo(sub_rows, sub_cols, sub_vals, (rows.size, cols.size))


def permute(
    a: CsrMatrix, row_perm: np.ndarray, col_perm: Optional[np.ndarray] = None
) -> CsrMatrix:
    """Symmetric (or unsymmetric) permutation ``A[row_perm, :][:, col_perm]``.

    ``row_perm[k]`` is the *old* index placed at new position ``k`` (the
    ordering-vector convention used by the :mod:`repro.ordering` package).
    """
    row_perm = np.asarray(row_perm, dtype=np.int64)
    col_perm = row_perm if col_perm is None else np.asarray(col_perm, dtype=np.int64)
    if row_perm.size != a.n_rows or col_perm.size != a.n_cols:
        raise ValueError("permutation length mismatch")
    return extract_submatrix(a, row_perm, col_perm)


def split_2x2(
    a: CsrMatrix, second_block: np.ndarray
) -> Tuple[CsrMatrix, CsrMatrix, CsrMatrix, CsrMatrix, np.ndarray, np.ndarray]:
    """Split a square matrix into interior/interface blocks.

    Given the index set ``second_block`` (the interface ``Gamma``), returns
    ``(A_II, A_IG, A_GI, A_GG, interior, interface)`` where ``interior`` is
    the complement of ``second_block`` in increasing order, matching the
    2-by-2 reordering of Section III of the paper.
    """
    if a.n_rows != a.n_cols:
        raise ValueError("split_2x2 requires a square matrix")
    interface = np.asarray(second_block, dtype=np.int64)
    mask = np.zeros(a.n_rows, dtype=bool)
    mask[interface] = True
    interior = np.flatnonzero(~mask).astype(np.int64)
    a_ii = extract_submatrix(a, interior, interior)
    a_ig = extract_submatrix(a, interior, interface)
    a_gi = extract_submatrix(a, interface, interior)
    a_gg = extract_submatrix(a, interface, interface)
    return a_ii, a_ig, a_gi, a_gg, interior, interface
