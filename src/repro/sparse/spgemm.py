"""Sparse matrix--matrix multiplication (SpGEMM).

The paper's numerical-setup phase spends a visible fraction of its time in
SpGEMM (forming the coarse matrix ``A0 = Phi^T A Phi`` and the overlapping
subdomain matrices ``A_i = R_i A R_i^T``); see the "black" bar of Fig. 4.
This module implements an expansion/coalesce SpGEMM: the multiset of
partial products is materialized as one triplet stream with pure numpy
gathers (no per-row Python loop) and then coalesced with a single sort --
the numpy analogue of the ESC (expand-sort-compress) GPU algorithm, as
opposed to Gustavson's row-wise accumulator used on CPUs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sparse.coo import coalesce
from repro.sparse.csr import CsrMatrix

__all__ = ["spgemm", "spgemm_flops", "expand_products"]


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s+l) for s, l in zip(starts, lengths)]`` without a loop.

    Standard cumsum trick: write the jump between consecutive ranges at
    each range boundary and integrate.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nz = lengths > 0
    st = starts[nz]
    ln = lengths[nz]
    # output offset at which each (non-empty) range begins
    first_pos = np.cumsum(ln) - ln
    out = np.ones(total, dtype=np.int64)
    out[0] = st[0]
    # at each later range boundary, jump from the previous range's last
    # value (st[k-1] + ln[k-1] - 1) to the new start st[k]
    out[first_pos[1:]] = st[1:] - (st[:-1] + ln[:-1] - 1)
    return np.cumsum(out)


def expand_products(
    a: CsrMatrix, b: CsrMatrix
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand all partial products of ``A @ B`` into a triplet stream.

    For every stored ``a_ik`` the entire ``k``-th row of ``B`` is gathered,
    producing ``flops/2`` triplets ``(i, j, a_ik * b_kj)``.

    Returns ``(rows, cols, vals)`` with duplicates (to be coalesced).
    """
    if a.n_cols != b.n_rows:
        raise ValueError(f"dimension mismatch: {a.shape} @ {b.shape}")
    # row index of every stored entry of A
    a_rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    k = a.indices  # middle index of each partial-product group
    b_start = b.indptr[k]
    b_len = (b.indptr[k + 1] - b.indptr[k]).astype(np.int64)
    gather = _concat_ranges(b_start, b_len)
    rows = np.repeat(a_rows, b_len)
    cols = b.indices[gather]
    vals = np.repeat(a.data, b_len) * b.data[gather]
    return rows, cols, vals


def spgemm(a: CsrMatrix, b: CsrMatrix, drop_tol: Optional[float] = None) -> CsrMatrix:
    """Compute the sparse product ``C = A @ B``.

    Parameters
    ----------
    a, b:
        CSR operands with compatible shapes.
    drop_tol:
        When given, entries of the result with magnitude ``<= drop_tol``
        are dropped after coalescing (numerical cancellation produces
        explicit zeros otherwise).
    """
    rows, cols, vals = expand_products(a, b)
    shape = (a.n_rows, b.n_cols)
    r, c, v = coalesce(rows, cols, vals, shape)
    indptr = np.zeros(shape[0] + 1, dtype=np.int64)
    np.add.at(indptr, r + 1, 1)
    np.cumsum(indptr, out=indptr)
    out = CsrMatrix(indptr, c, v, shape)
    if drop_tol is not None:
        out = out.eliminate_zeros(drop_tol)
    return out


def spgemm_flops(a: CsrMatrix, b: CsrMatrix) -> int:
    """Number of floating-point operations (multiply+add) of ``A @ B``.

    Used by the machine model to price the coarse-matrix triple product.
    """
    b_len = b.indptr[a.indices + 1] - b.indptr[a.indices]
    return int(2 * b_len.sum())
