"""Sparse matrix addition ``C = alpha*A + beta*B``.

Implemented as triplet concatenation followed by a single coalescing
sort.  This is used by :func:`repro.sparse.graph.symmetrize_pattern`, the
Neumann-matrix construction in the coarse space, and the residual-matrix
assembly in the FastILU tests.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import coalesce
from repro.sparse.csr import CsrMatrix

__all__ = ["spadd"]


def spadd(
    a: CsrMatrix, b: CsrMatrix, alpha: float = 1.0, beta: float = 1.0
) -> CsrMatrix:
    """Return ``alpha*A + beta*B`` as a new CSR matrix.

    Entries that cancel exactly remain stored as explicit zeros (callers
    that care use :meth:`CsrMatrix.eliminate_zeros`), matching the
    conventions of the Kokkos-Kernels ``spadd`` this models.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    a_rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    b_rows = np.repeat(np.arange(b.n_rows, dtype=np.int64), b.row_nnz())
    rows = np.concatenate([a_rows, b_rows])
    cols = np.concatenate([a.indices, b.indices])
    vals = np.concatenate([alpha * a.data, beta * b.data])
    r, c, v = coalesce(rows, cols, vals, a.shape)
    indptr = np.zeros(a.n_rows + 1, dtype=np.int64)
    np.add.at(indptr, r + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CsrMatrix(indptr, c, v, a.shape)
