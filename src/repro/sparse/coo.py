"""Coordinate-format (COO) sparse matrices and duplicate coalescing.

COO is the assembly format: finite-element assembly and the vectorized
SpGEMM/SpAdd kernels all produce (row, col, val) triplet streams which are
then coalesced (duplicates summed) and converted to CSR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["CooMatrix", "coalesce"]


def coalesce(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum duplicate (row, col) entries of a triplet stream.

    Returns sorted, unique ``(rows, cols, vals)`` arrays in row-major
    (lexicographic by row then column) order.  Fully vectorized: a single
    key sort followed by a segmented reduction.

    Parameters
    ----------
    rows, cols, vals:
        Parallel triplet arrays; may contain duplicates in any order.
    shape:
        Matrix shape, used to build a linear sort key and to validate
        indices.
    """
    n_rows, n_cols = shape
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals)
    if rows.shape != cols.shape or rows.shape != vals.shape:
        raise ValueError("rows, cols, vals must have identical shapes")
    if rows.size == 0:
        return rows, cols, vals
    if rows.min() < 0 or rows.max() >= n_rows:
        raise IndexError("row index out of bounds")
    if cols.min() < 0 or cols.max() >= n_cols:
        raise IndexError("column index out of bounds")

    key = rows * np.int64(n_cols) + cols
    order = np.argsort(key, kind="stable")
    key = key[order]
    vals = vals[order]
    # boundaries of runs of equal keys
    first = np.ones(key.size, dtype=bool)
    first[1:] = key[1:] != key[:-1]
    starts = np.flatnonzero(first)
    summed = np.add.reduceat(vals, starts)
    ukey = key[starts]
    return ukey // n_cols, ukey % n_cols, summed


@dataclass
class CooMatrix:
    """A coordinate-format sparse matrix (triplet stream).

    Attributes
    ----------
    rows, cols, vals:
        Parallel arrays of matrix entries.  Duplicates are allowed and are
        summed on conversion to CSR.
    shape:
        ``(n_rows, n_cols)``.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    shape: Tuple[int, int]

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.vals = np.asarray(self.vals)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise ValueError("rows, cols, vals must have identical shapes")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before coalescing)."""
        return int(self.rows.size)

    def tocsr(self):
        """Coalesce duplicates and convert to :class:`~repro.sparse.CsrMatrix`."""
        from repro.sparse.csr import CsrMatrix

        return CsrMatrix.from_coo(self.rows, self.cols, self.vals, self.shape)

    def todense(self) -> np.ndarray:
        """Materialize as a dense array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=np.result_type(self.vals, np.float64))
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out
