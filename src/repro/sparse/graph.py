"""Graph algorithms on sparse-matrix patterns.

The domain-decomposition layer treats the matrix as a graph: overlap
extension is a k-layer BFS (``expand_layers``), interface-component
classification needs connected components, and the orderings (RCM,
nested dissection) need BFS level structures and pseudo-peripheral
nodes.  All routines work on the *symmetrized* pattern, as FROSch's
algebraic machinery does.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.spadd import spadd

__all__ = [
    "symmetrize_pattern",
    "adjacency_from_pattern",
    "bfs_levels",
    "expand_layers",
    "connected_components",
    "pseudo_peripheral_node",
    "subgraph_components",
]


def symmetrize_pattern(a: CsrMatrix) -> CsrMatrix:
    """Return the pattern of ``A + A^T`` with unit values and no diagonal.

    This is the undirected adjacency structure used by every graph routine
    below.
    """
    s = spadd(a.pattern(), a.transpose().pattern())
    # strip the diagonal: graph algorithms want pure adjacency
    rows = np.repeat(np.arange(s.n_rows, dtype=np.int64), s.row_nnz())
    keep = rows != s.indices
    indptr = np.zeros(s.n_rows + 1, dtype=np.int64)
    np.add.at(indptr, rows[keep] + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CsrMatrix(
        indptr, s.indices[keep], np.ones(int(keep.sum()), dtype=np.float64), s.shape
    )


def adjacency_from_pattern(a: CsrMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(indptr, indices)`` of the symmetrized, diagonal-free pattern."""
    g = symmetrize_pattern(a)
    return g.indptr, g.indices


def bfs_levels(
    indptr: np.ndarray, indices: np.ndarray, seeds: Iterable[int], n: int
) -> np.ndarray:
    """Multi-source BFS; returns the level of every vertex (-1 if unreached).

    Vectorized frontier expansion: each sweep gathers all neighbors of the
    current frontier at once.
    """
    level = np.full(n, -1, dtype=np.int64)
    frontier = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if frontier.size == 0:
        return level
    level[frontier] = 0
    depth = 0
    while frontier.size:
        depth += 1
        from repro.sparse.spgemm import _concat_ranges

        starts = indptr[frontier]
        lens = indptr[frontier + 1] - starts
        nbrs = indices[_concat_ranges(starts, lens)]
        nbrs = np.unique(nbrs)
        new = nbrs[level[nbrs] < 0]
        level[new] = depth
        frontier = new
    return level


def expand_layers(
    indptr: np.ndarray, indices: np.ndarray, seeds: np.ndarray, layers: int, n: int
) -> np.ndarray:
    """Grow an index set by ``layers`` graph layers (algebraic overlap).

    Returns the sorted union of ``seeds`` and every vertex within graph
    distance ``layers`` of it.  With ``layers=1`` this is exactly the
    algebraic overlap `\\delta = 1` used throughout the paper's
    experiments.
    """
    level = bfs_levels(indptr, indices, seeds, n)
    return np.flatnonzero((level >= 0) & (level <= layers)).astype(np.int64)


def connected_components(indptr: np.ndarray, indices: np.ndarray, n: int) -> np.ndarray:
    """Label connected components of an undirected graph.

    Returns an array of component ids in ``[0, n_components)``.
    """
    comp = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for start in range(n):
        if comp[start] >= 0:
            continue
        level = bfs_levels(indptr, indices, [start], n)
        members = level >= 0
        # restrict to still-unlabeled (bfs may cross labeled in disconnected runs)
        members &= comp < 0
        comp[members] = next_id
        next_id += 1
    return comp


def subgraph_components(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray, n: int
) -> list:
    """Connected components of the subgraph induced by ``vertices``.

    Returns a list of int64 arrays of *global* vertex ids, one per
    component.  Used to split interface equivalence classes into the
    connected vertex/edge/face components of the GDSW coarse space.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    in_set = np.zeros(n, dtype=bool)
    in_set[vertices] = True
    seen = np.zeros(n, dtype=bool)
    out = []
    from repro.sparse.spgemm import _concat_ranges

    for v in vertices:
        if seen[v]:
            continue
        # BFS restricted to in_set
        comp = [v]
        seen[v] = True
        frontier = np.array([v], dtype=np.int64)
        while frontier.size:
            starts = indptr[frontier]
            lens = indptr[frontier + 1] - starts
            nbrs = indices[_concat_ranges(starts, lens)]
            nbrs = np.unique(nbrs)
            new = nbrs[in_set[nbrs] & ~seen[nbrs]]
            seen[new] = True
            comp.append(new)
            frontier = new
        out.append(np.sort(np.concatenate([np.atleast_1d(c) for c in comp])))
    return out


def pseudo_peripheral_node(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray, n: int
) -> Tuple[int, np.ndarray]:
    """Find a pseudo-peripheral vertex of the induced subgraph (GPS heuristic).

    Repeatedly BFS from the farthest vertex of the previous sweep until the
    eccentricity stops growing.  Returns ``(vertex, levels)`` where
    ``levels`` is the restricted BFS level array of the final sweep (-1 off
    the subgraph).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        raise ValueError("empty vertex set")
    in_set = np.zeros(n, dtype=bool)
    in_set[vertices] = True

    def restricted_bfs(seed: int) -> np.ndarray:
        from repro.sparse.spgemm import _concat_ranges

        level = np.full(n, -1, dtype=np.int64)
        level[seed] = 0
        frontier = np.array([seed], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            starts = indptr[frontier]
            lens = indptr[frontier + 1] - starts
            nbrs = indices[_concat_ranges(starts, lens)]
            nbrs = np.unique(nbrs)
            new = nbrs[in_set[nbrs] & (level[nbrs] < 0)]
            level[new] = depth
            frontier = new
        return level

    node = int(vertices[0])
    level = restricted_bfs(node)
    ecc = int(level.max())
    while True:
        reached = np.flatnonzero(level == ecc)
        # among the farthest, pick the one of minimum degree (GPS refinement)
        degs = indptr[reached + 1] - indptr[reached]
        cand = int(reached[np.argmin(degs)])
        new_level = restricted_bfs(cand)
        new_ecc = int(new_level.max())
        if new_ecc <= ecc:
            return cand, new_level
        node, level, ecc = cand, new_level, new_ecc
