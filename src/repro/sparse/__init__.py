"""Sparse-matrix substrate used by every solver in the package.

This subpackage provides from-scratch compressed-sparse-row (CSR) storage
and the vectorized kernels the domain-decomposition stack is built on:
sparse matrix--vector products, sparse matrix--matrix products (Gustavson
style, fully vectorized), sparse addition, submatrix extraction, and the
graph utilities (BFS, connected components, k-layer neighborhood
expansion) that the overlap construction and the orderings need.

The design mirrors the Tpetra/Kokkos-Kernels layering of the paper's
software stack (Fig. 2): distributed objects in :mod:`repro.runtime` are
built from these on-node kernels.  ``scipy.sparse`` is deliberately *not*
used by any algorithm here -- it appears only in the test-suite as an
oracle.
"""

from repro.sparse.coo import CooMatrix, coalesce
from repro.sparse.csr import CsrMatrix, eye, diags
from repro.sparse.spgemm import spgemm
from repro.sparse.spadd import spadd
from repro.sparse.blocks import (
    extract_submatrix,
    permute,
    split_2x2,
)
from repro.sparse.graph import (
    adjacency_from_pattern,
    bfs_levels,
    connected_components,
    expand_layers,
    pseudo_peripheral_node,
    symmetrize_pattern,
)

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "adjacency_from_pattern",
    "bfs_levels",
    "coalesce",
    "connected_components",
    "diags",
    "expand_layers",
    "extract_submatrix",
    "eye",
    "permute",
    "pseudo_peripheral_node",
    "spadd",
    "spgemm",
    "split_2x2",
    "symmetrize_pattern",
]
