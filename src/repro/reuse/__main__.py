"""CLI entry: ``python -m repro.reuse`` runs the k-solve reuse bench."""

from __future__ import annotations

import argparse
import json
import sys

from repro.reuse.bench import run_reuse_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.reuse",
        description="k-solve amortized-setup benchmark (BENCH_reuse.json)",
    )
    ap.add_argument("--out", default=None, help="write the JSON report here")
    ap.add_argument("--k", type=int, default=4, help="solves per sequence")
    ap.add_argument(
        "--elements", type=int, default=6, help="elements per axis"
    )
    args = ap.parse_args(argv)

    report = run_reuse_bench(k=args.k, elements=args.elements)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    print(text)
    for kind, rec in sorted(report["kinds"].items()):
        tag = "reusable" if rec["symbolic_reusable"] else "re-symbolic"
        print(
            f"[reuse] {kind:8s} ({tag}): first {rec['first_setup_seconds']:.3e}s, "
            f"amortized {min(rec['amortized_setup_seconds']):.3e}s, "
            f"iters {rec['iterations']}",
            file=sys.stderr,
        )
    if report["violations"]:
        for v in report["violations"]:
            print(f"[reuse] VIOLATION: {v}", file=sys.stderr)
        return 1
    print("[reuse] all amortization/bit-identity invariants hold",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
